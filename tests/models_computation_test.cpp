// Tests for the computational-block models (EQ 2-6, EQ 20).
#include "models/berkeley_library.hpp"
#include "models/computation.hpp"

#include <gtest/gtest.h>

namespace powerplay::models {
namespace {

using namespace units;
using namespace units::literals;
using model::Estimate;
using model::MapParamReader;

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = berkeley_library();
  return registry;
}

MapParamReader params(std::initializer_list<std::pair<std::string, double>> kv) {
  MapParamReader p;
  for (const auto& [k, v] : kv) p.set(k, v);
  return p;
}

TEST(Multiplier, Eq20ExactCoefficient) {
  // EQ 20: C_T = bitwidthA * bitwidthB * 253 fF, uncorrelated inputs.
  auto p = params({{"bitwidthA", 16}, {"bitwidthB", 16}, {"correlated", 0},
                   {"alpha", 1}, {"vdd", 1.5}, {"f", 0}});
  const Estimate e = lib().at("array_multiplier").evaluate(p);
  EXPECT_NEAR(e.switched_capacitance.si(), 16.0 * 16.0 * 253e-15, 1e-20);
}

TEST(Multiplier, CorrelatedCoefficientIsSmaller) {
  auto pu = params({{"bitwidthA", 12}, {"bitwidthB", 12}, {"correlated", 0},
                    {"alpha", 1}, {"vdd", 1.5}, {"f", 1e6}});
  auto pc = params({{"bitwidthA", 12}, {"bitwidthB", 12}, {"correlated", 1},
                    {"alpha", 1}, {"vdd", 1.5}, {"f", 1e6}});
  const double uncorrelated =
      lib().at("array_multiplier").evaluate(pu).total_power().si();
  const double correlated =
      lib().at("array_multiplier").evaluate(pc).total_power().si();
  EXPECT_LT(correlated, uncorrelated);
  EXPECT_NEAR(correlated / uncorrelated,
              coeff::kMultiplierCorrelated.si() /
                  coeff::kMultiplierUncorrelated.si(),
              1e-12);
}

TEST(Multiplier, BilinearInBothWidths) {
  auto base = params({{"bitwidthA", 8}, {"bitwidthB", 8}, {"correlated", 0},
                      {"alpha", 1}, {"vdd", 1.0}, {"f", 1.0}});
  auto wide = params({{"bitwidthA", 16}, {"bitwidthB", 24}, {"correlated", 0},
                      {"alpha", 1}, {"vdd", 1.0}, {"f", 1.0}});
  const double e8 = lib().at("array_multiplier").evaluate(base)
                        .energy_per_op.si();
  const double e_wide = lib().at("array_multiplier").evaluate(wide)
                            .energy_per_op.si();
  EXPECT_NEAR(e_wide / e8, (16.0 * 24.0) / 64.0, 1e-9);
}

TEST(Adder, Eq3LinearInBitwidth) {
  auto p16 = params({{"bitwidth", 16}, {"alpha", 1}, {"vdd", 1.5}, {"f", 1e6}});
  auto p32 = params({{"bitwidth", 32}, {"alpha", 1}, {"vdd", 1.5}, {"f", 1e6}});
  const double e16 = lib().at("ripple_adder").evaluate(p16).energy_per_op.si();
  const double e32 = lib().at("ripple_adder").evaluate(p32).energy_per_op.si();
  EXPECT_NEAR(e32 / e16, 2.0, 1e-12);
}

TEST(Adder, ActivityScalesLinearly) {
  auto full = params({{"bitwidth", 16}, {"alpha", 1.0}, {"vdd", 1.5}, {"f", 1e6}});
  auto half = params({{"bitwidth", 16}, {"alpha", 0.5}, {"vdd", 1.5}, {"f", 1e6}});
  EXPECT_NEAR(lib().at("ripple_adder").evaluate(half).total_power().si() /
                  lib().at("ripple_adder").evaluate(full).total_power().si(),
              0.5, 1e-12);
}

TEST(Adder, QuadraticVoltageScaling) {
  // EQ 1 with full-swing terms: P ∝ VDD^2 at fixed C and f.
  auto lo = params({{"bitwidth", 16}, {"alpha", 1}, {"vdd", 1.0}, {"f", 1e6}});
  auto hi = params({{"bitwidth", 16}, {"alpha", 1}, {"vdd", 3.0}, {"f", 1e6}});
  EXPECT_NEAR(lib().at("ripple_adder").evaluate(hi).total_power().si() /
                  lib().at("ripple_adder").evaluate(lo).total_power().si(),
              9.0, 1e-12);
}

TEST(Adder, RippleDelayGrowsWithWidth) {
  auto p8 = params({{"bitwidth", 8}, {"alpha", 1}, {"vdd", 1.5}, {"f", 0}});
  auto p32 = params({{"bitwidth", 32}, {"alpha", 1}, {"vdd", 1.5}, {"f", 0}});
  EXPECT_LT(lib().at("ripple_adder").evaluate(p8).delay,
            lib().at("ripple_adder").evaluate(p32).delay);
}

TEST(Adder, RejectsOutOfRangeBitwidth) {
  auto p = params({{"bitwidth", 0}, {"alpha", 1}, {"vdd", 1.5}, {"f", 0}});
  EXPECT_THROW(lib().at("ripple_adder").evaluate(p), expr::ExprError);
}

TEST(Shifter, GrowsWithLogOfShiftDistance) {
  auto s4 = params({{"bitwidth", 16}, {"max_shift", 4}, {"alpha", 1},
                    {"vdd", 1.5}, {"f", 1e6}});
  auto s16 = params({{"bitwidth", 16}, {"max_shift", 16}, {"alpha", 1},
                     {"vdd", 1.5}, {"f", 1e6}});
  const double p4 = lib().at("log_shifter").evaluate(s4).total_power().si();
  const double p16 = lib().at("log_shifter").evaluate(s16).total_power().si();
  EXPECT_GT(p16, p4);
  EXPECT_LT(p16 / p4, 2.01);  // log2(16)/log2(4) = 2 on the stage term only
}

TEST(Multiplexer, ScalesWithLegs) {
  auto m2 = params({{"bits", 8}, {"inputs", 2}, {"alpha", 1}, {"vdd", 1.5},
                    {"f", 1e6}});
  auto m8 = params({{"bits", 8}, {"inputs", 8}, {"alpha", 1}, {"vdd", 1.5},
                    {"f", 1e6}});
  const double p2 = lib().at("multiplexer").evaluate(m2).total_power().si();
  const double p8 = lib().at("multiplexer").evaluate(m8).total_power().si();
  EXPECT_NEAR(p8 / p2, 7.0, 1e-9);  // (inputs-1) legs
}

TEST(Comparator, LinearInWidth) {
  auto a = params({{"bitwidth", 8}, {"alpha", 1}, {"vdd", 1.0}, {"f", 1.0}});
  auto b = params({{"bitwidth", 24}, {"alpha", 1}, {"vdd", 1.0}, {"f", 1.0}});
  EXPECT_NEAR(lib().at("comparator").evaluate(b).energy_per_op.si() /
                  lib().at("comparator").evaluate(a).energy_per_op.si(),
              3.0, 1e-12);
}

// --- Svensson analytical model (EQ 4-6) --------------------------------------

TEST(Svensson, PerSliceCapacitanceMatchesEq5) {
  const SvenssonBlockModel m(
      "sv_test", "test block",
      {{"s1", 10.0_fF, 20.0_fF, 0.5, 0.25},
       {"s2", 5.0_fF, 15.0_fF, 0.4, 0.2}});
  // EQ 5: sum of alpha_in*C_in + alpha_out*C_out over stages.
  const double expect =
      0.5 * 10e-15 + 0.25 * 20e-15 + 0.4 * 5e-15 + 0.2 * 15e-15;
  EXPECT_NEAR(m.per_slice_capacitance(1.0).si(), expect, 1e-22);
  EXPECT_NEAR(m.per_slice_capacitance(2.0).si(), 2 * expect, 1e-22);
}

TEST(Svensson, BlockCapacitanceIsBitwidthTimesSlice) {
  const SvenssonBlockModel m("sv_test2", "test",
                             {{"inv", 8.0_fF, 12.0_fF, 0.5, 0.5}});
  auto p = params({{"bitwidth", 16}, {"activity_scale", 1.0}, {"vdd", 1.0},
                   {"f", 0}});
  const Estimate e = m.evaluate(p);
  // EQ 6: C_T = bitwidth * C_ST.
  EXPECT_NEAR(e.switched_capacitance.si(),
              16.0 * m.per_slice_capacitance(1.0).si(), 1e-22);
  EXPECT_EQ(e.cap_terms.size(), 1u);
}

TEST(Svensson, EmptyStageListRejected) {
  EXPECT_THROW(SvenssonBlockModel("sv_bad", "doc", {}), expr::ExprError);
}

TEST(Svensson, LibraryBlocksPresent) {
  EXPECT_TRUE(lib().contains("sv_buffer_chain"));
  EXPECT_TRUE(lib().contains("sv_mux_latch"));
  auto p = params({{"bitwidth", 8}, {"activity_scale", 1.0}, {"vdd", 1.5},
                   {"f", 2e6}});
  EXPECT_GT(lib().at("sv_mux_latch").evaluate(p).total_power().si(), 0.0);
}

// Property sweep: every computation model's dynamic power is monotone
// non-decreasing in frequency and quadratic-in-vdd exactly.
class ComputationModelNames : public ::testing::TestWithParam<const char*> {};

TEST_P(ComputationModelNames, PowerLinearInFrequency) {
  const model::Model& m = lib().at(GetParam());
  MapParamReader p1, p2;
  for (const model::ParamSpec& s : m.params()) {
    p1.set(s.name, s.default_value);
    p2.set(s.name, s.default_value);
  }
  p1.set("f", 1e6);
  p2.set("f", 3e6);
  const double a = m.evaluate(p1).dynamic_power.si();
  const double b = m.evaluate(p2).dynamic_power.si();
  EXPECT_NEAR(b / a, 3.0, 1e-9) << GetParam();
}

TEST_P(ComputationModelNames, EnergyQuadraticInVdd) {
  const model::Model& m = lib().at(GetParam());
  MapParamReader p1, p2;
  for (const model::ParamSpec& s : m.params()) {
    p1.set(s.name, s.default_value);
    p2.set(s.name, s.default_value);
  }
  p1.set("vdd", 1.0);
  p2.set("vdd", 2.0);
  const double a = m.evaluate(p1).energy_per_op.si();
  const double b = m.evaluate(p2).energy_per_op.si();
  EXPECT_NEAR(b / a, 4.0, 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllComputation, ComputationModelNames,
                         ::testing::Values("ripple_adder", "array_multiplier",
                                           "log_shifter", "multiplexer",
                                           "comparator", "sv_buffer_chain",
                                           "sv_mux_latch"));

}  // namespace
}  // namespace powerplay::models
