// Fault-injection tests for the durability layer: checksum footers,
// journal framing, and crash recovery.  The strategy throughout is to
// build a store, mutilate its files the way a crash or bit rot would
// (truncate at every interesting boundary, flip bytes), reopen, and
// assert the store comes back holding exactly the acknowledged state.
#include "library/durable.hpp"
#include "library/journal.hpp"
#include "library/replica.hpp"
#include "library/store.hpp"
#include "library/textio.hpp"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace powerplay::library {
namespace {

namespace fs = std::filesystem;

/// Unique temp directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("pp_recovery_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spew(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

model::UserModelDefinition tiny_model(const std::string& name) {
  model::UserModelDefinition def;
  def.name = name;
  def.category = model::Category::kStorage;
  def.documentation = "recovery test model";
  def.params = {{"words", "entries", 256, "", 1, 65536, true}};
  def.c_fullswing = "words * 1e-15";
  return def;
}

std::vector<fs::path> files_in(const fs::path& dir) {
  std::vector<fs::path> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) out.push_back(entry.path());
  }
  return out;
}

// --- checksum footer primitives -------------------------------------------

TEST(Durable, Crc32KnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Durable, FooterRoundTrip) {
  const std::string payload = "model \"m\" {\n}\n";
  const std::string raw = with_checksum_footer(payload);
  std::string back;
  EXPECT_EQ(verify_snapshot(raw, &back), SnapshotState::kOk);
  EXPECT_EQ(back, payload);
}

TEST(Durable, FooterDetectsTruncationAtEveryLength) {
  const std::string raw = with_checksum_footer("model \"m\" {\n  a 1\n}\n");
  for (std::size_t keep = 0; keep < raw.size(); ++keep) {
    EXPECT_NE(verify_snapshot(raw.substr(0, keep), nullptr),
              SnapshotState::kOk)
        << "truncation to " << keep << " bytes went undetected";
  }
}

TEST(Durable, FooterDetectsEveryBitFlip) {
  const std::string raw = with_checksum_footer("design \"d\" {\n}\n");
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = raw;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      EXPECT_NE(verify_snapshot(bad, nullptr), SnapshotState::kOk)
          << "flip of bit " << bit << " at byte " << i << " went undetected";
    }
  }
}

TEST(Durable, MissingFooterIsNotOk) {
  // A file written by older code (or truncated clean at a line break)
  // has no footer; it must not verify.
  EXPECT_EQ(verify_snapshot("model \"m\" {\n}\n", nullptr),
            SnapshotState::kMissingFooter);
  EXPECT_EQ(verify_snapshot("", nullptr), SnapshotState::kMissingFooter);
}

TEST(Durable, AtomicWriteLeavesNoTemp) {
  TempDir tmp;
  const fs::path target = tmp.path / "out.txt";
  atomic_write_file(target, "hello\n");
  EXPECT_EQ(slurp(target), "hello\n");
  ASSERT_EQ(files_in(tmp.path).size(), 1u);
}

// --- journal framing -------------------------------------------------------

TEST(Journal, AppendAndReadBack) {
  TempDir tmp;
  const fs::path jpath = tmp.path / "journal.ppwal";
  {
    Journal j(jpath);
    EXPECT_TRUE(j.header_valid());
    EXPECT_EQ(j.tail_bytes(), 0u);
    j.append({JournalRecord::Op::kPut, "model", "m one", "contents\n"});
    j.append({JournalRecord::Op::kDelete, "design", "d", ""});
    EXPECT_GT(j.tail_bytes(), 0u);
  }
  Journal j(jpath);
  const auto r = j.read_all();
  EXPECT_TRUE(r.header_ok);
  EXPECT_FALSE(r.torn);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].op, JournalRecord::Op::kPut);
  EXPECT_EQ(r.records[0].kind, "model");
  EXPECT_EQ(r.records[0].name, "m one");  // quoted names survive spaces
  EXPECT_EQ(r.records[0].contents, "contents\n");
  EXPECT_EQ(r.records[1].op, JournalRecord::Op::kDelete);
  EXPECT_EQ(r.records[1].name, "d");
}

TEST(Journal, TruncationAtEveryByteYieldsPrefix) {
  TempDir tmp;
  const fs::path jpath = tmp.path / "journal.ppwal";
  std::vector<std::uint64_t> boundaries;  // bytes after header, per record
  {
    Journal j(jpath);
    for (int i = 0; i < 3; ++i) {
      j.append({JournalRecord::Op::kPut, "model", "m" + std::to_string(i),
                "body " + std::to_string(i) + "\n"});
      boundaries.push_back(j.tail_bytes());
    }
  }
  const std::string bytes = slurp(jpath);
  for (std::size_t keep = 0; keep <= bytes.size(); ++keep) {
    const auto r = Journal::parse(bytes.substr(0, keep));
    if (keep < Journal::kHeaderSize) {
      // Torn inside the header (or its position stamp): no record —
      // and no cursor — can be trusted.
      EXPECT_FALSE(r.header_ok) << keep;
      continue;
    }
    // Count how many whole records fit in `keep` bytes.
    std::size_t expected = 0;
    for (const std::uint64_t b : boundaries) {
      if (keep >= Journal::kHeaderSize + b) ++expected;
    }
    EXPECT_EQ(r.records.size(), expected) << "at " << keep << " bytes";
    // Torn exactly when some trailing bytes form no complete record.
    const bool at_boundary =
        expected == 0
            ? keep == Journal::kHeaderSize
            : keep == Journal::kHeaderSize + boundaries[expected - 1];
    EXPECT_EQ(r.torn, !at_boundary) << "at " << keep << " bytes";
  }
}

TEST(Journal, BitFlipStopsReplayAtFlippedRecord) {
  TempDir tmp;
  const fs::path jpath = tmp.path / "journal.ppwal";
  std::uint64_t first_end = 0;
  {
    Journal j(jpath);
    j.append({JournalRecord::Op::kPut, "model", "a", "aaa\n"});
    first_end = Journal::kHeaderSize + j.tail_bytes();
    j.append({JournalRecord::Op::kPut, "model", "b", "bbb\n"});
  }
  const std::string bytes = slurp(jpath);
  // Flip one bit in every byte of the second record; the first must
  // still replay, the second never.
  for (std::size_t i = first_end; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x10);
    const auto r = Journal::parse(bad);
    EXPECT_TRUE(r.torn) << "flip at " << i;
    ASSERT_EQ(r.records.size(), 1u) << "flip at " << i;
    EXPECT_EQ(r.records[0].name, "a");
  }
}

TEST(Journal, FailedAppendDoesNotOrphanLaterRecords) {
  // A write that dies mid-frame (ENOSPC/EIO) must not leave torn bytes
  // in place: the O_APPEND descriptor would put later acknowledged
  // records after them, where replay — which stops at the first torn
  // frame — could never reach them.
  TempDir tmp;
  Journal j(tmp.path / "journal.ppwal");
  std::vector<std::string> expected;
  int seq = 0;
  for (const std::uint64_t cut : {0u, 1u, 4u, 8u, 13u}) {
    j.fail_next_write_for_testing(cut);
    EXPECT_THROW(
        j.append({JournalRecord::Op::kPut, "model", "torn", "torn\n"}),
        FormatError)
        << "cut at " << cut;
    // The torn bytes were truncated away; the next append is reachable.
    const std::string name = "ok" + std::to_string(seq++);
    j.append({JournalRecord::Op::kPut, "model", name, "body\n"});
    expected.push_back(name);
    const auto r = j.read_all();
    EXPECT_TRUE(r.header_ok) << "cut at " << cut;
    EXPECT_FALSE(r.torn) << "cut at " << cut;
    ASSERT_EQ(r.records.size(), expected.size()) << "cut at " << cut;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(r.records[i].name, expected[i]);
    }
  }
}

TEST(Journal, RotateEmptiesAndStaysAppendable) {
  TempDir tmp;
  Journal j(tmp.path / "journal.ppwal");
  j.append({JournalRecord::Op::kPut, "model", "x", "x\n"});
  j.rotate();
  EXPECT_EQ(j.tail_bytes(), 0u);
  j.append({JournalRecord::Op::kPut, "model", "y", "y\n"});
  const auto r = j.read_all();
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].name, "y");
}

// --- store crash recovery --------------------------------------------------

TEST(StoreRecovery, CorruptSnapshotRecoveredFromJournal) {
  TempDir tmp;
  {
    LibraryStore store(tmp.path);
    store.save_model(tiny_model("precious"));
  }
  // Bit rot / torn write on the materialized file.
  const fs::path victim = tmp.path / "models" / "precious.ppmodel";
  std::string bytes = slurp(victim);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  spew(victim, bytes);

  LibraryStore store(tmp.path);
  const auto loaded = store.load_model("precious");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->c_fullswing, tiny_model("precious").c_fullswing);
  const DurabilityStats stats = store.durability();
  EXPECT_GE(stats.journal_replayed, 1u);
  EXPECT_GE(stats.quarantined_files, 1u);
  EXPECT_FALSE(files_in(tmp.path / "quarantine").empty());
}

TEST(StoreRecovery, MissingSnapshotsRebuiltFromJournal) {
  TempDir tmp;
  UserProfile profile;
  profile.username = "alice";
  profile.defaults = {{"vdd", 3.3}};
  {
    LibraryStore store(tmp.path);
    store.save_model(tiny_model("m1"));
    store.save_model(tiny_model("m2"));
    store.save_user(profile);
  }
  // Worst case: every materialized file vanished; only the journal is
  // left.
  for (const char* dir : {"models", "users"}) {
    for (const fs::path& f : files_in(tmp.path / dir)) fs::remove(f);
  }

  LibraryStore store(tmp.path);
  EXPECT_EQ(store.list_models(), (std::vector<std::string>{"m1", "m2"}));
  const auto alice = store.load_user("alice");
  ASSERT_TRUE(alice.has_value());
  EXPECT_DOUBLE_EQ(alice->defaults.at("vdd"), 3.3);
  EXPECT_EQ(store.durability().journal_replayed, 3u);
}

TEST(StoreRecovery, TornJournalTailSweepRecoversAcknowledgedPrefix) {
  TempDir tmp;
  const int kModels = 3;
  {
    LibraryStore store(tmp.path);
    for (int i = 0; i < kModels; ++i) {
      store.save_model(tiny_model("m" + std::to_string(i)));
    }
  }
  const std::string journal_bytes = slurp(tmp.path / "journal.ppwal");

  // Crash-simulate: at every truncation point of the journal (with all
  // snapshots gone), recovery must yield exactly the models whose
  // records frame-complete before the cut — the acknowledged prefix.
  // Every byte of the final 80 (covering the last record's frame and
  // both of its boundaries), every 7th byte before that.
  const auto full = Journal::parse(journal_bytes);
  ASSERT_EQ(full.records.size(), static_cast<std::size_t>(kModels));
  ASSERT_FALSE(full.torn);
  std::vector<std::size_t> cuts;
  const std::size_t tail_start =
      journal_bytes.size() > 80 ? journal_bytes.size() - 80
                                : Journal::kMagicSize;
  for (std::size_t keep = Journal::kMagicSize; keep < tail_start; keep += 7) {
    cuts.push_back(keep);
  }
  for (std::size_t keep = tail_start; keep <= journal_bytes.size(); ++keep) {
    cuts.push_back(keep);
  }

  for (const std::size_t keep : cuts) {
    const std::string cut = journal_bytes.substr(0, keep);
    const auto expected = Journal::parse(cut);
    std::set<std::string> expected_names;
    for (const auto& rec : expected.records) expected_names.insert(rec.name);

    TempDir crash;
    spew(crash.path / "journal.ppwal", cut);
    {
      LibraryStore store(crash.path);
      const auto names = store.list_models();
      EXPECT_EQ(std::set<std::string>(names.begin(), names.end()),
                expected_names)
          << "journal truncated to " << keep << " bytes";
      for (const std::string& name : expected_names) {
        EXPECT_TRUE(store.load_model(name).has_value()) << name;
      }
      EXPECT_EQ(store.durability().journal_replayed,
                expected.records.size());
    }
    // Recovery compacted the journal: a second open replays nothing
    // and still sees every acknowledged model.
    LibraryStore again(crash.path);
    EXPECT_EQ(again.durability().journal_replayed, 0u);
    EXPECT_EQ(again.list_models().size(), expected_names.size());
  }
}

TEST(StoreRecovery, DeleteOpsReplayCorrectly) {
  TempDir tmp;
  {
    LibraryStore store(tmp.path);
    store.save_model(tiny_model("doomed"));
    store.save_model(tiny_model("kept"));
    EXPECT_TRUE(store.remove_model("doomed"));
    EXPECT_FALSE(store.remove_model("doomed"));  // already gone
  }
  // Wipe the materialized tree; replay must re-create "kept" and
  // re-delete "doomed".
  for (const fs::path& f : files_in(tmp.path / "models")) fs::remove(f);
  LibraryStore store(tmp.path);
  EXPECT_EQ(store.list_models(), (std::vector<std::string>{"kept"}));
}

TEST(StoreRecovery, StaleTempFilesSweptAtOpen) {
  TempDir tmp;
  { LibraryStore store(tmp.path); }
  const fs::path stale = tmp.path / "models" / "half.ppmodel.tmp999.0";
  spew(stale, "partial write that never committed");
  LibraryStore store(tmp.path);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(store.list_models().empty());
}

TEST(StoreRecovery, DottedTmpNamesAreNotSweptAsTempFiles) {
  // Store names may contain ".tmp" (dots are legal); the recovery
  // sweep must only unlink the exact "<ext>.tmp<pid>.<seq>" temp shape,
  // never a materialized entry.  flush() first so the journal is empty
  // and replay could not mask an over-eager sweep.
  TempDir tmp;
  {
    LibraryStore store(tmp.path);
    store.save_model(tiny_model("rev.tmp"));
    store.save_model(tiny_model("v2.tmp31.7"));
    store.flush();
  }
  LibraryStore store(tmp.path);
  EXPECT_TRUE(store.load_model("rev.tmp").has_value());
  EXPECT_TRUE(store.load_model("v2.tmp31.7").has_value());
  EXPECT_EQ(store.durability().quarantined_files, 0u);
  const FsckReport report = fsck_store(tmp.path);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.files_checked, 2u);  // fsck verifies them too
}

TEST(StoreRecovery, ConcurrentCommitsWithRotationLoseNothing) {
  // Distinct users' writes hit commit() concurrently; aggressive
  // rotation must never truncate a record another thread has appended
  // (acknowledged) but not yet applied.
  TempDir tmp;
  StoreOptions aggressive;
  aggressive.journal_rotate_bytes = 1;  // rotate after every commit
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  {
    LibraryStore store(tmp.path, aggressive);
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&store, t] {
        for (int i = 0; i < kPerThread; ++i) {
          UserProfile p;
          p.username =
              "u" + std::to_string(t) + "_" + std::to_string(i);
          p.defaults = {{"vdd", 1.0 + t}};
          store.save_user(p);
        }
      });
    }
    for (std::thread& w : writers) w.join();
  }
  LibraryStore store(tmp.path);
  EXPECT_EQ(store.list_users().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(
          store.load_user("u" + std::to_string(t) + "_" +
                          std::to_string(i))
              .has_value());
    }
  }
}

TEST(StoreRecovery, QuarantinePreservesCorruptBytes) {
  TempDir tmp;
  {
    LibraryStore store(tmp.path);
    store.save_model(tiny_model("m"));
  }
  const std::string garbage = "!! not a model at all !!";
  spew(tmp.path / "models" / "m.ppmodel", garbage);
  LibraryStore store(tmp.path);
  // The corrupt bytes live on in quarantine/ — never silently deleted.
  bool found = false;
  for (const fs::path& f : files_in(tmp.path / "quarantine")) {
    if (slurp(f) == garbage) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(store.durability().quarantined_files, 1u);
}

TEST(StoreRecovery, ForeignJournalQuarantinedNotDeleted) {
  TempDir tmp;
  { LibraryStore store(tmp.path); }
  spew(tmp.path / "journal.ppwal", "this is no journal");
  LibraryStore store(tmp.path);
  EXPECT_GE(store.durability().quarantined_files, 1u);
  // And the journal works again.
  store.save_model(tiny_model("after"));
  EXPECT_TRUE(store.load_model("after").has_value());
}

TEST(StoreRecovery, RotationBoundsJournalAndSurvivesReopen) {
  TempDir tmp;
  StoreOptions tiny;
  tiny.journal_rotate_bytes = 1;  // rotate after every commit
  {
    LibraryStore store(tmp.path, tiny);
    store.save_model(tiny_model("a"));
    store.save_model(tiny_model("b"));
    EXPECT_GE(store.durability().journal_rotations, 2u);
  }
  LibraryStore store(tmp.path);
  // Nothing left to replay — the snapshots carry the state.
  EXPECT_EQ(store.durability().journal_replayed, 0u);
  EXPECT_TRUE(store.load_model("a").has_value());
  EXPECT_TRUE(store.load_model("b").has_value());
}

TEST(StoreRecovery, FlushCompactsJournal) {
  TempDir tmp;
  {
    LibraryStore store(tmp.path);
    store.save_model(tiny_model("m"));
    store.flush();
  }
  // Header-only (magic + position stamp), no record tail left behind.
  EXPECT_EQ(slurp(tmp.path / "journal.ppwal").size(), Journal::kHeaderSize);
  {
    Journal j(tmp.path / "journal.ppwal");
    EXPECT_EQ(j.tail_bytes(), 0u);
  }
  LibraryStore store(tmp.path);
  EXPECT_EQ(store.durability().journal_replayed, 0u);
  EXPECT_TRUE(store.load_model("m").has_value());
}

TEST(StoreRecovery, CorruptUserReportedAbsent) {
  TempDir tmp;
  {
    LibraryStore store(tmp.path);
    UserProfile p;
    p.username = "bob";
    store.save_user(p);
    store.flush();  // discard journal so recovery cannot resurrect bob
  }
  spew(tmp.path / "users" / "bob.ppuser", "user \"bob\" {}\n");  // no footer
  LibraryStore store(tmp.path);
  EXPECT_FALSE(store.load_user("bob").has_value());
  EXPECT_GE(store.durability().quarantined_files, 1u);
}

TEST(StoreRecovery, NoTempFilesVisibleAfterSaves) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  for (int i = 0; i < 8; ++i) {
    store.save_model(tiny_model("m" + std::to_string(i)));
  }
  for (const char* dir : {"models", "designs", "users"}) {
    for (const fs::path& f : files_in(tmp.path / dir)) {
      EXPECT_EQ(f.filename().string().find(".tmp"), std::string::npos)
          << f;
    }
  }
}

// --- replication framing and shipped replay --------------------------------

JournalRecord put_record(const std::string& name) {
  JournalRecord r;
  r.op = JournalRecord::Op::kPut;
  r.kind = "model";
  r.name = name;
  r.contents = to_text(tiny_model(name));
  return r;
}

TEST(Journal, StampsEpochAndContiguousSeqsAcrossRotation) {
  TempDir tmp;
  Journal j(tmp.path / "j.ppwal");
  EXPECT_EQ(j.epoch(), 1u);
  EXPECT_EQ(j.base_seq(), 1u);
  EXPECT_EQ(j.append(put_record("a")), 1u);
  EXPECT_EQ(j.append(put_record("b")), 2u);
  // Rotation opens a new epoch but sequence numbers keep counting: a
  // follower's position is never reused for different bytes.
  j.rotate();
  EXPECT_EQ(j.epoch(), 2u);
  EXPECT_EQ(j.base_seq(), 3u);
  EXPECT_EQ(j.append(put_record("c")), 3u);

  const Journal::ReadResult r = j.read_all();
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.epoch, 2u);
  EXPECT_EQ(r.base_seq, 3u);
  EXPECT_EQ(r.records[0].epoch, 2u);
  EXPECT_EQ(r.records[0].seq, 3u);
}

TEST(Journal, RotateToEpochEnforcesFloorAndMinSeq) {
  TempDir tmp;
  Journal j(tmp.path / "j.ppwal");
  j.append(put_record("a"));
  j.rotate_to_epoch(7, 42);
  EXPECT_EQ(j.epoch(), 7u);
  EXPECT_EQ(j.base_seq(), 42u);
  EXPECT_EQ(j.append(put_record("b")), 42u);
  // Position survives a reopen.
  Journal again(tmp.path / "j.ppwal");
  EXPECT_EQ(again.epoch(), 7u);
  EXPECT_EQ(again.last_seq(), 42u);
}

TEST(Journal, LegacyV1FileParsesAndRecoveryUpgradesIt) {
  TempDir tmp;
  // Hand-craft a v1 journal: magic + one frame of
  // u32 len | u32 crc32(payload) | payload.
  const std::string payload =
      "put model \"legacy\"\n" + to_text(tiny_model("legacy"));
  std::string bytes = "ppwal v1\n";
  put_u32le(bytes, static_cast<std::uint32_t>(payload.size()));
  put_u32le(bytes, crc32(payload.data(), payload.size()));
  bytes += payload;
  spew(tmp.path / "journal.ppwal", bytes);

  const Journal::ReadResult parsed = Journal::parse(bytes);
  EXPECT_TRUE(parsed.header_ok);
  EXPECT_EQ(parsed.version, 1);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].name, "legacy");
  EXPECT_EQ(parsed.records[0].epoch, 0u);  // v1 predates epochs
  EXPECT_EQ(parsed.records[0].seq, 1u);    // synthesized position

  // Opening the store replays the record and rotates the file up to v2.
  LibraryStore store(tmp.path);
  EXPECT_TRUE(store.load_model("legacy").has_value());
  Journal upgraded(tmp.path / "journal.ppwal");
  EXPECT_EQ(upgraded.version(), 2);
  EXPECT_GE(upgraded.epoch(), 1u);
  store.save_model(tiny_model("post_upgrade"));  // appendable again
}

/// Build a primary with `n` committed models and a follower bootstrapped
/// from its snapshot; returns the records shipped since the snapshot.
struct ReplPair {
  TempDir primary_dir;
  TempDir follower_dir;
  LibraryStore primary;
  LibraryStore follower;
  ReplPair() : primary(primary_dir.path), follower(follower_dir.path) {}

  void bootstrap() {
    follower.install_replication_snapshot(
        primary.export_replication_snapshot());
  }
  std::vector<JournalRecord> ship() {
    const ReplCursor cursor = follower.replication_cursor();
    return primary
        .read_replication_feed(cursor.epoch, cursor.seq, 64u << 20)
        .records;
  }
};

TEST(Replication, SnapshotBootstrapThenIncrementalApply) {
  ReplPair pair;
  pair.primary.save_model(tiny_model("base"));
  pair.bootstrap();
  EXPECT_TRUE(pair.follower.load_model("base").has_value());
  ASSERT_TRUE(pair.follower.replication_cursor().valid);

  pair.primary.save_model(tiny_model("after"));
  const auto records = pair.ship();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(pair.follower.apply_replicated(records[0]),
            LibraryStore::ReplApply::kApplied);
  pair.follower.flush_replication_cursor();
  EXPECT_TRUE(pair.follower.load_model("after").has_value());
  EXPECT_EQ(pair.follower.replication_cursor().seq,
            pair.primary.last_seq());
}

TEST(Replication, DuplicateFramesAreIdempotentlySkipped) {
  ReplPair pair;
  pair.bootstrap();
  pair.primary.save_model(tiny_model("m"));
  const auto records = pair.ship();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(pair.follower.apply_replicated(records[0]),
            LibraryStore::ReplApply::kApplied);
  // A retransmitted batch re-delivers the same frame: recognized by
  // position, not re-applied.
  EXPECT_EQ(pair.follower.apply_replicated(records[0]),
            LibraryStore::ReplApply::kDuplicate);
  EXPECT_EQ(pair.follower.replication_cursor().seq, records[0].seq);
}

TEST(Replication, GapRefusedAndResolvedByResync) {
  ReplPair pair;
  pair.bootstrap();
  pair.primary.save_model(tiny_model("m1"));
  pair.primary.save_model(tiny_model("m2"));
  auto records = pair.ship();
  ASSERT_EQ(records.size(), 2u);
  // Deliver the second record without the first: a hole the follower
  // must not paper over.
  EXPECT_EQ(pair.follower.apply_replicated(records[1]),
            LibraryStore::ReplApply::kGap);
  EXPECT_FALSE(pair.follower.load_model("m2").has_value());
  // The recovery protocol: drop the cursor, take a fresh snapshot.
  pair.follower.invalidate_replication_cursor();
  EXPECT_FALSE(pair.follower.replication_cursor().valid);
  pair.bootstrap();
  EXPECT_TRUE(pair.follower.load_model("m1").has_value());
  EXPECT_TRUE(pair.follower.load_model("m2").has_value());
}

TEST(Replication, EpochMismatchForcesRebootstrap) {
  ReplPair pair;
  pair.bootstrap();
  pair.primary.save_model(tiny_model("m"));
  auto records = pair.ship();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(pair.follower.apply_replicated(records[0]),
            LibraryStore::ReplApply::kApplied);
  // The primary compacts: new epoch, same seqs continue.
  pair.primary.flush();
  pair.primary.save_model(tiny_model("post_rotate"));
  const ReplCursor cursor = pair.follower.replication_cursor();
  const auto feed = pair.primary.read_replication_feed(
      cursor.epoch, cursor.seq, 64u << 20);
  EXPECT_FALSE(feed.epoch_ok);  // 409 on the wire
  // Shipping a post-rotation record anyway is refused by epoch.
  auto post = pair.primary
                  .read_replication_feed(pair.primary.epoch(),
                                         cursor.seq, 64u << 20)
                  .records;
  ASSERT_FALSE(post.empty());
  EXPECT_EQ(pair.follower.apply_replicated(post.back()),
            LibraryStore::ReplApply::kEpochMismatch);
  // Snapshot re-bootstrap converges.
  pair.bootstrap();
  EXPECT_TRUE(pair.follower.load_model("post_rotate").has_value());
  EXPECT_EQ(pair.follower.replication_cursor().epoch,
            pair.primary.epoch());
}

TEST(Replication, TornFeedPrefixAppliesRemainderRefetched) {
  ReplPair pair;
  pair.bootstrap();
  pair.primary.save_model(tiny_model("m1"));
  pair.primary.save_model(tiny_model("m2"));
  const ReplCursor cursor = pair.follower.replication_cursor();
  const auto feed = pair.primary.read_replication_feed(
      cursor.epoch, cursor.seq, 64u << 20);
  ASSERT_EQ(feed.records.size(), 2u);
  std::string wire = Journal::encode_stream(feed.epoch, cursor.seq + 1,
                                            feed.records);
  // The connection dies mid-body: the tail of the second frame is gone.
  const Journal::ReadResult torn =
      Journal::parse(wire.substr(0, wire.size() - 5));
  EXPECT_TRUE(torn.header_ok);
  EXPECT_TRUE(torn.torn);
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_EQ(pair.follower.apply_replicated(torn.records[0]),
            LibraryStore::ReplApply::kApplied);
  // Next poll re-fetches from the advanced cursor and completes.
  for (const JournalRecord& record : pair.ship()) {
    EXPECT_EQ(pair.follower.apply_replicated(record),
              LibraryStore::ReplApply::kApplied);
  }
  EXPECT_TRUE(pair.follower.load_model("m2").has_value());
}

TEST(Replication, PromoteOpensFreshEpochAboveEverything) {
  ReplPair pair;
  pair.primary.save_model(tiny_model("m"));
  pair.bootstrap();
  const std::uint64_t primary_epoch = pair.primary.epoch();
  const std::uint64_t primary_seq = pair.primary.last_seq();
  const std::uint64_t fresh = pair.follower.promote();
  EXPECT_GT(fresh, primary_epoch);
  EXPECT_FALSE(pair.follower.replication_cursor().valid);
  // The promoted store is writable and its seqs continue, never reuse.
  pair.follower.save_model(tiny_model("written_after_failover"));
  EXPECT_GT(pair.follower.last_seq(), primary_seq);
  EXPECT_TRUE(pair.follower.load_model("m").has_value());
}

// --- fsck -------------------------------------------------------------------

TEST(Fsck, CleanStoreIsClean) {
  TempDir tmp;
  {
    LibraryStore store(tmp.path);
    store.save_model(tiny_model("m"));
  }
  const FsckReport report = fsck_store(tmp.path);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.files_checked, 1u);
  EXPECT_TRUE(report.journal_present);
  EXPECT_EQ(report.journal_records, 1u);
}

TEST(Fsck, DetectsCorruptionWithoutMutating) {
  TempDir tmp;
  {
    LibraryStore store(tmp.path);
    store.save_model(tiny_model("m"));
  }
  const fs::path victim = tmp.path / "models" / "m.ppmodel";
  std::string bytes = slurp(victim);
  bytes[0] = static_cast<char>(bytes[0] ^ 1);
  spew(victim, bytes);
  // Torn journal tail too.
  const std::string journal = slurp(tmp.path / "journal.ppwal");
  spew(tmp.path / "journal.ppwal",
       journal.substr(0, journal.size() - 3));

  const FsckReport report = fsck_store(tmp.path);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.corrupt, 1u);
  EXPECT_TRUE(report.journal_torn);
  EXPECT_FALSE(report.problems.empty());
  // Read-only: the corrupt file is still at its original path and
  // nothing was quarantined.
  EXPECT_TRUE(fs::exists(victim));
  EXPECT_TRUE(files_in(tmp.path / "quarantine").empty());
}

TEST(Fsck, ReportsReplicationFramingAndContinuity) {
  TempDir tmp;
  {
    LibraryStore store(tmp.path);
    store.save_model(tiny_model("m1"));
    store.save_model(tiny_model("m2"));
  }
  const FsckReport report = fsck_store(tmp.path);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.journal_version, 2);
  EXPECT_EQ(report.journal_epoch, 1u);
  EXPECT_EQ(report.journal_base_seq, 1u);
  EXPECT_EQ(report.journal_last_seq, 2u);
  EXPECT_TRUE(report.journal_sequence_ok);
  EXPECT_FALSE(report.cursor_present);
}

TEST(Fsck, DetectsSequenceDiscontinuity) {
  TempDir tmp;
  Journal j(tmp.path / "journal.ppwal");
  j.append(put_record("a"));
  // Splice a frame whose stamp skips a position: encode a record at
  // seq 3 after a file ending at seq 1 (encode_stream emits a header
  // plus frames; keep only the frame).
  JournalRecord skipped = put_record("b");
  skipped.epoch = 1;
  skipped.seq = 3;
  const std::string encoded = Journal::encode_stream(1, 3, {skipped});
  std::string bytes = slurp(tmp.path / "journal.ppwal");
  bytes += encoded.substr(Journal::kHeaderSize);
  spew(tmp.path / "journal.ppwal", bytes);

  const FsckReport report = fsck_store(tmp.path);
  EXPECT_FALSE(report.journal_sequence_ok);
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.problems.empty());
}

TEST(Fsck, ReportsFollowerCursor) {
  TempDir primary_dir;
  TempDir follower_dir;
  {
    LibraryStore primary(primary_dir.path);
    primary.save_model(tiny_model("m"));
    LibraryStore follower(follower_dir.path);
    follower.install_replication_snapshot(
        primary.export_replication_snapshot());
  }
  const FsckReport report = fsck_store(follower_dir.path);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.cursor_present);
  EXPECT_TRUE(report.cursor_ok);
  EXPECT_EQ(report.cursor_epoch, 1u);
  EXPECT_EQ(report.cursor_seq, 1u);

  // A scribbled cursor file is corruption, not silence.
  spew(follower_dir.path / "repl.cursor", "not a cursor\n");
  const FsckReport bad = fsck_store(follower_dir.path);
  EXPECT_FALSE(bad.cursor_ok);
  EXPECT_FALSE(bad.clean());
}

}  // namespace
}  // namespace powerplay::library
