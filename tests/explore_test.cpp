// Tests for the design-space exploration engine (src/explore): the
// counter RNG and distribution syntax, percentile edge cases, Pareto
// dominance, inverse bisection, surrogate fits (differential against
// the exact compiled plan), and the web face (POST /design/explore,
// job progress fractions, healthz counters, fit persistence across a
// store reopen).
#include "explore/dist.hpp"

#include <cmath>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "explore/inverse.hpp"
#include "explore/mc.hpp"
#include "explore/pareto.hpp"
#include "explore/surrogate.hpp"
#include "model/user_model.hpp"
#include "models/berkeley_library.hpp"
#include "studies/vq.hpp"
#include "web/app.hpp"
#include "web/client.hpp"
#include "web/server.hpp"

namespace powerplay::explore {
namespace {

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = models::berkeley_library();
  return registry;
}

engine::EvalEngine& eng() {
  static engine::EvalEngine engine;
  return engine;
}

// --- distributions and the counter RNG --------------------------------------

TEST(Dist, ParsesAllThreeKinds) {
  const Distribution u = parse_distribution("uniform(1.35, 1.65)");
  EXPECT_EQ(u.kind, DistKind::kUniform);
  EXPECT_DOUBLE_EQ(u.a, 1.35);
  EXPECT_DOUBLE_EQ(u.b, 1.65);
  EXPECT_DOUBLE_EQ(u.mean(), 1.5);

  const Distribution n = parse_distribution("normal(1.5, 0.05)");
  EXPECT_EQ(n.kind, DistKind::kNormal);
  EXPECT_DOUBLE_EQ(n.mean(), 1.5);

  const Distribution c = parse_distribution("choice(1e6, 2e6, 4e6)");
  EXPECT_EQ(c.kind, DistKind::kChoice);
  EXPECT_EQ(c.choices.size(), 3u);
  EXPECT_NEAR(c.mean(), 7e6 / 3, 1e-3);
}

TEST(Dist, ConstantExpressionArguments) {
  const Distribution u = parse_distribution("uniform(1.5*0.9, 1.5*1.1)");
  EXPECT_NEAR(u.a, 1.35, 1e-12);
  EXPECT_NEAR(u.b, 1.65, 1e-12);
}

TEST(Dist, RejectsBadSyntax) {
  EXPECT_THROW(parse_distribution("uniform(2, 1)"), expr::ExprError);
  EXPECT_THROW(parse_distribution("normal(1, -0.1)"), expr::ExprError);
  EXPECT_THROW(parse_distribution("choice()"), expr::ExprError);
  EXPECT_THROW(parse_distribution("triangular(1, 2)"), expr::ExprError);
  EXPECT_THROW(parse_distribution("uniform(x, 2)"), expr::ExprError);
  EXPECT_THROW(parse_distribution("1.5"), expr::ExprError);
}

TEST(Dist, ParseDistParamsListsAllEntries) {
  const auto params =
      parse_dist_params("vdd=uniform(1.35,1.65);f=choice(1e6,2e6)");
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "vdd");
  EXPECT_EQ(params[1].name, "f");
  EXPECT_THROW(parse_dist_params(""), expr::ExprError);
  EXPECT_THROW(parse_dist_params("novalue"), expr::ExprError);
}

TEST(Dist, CounterRngIsPureAndInRange) {
  // Pure hash: same counters, same double — no hidden state.
  EXPECT_EQ(u01(7, 11, 3), u01(7, 11, 3));
  EXPECT_NE(u01(7, 11, 3), u01(7, 11, 4));
  EXPECT_NE(u01(7, 11, 3), u01(7, 12, 3));
  EXPECT_NE(u01(7, 11, 3), u01(8, 11, 3));
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = u01(1, i, 0);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Dist, SampleMatrixIsDeterministic) {
  const auto params =
      parse_dist_params("vdd=normal(1.5,0.05);f=uniform(1e6,4e6)");
  const auto a = sample_points(params, 64, 42);
  const auto b = sample_points(params, 64, 42);
  EXPECT_EQ(a, b);
  // Row i does not depend on how many rows are drawn.
  const auto longer = sample_points(params, 128, 42);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(a[i], longer[i]);
}

// --- percentiles -------------------------------------------------------------

TEST(Percentile, SingleElement) {
  const std::vector<double> one{3.5};
  EXPECT_DOUBLE_EQ(percentile(one, 0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(one, 50), 3.5);
  EXPECT_DOUBLE_EQ(percentile(one, 100), 3.5);
}

TEST(Percentile, EndpointsAndInterpolation) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 1.75);
}

TEST(Percentile, TiesCollapse) {
  const std::vector<double> v{1, 1, 1, 1, 9};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 1);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 1);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 9);
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW((void)percentile({}, 50), expr::ExprError);
  const std::vector<double> v{1, 2};
  EXPECT_THROW((void)percentile(v, -1), expr::ExprError);
  EXPECT_THROW((void)percentile(v, 101), expr::ExprError);
}

// --- Monte Carlo -------------------------------------------------------------

TEST(MonteCarlo, BitIdenticalAcrossThreadCounts) {
  // The acceptance criterion: the same seed yields byte-identical
  // samples and reductions at 1 and 8 worker threads.
  McSpec spec;
  spec.params = parse_dist_params(
      "vdd=uniform(1.35,1.65);pixel_rate=choice(1e6,2e6,4e6)");
  spec.samples = 200;
  spec.seed = 7;

  engine::EngineOptions one;
  one.executor.thread_count = 1;
  engine::EngineOptions eight;
  eight.executor.thread_count = 8;
  engine::EvalEngine e1(one);
  engine::EvalEngine e8(eight);
  const sheet::Design design = studies::make_luminance_impl2(lib());

  const McResult a = run_monte_carlo(e1, design, spec);
  const McResult b = run_monte_carlo(e8, design, spec);
  ASSERT_EQ(a.power_w.size(), b.power_w.size());
  for (std::size_t i = 0; i < a.power_w.size(); ++i) {
    EXPECT_EQ(a.power_w[i], b.power_w[i]) << "sample " << i;
    EXPECT_EQ(a.points[i], b.points[i]) << "sample " << i;
  }
  EXPECT_EQ(a.mean_w, b.mean_w);
  EXPECT_EQ(a.stddev_w, b.stddev_w);
  EXPECT_EQ(mc_csv(a), mc_csv(b));
}

TEST(MonteCarlo, BudgetExceedanceAndSummary) {
  McSpec spec;
  spec.params = parse_dist_params("vdd=uniform(1.2,1.8)");
  spec.samples = 100;
  spec.seed = 3;
  const sheet::Design design = studies::make_luminance_impl2(lib());
  McResult r = run_monte_carlo(eng(), design, spec);
  // Budget at the median: roughly half the samples exceed it.
  spec.budget_w = r.percentiles_w[5].second;  // p50
  r = run_monte_carlo(eng(), design, spec);
  EXPECT_GT(r.exceed_fraction, 0.3);
  EXPECT_LT(r.exceed_fraction, 0.7);
  EXPECT_GT(r.mean_w, 0);
  EXPECT_GT(r.stddev_w, 0);
  // Percentiles are ascending in level and value.
  for (std::size_t i = 1; i < r.percentiles_w.size(); ++i) {
    EXPECT_LE(r.percentiles_w[i - 1].second, r.percentiles_w[i].second);
  }
}

TEST(MonteCarlo, ValidatesAllUnknownParamsAtOnce) {
  McSpec spec;
  spec.params =
      parse_dist_params("nope1=uniform(0,1);vdd=uniform(1,2);"
                        "nope2=uniform(0,1)");
  spec.samples = 4;
  const sheet::Design design = studies::make_luminance_impl2(lib());
  try {
    (void)run_monte_carlo(eng(), design, spec);
    FAIL() << "expected ExprError";
  } catch (const expr::ExprError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'nope1'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'nope2'"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("'vdd'"), std::string::npos) << msg;
  }
}

// --- Pareto ------------------------------------------------------------------

TEST(Pareto, DuplicatesNeverDominateEachOther) {
  const std::vector<std::vector<double>> rows{{1, 1}, {1, 1}, {2, 2}};
  const auto f = pareto_frontier(rows, {false, false});
  EXPECT_EQ(f, (std::vector<std::size_t>{0, 1}));
}

TEST(Pareto, SingleObjective) {
  const auto f = pareto_frontier({{3}, {1}, {2}, {1}}, {false});
  EXPECT_EQ(f, (std::vector<std::size_t>{1, 3}));
  const auto g = pareto_frontier({{3}, {1}, {2}}, {true});
  EXPECT_EQ(g, (std::vector<std::size_t>{0}));
}

TEST(Pareto, DominatedChainLeavesOneSurvivor) {
  const std::vector<std::vector<double>> rows{{1, 1}, {2, 2}, {3, 3}};
  EXPECT_EQ(pareto_frontier(rows, {false, false}),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(pareto_frontier(rows, {true, true}),
            (std::vector<std::size_t>{2}));
}

TEST(Pareto, MixedDirectionsKeepTradeoffCurve) {
  // Minimize col 0, maximize col 1: {1,9} and {2,10} trade off; {2,8}
  // is dominated by {1,9}.
  const std::vector<std::vector<double>> rows{{1, 9}, {2, 10}, {2, 8}};
  EXPECT_EQ(pareto_frontier(rows, {false, true}),
            (std::vector<std::size_t>{0, 1}));
}

TEST(Pareto, ObjectiveParsingDirectionsAndErrors) {
  const std::vector<std::string> params{"pixel_rate"};
  EXPECT_FALSE(parse_objective("power", params).maximize);
  EXPECT_TRUE(parse_objective("pixel_rate", params).maximize);
  EXPECT_TRUE(parse_objective("max:power", params).maximize);
  EXPECT_FALSE(parse_objective("min:pixel_rate", params).maximize);
  EXPECT_THROW(parse_objective("bogus", params), expr::ExprError);
}

TEST(Pareto, GridRunFindsPowerRateTradeoff) {
  // Power grows with pixel_rate, so (min power, max pixel_rate) puts
  // every grid point on the frontier along the rate axis per vdd-best.
  ParetoSpec spec;
  spec.axes.push_back({"vdd", {1.2, 1.5, 1.8}});
  spec.axes.push_back({"pixel_rate", {1e6, 2e6}});
  spec.objectives = {parse_objective("power", {"vdd", "pixel_rate"}),
                     parse_objective("pixel_rate", {"vdd", "pixel_rate"})};
  const sheet::Design design = studies::make_luminance_impl2(lib());
  const ParetoResult r = run_pareto(eng(), design, spec);
  EXPECT_EQ(r.points.size(), 6u);
  ASSERT_FALSE(r.frontier.empty());
  // The cheapest point at the highest rate must be vdd=1.2, rate=2e6.
  bool found = false;
  for (const std::size_t i : r.frontier) {
    if (r.points[i][0] == 1.2 && r.points[i][1] == 2e6) found = true;
    // vdd=1.8 at a rate also served by vdd=1.2 is dominated.
    EXPECT_NE(r.points[i][0], 1.8);
  }
  EXPECT_TRUE(found);
  EXPECT_NE(pareto_csv(r).find("frontier"), std::string::npos);
  EXPECT_EQ(pareto_json(r).front(), '[');
}

// --- inverse -----------------------------------------------------------------

TEST(Inverse, FindsLargestRateUnderPowerBudget) {
  const sheet::Design design = studies::make_luminance_impl2(lib());
  // Measure power at 2 MHz, then ask for the largest rate within that
  // budget over [1, 4] MHz: the answer must come back ~2 MHz.
  const auto probe =
      eng().play_points(design, {"pixel_rate"}, {{2e6}});
  const double budget = probe.front().total.total_power().si();

  InverseSpec spec;
  spec.param = "pixel_rate";
  spec.lo = 1e6;
  spec.hi = 4e6;
  spec.metric = "power";
  spec.limit = budget;
  const InverseResult r = solve_inverse(eng(), design, spec);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.increasing);
  EXPECT_NEAR(r.param_value, 2e6, 2e6 * 1e-6);
  EXPECT_LE(r.metric_value, budget * (1 + 1e-12));
  EXPECT_LE(r.iterations, spec.max_iters);
  EXPECT_GT(r.evaluations, 0u);
}

TEST(Inverse, EndpointAndInfeasibleCases) {
  const sheet::Design design = studies::make_luminance_impl2(lib());
  InverseSpec spec;
  spec.param = "vdd";
  spec.lo = 1.2;
  spec.hi = 1.8;
  spec.limit = 1.0;  // 1 W: everything feasible
  const InverseResult top = solve_inverse(eng(), design, spec);
  EXPECT_TRUE(top.feasible);
  EXPECT_DOUBLE_EQ(top.param_value, 1.8);

  spec.limit = 1e-12;  // 1 pW: nothing feasible
  const InverseResult none = solve_inverse(eng(), design, spec);
  EXPECT_FALSE(none.feasible);

  spec.lo = 2.0;  // inverted bracket
  EXPECT_THROW((void)solve_inverse(eng(), design, spec), expr::ExprError);
}

TEST(Inverse, RejectsNonMonotoneMetric) {
  // A user model whose power is (knob-1)^2 + eps, with knob bound to a
  // design global: non-monotone over [0, 2], so the probe must refuse.
  model::UserModelDefinition def;
  def.name = "parabola";
  def.params.push_back({"knob", "", 1.0, "", -1e9, 1e9, false});
  def.power_direct = "(knob-1)*(knob-1) + 0.001";
  model::ModelRegistry registry = models::berkeley_library();
  registry.add_or_replace(std::make_shared<model::UserModel>(def));

  sheet::Design d("bowl");
  d.globals().set("vdd", 1.5);
  d.globals().set("x", 0.5);
  auto& row = d.add_row("P", registry.find_shared("parabola"));
  row.params.set_formula("knob", "x");

  InverseSpec spec;
  spec.param = "x";
  spec.lo = 0;
  spec.hi = 2;
  spec.limit = 0.5;
  try {
    (void)solve_inverse(eng(), d, spec);
    FAIL() << "expected non-monotone rejection";
  } catch (const expr::ExprError& e) {
    EXPECT_NE(std::string(e.what()).find("not monotone"),
              std::string::npos)
        << e.what();
  }
  // Restricted to a monotone half of the bowl it solves fine.
  spec.lo = 1.0;
  const InverseResult r = solve_inverse(eng(), d, spec);
  EXPECT_TRUE(r.feasible);
}

// --- surrogate ---------------------------------------------------------------

TEST(Surrogate, DifferentialAgainstExactPlan) {
  const sheet::Design design = studies::make_luminance_impl2(lib());
  FitSpec spec;
  spec.model_name = "lum2_surrogate";
  spec.params = parse_dist_params(
      "vdd=uniform(1.35,1.65);pixel_rate=uniform(1e6,4e6)");
  spec.samples = 128;
  spec.seed = 5;
  const FitResult fit = fit_surrogate(eng(), design, spec);
  EXPECT_GT(fit.diagnostics.r2, 0.99);
  EXPECT_EQ(fit.diagnostics.train_count + fit.diagnostics.holdout_count,
            spec.samples);
  ASSERT_FALSE(fit.definition.power_direct.empty());

  // The materialized UserModel (expression path) must agree with
  // surrogate_predict (the fit's own arithmetic) and with the exact
  // compiled plan within the reported holdout bound, on the holdout
  // points themselves.
  const model::UserModel as_model(fit.definition);
  const auto points = sample_points(spec.params, spec.samples, spec.seed);
  const auto plays =
      eng().play_points(design, {"vdd", "pixel_rate"}, points);
  std::size_t holdout_seen = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i % 4 != 3) continue;  // the deterministic holdout split
    ++holdout_seen;
    const double exact = plays[i].total.total_power().si();
    const double predicted = surrogate_predict(fit, points[i]);

    model::MapParamReader reader;
    reader.set("vdd", points[i][0]);
    reader.set("pixel_rate", points[i][1]);
    const double via_model =
        as_model.evaluate(reader).total_power().si();
    // Expression arithmetic vs the fit's own loop: identical up to fp
    // association noise.
    EXPECT_NEAR(via_model, predicted,
                std::abs(predicted) * 1e-9 + 1e-18);
    // And both sit within the reported max relative error of the plan.
    EXPECT_LE(std::abs(predicted - exact),
              std::abs(exact) * fit.diagnostics.max_rel_err * (1 + 1e-9) +
                  1e-30);
  }
  EXPECT_EQ(holdout_seen, fit.diagnostics.holdout_count);
  EXPECT_TRUE(is_surrogate_doc(fit.definition.documentation));
  EXPECT_EQ(fit.definition.documentation.find('\n'), std::string::npos);
}

TEST(Surrogate, LogBasisAndValidation) {
  const sheet::Design design = studies::make_luminance_impl2(lib());
  FitSpec spec;
  spec.model_name = "lum2_log";
  spec.params = parse_dist_params("pixel_rate=uniform(1e6,8e6)");
  spec.samples = 64;
  spec.basis = "log";
  const FitResult fit = fit_surrogate(eng(), design, spec);
  EXPECT_GT(fit.diagnostics.r2, 0.99);

  spec.basis = "spline";
  EXPECT_THROW((void)fit_surrogate(eng(), design, spec), expr::ExprError);
  spec.basis = "log";
  spec.params = parse_dist_params("pixel_rate=uniform(-1e6,1e6)");
  EXPECT_THROW((void)fit_surrogate(eng(), design, spec), expr::ExprError);
  spec.params = parse_dist_params("pixel_rate=uniform(1e6,8e6)");
  spec.samples = 3;  // fewer training points than basis terms
  EXPECT_THROW((void)fit_surrogate(eng(), design, spec), expr::ExprError);
}

// --- the web face ------------------------------------------------------------

namespace fs = std::filesystem;
using web::Params;
using web::Response;

struct ExploreWebFixture : ::testing::Test {
  fs::path dir;
  std::unique_ptr<web::PowerPlayApp> app;
  std::unique_ptr<web::HttpServer> server;

  void SetUp() override {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("pp_explore_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    fs::create_directories(dir);
    open();
    // A small design: one register row at the profile defaults
    // (globals vdd=1.5, f=1e6).
    (void)post("/design/add", {{"user", "dl"},
                         {"model", "register"},
                         {"design", "D"},
                         {"row", "R"},
                         {"p_bits", "8"},
                         {"p_f", "1000000"}});
  }

  void open() {
    app = std::make_unique<web::PowerPlayApp>(library::LibraryStore(dir));
    server = std::make_unique<web::HttpServer>(
        0, [this](const web::Request& r) { return app->handle(r); });
    server->start();
  }

  void reopen() {
    server->stop();
    app->shutdown();
    server.reset();
    app.reset();
    open();
  }

  void TearDown() override {
    server->stop();
    server.reset();
    app.reset();
    fs::remove_all(dir);
  }

  [[nodiscard]] Response get(const std::string& target) const {
    return web::http_get(server->port(), target);
  }
  [[nodiscard]] Response post(const std::string& path,
                              const Params& form) const {
    return web::http_post_form(server->port(), path, form);
  }

  /// Submit an explore job and poll it to completion; returns the
  /// final /job body.
  std::string run_job(const Params& form) {
    const Response submit = post("/design/explore", form);
    EXPECT_EQ(submit.status, 200) << submit.body;
    const std::string id =
        submit.body.substr(4, submit.body.find('\n') - 4);
    for (int i = 0; i < 500; ++i) {
      const Response poll = get("/job?id=" + id);
      if (poll.body.find("status: done") != std::string::npos ||
          poll.body.find("status: failed") != std::string::npos ||
          poll.body.find("status: cancelled") != std::string::npos) {
        return poll.body;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "job " << id << " never finished";
    return {};
  }

  [[nodiscard]] std::string job_id(const std::string& body) const {
    const auto pos = body.find("id: ");
    return body.substr(pos + 4, body.find('\n', pos) - pos - 4);
  }
};

TEST_F(ExploreWebFixture, MonteCarloJobWithProgressAndJson) {
  const std::string body = run_job({{"user", "dl"},
                                    {"name", "D"},
                                    {"mode", "mc"},
                                    {"params", "vdd=uniform(1.35,1.65)"},
                                    {"samples", "64"},
                                    {"seed", "9"}});
  EXPECT_NE(body.find("status: done"), std::string::npos) << body;
  EXPECT_NE(body.find("progress: 64/64"), std::string::npos) << body;
  EXPECT_NE(body.find("progress_fraction: 1.000"), std::string::npos)
      << body;
  EXPECT_NE(body.find("p50"), std::string::npos) << body;

  const std::string id = job_id(body);
  const Response csv = get("/job?id=" + id + "&format=csv");
  EXPECT_EQ(csv.body.rfind("vdd,total_power_w,energy_per_op_j\n", 0), 0u)
      << csv.body;
  const Response json = get("/job?id=" + id + "&format=json");
  EXPECT_NE(json.headers.at("content-type").find("application/json"),
            std::string::npos);
  EXPECT_NE(json.body.find("\"progress\":1.000"), std::string::npos)
      << json.body;
  EXPECT_NE(json.body.find("\"mean_w\":"), std::string::npos) << json.body;

  const Response jobs = get("/jobs?user=dl");
  EXPECT_NE(jobs.body.find(" 1.000 explore mc D"), std::string::npos)
      << jobs.body;
  const Response jobs_json = get("/jobs?user=dl&format=json");
  EXPECT_EQ(jobs_json.body.front(), '[');
  EXPECT_NE(jobs_json.body.find("\"done\":64"), std::string::npos)
      << jobs_json.body;

  const Response health = get("/healthz");
  EXPECT_NE(health.body.find("explore_jobs_total: 1"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("mc_points_total: 64"), std::string::npos)
      << health.body;
}

TEST_F(ExploreWebFixture, ValidationNamesEveryUnknownParam) {
  const Response r = post("/design/explore",
                          {{"user", "dl"},
                           {"name", "D"},
                           {"mode", "mc"},
                           {"params",
                            "oops1=uniform(0,1);oops2=uniform(0,1)"}});
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("'oops1'"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("'oops2'"), std::string::npos) << r.body;

  EXPECT_EQ(post("/design/explore", {{"user", "dl"},
                                     {"name", "D"},
                                     {"mode", "teleport"}})
                .status,
            400);
  EXPECT_EQ(post("/design/explore", {{"user", "dl"},
                                     {"name", "NoSuch"},
                                     {"mode", "mc"},
                                     {"params", "vdd=uniform(1,2)"}})
                .status,
            404);
}

TEST_F(ExploreWebFixture, ParetoAndInverseJobs) {
  const std::string pareto = run_job({{"user", "dl"},
                                      {"name", "D"},
                                      {"mode", "pareto"},
                                      {"axes", "vdd=1.2:1.8:3;f=1e6:2e6:2"},
                                      {"objectives", "power,max:f"}});
  EXPECT_NE(pareto.find("status: done"), std::string::npos) << pareto;
  EXPECT_NE(pareto.find("pareto frontier"), std::string::npos) << pareto;
  const Response pjson = get("/job?id=" + job_id(pareto) + "&format=json");
  EXPECT_NE(pjson.body.find("\"result\":["), std::string::npos)
      << pjson.body;

  const std::string inverse = run_job({{"user", "dl"},
                                       {"name", "D"},
                                       {"mode", "inverse"},
                                       {"param", "vdd"},
                                       {"lo", "1.2"},
                                       {"hi", "1.8"},
                                       {"metric", "power"},
                                       {"limit", "1"}});
  EXPECT_NE(inverse.find("status: done"), std::string::npos) << inverse;
  EXPECT_NE(inverse.find("inverse query"), std::string::npos) << inverse;
  EXPECT_NE(inverse.find("vdd\t1.8"), std::string::npos) << inverse;
}

TEST_F(ExploreWebFixture, FitPersistsAcrossReopenAndServesPredictions) {
  const std::string body = run_job({{"user", "dl"},
                                    {"name", "D"},
                                    {"mode", "fit"},
                                    {"model", "d_power"},
                                    {"params", "vdd=uniform(1.2,1.8)"},
                                    {"samples", "64"},
                                    {"basis", "poly2"}});
  EXPECT_NE(body.find("status: done"), std::string::npos) << body;
  EXPECT_NE(body.find("r2"), std::string::npos) << body;

  // The fitted model serves over HTTP like any library model, with its
  // diagnostics in the documentation line.
  const Response doc = get("/doc?user=dl&name=d_power");
  EXPECT_EQ(doc.status, 200);
  EXPECT_NE(doc.body.find("[surrogate]"), std::string::npos) << doc.body;
  EXPECT_NE(doc.body.find("r2="), std::string::npos) << doc.body;
  const Response predict = get("/model?user=dl&name=d_power&p_vdd=1.5");
  EXPECT_EQ(predict.status, 200);
  EXPECT_NE(predict.body.find("Result"), std::string::npos) << predict.body;

  const Response h1 = get("/healthz");
  EXPECT_NE(h1.body.find("surrogate_fits_total: 1"), std::string::npos)
      << h1.body;
  EXPECT_NE(h1.body.find("surrogate_hits_total:"), std::string::npos)
      << h1.body;

  // Journal-backed persistence: a fresh app over the same store still
  // has the surrogate.
  reopen();
  const Response again = get("/doc?user=dl&name=d_power");
  EXPECT_EQ(again.status, 200);
  EXPECT_NE(again.body.find("[surrogate]"), std::string::npos)
      << again.body;
  const Response api = get("/api/model?name=d_power");
  EXPECT_EQ(api.status, 200);
}

}  // namespace
}  // namespace powerplay::explore
