// Tests for the EQ 1 model template, parameter plumbing, registry and
// user-defined equation models.
#include "model/estimate.hpp"
#include "model/param.hpp"
#include "model/registry.hpp"
#include "model/user_model.hpp"

#include <gtest/gtest.h>

namespace powerplay::model {
namespace {

using namespace units;
using namespace units::literals;

TEST(Estimate, FullSwingTermIsCV2) {
  // EQ 1 with one rail-to-rail term: P = C * VDD^2 * f.
  const OperatingPoint op{Voltage{2.0}, Frequency{1e6}};
  const Estimate e = make_estimate({CapTerm{"x", 100.0_pF}}, {}, op);
  EXPECT_DOUBLE_EQ(e.energy_per_op.si(), 100e-12 * 4.0);
  EXPECT_DOUBLE_EQ(e.dynamic_power.si(), 100e-12 * 4.0 * 1e6);
  EXPECT_DOUBLE_EQ(e.static_power.si(), 0.0);
  EXPECT_DOUBLE_EQ(e.switched_capacitance.si(), 100e-12);
}

TEST(Estimate, PartialSwingTermIsCVswingVdd) {
  // EQ 8: reduced-swing nodes dissipate C * Vswing * VDD per op.
  const OperatingPoint op{Voltage{2.0}, Frequency{1e6}};
  const Estimate e = make_estimate(
      {CapTerm{"bitlines", 100.0_pF, Voltage{0.5}, /*full_swing=*/false}},
      {}, op);
  EXPECT_DOUBLE_EQ(e.energy_per_op.si(), 100e-12 * 0.5 * 2.0);
  // Effective full-swing-equivalent capacitance is scaled by Vswing/VDD.
  EXPECT_DOUBLE_EQ(e.switched_capacitance.si(), 100e-12 * 0.25);
}

TEST(Estimate, StaticTermIsIV) {
  const OperatingPoint op{Voltage{3.0}, Frequency{0}};
  const Estimate e = make_estimate({}, {StaticTerm{"bias", 2.0_mA}}, op);
  EXPECT_DOUBLE_EQ(e.static_power.si(), 6e-3);
  EXPECT_DOUBLE_EQ(e.dynamic_power.si(), 0.0);
  EXPECT_DOUBLE_EQ(e.total_power().si(), 6e-3);
}

TEST(Estimate, MixedTermsSum) {
  const OperatingPoint op{Voltage{1.5}, Frequency{2e6}};
  const Estimate e = make_estimate(
      {CapTerm{"logic", 10.0_pF},
       CapTerm{"bl", 20.0_pF, Voltage{0.3}, false}},
      {StaticTerm{"leak", 1e-6_A}}, op);
  const double dyn = (10e-12 * 1.5 * 1.5 + 20e-12 * 0.3 * 1.5) * 2e6;
  EXPECT_NEAR(e.dynamic_power.si(), dyn, 1e-18);
  EXPECT_DOUBLE_EQ(e.static_power.si(), 1.5e-6);
  EXPECT_EQ(e.cap_terms.size(), 2u);
  EXPECT_EQ(e.static_terms.size(), 1u);
}

TEST(Estimate, ZeroFrequencyMeansEnergyOnlyQuery) {
  const OperatingPoint op{Voltage{1.5}, Frequency{0}};
  const Estimate e = make_estimate({CapTerm{"x", 1.0_pF}}, {}, op);
  EXPECT_GT(e.energy_per_op.si(), 0.0);
  EXPECT_DOUBLE_EQ(e.dynamic_power.si(), 0.0);
}

TEST(Estimate, NegativeOperatingPointRejected) {
  EXPECT_THROW(
      make_estimate({}, {}, OperatingPoint{Voltage{-1}, Frequency{0}}),
      expr::ExprError);
  EXPECT_THROW(
      make_estimate({}, {}, OperatingPoint{Voltage{1}, Frequency{-5}}),
      expr::ExprError);
}

TEST(Estimate, CombineSumsPowersAndAreasMaxesDelay) {
  const OperatingPoint op{Voltage{1.0}, Frequency{1e6}};
  Estimate a = make_estimate({CapTerm{"a", 1.0_pF}}, {}, op,
                             Area{1e-6}, Time{5e-9});
  Estimate b = make_estimate({CapTerm{"b", 2.0_pF}}, {}, op,
                             Area{2e-6}, Time{9e-9});
  const Estimate c = combine({a, b});
  EXPECT_DOUBLE_EQ(c.dynamic_power.si(),
                   a.dynamic_power.si() + b.dynamic_power.si());
  EXPECT_DOUBLE_EQ(c.area.si(), 3e-6);
  EXPECT_DOUBLE_EQ(c.delay.si(), 9e-9);
  EXPECT_EQ(c.cap_terms.size(), 2u);
}

// --- ParamSpec / readers -----------------------------------------------------

TEST(ParamSpec, ValidateRange) {
  ParamSpec s{"bitwidth", "", 16, "bits", 1, 64, true};
  EXPECT_NO_THROW(s.validate(16));
  EXPECT_THROW(s.validate(0), expr::ExprError);
  EXPECT_THROW(s.validate(65), expr::ExprError);
  EXPECT_THROW(s.validate(2.5), expr::ExprError);  // integer constraint
  EXPECT_THROW(s.validate(std::nan("")), expr::ExprError);
}

TEST(MapParamReader, GetAndFallback) {
  MapParamReader r({{"a", 1.0}});
  EXPECT_DOUBLE_EQ(r.get("a"), 1.0);
  EXPECT_THROW((void)r.get("b"), expr::ExprError);
  EXPECT_DOUBLE_EQ(r.get_or("b", 7.0), 7.0);
  r.set("a", 2.0);
  r.set("b", 3.0);
  EXPECT_DOUBLE_EQ(r.get("a"), 2.0);
  EXPECT_DOUBLE_EQ(r.get("b"), 3.0);
}

TEST(ScopeParamReader, ScopeBeatsDefaultBeatsFallback) {
  const std::vector<ParamSpec> specs = {
      {"bitwidth", "", 16, "bits", 1, 64, true}};
  const expr::FunctionTable fns = expr::FunctionTable::with_builtins();
  expr::Scope scope;
  ScopeParamReader r(scope, fns, &specs);
  EXPECT_DOUBLE_EQ(r.get("bitwidth"), 16.0);       // spec default
  scope.set("bitwidth", 8.0);
  EXPECT_DOUBLE_EQ(r.get("bitwidth"), 8.0);        // scope wins
  EXPECT_DOUBLE_EQ(r.get_or("other", 3.0), 3.0);   // fallback
  EXPECT_THROW((void)r.get("other"), expr::ExprError);
}

TEST(ScopeParamReader, FormulasEvaluateOnRead) {
  const expr::FunctionTable fns = expr::FunctionTable::with_builtins();
  expr::Scope parent;
  parent.set("pixel_rate", 2e6);
  expr::Scope scope(&parent);
  scope.set_formula("f", "pixel_rate / 16");
  ScopeParamReader r(scope, fns, nullptr);
  EXPECT_DOUBLE_EQ(r.get("f"), 125e3);
}

TEST(ScopeParamReader, ValidationAppliesToScopeValues) {
  const std::vector<ParamSpec> specs = {
      {"bitwidth", "", 16, "bits", 1, 64, true}};
  const expr::FunctionTable fns = expr::FunctionTable::with_builtins();
  expr::Scope scope;
  scope.set("bitwidth", 1000.0);
  ScopeParamReader r(scope, fns, &specs);
  EXPECT_THROW((void)r.get("bitwidth"), expr::ExprError);
}

// --- Registry ----------------------------------------------------------------

UserModelDefinition tiny_model(const std::string& name) {
  UserModelDefinition def;
  def.name = name;
  def.category = Category::kComputation;
  def.params = {{"k", "scale", 1.0, "", 0, 100, false}};
  def.c_fullswing = "k * 1e-12";
  return def;
}

TEST(Registry, AddFindAtNames) {
  ModelRegistry r;
  r.add(std::make_shared<UserModel>(tiny_model("m1")));
  r.add(std::make_shared<UserModel>(tiny_model("m2")));
  EXPECT_TRUE(r.contains("m1"));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_NE(r.find("m2"), nullptr);
  EXPECT_EQ(r.find("zzz"), nullptr);
  EXPECT_THROW((void)r.at("zzz"), expr::ExprError);
  EXPECT_EQ(r.names(), (std::vector<std::string>{"m1", "m2"}));
  EXPECT_EQ(r.by_category(Category::kComputation).size(), 2u);
  EXPECT_TRUE(r.by_category(Category::kAnalog).empty());
}

TEST(Registry, DuplicateAddThrowsButReplaceWorks) {
  ModelRegistry r;
  r.add(std::make_shared<UserModel>(tiny_model("m")));
  EXPECT_THROW(r.add(std::make_shared<UserModel>(tiny_model("m"))),
               expr::ExprError);
  EXPECT_NO_THROW(
      r.add_or_replace(std::make_shared<UserModel>(tiny_model("m"))));
}

// --- UserModel ----------------------------------------------------------------

TEST(UserModel, EvaluatesFullSwingEquation) {
  UserModelDefinition def;
  def.name = "quad";
  def.params = {{"bitwidth", "", 8, "bits", 1, 64, true}};
  def.c_fullswing = "bitwidth * 33e-15";
  UserModel m(std::move(def));
  MapParamReader p({{"bitwidth", 16.0}, {"vdd", 1.5}, {"f", 1e6}});
  const Estimate e = m.evaluate(p);
  EXPECT_NEAR(e.energy_per_op.si(), 16 * 33e-15 * 2.25, 1e-20);
  EXPECT_NEAR(e.dynamic_power.si(), 16 * 33e-15 * 2.25 * 1e6, 1e-15);
}

TEST(UserModel, DefaultsApplyWhenUnbound) {
  UserModelDefinition def;
  def.name = "dflt";
  def.params = {{"k", "", 4.0, "", 0, 100, false}};
  def.c_fullswing = "k * 1e-12";
  UserModel m(std::move(def));
  MapParamReader p({{"vdd", 1.0}, {"f", 1.0}});
  EXPECT_DOUBLE_EQ(m.evaluate(p).energy_per_op.si(), 4e-12);
}

TEST(UserModel, PartialSwingAndStaticAndDirectPower) {
  UserModelDefinition def;
  def.name = "mixed";
  def.c_partialswing = "10e-12";
  def.v_swing = "0.4";
  def.static_current = "1e-3";
  def.power_direct = "0.5";
  UserModel m(std::move(def));
  MapParamReader p({{"vdd", 2.0}, {"f", 1e6}});
  const Estimate e = m.evaluate(p);
  EXPECT_NEAR(e.dynamic_power.si(), 10e-12 * 0.4 * 2.0 * 1e6, 1e-15);
  // Static: I*V + direct power.
  EXPECT_NEAR(e.static_power.si(), 1e-3 * 2.0 + 0.5, 1e-12);
}

TEST(UserModel, ValidationErrors) {
  UserModelDefinition bad = tiny_model("bad");
  bad.c_fullswing = "k * * 2";
  EXPECT_THROW(UserModel{bad}, expr::ExprError);  // syntax

  bad = tiny_model("bad2");
  bad.c_fullswing = "undeclared * 2";
  EXPECT_THROW(UserModel{bad}, expr::ExprError);  // undeclared parameter

  bad = tiny_model("bad3");
  bad.c_fullswing = "rowpower(\"x\")";
  EXPECT_THROW(UserModel{bad}, expr::ExprError);  // unknown function

  bad = tiny_model("bad4");
  bad.c_fullswing = "";
  EXPECT_THROW(UserModel{bad}, expr::ExprError);  // no terms at all

  bad = tiny_model("bad5");
  bad.c_fullswing = "";
  bad.c_partialswing = "1e-12";                    // missing v_swing
  EXPECT_THROW(UserModel{bad}, expr::ExprError);

  bad = tiny_model("");
  EXPECT_THROW(UserModel{bad}, expr::ExprError);   // empty name
}

TEST(UserModel, VddAndFAreImplicitlyAvailable) {
  UserModelDefinition def;
  def.name = "vdd_aware";
  def.c_fullswing = "vdd * 1e-12";  // capacitance growing with vdd (silly
                                    // but legal: any combination allowed)
  UserModel m(std::move(def));
  MapParamReader p({{"vdd", 2.0}, {"f", 1.0}});
  EXPECT_DOUBLE_EQ(m.evaluate(p).energy_per_op.si(), 2e-12 * 4.0);
}

TEST(UserModel, AreaAndDelayExpressions) {
  UserModelDefinition def;
  def.name = "geom";
  def.params = {{"n", "", 10, "", 0, 1e6, false}};
  def.c_fullswing = "1e-15";
  def.area = "n * 1e-9";
  def.delay = "n * 1e-9 / 10";
  UserModel m(std::move(def));
  MapParamReader p({{"vdd", 1.0}, {"f", 0.0}, {"n", 50.0}});
  const Estimate e = m.evaluate(p);
  EXPECT_DOUBLE_EQ(e.area.si(), 50e-9);
  EXPECT_DOUBLE_EQ(e.delay.si(), 5e-9);
}

TEST(ModelMetadata, CategoryNamesRoundTrip) {
  EXPECT_EQ(to_string(Category::kComputation), "computation");
  EXPECT_EQ(to_string(Category::kConverter), "converter");
  EXPECT_EQ(to_string(Category::kMacro), "macro");
}

TEST(ModelMetadata, FindParam) {
  UserModel m(tiny_model("meta"));
  EXPECT_NE(m.find_param("k"), nullptr);
  EXPECT_EQ(m.find_param("zz"), nullptr);
}

}  // namespace
}  // namespace powerplay::model
