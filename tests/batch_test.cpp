// Differential tests of the lane-batched columnar evaluation paths
// (sheet/batch.hpp, the engine's sweep_grid_columnar and
// play_points_columnar) against the scalar compiled-plan paths: grids
// and point sets must come back bit-identical, lane-divergent
// conditionals must replay without changing a bit, intermodel plans
// must fall back to the per-point scalar fixed point, degenerate
// batches must skip the lane machinery, and the batched substrate must
// stay byte-deterministic across thread counts (the web_tsan target
// runs this file under ThreadSanitizer).
#include "sheet/batch.hpp"

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "explore/dist.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/sweep.hpp"
#include "studies/vq.hpp"

namespace powerplay::engine {
namespace {

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = models::berkeley_library();
  return registry;
}

// Conditional + custom-function formulas over two swept globals: the
// ternaries lower to kJumpIfZero, so blocks whose lanes straddle the
// thresholds exercise the lane-replay path.
sheet::Design branchy_design() {
  sheet::Design d("branchy");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  d.add_function("boost",
                 [](const std::vector<expr::Value>& args) {
                   return std::get<double>(args.at(0)) * 1.25;
                 });
  auto& reg = d.add_row("reg", lib().find_shared("register"));
  reg.params.set_formula("bits", "vdd < 1.5 ? 8 : 16");
  auto& add = d.add_row("add", lib().find_shared("ripple_adder"));
  add.params.set_formula("bitwidth", "f > 2e6 ? boost(16) : 16");
  return d;
}

// Intermodel fixed point (converter fed by rowpower) with the load
// riding on a swept global, so every columnar point must take the
// scalar fallback.
sheet::Design converter_design() {
  sheet::Design d("conv");
  d.globals().set("vdd", 6.0);
  d.globals().set("p_base", 1.0);
  auto& load = d.add_row("Load", lib().find_shared("datasheet_component"));
  load.params.set_formula("p_typical", "p_base");
  auto& conv = d.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set("efficiency", 0.8);
  conv.params.set_formula("p_load", "rowpower(\"Load\")");
  return d;
}

void expect_columns_match_plays(const sheet::PointColumns& cols,
                                const std::vector<sheet::PlayResult>& plays) {
  ASSERT_EQ(cols.size(), plays.size());
  for (std::size_t i = 0; i < plays.size(); ++i) {
    EXPECT_EQ(cols.power_w[i], plays[i].total.total_power().si()) << i;
    EXPECT_EQ(cols.energy_j[i], plays[i].total.energy_per_op.si()) << i;
    EXPECT_EQ(cols.area_m2[i], plays[i].total.area.si()) << i;
    EXPECT_EQ(cols.delay_s[i], plays[i].total.delay.si()) << i;
  }
}

// --- grids -------------------------------------------------------------------

TEST(BatchGrid, ColumnarGridBitIdenticalToScalarSweep) {
  EvalEngine engine;
  const sheet::Design d = studies::make_luminance_impl2(lib());
  const auto vdds = sheet::linspace(1.0, 3.0, 16);
  const auto rates = sheet::linspace(1e6, 4e6, 16);

  const sheet::GridSweep scalar =
      engine.sweep_grid(d, "vdd", vdds, "pixel_rate", rates);
  const sheet::ColumnarGrid batched =
      engine.sweep_grid_columnar(d, "vdd", vdds, "pixel_rate", rates);

  ASSERT_EQ(batched.cols.size(), vdds.size() * rates.size());
  for (std::size_t i = 0; i < vdds.size(); ++i) {
    for (std::size_t j = 0; j < rates.size(); ++j) {
      const std::size_t k = i * rates.size() + j;
      const sheet::PlayResult& r = scalar.results[i][j];
      EXPECT_EQ(batched.cols.power_w[k], r.total.total_power().si());
      EXPECT_EQ(batched.cols.energy_j[k], r.total.energy_per_op.si());
      EXPECT_EQ(batched.cols.area_m2[k], r.total.area.si());
      EXPECT_EQ(batched.cols.delay_s[k], r.total.delay.si());
    }
  }

  // Given bit-identical values the columnar renderers emit the same
  // bytes as the PlayResult-based ones.
  EXPECT_EQ(sheet::grid_table(batched), sheet::grid_table(scalar));
  EXPECT_EQ(sheet::grid_csv(batched), sheet::grid_csv(scalar));
  EXPECT_FALSE(sheet::grid_json(batched).empty());

  const BatchCounters c = engine.batch_counters();
  EXPECT_EQ(c.points, vdds.size() * rates.size());
  EXPECT_GT(c.blocks, 0u);
  EXPECT_EQ(c.scalar_fallback_points, 0u);
  // The luminance rows are all operating-point-only models with
  // lane-invariant structural parameters, so the dense sweep must run
  // on the captured-terms fast path (the bench's >= 5x depends on it).
  EXPECT_GT(c.term_capture_rows, 0u);
}

TEST(BatchGrid, ValidationMatchesScalarSweep) {
  EvalEngine engine;
  const sheet::Design d = studies::make_luminance_impl2(lib());
  const auto values = sheet::linspace(1.0, 2.0, 4);
  EXPECT_THROW(
      (void)engine.sweep_grid_columnar(d, "vdd", values, "vdd", values),
      expr::ExprError);
  EXPECT_THROW(
      (void)engine.sweep_grid_columnar(d, "vdd", values, "nope", values),
      expr::ExprError);
}

// --- point batches -----------------------------------------------------------

TEST(BatchPoints, ColumnarMatchesPlayPointsOnBranchyFormulas) {
  EvalEngine engine;
  const sheet::Design d = branchy_design();
  std::vector<std::vector<double>> points;
  for (double vdd = 1.0; vdd <= 2.0; vdd += 0.04) {
    for (double f = 5e5; f <= 4e6; f += 2.5e5) {
      points.push_back({vdd, f});
    }
  }
  const auto plays = engine.play_points(d, {"vdd", "f"}, points);
  const auto cols = engine.play_points_columnar(d, {"vdd", "f"}, points);
  expect_columns_match_plays(cols, plays);
}

TEST(BatchPoints, DifferentialFuzzTenThousandRandomPoints) {
  // >= 10k counter-RNG points across both branch thresholds; every
  // point must come back bit-equal to the scalar compiled plan.
  EvalEngine engine;
  const sheet::Design d = branchy_design();
  const auto dists =
      explore::parse_dist_params("vdd=uniform(1.0,2.0);f=uniform(5e5,4e6)");
  const auto points = explore::sample_points(dists, 10240, 99);
  const auto plays = engine.play_points(d, {"vdd", "f"}, points);
  const auto cols = engine.play_points_columnar(d, {"vdd", "f"}, points);
  expect_columns_match_plays(cols, plays);
}

TEST(BatchPoints, LaneDivergentConditionalReplaysWithoutDrift) {
  // One 64-lane block whose lanes straddle the `vdd < 1.5` threshold:
  // the batch interpreter must detect the divergent branch, replay
  // lane-by-lane, and still reproduce the scalar doubles.
  EvalEngine engine;
  const sheet::Design d = branchy_design();
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < 64; ++i) {
    points.push_back({i % 2 == 0 ? 1.2 : 1.8, 1e6});
  }
  const auto plays = engine.play_points(d, {"vdd", "f"}, points);
  const auto cols = engine.play_points_columnar(d, {"vdd", "f"}, points);
  expect_columns_match_plays(cols, plays);
  const BatchCounters c = engine.batch_counters();
  EXPECT_GT(c.lane_replays, 0u);
  EXPECT_EQ(c.scalar_fallback_points, 0u);
}

TEST(BatchPoints, IntermodelPlansFallBackToScalarFixedPoint) {
  // The converter design needs the per-point fixed point (rowpower):
  // the columnar call must answer bit-identically via the scalar
  // fallback and count every point as a fallback.
  EvalEngine engine;
  const sheet::Design d = converter_design();
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < 100; ++i) {
    points.push_back({5.0 + 0.02 * static_cast<double>(i),
                      0.5 + 0.01 * static_cast<double>(i)});
  }
  const auto plays = engine.play_points(d, {"vdd", "p_base"}, points);
  const auto cols = engine.play_points_columnar(d, {"vdd", "p_base"}, points);
  expect_columns_match_plays(cols, plays);
  const BatchCounters c = engine.batch_counters();
  EXPECT_EQ(c.scalar_fallback_points, points.size());
  EXPECT_EQ(c.blocks, 0u);
}

TEST(BatchPoints, ErrorsMatchTheScalarPath) {
  // A block where some lanes divide by zero: the batch path degrades
  // the block to the scalar loop, so the error that escapes is exactly
  // the scalar sweep's (message included).
  EvalEngine engine;
  sheet::Design d("divzero");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  d.globals().set("denom", 1.0);
  d.add_row("reg", lib().find_shared("register"))
      .params.set_formula("bits", "16 / denom");
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < 64; ++i) {
    points.push_back({static_cast<double>(i % 4)});
  }
  std::string scalar_error;
  try {
    (void)engine.play_points(d, {"denom"}, points);
  } catch (const expr::ExprError& e) {
    scalar_error = e.what();
  }
  ASSERT_FALSE(scalar_error.empty());
  std::string batch_error;
  try {
    (void)engine.play_points_columnar(d, {"denom"}, points);
  } catch (const expr::ExprError& e) {
    batch_error = e.what();
  }
  EXPECT_EQ(batch_error, scalar_error);
}

// --- degenerate batches ------------------------------------------------------

TEST(BatchPoints, EmptyAndSinglePointBatchesTakeTheScalarPath) {
  EvalEngine engine;
  const sheet::Design d = branchy_design();

  const auto empty = engine.play_points_columnar(d, {"vdd", "f"}, {});
  EXPECT_EQ(empty.size(), 0u);

  const std::vector<std::vector<double>> one{{1.4, 2e6}};
  const auto plays = engine.play_points(d, {"vdd", "f"}, one);
  const auto cols = engine.play_points_columnar(d, {"vdd", "f"}, one);
  expect_columns_match_plays(cols, plays);

  // A 1x1 grid is a single point too.
  const sheet::ColumnarGrid grid =
      engine.sweep_grid_columnar(d, "vdd", {1.5}, "f", {1e6});
  ASSERT_EQ(grid.cols.size(), 1u);
  const sheet::GridSweep scalar =
      engine.sweep_grid(d, "vdd", {1.5}, "f", {1e6});
  EXPECT_EQ(grid.cols.power_w[0],
            scalar.results[0][0].total.total_power().si());

  // Degenerate batches never ran a lane block; they are all fallbacks.
  const BatchCounters c = engine.batch_counters();
  EXPECT_EQ(c.blocks, 0u);
  EXPECT_EQ(c.points, 2u);
  EXPECT_EQ(c.scalar_fallback_points, 2u);
}

TEST(BatchGrid, EmptyAxesProduceEmptyColumns) {
  EvalEngine engine;
  const sheet::Design d = branchy_design();
  const sheet::ColumnarGrid grid =
      engine.sweep_grid_columnar(d, "vdd", {}, "f", {1e6, 2e6});
  EXPECT_EQ(grid.cols.size(), 0u);
  EXPECT_EQ(sheet::grid_csv(grid), "vdd,f,total_power_w,energy_per_op_j\n");
}

// --- progress at batch granularity ------------------------------------------

TEST(BatchGrid, ProgressReportsOncePerLaneBlock) {
  EvalEngine engine;
  const sheet::Design d = studies::make_luminance_impl2(lib());
  const auto vdds = sheet::linspace(1.0, 3.0, 16);
  const auto rates = sheet::linspace(1e6, 4e6, 16);
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> reported{0};
  (void)engine.sweep_grid_columnar(
      d, "vdd", vdds, "pixel_rate", rates,
      [&](std::size_t done, std::size_t total) {
        calls.fetch_add(1);
        EXPECT_EQ(total, vdds.size() * rates.size());
        if (done == total) reported.fetch_add(1);
      });
  const std::size_t total = vdds.size() * rates.size();
  const std::size_t blocks =
      (total + sheet::BatchPlanInstance::kLaneWidth - 1) /
      sheet::BatchPlanInstance::kLaneWidth;
  EXPECT_EQ(calls.load(), blocks);
  EXPECT_EQ(reported.load(), 1u);
}

// --- thread-count determinism ------------------------------------------------

TEST(BatchPoints, BatchedPointsBitIdenticalAcrossThreadCounts) {
  // Lane blocks partition by point index, never by worker, so the
  // batched Monte Carlo substrate returns the same bytes at 1 and 8
  // threads.
  EngineOptions one;
  one.executor.thread_count = 1;
  EngineOptions eight;
  eight.executor.thread_count = 8;
  EvalEngine e1(one);
  EvalEngine e8(eight);
  const sheet::Design d = branchy_design();
  const auto dists =
      explore::parse_dist_params("vdd=uniform(1.0,2.0);f=choice(1e6,2e6,4e6)");
  const auto points = explore::sample_points(dists, 1000, 11);
  const auto a = e1.play_points_columnar(d, {"vdd", "f"}, points);
  const auto b = e8.play_points_columnar(d, {"vdd", "f"}, points);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.power_w[i], b.power_w[i]) << i;
    EXPECT_EQ(a.energy_j[i], b.energy_j[i]) << i;
    EXPECT_EQ(a.area_m2[i], b.area_m2[i]) << i;
    EXPECT_EQ(a.delay_s[i], b.delay_s[i]) << i;
  }
}

}  // namespace
}  // namespace powerplay::engine
