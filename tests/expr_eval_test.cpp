#include "expr/eval.hpp"

#include <gtest/gtest.h>

#include "expr/parser.hpp"

namespace powerplay::expr {
namespace {

const FunctionTable& fns() {
  static const FunctionTable table = FunctionTable::with_builtins();
  return table;
}

TEST(Scope, LiteralLookup) {
  Scope s;
  s.set("x", 42.0);
  EXPECT_DOUBLE_EQ(evaluate_source("x", s, fns()), 42.0);
}

TEST(Scope, UnboundVariableThrowsWithName) {
  Scope s;
  try {
    evaluate_source("nope + 1", s, fns());
    FAIL();
  } catch (const ExprError& e) {
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
  }
}

TEST(Scope, ChildShadowsParent) {
  Scope parent;
  parent.set("vdd", 1.5);
  Scope child(&parent);
  EXPECT_DOUBLE_EQ(evaluate_source("vdd", child, fns()), 1.5);
  child.set("vdd", 1.1);
  EXPECT_DOUBLE_EQ(evaluate_source("vdd", child, fns()), 1.1);
  EXPECT_DOUBLE_EQ(evaluate_source("vdd", parent, fns()), 1.5);
}

TEST(Scope, InheritanceAcrossThreeLevels) {
  Scope design;
  design.set("pixel_rate", 2e6);
  Scope macro(&design);
  Scope row(&macro);
  EXPECT_DOUBLE_EQ(evaluate_source("pixel_rate / 16", row, fns()), 125e3);
}

TEST(Scope, FormulaEvaluatesInOwnerScope) {
  Scope design;
  design.set("pixel_rate", 2e6);
  design.set_formula("read_rate", "pixel_rate / 16");
  Scope row(&design);
  // Lookup from the row finds the design's formula; the formula resolves
  // pixel_rate through the design chain.
  EXPECT_DOUBLE_EQ(evaluate_source("read_rate", row, fns()), 125e3);
}

TEST(Scope, FormulaSeesOverridesBelowOwner) {
  // A formula bound at the macro level must see the macro's own
  // parameters, not climb past them.
  Scope design;
  design.set("n", 100.0);
  Scope macro(&design);
  macro.set("n", 4.0);
  macro.set_formula("double_n", "n * 2");
  EXPECT_DOUBLE_EQ(evaluate_source("double_n", macro, fns()), 8.0);
}

TEST(Scope, FormulaChains) {
  Scope s;
  s.set("f", 2e6);
  s.set_formula("half", "f / 2");
  s.set_formula("quarter", "half / 2");
  EXPECT_DOUBLE_EQ(evaluate_source("quarter", s, fns()), 5e5);
}

TEST(Scope, DirectCycleDetected) {
  Scope s;
  s.set_formula("a", "a + 1");
  EXPECT_THROW(evaluate_source("a", s, fns()), ExprError);
}

TEST(Scope, IndirectCycleDetectedWithPath) {
  Scope s;
  s.set_formula("a", "b * 2");
  s.set_formula("b", "c + 1");
  s.set_formula("c", "a - 1");
  try {
    evaluate_source("a", s, fns());
    FAIL();
  } catch (const ExprError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("circular"), std::string::npos);
    EXPECT_NE(msg.find("a"), std::string::npos);
  }
}

TEST(Scope, SameNameDifferentScopesIsNotACycle) {
  // Child "n" defined in terms of... a distinct global also named "n"
  // would be a cycle by name only; the detector keys on (scope, name).
  Scope design;
  design.set("rate", 2e6);
  Scope row(&design);
  row.set_formula("rate2", "rate / 4");
  EXPECT_DOUBLE_EQ(evaluate_source("rate2", row, fns()), 5e5);
}

TEST(Scope, EraseAndLocalNames) {
  Scope s;
  s.set("b", 1.0);
  s.set("a", 2.0);
  EXPECT_EQ(s.local_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(s.has_local("a"));
  s.erase("a");
  EXPECT_FALSE(s.has_local("a"));
  EXPECT_THROW(evaluate_source("a", s, fns()), ExprError);
}

TEST(Scope, RebindReplacesValue) {
  Scope s;
  s.set("x", 1.0);
  s.set("x", 2.0);
  EXPECT_DOUBLE_EQ(evaluate_source("x", s, fns()), 2.0);
  s.set_formula("x", "21 * 2");
  EXPECT_DOUBLE_EQ(evaluate_source("x", s, fns()), 42.0);
}

TEST(Eval, DivisionByZeroThrows) {
  Scope s;
  EXPECT_THROW(evaluate_source("1 / 0", s, fns()), ExprError);
  EXPECT_THROW(evaluate_source("1 % 0", s, fns()), ExprError);
}

TEST(Eval, ShortCircuitPreventsEvaluation) {
  Scope s;
  // The right operand divides by zero; short-circuit must skip it.
  EXPECT_DOUBLE_EQ(evaluate_source("0 && (1 / 0)", s, fns()), 0.0);
  EXPECT_DOUBLE_EQ(evaluate_source("1 || (1 / 0)", s, fns()), 1.0);
}

TEST(Eval, ConditionalOnlyEvaluatesTakenBranch) {
  Scope s;
  EXPECT_DOUBLE_EQ(evaluate_source("1 ? 5 : (1/0)", s, fns()), 5.0);
  EXPECT_DOUBLE_EQ(evaluate_source("0 ? (1/0) : 6", s, fns()), 6.0);
}

TEST(Eval, StringOutsideFunctionArgThrows) {
  Scope s;
  EXPECT_THROW(evaluate_source("\"abc\" + 1", s, fns()), ExprError);
}

TEST(Eval, UnknownFunctionThrows) {
  Scope s;
  EXPECT_THROW(evaluate_source("mystery(1)", s, fns()), ExprError);
}

TEST(Eval, BuiltinDomainErrors) {
  Scope s;
  EXPECT_THROW(evaluate_source("sqrt(-1)", s, fns()), ExprError);
  EXPECT_THROW(evaluate_source("ln(0)", s, fns()), ExprError);
  EXPECT_THROW(evaluate_source("log2(-2)", s, fns()), ExprError);
  EXPECT_THROW(evaluate_source("max()", s, fns()), ExprError);
  EXPECT_THROW(evaluate_source("abs(1, 2)", s, fns()), ExprError);
}

TEST(Eval, CustomFunctionReceivesStringArgs) {
  FunctionTable table = FunctionTable::with_builtins();
  std::string seen;
  table.register_function("probe", [&](const std::vector<Value>& args) {
    seen = std::get<std::string>(args.at(0));
    return std::get<double>(args.at(1)) * 2;
  });
  Scope s;
  EXPECT_DOUBLE_EQ(evaluate_source("probe(\"Read Bank\", 21)", s, table),
                   42.0);
  EXPECT_EQ(seen, "Read Bank");
}

TEST(Eval, FunctionTableNamesAndContains) {
  const FunctionTable& table = fns();
  EXPECT_TRUE(table.contains("max"));
  EXPECT_FALSE(table.contains("rowpower"));
  EXPECT_NE(table.find("if"), nullptr);
  EXPECT_EQ(table.find("nope"), nullptr);
  EXPECT_GE(table.names().size(), 13u);
}

TEST(Eval, DeepFormulaChainsResolve) {
  Scope s;
  s.set("x0", 1.0);
  for (int i = 1; i <= 40; ++i) {
    s.set_formula("x" + std::to_string(i),
                  "x" + std::to_string(i - 1) + " + 1");
  }
  EXPECT_DOUBLE_EQ(evaluate_source("x40", s, fns()), 41.0);
}

}  // namespace
}  // namespace powerplay::expr
