// End-to-end integration: the paper's full user journey, driven over
// real HTTP against two PowerPlay sites, finishing with the cross-site
// re-use loop.  ("The whole process, including the selection of the
// library elements and the composition of the architecture, was
// executed through a standard WWW browser ... in less than three
// minutes.  No other tool interfaces are needed.")
#include <filesystem>

#include <gtest/gtest.h>

#include "library/serialize.hpp"
#include "sheet/report.hpp"
#include "web/app.hpp"
#include "web/client.hpp"
#include "web/remote.hpp"
#include "web/server.hpp"

namespace powerplay::web {
namespace {

namespace fs = std::filesystem;

struct TwoSites : ::testing::Test {
  fs::path dir_a, dir_b;
  std::unique_ptr<PowerPlayApp> app_a, app_b;
  std::unique_ptr<HttpServer> srv_a, srv_b;

  void SetUp() override {
    static int counter = 0;
    const std::string tag =
        std::to_string(::getpid()) + "_" + std::to_string(counter++);
    dir_a = fs::temp_directory_path() / ("pp_int_a_" + tag);
    dir_b = fs::temp_directory_path() / ("pp_int_b_" + tag);
    fs::create_directories(dir_a);
    fs::create_directories(dir_b);
    app_a = std::make_unique<PowerPlayApp>(library::LibraryStore(dir_a));
    app_b = std::make_unique<PowerPlayApp>(library::LibraryStore(dir_b));
    srv_a = std::make_unique<HttpServer>(
        0, [this](const Request& r) { return app_a->handle(r); });
    srv_b = std::make_unique<HttpServer>(
        0, [this](const Request& r) { return app_b->handle(r); });
    srv_a->start();
    srv_b->start();
  }
  void TearDown() override {
    srv_a->stop();
    srv_b->stop();
    fs::remove_all(dir_a);
    fs::remove_all(dir_b);
  }
};

TEST_F(TwoSites, ThreeMinuteJourney) {
  const auto a = srv_a->port();

  // 1. Identify yourself (the login form exists and the menu creates
  //    the profile with defaults).
  ASSERT_EQ(http_get(a, "/").status, 200);
  const Response menu = http_get(a, "/menu?user=dlidsky");
  ASSERT_EQ(menu.status, 200);
  ASSERT_NE(menu.body.find("Model library"), std::string::npos);

  // 2. Browse the library and open the SRAM model's input form.
  const Response lib_page = http_get(a, "/library?user=dlidsky");
  ASSERT_NE(lib_page.body.find("sram"), std::string::npos);
  const Response form = http_get(a, "/model?user=dlidsky&name=sram");
  ASSERT_NE(form.body.find("words"), std::string::npos);

  // 3. Cycle the form (Figure 4 loop) and add rows to a design: the
  //    Figure 1 luminance architecture, built entirely over HTTP.
  auto add = [&](const Params& p) {
    const Response r = http_post_form(a, "/design/add", p);
    ASSERT_EQ(r.status, 200) << r.body;
  };
  add({{"user", "dlidsky"}, {"model", "sram"}, {"design", "Journey"},
       {"row", "Read Bank"}, {"p_words", "2048"}, {"p_bits", "8"},
       {"p_f", "125000"}});
  add({{"user", "dlidsky"}, {"model", "sram"}, {"design", "Journey"},
       {"row", "Write Bank"}, {"p_words", "2048"}, {"p_bits", "8"},
       {"p_f", "62500"}});
  add({{"user", "dlidsky"}, {"model", "sram"}, {"design", "Journey"},
       {"row", "Look Up Table"}, {"p_words", "4096"}, {"p_bits", "6"},
       {"p_f", "2000000"}});
  add({{"user", "dlidsky"}, {"model", "register"}, {"design", "Journey"},
       {"row", "Output Register"}, {"p_bits", "6"}, {"p_f", "2000000"}});

  // 4. PLAY: the spreadsheet totals must reproduce the Figure 2 design
  //    (the defaults give vdd = 1.5 V).
  const Response played = http_post_form(
      a, "/design/play", {{"user", "dlidsky"}, {"name", "Journey"}});
  ASSERT_EQ(played.status, 200);
  EXPECT_NE(played.body.find("692.2 uW"), std::string::npos);  // LUT
  EXPECT_NE(played.body.find("731.6 uW"), std::string::npos);  // total

  // 5. What-if through the form: drop the supply to 1.1 V and re-Play.
  const Response rescaled = http_post_form(
      a, "/design/play",
      {{"user", "dlidsky"}, {"name", "Journey"}, {"g_vdd", "1.1"}});
  ASSERT_EQ(rescaled.status, 200);
  // (1.1/1.5)^2 * 731.6 uW = 393.4 uW.
  EXPECT_NE(rescaled.body.find("393.5 uW"), std::string::npos);

  // 6. Define a user model through the form and use it immediately.
  const Response created = http_post_form(
      a, "/newmodel",
      {{"user", "dlidsky"}, {"name", "journey_dsp"},
       {"category", "computation"}, {"params", "k=2"},
       {"c_fullswing", "k * 1e-12"}});
  ASSERT_EQ(created.status, 200);
  add({{"user", "dlidsky"}, {"model", "journey_dsp"}, {"design", "Journey"},
       {"row", "DSP"}, {"p_k", "4"}, {"p_f", "1000000"}});

  // 7. Cross-site re-use (Figure 6): site B imports the model and the
  //    design over the network API and replays it locally.
  RemoteLibrary remote(a);
  remote.import_model("journey_dsp", app_b->registry());
  const std::string design_text = remote.fetch_design_text("Journey");
  const sheet::Design imported =
      library::parse_design(design_text, app_b->registry(), nullptr);
  const auto replayed = imported.play();
  // vdd persisted at 1.1 from the what-if; DSP row: 4 pF * 1.21 * 1 MHz.
  const auto* dsp = replayed.find_row("DSP");
  ASSERT_NE(dsp, nullptr);
  EXPECT_NEAR(dsp->estimate.total_power().si(), 4e-12 * 1.21 * 1e6, 1e-12);

  // And the grand total matches what site A reports for the same sheet.
  const auto local =
      app_a->store().load_design("Journey", app_a->registry())->play();
  EXPECT_NEAR(replayed.total.total_power().si(),
              local.total.total_power().si(), 1e-15);
}

TEST_F(TwoSites, DocumentationHyperlinksResolve) {
  // "every subcircuit or primitive instantiation has links to relevant
  // documentation" — follow one chain: design -> model doc -> form.
  const auto a = srv_a->port();
  http_post_form(a, "/design/add",
                 {{"user", "doc"}, {"model", "dcdc_converter"},
                  {"design", "DocChain"}, {"row", "Supply"}});
  const Response design = http_get(a, "/design?user=doc&name=DocChain");
  ASSERT_EQ(design.status, 200);
  ASSERT_NE(design.body.find("/doc?name=dcdc_converter"),
            std::string::npos);
  const Response doc = http_get(a, "/doc?user=doc&name=dcdc_converter");
  ASSERT_EQ(doc.status, 200);
  EXPECT_NE(doc.body.find("EQ 18-19"), std::string::npos);
  EXPECT_NE(doc.body.find("/model?"), std::string::npos);
}

}  // namespace
}  // namespace powerplay::web
