// Loopback tests for the HTTP server and client.
#include "web/client.hpp"
#include "web/server.hpp"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace powerplay::web {
namespace {

TEST(Server, PicksAFreePortAndServes) {
  HttpServer server(0, [](const Request& req) {
    return Response::ok_text("echo:" + req.target);
  });
  server.start();
  ASSERT_GT(server.port(), 0);
  const Response r = http_get(server.port(), "/hello?x=1");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "echo:/hello?x=1");
  EXPECT_EQ(server.requests_served(), 1u);
  server.stop();
}

TEST(Server, PostBodyRoundTrips) {
  HttpServer server(0, [](const Request& req) {
    return Response::ok_text(req.method + ":" + req.body);
  });
  server.start();
  const Response r =
      http_post_form(server.port(), "/submit", {{"a", "1"}, {"b", "x y"}});
  EXPECT_EQ(r.body, "POST:a=1&b=x+y");
  server.stop();
}

TEST(Server, HandlerExceptionBecomes500) {
  HttpServer server(0, [](const Request&) -> Response {
    throw std::runtime_error("boom");
  });
  server.start();
  const Response r = http_get(server.port(), "/");
  EXPECT_EQ(r.status, 500);
  EXPECT_NE(r.body.find("boom"), std::string::npos);
  server.stop();
}

TEST(Server, ManySequentialRequests) {
  std::atomic<int> count{0};
  HttpServer server(0, [&](const Request&) {
    return Response::ok_text(std::to_string(++count));
  });
  server.start();
  for (int i = 1; i <= 50; ++i) {
    const Response r = http_get(server.port(), "/");
    EXPECT_EQ(r.status, 200);
  }
  EXPECT_EQ(count.load(), 50);
  server.stop();
}

TEST(Server, ConcurrentClients) {
  HttpServer server(0, [](const Request& req) {
    return Response::ok_text("ok:" + req.target);
  });
  server.start();
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      for (int j = 0; j < 10; ++j) {
        try {
          const Response r = http_get(
              server.port(), "/t" + std::to_string(i) + std::to_string(j));
          if (r.status != 200) ++failures;
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 80u);
  server.stop();
}

TEST(Server, StopIsIdempotentAndRestartable) {
  auto handler = [](const Request&) { return Response::ok_text("x"); };
  HttpServer server(0, handler);
  server.start();
  server.stop();
  server.stop();  // no-op
  // A fresh server on a new socket still works.
  HttpServer second(0, handler);
  second.start();
  EXPECT_EQ(http_get(second.port(), "/").status, 200);
  second.stop();
}

TEST(Server, TwoServersCoexist) {
  HttpServer a(0, [](const Request&) { return Response::ok_text("A"); });
  HttpServer b(0, [](const Request&) { return Response::ok_text("B"); });
  a.start();
  b.start();
  EXPECT_NE(a.port(), b.port());
  EXPECT_EQ(http_get(a.port(), "/").body, "A");
  EXPECT_EQ(http_get(b.port(), "/").body, "B");
  a.stop();
  b.stop();
}

TEST(Client, ConnectionRefusedThrows) {
  // Port 1 on loopback is essentially guaranteed closed for tests.
  EXPECT_THROW(http_get(1, "/"), HttpError);
}

TEST(Client, LargeResponseBody) {
  const std::string big(1 << 20, 'z');  // 1 MiB
  HttpServer server(0, [&](const Request&) {
    return Response::ok_text(big);
  });
  server.start();
  const Response r = http_get(server.port(), "/big");
  EXPECT_EQ(r.body.size(), big.size());
  EXPECT_EQ(r.body, big);
  server.stop();
}

}  // namespace
}  // namespace powerplay::web
