// Tests for the URL/form codecs, HTTP message codecs, and HTML builders.
#include "web/html.hpp"
#include "web/http.hpp"
#include "web/url.hpp"

#include <gtest/gtest.h>

namespace powerplay::web {
namespace {

TEST(Url, EncodeBasics) {
  EXPECT_EQ(url_encode("abc123-_.~"), "abc123-_.~");
  EXPECT_EQ(url_encode("Read Bank"), "Read+Bank");
  EXPECT_EQ(url_encode("a/b?c&d=e"), "a%2Fb%3Fc%26d%3De");
}

TEST(Url, DecodeBasics) {
  EXPECT_EQ(url_decode("Read+Bank"), "Read Bank");
  EXPECT_EQ(url_decode("a%2Fb"), "a/b");
  EXPECT_EQ(url_decode("%41%42"), "AB");
  // Malformed sequences pass through literally.
  EXPECT_EQ(url_decode("100%"), "100%");
  EXPECT_EQ(url_decode("%G1"), "%G1");
}

// Property: decode(encode(s)) == s over a corpus including every byte
// class the spreadsheet can produce.
class UrlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(UrlRoundTrip, DecodeEncodeIdentity) {
  const std::string s = GetParam();
  EXPECT_EQ(url_decode(url_encode(s)), s);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, UrlRoundTrip,
    ::testing::Values("", "plain", "with space", "a+b", "100%", "x=y&z",
                      "pixel_rate/16", "rowpower(\"Read Bank\")",
                      "quote\"back\\slash", "ünïcodé bytes",
                      "tab\tnewline\n"));

TEST(Url, ParseQuery) {
  const Params p = parse_query("user=dl&design=Luminance+1&empty=&flag");
  EXPECT_EQ(get_or(p, "user"), "dl");
  EXPECT_EQ(get_or(p, "design"), "Luminance 1");
  EXPECT_EQ(get_or(p, "empty"), "");
  EXPECT_TRUE(p.contains("flag"));
  EXPECT_EQ(get_or(p, "missing", "dflt"), "dflt");
}

TEST(Url, ParseTarget) {
  const Target t = parse_target("/model?name=sram&user=dl");
  EXPECT_EQ(t.path, "/model");
  EXPECT_EQ(get_or(t.query, "name"), "sram");
  const Target bare = parse_target("/menu");
  EXPECT_EQ(bare.path, "/menu");
  EXPECT_TRUE(bare.query.empty());
}

TEST(Url, ToQueryRoundTrip) {
  const Params p{{"a b", "c&d"}, {"x", "1"}};
  EXPECT_EQ(parse_query(to_query(p)), p);
}

TEST(Http, RequestRoundTrip) {
  Request req;
  req.method = "POST";
  req.target = "/design/play?user=dl";
  req.headers["content-type"] = "application/x-www-form-urlencoded";
  req.body = "g_vdd=1.5&name=Luminance_1";
  const Request back = parse_request(to_wire(req));
  EXPECT_EQ(back.method, "POST");
  EXPECT_EQ(back.target, req.target);
  EXPECT_EQ(back.body, req.body);
  const Params all = back.all_params();
  EXPECT_EQ(get_or(all, "user"), "dl");
  EXPECT_EQ(get_or(all, "g_vdd"), "1.5");
}

TEST(Http, FormFieldsWinOverQueryOnCollision) {
  Request req;
  req.method = "POST";
  req.target = "/x?a=query";
  req.headers["content-type"] = "application/x-www-form-urlencoded";
  req.body = "a=form";
  EXPECT_EQ(get_or(req.all_params(), "a"), "form");
}

TEST(Http, ResponseRoundTrip) {
  Response resp = Response::ok_html("<html>hi</html>");
  const Response back = parse_response(to_wire(resp));
  EXPECT_EQ(back.status, 200);
  EXPECT_EQ(back.content_type, "text/html");
  EXPECT_EQ(back.body, "<html>hi</html>");
}

TEST(Http, StatusHelpers) {
  EXPECT_EQ(Response::not_found("x").status, 404);
  EXPECT_EQ(Response::bad_request("y").status, 400);
  EXPECT_EQ(Response::server_error("z").status, 500);
  EXPECT_EQ(Response::redirect("/menu").status, 302);
  EXPECT_EQ(Response::redirect("/menu").headers.at("location"), "/menu");
  EXPECT_EQ(status_text(200), "OK");
  EXPECT_EQ(status_text(403), "Forbidden");
}

TEST(Http, HeaderNamesCaseInsensitive) {
  const Request r = parse_request(
      "GET / HTTP/1.0\r\nContent-Length: 2\r\nX-Custom: Value\r\n\r\nab");
  EXPECT_EQ(r.headers.at("content-length"), "2");
  EXPECT_EQ(r.headers.at("x-custom"), "Value");
  EXPECT_EQ(r.body, "ab");
}

TEST(Http, ParseErrors) {
  EXPECT_THROW(parse_request("GET /"), HttpError);             // truncated
  EXPECT_THROW(parse_request("\r\n\r\n"), HttpError);          // no method
  EXPECT_THROW(parse_request("GET / HTTP/1.0\r\nbad\r\n\r\n"),
               HttpError);                                     // bad header
  EXPECT_THROW(
      parse_request("GET / HTTP/1.0\r\ncontent-length: 10\r\n\r\nabc"),
      HttpError);                                              // short body
  EXPECT_THROW(
      parse_request("GET / HTTP/1.0\r\ncontent-length: zebra\r\n\r\n"),
      HttpError);
  EXPECT_THROW(parse_response("HTTP/1.0 weird\r\n\r\n"), HttpError);
}

TEST(Http, MessageSizeFraming) {
  const std::string wire =
      "POST /x HTTP/1.0\r\ncontent-length: 4\r\n\r\nbodyEXTRA";
  EXPECT_FALSE(message_size("POST /x HTTP/1.0\r\ncontent").has_value());
  EXPECT_FALSE(
      message_size("POST /x HTTP/1.0\r\ncontent-length: 4\r\n\r\nbo")
          .has_value());
  const auto size = message_size(wire);
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(wire.substr(0, *size).back(), 'y');
}

TEST(Html, EscapeAllSpecials) {
  EXPECT_EQ(html_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
}

TEST(Html, LinkEncodesQueryAndEscapesText) {
  const std::string l =
      link("/model", {{"name", "a b"}, {"user", "d&l"}}, "<open>");
  EXPECT_NE(l.find("name=a+b"), std::string::npos);
  EXPECT_NE(l.find("user=d%26l"), std::string::npos);
  EXPECT_NE(l.find("&lt;open&gt;"), std::string::npos);
}

TEST(Html, PageStructure) {
  HtmlPage page("Title & Co");
  page.heading("Head<ing>", 3).paragraph("para").rule().raw("<b>raw</b>");
  const std::string s = page.str();
  EXPECT_NE(s.find("<title>Title &amp; Co</title>"), std::string::npos);
  EXPECT_NE(s.find("<h3>Head&lt;ing&gt;</h3>"), std::string::npos);
  EXPECT_NE(s.find("<b>raw</b>"), std::string::npos);
}

TEST(Html, TableEscapesCellsButKeepsRawCells) {
  HtmlTable t;
  t.header({"Col<1>"});
  t.row({"a&b"});
  t.row({HtmlTable::raw_cell("<a href=\"x\">link</a>")});
  const std::string s = t.str();
  EXPECT_NE(s.find("<th>Col&lt;1&gt;</th>"), std::string::npos);
  EXPECT_NE(s.find("<td>a&amp;b</td>"), std::string::npos);
  EXPECT_NE(s.find("<td><a href=\"x\">link</a></td>"), std::string::npos);
}

TEST(Html, FormFields) {
  HtmlForm f("/design/play", "POST");
  f.hidden("user", "dl").text_field("Supply", "g_vdd", "1.5").submit("PLAY");
  const std::string s = f.str();
  EXPECT_NE(s.find("action=\"/design/play\""), std::string::npos);
  EXPECT_NE(s.find("name=\"g_vdd\""), std::string::npos);
  EXPECT_NE(s.find("value=\"1.5\""), std::string::npos);
  EXPECT_NE(s.find("type=\"submit\""), std::string::npos);
}

}  // namespace
}  // namespace powerplay::web
