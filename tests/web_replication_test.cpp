// Journal-shipping replication, end to end: a follower bootstraps from
// a primary's snapshot, streams its journal, serves byte-identical
// reads, redirects writes, and survives a chaos-injected primary crash
// with zero acknowledged-write loss.  Everything is deterministic: the
// fault schedule comes from a seeded PRNG and the "network" is either
// loopback TCP or an in-process FunctionTransport.
#include "web/app.hpp"
#include "web/client.hpp"
#include "web/fault.hpp"
#include "web/repl.hpp"
#include "web/server.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace powerplay::web {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("pp_repl_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

model::UserModelDefinition tiny_model(const std::string& name,
                                      double scale = 1.0) {
  model::UserModelDefinition def;
  def.name = name;
  def.category = model::Category::kComputation;
  def.documentation = "replication test model";
  def.params = {{"k", "scale", scale, "", 0, 1e6, false}};
  def.c_fullswing = "k * 42e-15";
  return def;
}

Request get(const std::string& target) {
  Request r;
  r.method = "GET";
  r.target = target;
  return r;
}

/// Fast follower tuning for tests: short polls, millisecond backoff.
ReplicationOptions fast_options() {
  ReplicationOptions o;
  o.poll_wait = 50ms;
  o.retry.base_backoff = 1ms;
  o.retry.max_backoff = 10ms;
  o.breaker.failure_threshold = 1000;  // breaker studied in web_fault_test
  o.breaker.cooldown = 5ms;
  return o;
}

// ---------------------------------------------------------------------------
// Bootstrap + streaming over real loopback sockets
// ---------------------------------------------------------------------------

TEST(Replication, FollowerBootstrapsAndStreamsOverTcp) {
  TempDir primary_dir;
  TempDir follower_dir;
  PowerPlayApp primary{library::LibraryStore(primary_dir.path)};
  primary.store().save_model(tiny_model("before_snapshot"));
  HttpServer server(0, [&](const Request& r) { return primary.handle(r); });
  server.start();

  PowerPlayApp follower_app{library::LibraryStore(follower_dir.path)};
  follower_app.set_role(PowerPlayApp::ReplRole::kFollower,
                        "http://127.0.0.1:" + std::to_string(server.port()));
  ReplicationFollower follower(
      follower_app.store(), std::make_shared<TcpTransport>(server.port()),
      fast_options());
  follower_app.set_repl_stats_source([&] { return follower.stats(); });
  follower.start();

  // Snapshot bootstrap delivers the pre-existing state...
  ASSERT_TRUE(follower.wait_for_seq(primary.store().last_seq(), 5s));
  // ...and a commit made *after* the follower attached streams over.
  primary.store().save_model(tiny_model("after_snapshot"));
  ASSERT_TRUE(follower.wait_for_seq(primary.store().last_seq(), 5s));

  // Reads on the follower are byte-identical to the primary's, through
  // the follower's own response cache.
  for (const char* target :
       {"/api/models", "/api/model?name=before_snapshot",
        "/api/model?name=after_snapshot"}) {
    const Response from_primary = primary.handle(get(target));
    const Response from_follower = follower_app.handle(get(target));
    EXPECT_EQ(from_primary.status, 200) << target;
    EXPECT_EQ(from_follower.status, 200) << target;
    EXPECT_EQ(from_primary.body, from_follower.body) << target;
  }

  // The follower's health page reports role and replication position.
  const Response health = follower_app.handle(get("/healthz"));
  EXPECT_NE(health.body.find("repl_role: follower"), std::string::npos);
  EXPECT_NE(health.body.find("repl_synced: 1"), std::string::npos);
  EXPECT_NE(health.body.find("repl_lag_records: 0"), std::string::npos);
  EXPECT_NE(health.body.find("repl_resyncs_total: 1"), std::string::npos);

  follower.stop();
  server.stop();
}

TEST(Replication, FollowerRedirectsWritesToPrimary) {
  TempDir dir;
  PowerPlayApp app{library::LibraryStore(dir.path)};
  app.set_role(PowerPlayApp::ReplRole::kFollower, "http://primary.test:8080");

  Request post;
  post.method = "POST";
  post.target = "/newmodel?user=alice";
  const Response r = app.handle(post);
  EXPECT_EQ(r.status, 307);  // method-preserving, unlike 302
  EXPECT_EQ(r.headers.at("location"),
            "http://primary.test:8080/newmodel?user=alice");

  // Reads — including pages for a user the follower has never seen —
  // stay local and must not commit a profile to the mirrored store.
  const Response menu = app.handle(get("/menu?user=stranger"));
  EXPECT_EQ(menu.status, 200);
  EXPECT_FALSE(app.store().load_user("stranger").has_value());
}

TEST(Replication, JournalFeedLongPollAnswersOnCommit) {
  TempDir dir;
  PowerPlayApp primary{library::LibraryStore(dir.path)};
  primary.store().save_model(tiny_model("first"));
  const std::uint64_t epoch = primary.store().epoch();
  const std::uint64_t after = primary.store().last_seq();

  // Park a long-poll past the current tail, then commit from another
  // thread: the poll must return the new record well before its 5 s
  // window, not at its expiry.
  std::thread committer([&] {
    std::this_thread::sleep_for(30ms);
    primary.store().save_model(tiny_model("second"));
  });
  const auto start = std::chrono::steady_clock::now();
  const Response r = primary.handle(
      get("/repl/journal?epoch=" + std::to_string(epoch) +
          "&after=" + std::to_string(after) + "&wait_ms=5000"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  committer.join();

  EXPECT_EQ(r.status, 200);
  EXPECT_LT(elapsed, 2500ms);
  const auto parsed = library::Journal::parse(r.body);
  EXPECT_TRUE(parsed.header_ok);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].name, "second");
  EXPECT_EQ(parsed.records[0].seq, after + 1);
  EXPECT_EQ(r.headers.at("x-repl-last-seq"), std::to_string(after + 1));
}

TEST(Replication, PromoteEndpointFlipsRoleWithFreshEpoch) {
  TempDir primary_dir;
  TempDir follower_dir;
  PowerPlayApp primary{library::LibraryStore(primary_dir.path)};
  primary.store().save_model(tiny_model("m"));

  PowerPlayApp follower_app{library::LibraryStore(follower_dir.path)};
  follower_app.set_role(PowerPlayApp::ReplRole::kFollower, "http://x");
  auto transport = std::make_shared<FunctionTransport>(
      [&](const Request& r) { return primary.handle(r); });
  ReplicationFollower follower(follower_app.store(), transport,
                               fast_options());
  follower_app.set_promote_hook([&] {
    const std::uint64_t fresh = follower.promote();
    follower_app.set_role(PowerPlayApp::ReplRole::kPrimary);
    return fresh;
  });
  follower.start();
  ASSERT_TRUE(follower.wait_for_seq(primary.store().last_seq(), 5s));

  Request post;
  post.method = "POST";
  post.target = "/repl/promote";
  const Response r = follower_app.handle(post);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(follower_app.role(), PowerPlayApp::ReplRole::kPrimary);
  EXPECT_FALSE(follower.running());
  EXPECT_GT(follower_app.store().epoch(), primary.store().epoch());

  // The promoted node accepts writes locally now (no 307).
  follower_app.store().save_model(tiny_model("written_after_promote"));
  EXPECT_EQ(follower_app.handle(get("/api/model?name=written_after_promote"))
                .status,
            200);
  // Idempotent on an already-primary node.
  EXPECT_EQ(follower_app.handle(post).status, 200);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: seeded chaos, primary killed mid-storm.
// ---------------------------------------------------------------------------

/// A primary that can "crash" (be destroyed without shutdown) and come
/// back on the same data directory while a follower keeps polling.
struct CrashablePrimary {
  TempDir dir;
  std::mutex mutex;  // serializes transport calls vs. crash/restart
  std::unique_ptr<PowerPlayApp> app;

  CrashablePrimary() { open(); }
  void open() {
    app = std::make_unique<PowerPlayApp>(library::LibraryStore(dir.path));
  }
  void crash() {
    std::lock_guard lock(mutex);
    app.reset();  // no shutdown(): jobs dropped, journal left as-is
  }
  void restart() {
    std::lock_guard lock(mutex);
    open();
  }
  Response roundtrip(const Request& r) {
    std::lock_guard lock(mutex);
    if (app == nullptr) throw HttpError("connection refused: primary down");
    return app->handle(r);
  }
};

TEST(Replication, ChaosFailoverLosesNoAcknowledgedWrite) {
  CrashablePrimary primary;
  TempDir follower_dir;
  PowerPlayApp follower_app{library::LibraryStore(follower_dir.path)};
  follower_app.set_role(PowerPlayApp::ReplRole::kFollower, "http://x");

  // The wire: drops, injected 500s, truncated bodies and duplicate
  // batch deliveries, all from one seeded schedule.
  FaultSpec spec;
  spec.drop_rate = 0.15;
  spec.error_rate = 0.10;
  spec.truncate_rate = 0.10;
  spec.duplicate_rate = 0.10;
  spec.seed = 20260809;
  auto chaos = std::make_shared<FaultTransport>(
      std::make_shared<FunctionTransport>(
          [&](const Request& r) { return primary.roundtrip(r); }),
      spec);

  ReplicationFollower follower(follower_app.store(), chaos, fast_options());
  follower.start();

  // Write storm: every save_model that returns is an acknowledged,
  // journaled commit.  Kill the primary a third of the way through,
  // bring it back (crash recovery opens a fresh epoch), keep writing.
  std::vector<std::string> acked;
  for (int i = 0; i < 30; ++i) {
    if (i == 10) {
      primary.crash();
      primary.restart();
    }
    const std::string name = "storm_" + std::to_string(i);
    primary.app->store().save_model(tiny_model(name, 1.0 + i));
    acked.push_back(name);
  }

  // Through drops, 500s, truncations, duplicates, and one crash-epoch
  // change, the follower converges on the full acknowledged history.
  ASSERT_TRUE(
      follower.wait_for_seq(primary.app->store().last_seq(), 30s))
      << "follower never caught up; stats: applied="
      << follower.stats().records_applied
      << " resyncs=" << follower.stats().resyncs_total
      << " errors=" << follower.stats().transport_errors;
  const ReplicationStats stats = follower.stats();
  EXPECT_GE(stats.resyncs_total, 2u);  // initial bootstrap + post-crash 409

  // Failover: promote the follower; it must hold every acknowledged
  // write, byte-identical to the restarted primary's copy.
  const std::uint64_t fresh = follower.promote();
  follower_app.set_role(PowerPlayApp::ReplRole::kPrimary);
  EXPECT_GT(fresh, primary.app->store().epoch());
  for (const std::string& name : acked) {
    const Response from_primary =
        primary.app->handle(get("/api/model?name=" + name));
    const Response from_follower =
        follower_app.handle(get("/api/model?name=" + name));
    ASSERT_EQ(from_primary.status, 200) << name;
    ASSERT_EQ(from_follower.status, 200) << name;
    EXPECT_EQ(from_primary.body, from_follower.body) << name;
  }
  // And the promoted store takes writes on its fresh epoch.
  follower_app.store().save_model(tiny_model("after_failover"));
  EXPECT_TRUE(follower_app.store().load_model("after_failover").has_value());
}

// ---------------------------------------------------------------------------
// TSan coverage: cached reads racing the apply path.
// ---------------------------------------------------------------------------

TEST(Replication, ConcurrentCachedReadsDuringApply) {
  TempDir primary_dir;
  TempDir follower_dir;
  PowerPlayApp primary{library::LibraryStore(primary_dir.path)};
  PowerPlayApp follower_app{library::LibraryStore(follower_dir.path)};
  follower_app.set_role(PowerPlayApp::ReplRole::kFollower, "http://x");

  auto transport = std::make_shared<FunctionTransport>(
      [&](const Request& r) { return primary.handle(r); });
  ReplicationFollower follower(follower_app.store(), transport,
                               fast_options());
  follower_app.set_repl_stats_source([&] { return follower.stats(); });
  follower.start();

  // Readers hammer cacheable routes on the follower while the apply
  // thread installs records and bumps the store revision under them.
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!done.load()) {
        EXPECT_EQ(follower_app.handle(get("/api/models")).status, 200);
        EXPECT_EQ(follower_app.handle(get("/healthz")).status, 200);
      }
    });
  }
  for (int i = 0; i < 40; ++i) {
    primary.store().save_model(tiny_model("race_" + std::to_string(i)));
  }
  EXPECT_TRUE(follower.wait_for_seq(primary.store().last_seq(), 30s));
  done.store(true);
  for (std::thread& reader : readers) reader.join();
  follower.stop();

  const Response all = follower_app.handle(get("/api/models"));
  for (int i = 0; i < 40; ++i) {
    EXPECT_NE(all.body.find("race_" + std::to_string(i)), std::string::npos);
  }
}

}  // namespace
}  // namespace powerplay::web
