// Deterministic chaos tests: the fault-injection transport, the retry
// policy with backoff and Retry-After, and the circuit breaker — all
// hermetic (seeded PRNG, virtual clocks, recorded sleeps; no wall-clock
// dependence beyond the loopback sockets themselves).
#include "web/fault.hpp"

#include <filesystem>
#include <optional>

#include <gtest/gtest.h>

#include "models/berkeley_library.hpp"
#include "web/app.hpp"
#include "web/remote.hpp"
#include "web/server.hpp"

namespace powerplay::web {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::shared_ptr<Transport> always_ok(const std::string& body = "ok") {
  return std::make_shared<FunctionTransport>(
      [body](const Request&) { return Response::ok_text(body); });
}

TEST(Fault, SameSeedReplaysSameSchedule) {
  FaultSpec spec;
  spec.drop_rate = 0.4;
  spec.error_rate = 0.2;
  spec.truncate_rate = 0.1;
  spec.seed = 42;
  FaultTransport a(always_ok(), spec);
  FaultTransport b(always_ok(), spec);
  Request req;
  for (int i = 0; i < 200; ++i) {
    std::optional<int> status_a, status_b;
    try {
      status_a = a.roundtrip(req).status;
    } catch (const HttpError&) {}
    try {
      status_b = b.roundtrip(req).status;
    } catch (const HttpError&) {}
    EXPECT_EQ(status_a, status_b) << "diverged at call " << i;
  }
  EXPECT_EQ(a.counters().drops, b.counters().drops);
  EXPECT_EQ(a.counters().errors, b.counters().errors);
  EXPECT_EQ(a.counters().truncations, b.counters().truncations);
  EXPECT_GT(a.counters().drops, 0);      // rates actually bite
  EXPECT_GT(a.counters().passthrough, 0);
}

TEST(Fault, DropAlwaysThrowsTransportError) {
  FaultSpec spec;
  spec.drop_rate = 1.0;
  FaultTransport chaos(always_ok(), spec);
  Request req;
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(chaos.roundtrip(req), HttpError);
  }
  EXPECT_EQ(chaos.counters().drops, 5);
  EXPECT_EQ(chaos.counters().passthrough, 0);
}

TEST(Fault, DelayPastDeadlineIsVirtualTimeout) {
  FaultSpec spec;
  spec.delay_rate = 1.0;
  spec.delay = 5000ms;     // would be 5 real seconds if it slept
  spec.deadline = 200ms;   // simulated client patience
  FaultTransport chaos(always_ok(), spec);
  std::chrono::milliseconds observed{0};
  chaos.set_delay_hook([&](std::chrono::milliseconds d) { observed += d; });

  Request req;
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_THROW(chaos.roundtrip(req), HttpTimeout);
  EXPECT_THROW(chaos.roundtrip(req), HttpTimeout);
  const auto wall = std::chrono::steady_clock::now() - begin;

  EXPECT_LT(wall, 1s) << "injected delays must not sleep";
  EXPECT_EQ(chaos.virtual_delay(), 10000ms);
  EXPECT_EQ(observed, 10000ms);
  EXPECT_EQ(chaos.counters().timeouts, 2);
}

TEST(Fault, ShortDelayBelowDeadlinePassesThrough) {
  FaultSpec spec;
  spec.delay_rate = 1.0;
  spec.delay = 50ms;
  spec.deadline = 200ms;
  FaultTransport chaos(always_ok("body"), spec);
  Request req;
  EXPECT_EQ(chaos.roundtrip(req).body, "body");
  EXPECT_EQ(chaos.counters().delays, 1);
  EXPECT_EQ(chaos.counters().timeouts, 0);
}

TEST(Fault, InjectedErrorsCarryProperStatusLines) {
  FaultSpec spec;
  spec.unavailable_rate = 1.0;
  FaultTransport chaos(always_ok(), spec);
  Request req;
  const Response r = chaos.roundtrip(req);
  EXPECT_EQ(r.status, 503);
  EXPECT_EQ(r.headers.at("retry-after"), "0");
  // 503 renders with its proper reason phrase on the wire now.
  EXPECT_NE(to_wire(r).find("503 Service Unavailable"), std::string::npos);
}

TEST(Retry, BackoffIsDeterministicBoundedAndGrowing) {
  RetryPolicy policy;
  policy.base_backoff = 10ms;
  policy.max_backoff = 500ms;
  policy.jitter_seed = 7;
  RetryPolicy same = policy;
  for (int retry = 0; retry < 12; ++retry) {
    EXPECT_EQ(policy.backoff(retry), same.backoff(retry));
    EXPECT_GE(policy.backoff(retry), 10ms);
    EXPECT_LE(policy.backoff(retry), 500ms);
  }
  // The exponential part dominates eventually.
  EXPECT_GT(policy.backoff(6), policy.backoff(0));
}

TEST(Retry, RetryAfterHintOverridesBackoff) {
  int calls = 0;
  auto flaky = std::make_shared<FunctionTransport>([&](const Request&) {
    if (++calls == 1) {
      Response r;
      r.status = 503;
      r.headers["retry-after"] = "2";
      return r;
    }
    return Response::ok_text("m1\n");
  });
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff = 10ms;
  RemoteLibrary remote(flaky, policy);
  std::vector<std::chrono::milliseconds> slept;
  remote.set_sleeper([&](std::chrono::milliseconds d) { slept.push_back(d); });

  EXPECT_EQ(remote.list_models(), (std::vector<std::string>{"m1"}));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(remote.retries(), 1);
  ASSERT_EQ(slept.size(), 1u);
  EXPECT_EQ(slept[0], 2000ms) << "server's Retry-After should win";
}

TEST(Retry, FourZeroFourIsFinalNoRetries) {
  int calls = 0;
  auto missing = std::make_shared<FunctionTransport>([&](const Request&) {
    ++calls;
    return Response::not_found("nope");
  });
  RemoteLibrary remote(missing, RetryPolicy{});
  remote.set_sleeper([](std::chrono::milliseconds) {});
  EXPECT_THROW(remote.fetch_model("nope"), HttpError);
  EXPECT_EQ(calls, 1) << "4xx must not be retried";
}

TEST(Breaker, OpensFailsFastAndHalfOpensOnVirtualClock) {
  // Virtual clock shared by the test and the breaker.
  auto now = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::time_point{});
  std::atomic<bool> failing{true};
  int calls = 0;
  auto transport = std::make_shared<FunctionTransport>([&](const Request&) {
    ++calls;
    if (failing) throw HttpError("remote down");
    return Response::ok_text("m\n");
  });
  BreakerOptions breaker;
  breaker.failure_threshold = 3;
  breaker.cooldown = 1000ms;
  RemoteLibrary remote(transport, RetryPolicy::none(), breaker,
                       [now] { return *now; });
  remote.set_sleeper([](std::chrono::milliseconds) {});

  // Three failures trip the breaker.
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(remote.list_models(), HttpError);
  }
  EXPECT_EQ(remote.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(calls, 3);

  // While open: fail fast, no round trip spent.
  EXPECT_THROW(remote.list_models(), CircuitOpenError);
  EXPECT_EQ(calls, 3);

  // After the cooldown (virtually) elapses, one probe goes through;
  // the remote has recovered, so the circuit closes again.
  *now += 1500ms;
  failing = false;
  EXPECT_EQ(remote.list_models(), (std::vector<std::string>{"m"}));
  EXPECT_EQ(remote.breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(remote.list_models(), (std::vector<std::string>{"m"}));
}

TEST(Breaker, FailedProbeReopensImmediately) {
  auto now = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::time_point{});
  int calls = 0;
  auto transport = std::make_shared<FunctionTransport>(
      [&](const Request&) -> Response {
        ++calls;
        throw HttpError("still down");
      });
  BreakerOptions breaker;
  breaker.failure_threshold = 2;
  breaker.cooldown = 1000ms;
  RemoteLibrary remote(transport, RetryPolicy::none(), breaker,
                       [now] { return *now; });
  remote.set_sleeper([](std::chrono::milliseconds) {});

  EXPECT_THROW(remote.list_models(), HttpError);
  EXPECT_THROW(remote.list_models(), HttpError);
  EXPECT_EQ(remote.breaker().state(), CircuitBreaker::State::kOpen);

  *now += 1500ms;
  EXPECT_THROW(remote.list_models(), HttpError);  // the probe itself fails
  EXPECT_EQ(remote.breaker().state(), CircuitBreaker::State::kOpen);
  const int after_probe = calls;
  EXPECT_THROW(remote.list_models(), CircuitOpenError);  // fast again
  EXPECT_EQ(calls, after_probe);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: import a full model library through chaos.
// ---------------------------------------------------------------------------

/// One PowerPlay site on loopback (same shape as web_remote_test).
struct Site {
  fs::path dir;
  std::unique_ptr<PowerPlayApp> app;
  std::unique_ptr<HttpServer> server;

  Site() {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("pp_chaos_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    fs::create_directories(dir);
    app = std::make_unique<PowerPlayApp>(library::LibraryStore(dir));
    server = std::make_unique<HttpServer>(
        0, [this](const Request& r) { return app->handle(r); });
    server->start();
  }
  ~Site() {
    server->stop();
    fs::remove_all(dir);
  }
  [[nodiscard]] std::uint16_t port() const { return server->port(); }

  void publish_model(const std::string& name, const std::string& equation) {
    model::UserModelDefinition def;
    def.name = name;
    def.category = model::Category::kComputation;
    def.params = {{"k", "scale", 1.0, "", 0, 1e6, false}};
    def.c_fullswing = equation;
    app->store().save_model(def, /*proprietary=*/false);
  }
};

TEST(Chaos, RetriesImportLibraryWhereSingleShotFails) {
  Site site;
  site.publish_model("chaos_dct", "k * 120e-15");
  site.publish_model("chaos_fir", "k * 80e-15");
  site.publish_model("chaos_mac", "k * 300e-15");

  // >=30% connection drops plus injected 5xx, per the acceptance bar.
  auto make_remote = [&](std::uint64_t seed, const RetryPolicy& policy) {
    FaultSpec spec;
    spec.drop_rate = 0.30;
    spec.error_rate = 0.10;
    spec.truncate_rate = 0.05;
    spec.seed = seed;
    auto chaos = std::make_shared<FaultTransport>(
        std::make_shared<TcpTransport>(site.port()), spec);
    BreakerOptions breaker;
    breaker.failure_threshold = 1000;  // breaker studied separately above
    RemoteLibrary remote(chaos, policy, breaker);
    remote.set_sleeper([](std::chrono::milliseconds) {});  // virtual time
    return remote;
  };

  // Find a seed whose very first fault schedule sinks the zero-retry
  // client.  Deterministic: the same seed fails every run, and with a
  // ~41% per-fetch fault rate the chance that 64 seeds all survive
  // four fetches is (1 - 0.41)^... ~ 0, so the ASSERT is stable.
  std::optional<std::uint64_t> failing_seed;
  for (std::uint64_t seed = 1; seed <= 64 && !failing_seed; ++seed) {
    model::ModelRegistry registry;
    RemoteLibrary single = make_remote(seed, RetryPolicy::none());
    try {
      single.import_all(registry);
    } catch (const HttpError&) {
      failing_seed = seed;
    }
  }
  ASSERT_TRUE(failing_seed.has_value())
      << "no seed produced a first-shot failure; fault injection inert?";

  // Same seed, same chaos schedule — but with retries the whole
  // library lands.
  RetryPolicy patient;
  patient.max_attempts = 12;
  patient.base_backoff = 1ms;
  model::ModelRegistry registry;
  RemoteLibrary remote = make_remote(*failing_seed, patient);
  const std::vector<std::string> imported = remote.import_all(registry);

  EXPECT_EQ(imported.size(), 3u);
  EXPECT_TRUE(registry.contains("chaos_dct"));
  EXPECT_TRUE(registry.contains("chaos_fir"));
  EXPECT_TRUE(registry.contains("chaos_mac"));
  EXPECT_GT(remote.retries(), 0) << "success must have come via retries";
  EXPECT_GT(remote.round_trips(), 4) << "4 fetches cannot have been enough";
}

}  // namespace
}  // namespace powerplay::web
