// Unit tests of the parallel evaluation engine: executor, fingerprint,
// Play cache, engine-backed sweeps (bit-identical to serial), and the
// async job manager.
#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "engine/job.hpp"
#include "models/berkeley_library.hpp"
#include "studies/vq.hpp"

namespace powerplay::engine {
namespace {

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = models::berkeley_library();
  return registry;
}

sheet::Design adder_design() {
  sheet::Design d("adders");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  auto& a = d.add_row("A", lib().find_shared("ripple_adder"));
  a.params.set("bitwidth", 16.0);
  auto& b = d.add_row("B", lib().find_shared("ripple_adder"));
  b.params.set("bitwidth", 32.0);
  return d;
}

// --- Executor ---------------------------------------------------------------

TEST(Executor, RunsEverySubmittedTask) {
  Executor ex({4, 16});
  std::atomic<int> sum{0};
  TaskGroup group(ex);
  for (int i = 1; i <= 100; ++i) {
    group.run([&sum, i] { sum += i; });
  }
  group.wait();
  EXPECT_EQ(sum.load(), 5050);
  const ExecutorStats s = ex.stats();
  EXPECT_EQ(s.submitted, 100u);
  EXPECT_EQ(s.executed, 100u);
  EXPECT_EQ(s.thread_count, 4u);
}

TEST(Executor, BoundedQueueAppliesBackPressure) {
  // One slow worker + capacity 2: submitting 10 quick tasks must block
  // rather than grow the queue past its bound.  We can only observe the
  // invariant indirectly: queue depth never exceeds capacity.
  Executor ex({1, 2});
  std::atomic<std::size_t> max_depth{0};
  TaskGroup group(ex);
  for (int i = 0; i < 10; ++i) {
    group.run([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const std::size_t depth = ex.stats().queue_depth;
      std::size_t seen = max_depth.load();
      while (depth > seen && !max_depth.compare_exchange_weak(seen, depth)) {
      }
    });
  }
  group.wait();
  EXPECT_LE(max_depth.load(), 2u);
}

TEST(Executor, TaskGroupPropagatesFirstException) {
  Executor ex({2, 8});
  TaskGroup group(ex);
  group.run([] { throw std::runtime_error("boom"); });
  group.run([] {});
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(Executor, ParallelForCoversAllIndices) {
  Executor ex({3, 8});
  std::vector<std::atomic<int>> hits(64);
  parallel_for(ex, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- Fingerprint ------------------------------------------------------------

TEST(Fingerprint, StableAcrossIdenticalDesigns) {
  EXPECT_EQ(fingerprint(adder_design()), fingerprint(adder_design()));
}

TEST(Fingerprint, SensitiveToEverythingPlayReads) {
  const std::uint64_t base = fingerprint(adder_design());

  sheet::Design g = adder_design();
  g.globals().set("vdd", 1.8);
  EXPECT_NE(fingerprint(g), base);

  sheet::Design p = adder_design();
  p.find_row("A")->params.set("bitwidth", 24.0);
  EXPECT_NE(fingerprint(p), base);

  sheet::Design e = adder_design();
  e.find_row("B")->enabled = false;
  EXPECT_NE(fingerprint(e), base);

  sheet::Design f = adder_design();
  f.globals().set_formula("derived", "vdd * 2");
  EXPECT_NE(fingerprint(f), base);

  sheet::Design r = adder_design();
  r.remove_row("B");
  EXPECT_NE(fingerprint(r), base);
}

TEST(Fingerprint, HexRendering) {
  EXPECT_EQ(fingerprint_hex(0), "0000000000000000");
  EXPECT_EQ(fingerprint_hex(0xdeadbeefull), "00000000deadbeef");
}

// --- PlayCache --------------------------------------------------------------

TEST(PlayCache, HitMissAndLruEviction) {
  PlayCache cache(2);
  auto result = [](const char* name) {
    auto r = std::make_shared<sheet::PlayResult>();
    r->design_name = name;
    return std::shared_ptr<const sheet::PlayResult>(r);
  };
  EXPECT_EQ(cache.find(1), nullptr);  // miss
  cache.insert(1, result("one"));
  cache.insert(2, result("two"));
  EXPECT_NE(cache.find(1), nullptr);  // hit, promotes 1 over 2
  cache.insert(3, result("three"));   // evicts 2 (LRU)
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_NE(cache.find(3), nullptr);

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(EvalEngine, RepeatedPlayOfUnchangedDesignIsACacheHit) {
  EvalEngine engine;
  const sheet::Design d = adder_design();
  const auto first = engine.play(d);
  const auto second = engine.play(d);
  EXPECT_EQ(first.get(), second.get());  // same shared result object
  const CacheStats s = engine.cache().stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);

  // Any edit changes the fingerprint and misses.
  sheet::Design edited = adder_design();
  edited.globals().set("vdd", 3.3);
  (void)engine.play(edited);
  EXPECT_EQ(engine.cache().stats().misses, 2u);
}

// --- Engine-backed sweeps ---------------------------------------------------

TEST(EngineSweep, GlobalSweepBitIdenticalToSerial) {
  EvalEngine engine({{4, 64}, 1024});
  const sheet::Design d = studies::make_luminance_impl2(lib());
  const std::vector<double> vdds = sheet::linspace(1.0, 3.0, 9);
  const auto serial = sheet::sweep_global(d, "vdd", vdds);
  const auto parallel = engine.sweep_global(d, "vdd", vdds);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].value, parallel[i].value);
    EXPECT_EQ(serial[i].result.total.total_power().si(),
              parallel[i].result.total.total_power().si());
    EXPECT_EQ(serial[i].result.total.energy_per_op.si(),
              parallel[i].result.total.energy_per_op.si());
  }
}

TEST(EngineSweep, GridSweepBitIdenticalToSerialAndCached) {
  EvalEngine engine({{4, 64}, 1024});
  const sheet::Design d = studies::make_luminance_impl2(lib());
  const auto vdds = sheet::linspace(1.0, 3.0, 8);
  const auto rates = sheet::linspace(1e6, 4e6, 8);
  const auto serial = sheet::sweep_grid(d, "vdd", vdds, "pixel_rate", rates);
  const auto parallel =
      engine.sweep_grid(d, "vdd", vdds, "pixel_rate", rates);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    ASSERT_EQ(serial.results[i].size(), parallel.results[i].size());
    for (std::size_t j = 0; j < serial.results[i].size(); ++j) {
      EXPECT_EQ(serial.results[i][j].total.total_power().si(),
                parallel.results[i][j].total.total_power().si())
          << "(" << i << "," << j << ")";
    }
  }
  // Re-sweeping the identical grid hits the cache for every point.
  const CacheStats before = engine.cache().stats();
  (void)engine.sweep_grid(d, "vdd", vdds, "pixel_rate", rates);
  const CacheStats after = engine.cache().stats();
  EXPECT_EQ(after.hits, before.hits + 64);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(EngineSweep, RowParamSweepMatchesSerial) {
  EvalEngine engine;
  const sheet::Design d = adder_design();
  const std::vector<double> widths = {8, 16, 24, 32};
  const auto serial = sheet::sweep_row_param(d, "A", "bitwidth", widths);
  const auto parallel = engine.sweep_row_param(d, "A", "bitwidth", widths);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.total.total_power().si(),
              parallel[i].result.total.total_power().si());
  }
}

TEST(EngineSweep, ProgressReportsEveryPoint) {
  EvalEngine engine;
  const sheet::Design d = adder_design();
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> final_done{0};
  (void)engine.sweep_global(d, "vdd", sheet::linspace(1, 2, 5),
                            [&](std::size_t done, std::size_t total) {
                              ++calls;
                              if (done == total) final_done = done;
                            });
  EXPECT_EQ(calls.load(), 5u);
  EXPECT_EQ(final_done.load(), 5u);
}

// --- Sweep validation (the silent-create bugfix) ----------------------------

TEST(SweepValidation, UnknownGlobalThrowsInsteadOfCreating) {
  const sheet::Design d = adder_design();
  EXPECT_THROW(sheet::sweep_global(d, "vdd_typo", {1, 2}), expr::ExprError);
  EXPECT_THROW(sheet::sweep_grid(d, "vdd", {1}, "freq_typo", {1e6}),
               expr::ExprError);
  EvalEngine engine;
  EXPECT_THROW((void)engine.sweep_global(d, "vdd_typo", {1, 2}),
               expr::ExprError);
}

TEST(SweepValidation, UnknownRowParamThrows) {
  const sheet::Design d = adder_design();
  EXPECT_THROW(sheet::sweep_row_param(d, "A", "bitwidht", {8}),
               expr::ExprError);
  // Model-declared parameters are sweepable even when not yet bound.
  const auto points = sheet::sweep_row_param(d, "A", "alpha", {0.5, 1.0});
  EXPECT_EQ(points.size(), 2u);
}

// --- grid_csv ---------------------------------------------------------------

TEST(GridCsv, LongFormMachineReadable) {
  const sheet::Design d = adder_design();
  const auto grid = sheet::sweep_grid(d, "vdd", {1.0, 2.0}, "f", {1e6});
  const std::string csv = sheet::grid_csv(grid);
  EXPECT_NE(csv.find("vdd,f,total_power_w,energy_per_op_j\n"),
            std::string::npos);
  // 2x1 grid -> header + 2 data lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  // P = C vdd^2 f quadruples from vdd=1 to vdd=2.
  const auto p00 = grid.results[0][0].total.total_power().si();
  const auto p10 = grid.results[1][0].total.total_power().si();
  EXPECT_NEAR(p10 / p00, 4.0, 1e-9);
}

// --- JobManager -------------------------------------------------------------

TEST(JobManager, LifecycleAndSnapshot) {
  JobManager jobs(1, 16);
  const std::uint64_t id = jobs.submit(
      "dl", "demo", [](const JobManager::Progress& progress) {
        progress(3, 3);
        return JobResult{"table-text", "csv-text"};
      });
  jobs.wait_idle();
  const auto snap = jobs.get(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kDone);
  EXPECT_EQ(snap->done, 3u);
  EXPECT_EQ(snap->total, 3u);
  EXPECT_EQ(snap->result.table, "table-text");
  EXPECT_EQ(snap->result.csv, "csv-text");
  EXPECT_EQ(snap->user, "dl");

  const auto listed = jobs.list("dl");
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].id, id);
  EXPECT_TRUE(jobs.list("nobody").empty());
  EXPECT_FALSE(jobs.get(id + 999).has_value());
}

TEST(JobManager, FailedJobCarriesError) {
  JobManager jobs;
  const std::uint64_t id =
      jobs.submit("dl", "bad", [](const JobManager::Progress&) -> JobResult {
        throw std::runtime_error("sweep exploded");
      });
  jobs.wait_idle();
  const auto snap = jobs.get(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kFailed);
  EXPECT_EQ(snap->error, "sweep exploded");
  EXPECT_EQ(jobs.stats().failed, 1u);
}

TEST(JobManager, CancelQueuedJobNeverRuns) {
  JobManager jobs(1, 16);
  std::atomic<bool> release{false};
  std::atomic<bool> victim_ran{false};
  jobs.submit("dl", "blocker", [&](const JobManager::Progress&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return JobResult{};
  });
  const std::uint64_t victim =
      jobs.submit("dl", "victim", [&](const JobManager::Progress&) {
        victim_ran = true;
        return JobResult{};
      });
  EXPECT_EQ(jobs.cancel(victim), CancelOutcome::kCancelled);
  release = true;
  jobs.wait_idle();
  const auto snap = jobs.get(victim);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kCancelled);
  EXPECT_FALSE(victim_ran.load());
  EXPECT_EQ(jobs.stats().cancelled_total, 1u);
  // Cancelling a finished job is a no-op.
  EXPECT_EQ(jobs.cancel(victim), CancelOutcome::kAlreadyFinished);
  EXPECT_EQ(jobs.cancel(9999), CancelOutcome::kNoSuchJob);
}

TEST(JobManager, CancelRunningJobStopsAtNextProgressPoint) {
  JobManager jobs(1, 16);
  std::atomic<bool> started{false};
  const std::uint64_t id =
      jobs.submit("dl", "long", [&](const JobManager::Progress& progress) {
        for (std::size_t i = 0;; ++i) {
          started = true;
          progress(i, 0);  // throws JobCancelled once the flag is up
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return JobResult{};
      });
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(jobs.cancel(id), CancelOutcome::kRequested);
  jobs.wait_idle();  // returns promptly: the runner was freed
  const auto snap = jobs.get(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kCancelled);
  EXPECT_EQ(snap->error, "job cancelled");
  EXPECT_EQ(jobs.stats().cancelled_total, 1u);
}

TEST(JobManager, DeadlineExpiryFailsTheJob) {
  JobOptions options;
  options.runner_count = 1;
  options.deadline = std::chrono::milliseconds(30);
  JobManager jobs(options);
  const std::uint64_t id =
      jobs.submit("dl", "runaway", [](const JobManager::Progress& progress) {
        for (std::size_t i = 0;; ++i) {
          progress(i, 0);  // throws JobDeadlineExceeded past the budget
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return JobResult{};
      });
  jobs.wait_idle();
  const auto snap = jobs.get(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kFailed);
  EXPECT_EQ(snap->error, "deadline exceeded");
  EXPECT_EQ(jobs.stats().deadline_expired_total, 1u);
}

TEST(JobManager, DrainCancelsEverythingAndRejectsNewWork) {
  JobManager jobs(1, 16);
  std::atomic<bool> started{false};
  const std::uint64_t running =
      jobs.submit("dl", "running", [&](const JobManager::Progress& progress) {
        for (std::size_t i = 0;; ++i) {
          started = true;
          progress(i, 0);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return JobResult{};
      });
  const std::uint64_t queued = jobs.submit(
      "dl", "queued", [](const JobManager::Progress&) { return JobResult{}; });
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  jobs.drain();
  EXPECT_EQ(jobs.get(running)->status, JobStatus::kCancelled);
  EXPECT_EQ(jobs.get(queued)->status, JobStatus::kCancelled);
  // Post-drain submissions are admitted but immediately cancelled.
  const std::uint64_t late = jobs.submit(
      "dl", "late", [](const JobManager::Progress&) { return JobResult{}; });
  const auto snap = jobs.get(late);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kCancelled);
  EXPECT_EQ(jobs.stats().cancelled_total, 3u);
}

TEST(JobManager, CancelledSweepFreesItsRunner) {
  // End-to-end through the engine: the Progress wrapper's exception has
  // to propagate out of parallel_for / TaskGroup and stop the sweep
  // within one point's granularity.
  EvalEngine engine({{2, 64}, 1024});
  JobManager jobs(1, 16);
  const sheet::Design d = adder_design();
  std::atomic<bool> started{false};
  const std::uint64_t id = jobs.submit(
      "dl", "sweep", [&](const JobManager::Progress& progress) {
        const auto points = engine.sweep_global(
            d, "vdd", sheet::linspace(1.0, 3.0, 400),
            [&](std::size_t done, std::size_t total) {
              started = true;
              progress(done, total);
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            });
        return JobResult{"done", "done"};
      });
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  jobs.cancel(id);
  jobs.wait_idle();
  const auto snap = jobs.get(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, JobStatus::kCancelled);
  // The freed runner picks up new work.
  const std::uint64_t next = jobs.submit(
      "dl", "after", [](const JobManager::Progress&) { return JobResult{}; });
  jobs.wait_idle();
  EXPECT_EQ(jobs.get(next)->status, JobStatus::kDone);
}

TEST(JobManager, RetainedHistoryIsBounded) {
  JobManager jobs(1, 4);
  for (int i = 0; i < 10; ++i) {
    jobs.submit("dl", "j" + std::to_string(i),
                [](const JobManager::Progress&) { return JobResult{}; });
  }
  jobs.wait_idle();
  // Submission trims finished records down to the retention bound; the
  // last submit may still have been running at its own trim point, so
  // allow the bound itself.
  EXPECT_LE(jobs.list("dl").size(), 4u);
  // The newest job is always still visible.
  const auto listed = jobs.list("dl");
  ASSERT_FALSE(listed.empty());
  EXPECT_EQ(listed.front().description, "j9");
}

}  // namespace
}  // namespace powerplay::engine
