// Tests of the incremental HTTP request parser and the server's
// keep-alive fast path built on it: pipelined requests, one-byte-at-a-
// time and torn reads, oversized/malformed input, keep-alive semantics,
// per-connection request limits and idle timeouts.
#include "web/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "web/client.hpp"
#include "web/server.hpp"

namespace powerplay::web {
namespace {

using State = RequestParser::State;

State feed(RequestParser& p, const std::string& bytes) {
  return p.feed(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------------
// RequestParser unit tests
// ---------------------------------------------------------------------------

TEST(RequestParser, SingleRequestAllAtOnce) {
  RequestParser p;
  ASSERT_EQ(feed(p, "GET /menu?user=al HTTP/1.1\r\nhost: x\r\n\r\n"),
            State::kReady);
  const Request r = p.take();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/menu?user=al");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.headers.at("host"), "x");
  EXPECT_EQ(p.state(), State::kNeedMore);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(RequestParser, OneByteAtATime) {
  const std::string wire =
      "POST /design/play HTTP/1.1\r\n"
      "content-type: application/x-www-form-urlencoded\r\n"
      "content-length: 11\r\n\r\n"
      "user=al&x=1";
  RequestParser p;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(p.feed(&wire[i], 1), State::kNeedMore) << "at byte " << i;
    EXPECT_TRUE(p.partial());
  }
  ASSERT_EQ(p.feed(&wire[wire.size() - 1], 1), State::kReady);
  const Request r = p.take();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.body, "user=al&x=1");
  EXPECT_EQ(r.all_params().at("user"), "al");
}

TEST(RequestParser, TornHeaderTerminator) {
  // Split right inside the \r\n\r\n — the resumed scan must still see it.
  RequestParser p;
  ASSERT_EQ(feed(p, "GET / HTTP/1.1\r\nhost: y\r\n"), State::kNeedMore);
  ASSERT_EQ(feed(p, "\r"), State::kNeedMore);
  ASSERT_EQ(feed(p, "\n"), State::kReady);
  EXPECT_EQ(p.take().headers.at("host"), "y");
}

TEST(RequestParser, TornBody) {
  RequestParser p;
  ASSERT_EQ(feed(p, "POST /x HTTP/1.1\r\ncontent-length: 6\r\n\r\nabc"),
            State::kNeedMore);
  EXPECT_TRUE(p.partial());
  ASSERT_EQ(feed(p, "def"), State::kReady);
  EXPECT_EQ(p.take().body, "abcdef");
}

TEST(RequestParser, BodyBytesAreCountedNotScanned) {
  // A body that contains the header terminator must not confuse framing.
  RequestParser p;
  ASSERT_EQ(feed(p, "POST /x HTTP/1.1\r\ncontent-length: 8\r\n\r\n"
                    "ab\r\n\r\ncd"),
            State::kReady);
  EXPECT_EQ(p.take().body, "ab\r\n\r\ncd");
}

TEST(RequestParser, PipelinedRequestsFrameInOrder) {
  RequestParser p;
  ASSERT_EQ(feed(p,
                 "GET /first HTTP/1.1\r\n\r\n"
                 "POST /second HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi"
                 "GET /third HTTP/1.1\r\n\r\n"),
            State::kReady);
  EXPECT_EQ(p.take().target, "/first");
  // take() re-framed the surplus: the next request is ready immediately.
  ASSERT_EQ(p.state(), State::kReady);
  const Request second = p.take();
  EXPECT_EQ(second.target, "/second");
  EXPECT_EQ(second.body, "hi");
  ASSERT_EQ(p.state(), State::kReady);
  EXPECT_EQ(p.take().target, "/third");
  EXPECT_EQ(p.state(), State::kNeedMore);
  EXPECT_FALSE(p.partial());
}

TEST(RequestParser, SurplusPartialPrefixResumesAfterTake) {
  RequestParser p;
  ASSERT_EQ(feed(p, "GET /a HTTP/1.1\r\n\r\nGET /b HT"), State::kReady);
  EXPECT_EQ(p.take().target, "/a");
  // The trailing prefix of /b is buffered but incomplete.
  EXPECT_EQ(p.state(), State::kNeedMore);
  EXPECT_TRUE(p.partial());
  ASSERT_EQ(feed(p, "TP/1.1\r\n\r\n"), State::kReady);
  EXPECT_EQ(p.take().target, "/b");
}

TEST(RequestParser, FeedWhileReadyBuffersWithoutReframing) {
  RequestParser p;
  ASSERT_EQ(feed(p, "GET /a HTTP/1.1\r\n\r\n"), State::kReady);
  // More bytes while a request is ready just accumulate.
  ASSERT_EQ(feed(p, "GET /b HTTP/1.1\r\n\r\n"), State::kReady);
  EXPECT_EQ(p.take().target, "/a");
  ASSERT_EQ(p.state(), State::kReady);
  EXPECT_EQ(p.take().target, "/b");
}

TEST(RequestParser, OversizedRequestLineRejected) {
  // A request line that streams past the header cap without ever
  // producing a CRLF must be rejected, not buffered forever.
  RequestParser p;
  const std::string chunk(1024, 'a');
  State s = feed(p, "GET /");
  for (int i = 0; i < 70 && s == State::kNeedMore; ++i) s = feed(p, chunk);
  ASSERT_EQ(s, State::kError);
  EXPECT_NE(p.error().find("exceeds"), std::string::npos) << p.error();
}

TEST(RequestParser, OversizedHeadersRejected) {
  // Terminated head, but bigger than the cap.
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; wire.size() <= kMaxHeaderBytes; ++i) {
    wire += "x-filler-" + std::to_string(i) + ": " + std::string(200, 'v') +
            "\r\n";
  }
  wire += "\r\n";
  RequestParser p;
  ASSERT_EQ(feed(p, wire), State::kError);
  EXPECT_NE(p.error().find("exceeds"), std::string::npos) << p.error();
}

TEST(RequestParser, BadContentLengthRejected) {
  {
    RequestParser p;
    EXPECT_EQ(feed(p, "POST / HTTP/1.1\r\ncontent-length: abc\r\n\r\n"),
              State::kError);
  }
  {
    // stoull wraps "-1" to 2^64-1; the message cap must still catch it.
    RequestParser p;
    EXPECT_EQ(feed(p, "POST / HTTP/1.1\r\ncontent-length: -1\r\n\r\n"),
              State::kError);
  }
}

TEST(RequestParser, MalformedInputRejectedAndTerminal) {
  RequestParser p;
  ASSERT_EQ(feed(p, "\r\n\r\n"), State::kError);
  // A malformed stream has no resync point: the state is terminal.
  EXPECT_EQ(feed(p, "GET / HTTP/1.1\r\n\r\n"), State::kError);
}

TEST(RequestParser, KeepAliveSemantics) {
  EXPECT_TRUE(parse_request("GET / HTTP/1.1\r\n\r\n").keep_alive());
  EXPECT_FALSE(parse_request("GET / HTTP/1.0\r\n\r\n").keep_alive());
  EXPECT_FALSE(
      parse_request("GET / HTTP/1.1\r\nconnection: close\r\n\r\n")
          .keep_alive());
  EXPECT_TRUE(
      parse_request("GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n")
          .keep_alive());
}

TEST(RequestParser, ResponseWireCarriesDateCharsetAndLength) {
  const std::string wire = to_wire(Response::ok_text("hello"));
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-type: text/plain; charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("content-length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("date: "), std::string::npos);
  EXPECT_NE(wire.find("GMT\r\n"), std::string::npos);
  // Round-trip: the client-side parser strips the charset parameter.
  const Response parsed = parse_response(wire);
  EXPECT_EQ(parsed.content_type, "text/plain");
  EXPECT_EQ(parsed.body, "hello");
  EXPECT_FALSE(parsed.headers.at("date").empty());
}

// ---------------------------------------------------------------------------
// Server-level keep-alive behavior
// ---------------------------------------------------------------------------

struct KeepAliveFixture : ::testing::Test {
  std::unique_ptr<HttpServer> server;

  void start(ServerOptions options = {}) {
    server = std::make_unique<HttpServer>(
        0,
        [](const Request& r) {
          Response resp = Response::ok_text("target=" + r.target + "\n");
          if (!r.body.empty()) resp.body += "body=" + r.body + "\n";
          return resp;
        },
        options);
    server->start();
  }

  void TearDown() override {
    if (server) server->stop();
  }
};

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  return fd;
}

void raw_send(int fd, const std::string& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
}

/// Read exactly `n` complete HTTP responses off the socket.
std::vector<Response> raw_read_responses(int fd, std::size_t n) {
  std::vector<Response> out;
  std::string acc;
  char buf[4096];
  while (out.size() < n) {
    const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
    if (got <= 0) break;
    acc.append(buf, static_cast<std::size_t>(got));
    for (auto size = message_size(acc); size.has_value();
         size = message_size(acc)) {
      out.push_back(parse_response(acc.substr(0, *size)));
      acc.erase(0, *size);
      if (out.size() == n) break;
    }
  }
  return out;
}

TEST_F(KeepAliveFixture, OneConnectionServesManyRequests) {
  start();
  HttpConnection conn(server->port());
  for (int i = 0; i < 10; ++i) {
    const Response r = conn.get("/req" + std::to_string(i));
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "target=/req" + std::to_string(i) + "\n");
    EXPECT_EQ(r.headers.at("connection"), "keep-alive");
  }
  EXPECT_TRUE(conn.connected());
  EXPECT_EQ(server->requests_served(), 10u);
  // One physical connection got reused; counted once.
  EXPECT_EQ(server->connections_reused(), 1u);
}

TEST_F(KeepAliveFixture, KeepAliveLimitAnnouncesAndCloses) {
  ServerOptions options;
  options.max_keepalive_requests = 2;
  start(options);
  HttpConnection conn(server->port());
  EXPECT_EQ(conn.get("/a").headers.at("connection"), "keep-alive");
  // The limit-reaching response announces the close...
  EXPECT_EQ(conn.get("/b").headers.at("connection"), "close");
  // ...and the client observes the closed socket.
  EXPECT_FALSE(conn.connected());
  // A fresh roundtrip transparently reconnects.
  EXPECT_EQ(conn.get("/c").status, 200);
}

TEST_F(KeepAliveFixture, PipelinedRequestsAnswerInOrder) {
  start();
  const int fd = raw_connect(server->port());
  raw_send(fd,
           "GET /one HTTP/1.1\r\n\r\n"
           "GET /two HTTP/1.1\r\n\r\n"
           "GET /three HTTP/1.1\r\n\r\n");
  const auto responses = raw_read_responses(fd, 3);
  ::close(fd);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].body, "target=/one\n");
  EXPECT_EQ(responses[1].body, "target=/two\n");
  EXPECT_EQ(responses[2].body, "target=/three\n");
}

TEST_F(KeepAliveFixture, Http10ConnectionClosesAfterOneResponse) {
  start();
  const int fd = raw_connect(server->port());
  raw_send(fd, "GET /old HTTP/1.0\r\n\r\n");
  const auto responses = raw_read_responses(fd, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].headers.at("connection"), "close");
  // The server closes; the next read sees EOF.
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
}

TEST_F(KeepAliveFixture, TornRequestIsResumedNotRejected) {
  start();
  const int fd = raw_connect(server->port());
  raw_send(fd, "GET /torn HTT");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  raw_send(fd, "P/1.1\r\n\r\n");
  const auto responses = raw_read_responses(fd, 1);
  ::close(fd);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].body, "target=/torn\n");
  EXPECT_GE(server->parser_resumes(), 1u);
}

TEST_F(KeepAliveFixture, IdleKeepAliveConnectionClosesSilently) {
  ServerOptions options;
  options.keepalive_idle_timeout = std::chrono::milliseconds(60);
  start(options);
  HttpConnection conn(server->port());
  ASSERT_EQ(conn.get("/a").status, 200);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // The server reaped the idle connection: the next roundtrip fails...
  EXPECT_THROW(conn.roundtrip(Request{}), HttpError);
  // ...but an idle close between requests is not a timeout condition.
  EXPECT_EQ(server->timeouts(), 0u);
}

TEST_F(KeepAliveFixture, MalformedPipelineGets400) {
  start();
  const int fd = raw_connect(server->port());
  raw_send(fd, "NOT-HTTP\r\n\r\n");
  const auto responses = raw_read_responses(fd, 1);
  ::close(fd);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 400);
}

}  // namespace
}  // namespace powerplay::web
