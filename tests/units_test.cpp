// Tests for the dimensional-analysis layer: every power computation in
// the library rides on these operators, so their algebra must be exact.
#include "units/units.hpp"

#include <gtest/gtest.h>

namespace powerplay::units {
namespace {

using namespace units::literals;

TEST(Units, LiteralsProduceSiValues) {
  EXPECT_DOUBLE_EQ((1.5_V).si(), 1.5);
  EXPECT_DOUBLE_EQ((250.0_mV).si(), 0.25);
  EXPECT_DOUBLE_EQ((253.0_fF).si(), 253e-15);
  EXPECT_DOUBLE_EQ((2.0_pF).si(), 2e-12);
  EXPECT_DOUBLE_EQ((100.0_uW).si(), 1e-4);
  EXPECT_DOUBLE_EQ((2_MHz).si(), 2e6);
  EXPECT_DOUBLE_EQ((3.0_nJ).si(), 3e-9);
  EXPECT_DOUBLE_EQ((10_ns).si(), 1e-8);
  EXPECT_DOUBLE_EQ((1.0_mm2).si(), 1e-6);
}

TEST(Units, CapacitanceTimesVoltageSquaredIsEnergy) {
  const Capacitance c = 100.0_fF;
  const Voltage v = 2.0_V;
  const Energy e = c * v * v;
  EXPECT_DOUBLE_EQ(e.si(), 100e-15 * 4.0);
}

TEST(Units, EnergyTimesFrequencyIsPower) {
  const Energy e = 1.0_pJ;
  const Frequency f = 2_MHz;
  const Power p = e * f;
  EXPECT_DOUBLE_EQ(p.si(), 2e-6);
}

TEST(Units, CurrentTimesVoltageIsPower) {
  const Power p = 2_mA * 3.0_V;
  EXPECT_DOUBLE_EQ(p.si(), 6e-3);
}

TEST(Units, PowerDividedByVoltageIsCurrent) {
  const Current i = Power{6.0} / Voltage{3.0};
  EXPECT_DOUBLE_EQ(i.si(), 2.0);
}

TEST(Units, OhmsLawRoundTrip) {
  const Resistance r = Voltage{5.0} / Current{0.01};
  EXPECT_DOUBLE_EQ(r.si(), 500.0);
  const Conductance g = 1.0 / r;
  EXPECT_DOUBLE_EQ(g.si(), 0.002);
}

TEST(Units, AdditiveOperators) {
  Power p = 1.0_mW;
  p += 2.0_mW;
  EXPECT_DOUBLE_EQ(p.si(), 3e-3);
  p -= 1.0_mW;
  EXPECT_DOUBLE_EQ(p.si(), 2e-3);
  EXPECT_DOUBLE_EQ((-p).si(), -2e-3);
  EXPECT_DOUBLE_EQ((p * 2.0).si(), 4e-3);
  EXPECT_DOUBLE_EQ((2.0 * p).si(), 4e-3);
  EXPECT_DOUBLE_EQ((p / 2.0).si(), 1e-3);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(1.0_uW, 1.0_mW);
  EXPECT_GT(2.0_V, 250.0_mV);
  EXPECT_EQ(Power{0.001}, 1.0_mW);
}

TEST(Units, DimensionlessRatio) {
  const Scalar ratio = Voltage{3.0} / Voltage{1.5};
  EXPECT_DOUBLE_EQ(ratio.si(), 2.0);
}

TEST(UnitsFormat, PicksEngineeringPrefix) {
  EXPECT_EQ(format_si(6.438e-5, "W"), "64.38 uW");
  EXPECT_EQ(format_si(1.5, "V"), "1.500 V");
  EXPECT_EQ(format_si(2e6, "Hz"), "2.000 MHz");
  EXPECT_EQ(format_si(253e-15, "F"), "253.0 fF");
  EXPECT_EQ(format_si(0.0, "W"), "0 W");
}

TEST(UnitsFormat, NegativeValues) {
  EXPECT_EQ(format_si(-1.5e-3, "A"), "-1.500 mA");
}

TEST(UnitsFormat, VerySmallFallsToSmallestPrefix) {
  EXPECT_EQ(format_si(2e-19, "F"), "0.2000 aF");
}

TEST(UnitsFormat, ToStringOverloads) {
  EXPECT_EQ(to_string(Power{1e-4}), "100.0 uW");
  EXPECT_EQ(to_string(Capacitance{1e-12}), "1.000 pF");
  EXPECT_EQ(to_string(Frequency{125e3}), "125.0 kHz");
  EXPECT_EQ(to_string(Voltage{1.5}), "1.500 V");
}

TEST(UnitsFormat, AreaUsesSquaredPrefixes) {
  EXPECT_EQ(format_area(2.458e-6), "2.458 mm^2");
  EXPECT_EQ(format_area(1.5e-10), "150.0 um^2");
  EXPECT_EQ(format_area(9e-18), "9.000 nm^2");
  EXPECT_EQ(format_area(2.0), "2.000 m^2");
  EXPECT_EQ(format_area(0.0), "0 m^2");
  EXPECT_EQ(to_string(Area{1e-6}), "1.000 mm^2");
}

TEST(Units, ThermalVoltageConstant) {
  EXPECT_NEAR(kThermalVoltage300K.si(), 0.02585, 1e-6);
}

}  // namespace
}  // namespace powerplay::units
