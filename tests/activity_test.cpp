// Tests for the dual-bit-type activity model (signal-correlation
// refinement of the library's conservative uncorrelated default).
#include "models/activity.hpp"

#include <gtest/gtest.h>

#include "models/berkeley_library.hpp"
#include "sheet/design.hpp"

namespace powerplay::models {
namespace {

TEST(Dbt, LsbRegionIsHalf) { EXPECT_DOUBLE_EQ(dbt_lsb_activity(), 0.5); }

TEST(Dbt, SignActivityArcCosLaw) {
  // rho = 0: signs independent -> flips half the time.
  EXPECT_NEAR(dbt_sign_activity(0.0), 0.5, 1e-12);
  // Strong positive correlation: rarely flips.
  EXPECT_LT(dbt_sign_activity(0.99), 0.05);
  // Strong negative correlation: flips nearly every sample.
  EXPECT_GT(dbt_sign_activity(-0.99), 0.95);
  // Monotone decreasing in rho.
  double prev = 1.1;
  for (double rho : {-0.9, -0.5, 0.0, 0.5, 0.9}) {
    const double a = dbt_sign_activity(rho);
    EXPECT_LT(a, prev);
    prev = a;
  }
  EXPECT_THROW(dbt_sign_activity(1.0), expr::ExprError);
  EXPECT_THROW(dbt_sign_activity(-1.0), expr::ExprError);
}

TEST(Dbt, Breakpoints) {
  EXPECT_NEAR(dbt_breakpoint_low(256.0), 8.0, 1e-12);
  EXPECT_THROW(dbt_breakpoint_low(0.0), expr::ExprError);
  // BP1 above BP0, gap shrinks with correlation.
  const double gap_uncorr =
      dbt_breakpoint_high(256, 0.0) - dbt_breakpoint_low(256);
  const double gap_corr =
      dbt_breakpoint_high(256, 0.95) - dbt_breakpoint_low(256);
  EXPECT_GT(gap_uncorr, 0.0);
  EXPECT_GT(gap_uncorr, gap_corr);
}

TEST(Dbt, UncorrelatedWideSignalApproachesHalf) {
  // When sigma fills the word, every bit is in the uniform region.
  EXPECT_NEAR(dbt_word_activity(16, 65536.0, 0.0), 0.5, 1e-12);
}

TEST(Dbt, CorrelatedNarrowSignalWellBelowHalf) {
  // Narrow, slowly varying signal in a wide word: sign bits dominate and
  // barely toggle.
  const double a = dbt_word_activity(16, 16.0, 0.95);
  EXPECT_LT(a, 0.25);
  EXPECT_GT(a, 0.0);
}

TEST(Dbt, ActivityMonotoneInCorrelation) {
  double prev = 1.0;
  for (double rho : {0.0, 0.3, 0.6, 0.9, 0.99}) {
    const double a = dbt_word_activity(16, 64.0, rho);
    EXPECT_LE(a, prev) << rho;
    prev = a;
  }
}

TEST(Dbt, AlphaIsActivityRelativeToUncorrelated) {
  EXPECT_NEAR(dbt_alpha(16, 65536.0, 0.0), 1.0, 1e-12);
  EXPECT_LT(dbt_alpha(16, 16.0, 0.9), 1.0);
  EXPECT_THROW(dbt_word_activity(0, 16, 0.5), expr::ExprError);
}

TEST(Dbt, RegisteredSheetFunctionDrivesAlpha) {
  // The paper's Figure 2 note: neglecting correlations is conservative.
  // Feeding dbt_alpha into the adder's alpha must reduce the estimate.
  const auto lib = berkeley_library();
  sheet::Design d("correlated");
  dbt_register(d);
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  auto& row = d.add_row("Adder", lib.find_shared("ripple_adder"));
  row.params.set("bitwidth", 16.0);
  row.params.set_formula("alpha", "dbt_alpha(16, 64, 0.9)");
  const auto r = d.play();

  sheet::Design base("uncorrelated");
  base.globals().set("vdd", 1.5);
  base.globals().set("f", 1e6);
  base.add_row("Adder", lib.find_shared("ripple_adder"))
      .params.set("bitwidth", 16.0);
  const auto rb = base.play();

  EXPECT_LT(r.total.total_power().si(), rb.total.total_power().si());
  EXPECT_GT(r.total.total_power().si(), 0.0);
}

TEST(Dbt, SheetFunctionArgumentErrors) {
  sheet::Design d("bad");
  dbt_register(d);
  d.globals().set("vdd", 1.5);
  const auto lib = berkeley_library();
  auto& row = d.add_row("A", lib.find_shared("ripple_adder"));
  row.params.set_formula("alpha", "dbt_alpha(16, 64)");  // missing rho
  EXPECT_THROW(d.play(), expr::ExprError);
}

TEST(Dbt, CannotShadowBuiltins) {
  sheet::Design d("clash");
  EXPECT_THROW(
      d.add_function("max", [](const std::vector<expr::Value>&) {
        return 0.0;
      }),
      expr::ExprError);
  EXPECT_THROW(
      d.add_function("rowpower", [](const std::vector<expr::Value>&) {
        return 0.0;
      }),
      expr::ExprError);
}

}  // namespace
}  // namespace powerplay::models
