// Tests for model access across the network (Figures 6 and 7): multiple
// PowerPlay sites on loopback, remote model import, and the SMTP-hub
// baseline simulation.
#include "web/remote.hpp"

#include <filesystem>

#include <gtest/gtest.h>

#include "sheet/design.hpp"
#include "models/berkeley_library.hpp"
#include "web/app.hpp"
#include "web/client.hpp"
#include "web/server.hpp"

namespace powerplay::web {
namespace {

namespace fs = std::filesystem;
using namespace units::literals;

/// One PowerPlay site: store + app + server on a loopback port.
struct Site {
  fs::path dir;
  std::unique_ptr<PowerPlayApp> app;
  std::unique_ptr<HttpServer> server;

  explicit Site(const std::string& tag) {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("pp_site_" + tag + "_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    fs::create_directories(dir);
    app = std::make_unique<PowerPlayApp>(library::LibraryStore(dir));
    server = std::make_unique<HttpServer>(
        0, [this](const Request& r) { return app->handle(r); });
    server->start();
  }
  ~Site() {
    server->stop();
    fs::remove_all(dir);
  }
  [[nodiscard]] std::uint16_t port() const { return server->port(); }

  void publish_model(const std::string& name, const std::string& equation,
                     bool proprietary = false) {
    model::UserModelDefinition def;
    def.name = name;
    def.category = model::Category::kComputation;
    def.params = {{"k", "scale", 1.0, "", 0, 1e6, false}};
    def.c_fullswing = equation;
    app->store().save_model(def, proprietary);
  }
};

TEST(Remote, ListAndFetchModel) {
  Site berkeley("berkeley");
  berkeley.publish_model("ucb_dct", "k * 120e-15");

  RemoteLibrary remote(berkeley.port());
  const auto names = remote.list_models();
  ASSERT_EQ(names, (std::vector<std::string>{"ucb_dct"}));
  const auto def = remote.fetch_model("ucb_dct");
  EXPECT_EQ(def.c_fullswing, "k * 120e-15");
  EXPECT_EQ(remote.round_trips(), 2);
}

TEST(Remote, ImportedModelUsableInLocalDesign) {
  // The Figure 6 scenario: a model characterized at the Berkeley site is
  // used in a design computed at the "MIT" site.
  Site berkeley("b2");
  berkeley.publish_model("ucb_dct", "k * 120e-15");

  model::ModelRegistry local = models::berkeley_library();
  RemoteLibrary remote(berkeley.port());
  remote.import_model("ucb_dct", local);
  ASSERT_TRUE(local.contains("ucb_dct"));

  sheet::Design d("mit_design");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  auto& row = d.add_row("DCT", local.find_shared("ucb_dct"));
  row.params.set("k", 10.0);
  const auto r = d.play();
  EXPECT_NEAR(r.total.total_power().si(), 10 * 120e-15 * 2.25 * 1e6, 1e-15);
}

TEST(Remote, ProprietaryModelsRefused) {
  Site site("prop");
  site.publish_model("open_one", "k * 1e-15");
  site.publish_model("secret_one", "k * 1e-15", /*proprietary=*/true);

  RemoteLibrary remote(site.port());
  const auto names = remote.list_models();
  EXPECT_EQ(names, (std::vector<std::string>{"open_one"}));
  EXPECT_THROW(remote.fetch_model("secret_one"), HttpError);
}

TEST(Remote, FetchDesignText) {
  Site site("designs");
  sheet::Design d("shared_design");
  d.globals().set("vdd", 1.5);
  d.add_row("R", site.app->registry().find_shared("register"));
  site.app->store().save_design(d);

  RemoteLibrary remote(site.port());
  EXPECT_EQ(remote.list_designs(),
            (std::vector<std::string>{"shared_design"}));
  const std::string text = remote.fetch_design_text("shared_design");
  // Parse against the local library: full design mobility.
  const sheet::Design back =
      library::parse_design(text, site.app->registry(), nullptr);
  EXPECT_EQ(back.name(), "shared_design");
}

TEST(Remote, ThreeSiteScenario) {
  // Figure 6: one user, models from two remote sites at once.
  Site motorola("moto");
  Site berkeley("ucb");
  motorola.publish_model("moto_mac", "k * 300e-15");
  berkeley.publish_model("ucb_filter", "k * 80e-15");

  model::ModelRegistry local;  // the user's (empty) local library
  RemoteLibrary moto(motorola.port());
  RemoteLibrary ucb(berkeley.port());
  moto.import_model("moto_mac", local);
  ucb.import_model("ucb_filter", local);

  sheet::Design d("multi_site");
  d.globals().set("vdd", 2.0);
  d.globals().set("f", 1e6);
  d.add_row("MAC", local.find_shared("moto_mac")).params.set("k", 1.0);
  d.add_row("FIR", local.find_shared("ucb_filter")).params.set("k", 1.0);
  const auto r = d.play();
  EXPECT_NEAR(r.total.total_power().si(), (300e-15 + 80e-15) * 4.0 * 1e6,
              1e-15);
}

TEST(Remote, MissingModel404SurfacesAsError) {
  Site site("missing");
  RemoteLibrary remote(site.port());
  EXPECT_THROW(remote.fetch_model("nope"), HttpError);
}

// --- Hub chain baseline -------------------------------------------------------

TEST(HubChain, MessageCountGrowsWithHops) {
  const std::string payload = "model \"x\" { }";
  // 0 hubs: direct requester->provider->requester = 2 messages.
  EXPECT_EQ(HubChain(0, 50.0_ms, 0.0_ms).transfer(payload).messages, 2);
  // Each hub adds one extra leg in each direction.
  EXPECT_EQ(HubChain(1, 50.0_ms, 0.0_ms).transfer(payload).messages, 4);
  EXPECT_EQ(HubChain(3, 50.0_ms, 0.0_ms).transfer(payload).messages, 8);
}

TEST(HubChain, LatencyAccountsForHandlingAndPolling) {
  const auto r = HubChain(2, 50.0_ms, 100.0_ms).transfer("x");
  // 2 hubs, visited in both directions: 4 handlings.
  // Each handling: 50 ms + 100/2 ms = 100 ms -> 400 ms total.
  EXPECT_NEAR(r.latency.si(), 0.4, 1e-9);
}

TEST(HubChain, PayloadDeliveredIntact) {
  const std::string payload(10000, 'm');
  EXPECT_EQ(HubChain(4, 1.0_ms, 2.0_ms).transfer(payload).payload, payload);
}

TEST(HubChain, HttpBeatsHubsOnBothMetrics) {
  // The Figure 7 claim in executable form: on-demand HTTP needs fewer
  // messages and (with store-and-forward hub handling at mail-hub time
  // scales) far less latency than the relay scheme.
  Site site("proto");
  site.publish_model("m", "k * 1e-15");
  const HttpFetchResult http = timed_fetch(site.port(), "/api/model?name=m");
  const HubTransferResult hub =
      HubChain(2, 50.0_ms, 100.0_ms).transfer("model m ...");
  EXPECT_LT(http.messages, hub.messages);
  EXPECT_LT(http.latency.si(), hub.latency.si());
}

}  // namespace
}  // namespace powerplay::web
