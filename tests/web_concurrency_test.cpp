// Concurrency tests of the web application: many client threads
// hammering a live HttpServer with a mix of per-user mutations and
// shared-library reads, plus the async sweep-job flow end to end.
// These are the tests the `web_tsan` target runs under ThreadSanitizer
// (POWERPLAY_SANITIZE=thread) to prove the session/library locking and
// the engine's executor, cache and job manager are race-free.
#include "web/app.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "web/client.hpp"
#include "web/server.hpp"

namespace powerplay::web {
namespace {

namespace fs = std::filesystem;

struct ConcurrencyFixture : ::testing::Test {
  fs::path dir;
  std::unique_ptr<PowerPlayApp> app;
  std::unique_ptr<HttpServer> server;

  void SetUp() override {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("pp_conc_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    fs::create_directories(dir);
    app = std::make_unique<PowerPlayApp>(library::LibraryStore(dir));
    ServerOptions options;
    options.worker_count = 8;  // real request concurrency
    server = std::make_unique<HttpServer>(
        0, [this](const Request& r) { return app->handle(r); }, options);
    app->set_stats_source([this] { return server->stats(); });
    server->start();
  }

  void TearDown() override {
    server->stop();
    fs::remove_all(dir);
  }

  [[nodiscard]] Response get(const std::string& target) const {
    return http_get(server->port(), target);
  }
  [[nodiscard]] Response post(const std::string& path,
                              const Params& form) const {
    return http_post_form(server->port(), path, form);
  }
};

// N client threads, each its own user, interleaving per-user mutations
// (design add/play) with shared reads (library, export API).  Every
// response must be well-formed and belong to the requesting user — a
// cross-user bleed or a torn spreadsheet fails the integrity asserts.
TEST_F(ConcurrencyFixture, ParallelUsersKeepResponseIntegrity) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([this, t, &failures] {
      const std::string user = "user" + std::to_string(t);
      const std::string design = "chip" + std::to_string(t);
      for (int round = 0; round < kRounds; ++round) {
        // Per-user mutation: grow this user's private design.
        const Response add =
            post("/design/add", {{"user", user},
                                 {"model", "register"},
                                 {"design", design},
                                 {"row", "R" + std::to_string(round)},
                                 {"p_bits", "8"},
                                 {"p_f", "1000000"}});
        if (add.status != 200 ||
            add.body.find(design) == std::string::npos ||
            add.body.find("R" + std::to_string(round)) ==
                std::string::npos) {
          ++failures;
        }
        // Per-user recompute with a user-specific voltage.
        const Response play = post(
            "/design/play",
            {{"user", user}, {"name", design}, {"g_vdd", "2.0"}});
        if (play.status != 200 ||
            play.body.find("TOTAL") == std::string::npos) {
          ++failures;
        }
        // Shared reads, concurrent with everyone's mutations.
        const Response menu = get("/menu?user=" + user);
        if (menu.status != 200 ||
            menu.body.find(user) == std::string::npos) {
          ++failures;
        }
        const Response lib = get("/library?user=" + user);
        if (lib.status != 200 ||
            lib.body.find("register") == std::string::npos) {
          ++failures;
        }
        // The export API lists every stored design, this user's included.
        const Response api = get("/api/designs");
        if (api.status != 200 ||
            api.body.find(design) == std::string::npos) {
          ++failures;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  // Every user's design survived with all of its rows.
  for (int t = 0; t < kThreads; ++t) {
    const std::string design = "chip" + std::to_string(t);
    ASSERT_TRUE(app->store().has_design(design)) << design;
    const auto d = app->store().load_design(design, app->registry());
    EXPECT_EQ(d->rows().size(), static_cast<std::size_t>(kRounds));
  }
}

// The async job flow over live HTTP: submit a grid sweep, poll until
// done, fetch the CSV, and see it listed for the user.
TEST_F(ConcurrencyFixture, SweepJobRunsToCompletion) {
  ASSERT_EQ(post("/design/add", {{"user", "dl"},
                                 {"model", "register"},
                                 {"design", "Grid"},
                                 {"row", "Reg"},
                                 {"p_bits", "8"},
                                 {"p_f", "1000000"}})
                .status,
            200);

  const Response submit = post("/design/sweep", {{"user", "dl"},
                                                 {"name", "Grid"},
                                                 {"x_param", "vdd"},
                                                 {"x_from", "1.0"},
                                                 {"x_to", "3.0"},
                                                 {"x_points", "4"},
                                                 {"y_param", "f"},
                                                 {"y_from", "1e6"},
                                                 {"y_to", "4e6"},
                                                 {"y_points", "4"}});
  ASSERT_EQ(submit.status, 200) << submit.body;
  ASSERT_EQ(submit.body.rfind("id: ", 0), 0u) << submit.body;
  const std::string id =
      submit.body.substr(4, submit.body.find('\n') - 4);

  // Poll until done (the grid is tiny; generous timeout for slow CI).
  std::string status;
  for (int i = 0; i < 500; ++i) {
    const Response poll = get("/job?id=" + id);
    ASSERT_EQ(poll.status, 200) << poll.body;
    const auto line = poll.body.find("status: ");
    ASSERT_NE(line, std::string::npos);
    status = poll.body.substr(line + 8,
                              poll.body.find('\n', line) - line - 8);
    if (status == "done" || status == "failed") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(status, "done");

  const Response done = get("/job?id=" + id);
  EXPECT_NE(done.body.find("progress: 16/16"), std::string::npos)
      << done.body;
  // The result table is the grid matrix headed "x \ y".
  EXPECT_NE(done.body.find("vdd \\ f"), std::string::npos) << done.body;

  const Response csv = get("/job?id=" + id + "&format=csv");
  EXPECT_EQ(csv.status, 200);
  EXPECT_EQ(csv.content_type, "text/csv");
  EXPECT_EQ(csv.body.rfind("vdd,f,total_power_w,energy_per_op_j\n", 0),
            0u)
      << csv.body;
  // Header + 4x4 data lines.
  EXPECT_EQ(std::count(csv.body.begin(), csv.body.end(), '\n'), 17);

  const Response jobs = get("/jobs?user=dl");
  EXPECT_EQ(jobs.status, 200);
  EXPECT_NE(jobs.body.find("sweep Grid: vdd x f"), std::string::npos)
      << jobs.body;
  EXPECT_TRUE(get("/jobs?user=nobody").body.empty());
}

TEST_F(ConcurrencyFixture, SweepJobValidation) {
  post("/design/add", {{"user", "dl"},
                       {"model", "register"},
                       {"design", "V"},
                       {"row", "R"},
                       {"p_bits", "4"},
                       {"p_f", "1000000"}});
  // Typo'd global rejected at submit time, not as a failed job.
  EXPECT_EQ(post("/design/sweep", {{"user", "dl"},
                                   {"name", "V"},
                                   {"x_param", "vdd_typo"},
                                   {"x_from", "1"},
                                   {"x_to", "2"},
                                   {"x_points", "3"}})
                .status,
            400);
  // Unknown design.
  EXPECT_EQ(post("/design/sweep", {{"user", "dl"},
                                   {"name", "NoSuch"},
                                   {"x_param", "vdd"},
                                   {"x_from", "1"},
                                   {"x_to", "2"},
                                   {"x_points", "3"}})
                .status,
            404);
  // Grid + row is a contradiction.
  EXPECT_EQ(post("/design/sweep", {{"user", "dl"},
                                   {"name", "V"},
                                   {"x_param", "vdd"},
                                   {"x_from", "1"},
                                   {"x_to", "2"},
                                   {"x_points", "2"},
                                   {"y_param", "f"},
                                   {"y_from", "1e6"},
                                   {"y_to", "2e6"},
                                   {"y_points", "2"},
                                   {"row", "R"}})
                .status,
            400);
  // Bad and missing job ids.
  EXPECT_EQ(get("/job?id=notanumber").status, 400);
  EXPECT_EQ(get("/job?id=999999").status, 404);
}

// Several users submit sweep jobs at once while others keep reading;
// all jobs finish, none bleed across user listings.
TEST_F(ConcurrencyFixture, ParallelSweepJobs) {
  constexpr int kUsers = 4;
  for (int t = 0; t < kUsers; ++t) {
    const std::string user = "swp" + std::to_string(t);
    ASSERT_EQ(post("/design/add", {{"user", user},
                                   {"model", "register"},
                                   {"design", "D" + std::to_string(t)},
                                   {"row", "R"},
                                   {"p_bits", "8"},
                                   {"p_f", "1000000"}})
                  .status,
              200);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kUsers; ++t) {
    clients.emplace_back([this, t, &failures] {
      const std::string user = "swp" + std::to_string(t);
      const Response submit =
          post("/design/sweep", {{"user", user},
                                 {"name", "D" + std::to_string(t)},
                                 {"x_param", "vdd"},
                                 {"x_from", "1.0"},
                                 {"x_to", "3.0"},
                                 {"x_points", "5"}});
      if (submit.status != 200) {
        ++failures;
        return;
      }
      const std::string id =
          submit.body.substr(4, submit.body.find('\n') - 4);
      for (int i = 0; i < 500; ++i) {
        const Response poll = get("/job?id=" + id);
        if (poll.body.find("status: done") != std::string::npos) {
          const Response jobs = get("/jobs?user=" + user);
          // Exactly this user's one job appears in their listing.
          if (jobs.body.find("sweep D" + std::to_string(t)) ==
                  std::string::npos ||
              jobs.body.find("sweep D" +
                             std::to_string((t + 1) % kUsers)) !=
                  std::string::npos) {
            ++failures;
          }
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      ++failures;  // timed out
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  app->jobs().wait_idle();
}

// Hammer over the lane-batched columnar grid path: several users each
// submit a multi-block grid sweep (crossing the 64-lane block width)
// and poll to completion while workers stream column blocks
// concurrently.  Every table, CSV and JSON payload must come back
// well-formed, and /healthz must account for the batched points.
TEST_F(ConcurrencyFixture, BatchedSweepJobHammer) {
  constexpr int kUsers = 4;
  for (int t = 0; t < kUsers; ++t) {
    const std::string user = "bat" + std::to_string(t);
    ASSERT_EQ(post("/design/add", {{"user", user},
                                   {"model", "register"},
                                   {"design", "B" + std::to_string(t)},
                                   {"row", "R"},
                                   {"p_bits", "8"},
                                   {"p_f", "1000000"}})
                  .status,
              200);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kUsers; ++t) {
    clients.emplace_back([this, t, &failures] {
      const std::string user = "bat" + std::to_string(t);
      // 12x12 = 144 points: several lane blocks per job, user-specific
      // axis ranges so no two jobs share cached state.
      const double lo = 1.0 + 0.1 * t;
      const Response submit = post(
          "/design/sweep",
          {{"user", user},
           {"name", "B" + std::to_string(t)},
           {"x_param", "vdd"},
           {"x_from", std::to_string(lo)},
           {"x_to", std::to_string(lo + 2.0)},
           {"x_points", "12"},
           {"y_param", "f"},
           {"y_from", "1e6"},
           {"y_to", "4e6"},
           {"y_points", "12"}});
      if (submit.status != 200) {
        ++failures;
        return;
      }
      const std::string id =
          submit.body.substr(4, submit.body.find('\n') - 4);
      for (int i = 0; i < 500; ++i) {
        const Response poll = get("/job?id=" + id);
        if (poll.body.find("status: done") != std::string::npos) {
          if (poll.body.find("progress: 144/144") == std::string::npos) {
            ++failures;
          }
          const Response csv = get("/job?id=" + id + "&format=csv");
          // Header + 144 data lines off the column arrays.
          if (csv.status != 200 ||
              std::count(csv.body.begin(), csv.body.end(), '\n') != 145) {
            ++failures;
          }
          const Response json = get("/job?id=" + id + "&format=json");
          if (json.status != 200 ||
              json.body.find("\"power_w\":[") == std::string::npos) {
            ++failures;
          }
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      ++failures;  // timed out
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  app->jobs().wait_idle();

  // The batch substrate served all four grids and /healthz says so.
  const Response health = get("/healthz");
  for (const char* key :
       {"batch_points_total", "batch_lane_width: 64",
        "batch_scalar_fallbacks_total", "columnar_bytes_streamed_total"}) {
    EXPECT_NE(health.body.find(key), std::string::npos) << key;
  }
  const auto counters = app->engine().batch_counters();
  EXPECT_GE(counters.points, static_cast<std::uint64_t>(kUsers) * 144u);
  EXPECT_GT(counters.blocks, 0u);
}

// N threads, each hammering a mixed read workload over ONE persistent
// keep-alive connection.  Every response must be well-formed and match
// its request; the server must actually have reused connections rather
// than silently falling back to close-per-request.
TEST_F(ConcurrencyFixture, KeepAliveHammer) {
  constexpr int kThreads = 6;
  constexpr int kRounds = 20;
  // Seed a design so the read mix has real pages to render.
  ASSERT_EQ(post("/design/add", {{"user", "ka"},
                                 {"model", "register"},
                                 {"design", "KA"},
                                 {"row", "R0"},
                                 {"p_bits", "8"},
                                 {"p_f", "1000000"}})
                .status,
            200);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([this, t, &failures] {
      try {
        HttpConnection conn(server->port());
        for (int round = 0; round < kRounds; ++round) {
          const Response lib = conn.get("/library?user=ka");
          if (lib.status != 200 ||
              lib.body.find("register") == std::string::npos) {
            ++failures;
          }
          const Response design = conn.get("/design?user=ka&name=KA");
          if (design.status != 200 ||
              design.body.find("TOTAL") == std::string::npos) {
            ++failures;
          }
          const Response api = conn.get("/api/designs");
          if (api.status != 200 ||
              api.body.find("KA") == std::string::npos) {
            ++failures;
          }
          (void)t;
        }
      } catch (const HttpError&) {
        ++failures;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server->connections_reused(), static_cast<std::uint64_t>(kThreads));
  EXPECT_GE(server->requests_served(),
            static_cast<std::uint64_t>(kThreads * kRounds * 3));
}

// The response cache serves byte-identical pages with a stable strong
// ETag, answers If-None-Match with 304, and a mutation observably
// invalidates the entry: fresh body, new ETag.
TEST_F(ConcurrencyFixture, ResponseCacheInvalidationOnMutation) {
  ASSERT_EQ(post("/design/add", {{"user", "cv"},
                                 {"model", "register"},
                                 {"design", "CV"},
                                 {"row", "R0"},
                                 {"p_bits", "8"},
                                 {"p_f", "1000000"}})
                .status,
            200);

  const std::string target = "/design/csv?user=cv&name=CV";
  const Response first = get(target);
  ASSERT_EQ(first.status, 200);
  const std::string etag = first.headers.at("etag");
  ASSERT_FALSE(etag.empty());

  // Warm hit: byte-identical body, same ETag.
  const Response second = get(target);
  EXPECT_EQ(second.body, first.body);
  EXPECT_EQ(second.headers.at("etag"), etag);

  // Conditional GET with the matching tag: 304, empty body.
  Request conditional;
  conditional.target = target;
  conditional.headers["if-none-match"] = etag;
  const Response not_modified =
      http_request(server->port(), conditional);
  EXPECT_EQ(not_modified.status, 304);
  EXPECT_TRUE(not_modified.body.empty());
  EXPECT_EQ(not_modified.headers.at("etag"), etag);

  // Mutate the design: the cached entry must not survive.
  ASSERT_EQ(post("/design/play",
                 {{"user", "cv"}, {"name", "CV"}, {"g_vdd", "2.5"}})
                .status,
            200);
  const Response after = get(target);
  ASSERT_EQ(after.status, 200);
  EXPECT_NE(after.body, first.body);       // fresh render, new voltage
  EXPECT_NE(after.headers.at("etag"), etag);  // and a new strong ETag
  // The old tag no longer matches: a conditional GET gets a full 200.
  const Response revalidate = http_request(server->port(), conditional);
  EXPECT_EQ(revalidate.status, 200);
  EXPECT_EQ(revalidate.body, after.body);

  // An unrelated commit (a different user's profile) bumps the store
  // revision; the fingerprint fast path revalidates this entry without
  // a re-render, keeping body and ETag stable.
  ASSERT_EQ(get("/menu?user=bystander").status, 200);
  const Response still = get(target);
  EXPECT_EQ(still.body, after.body);
  EXPECT_EQ(still.headers.at("etag"), after.headers.at("etag"));

  // /healthz reports the new serving counters.
  const Response health = get("/healthz");
  for (const char* key :
       {"connections_reused", "parser_resumes", "responses_cached",
        "etag_304s", "response_cache_entries", "response_cache_bytes"}) {
    EXPECT_NE(health.body.find(key), std::string::npos) << key;
  }
}

// /healthz reports the engine, cache, job-lifecycle and store-
// durability counters.
TEST_F(ConcurrencyFixture, HealthzReportsEngineStats) {
  const Response r = get("/healthz");
  EXPECT_EQ(r.status, 200);
  for (const char* key :
       {"cache_hits", "cache_misses", "cache_evictions", "cache_size",
        "engine_threads", "engine_tasks_executed", "engine_queue_depth",
        "jobs_queued", "jobs_running", "jobs_done", "jobs_failed",
        "jobs_cancelled", "jobs_cancelled_total",
        "jobs_deadline_expired_total", "journal_appends",
        "journal_replayed", "journal_rotations", "snapshot_writes",
        "quarantined_files"}) {
    EXPECT_NE(r.body.find(key), std::string::npos) << key;
  }
}

// Cancel over live HTTP: only the owner may cancel, the terminal
// status is visible via GET /job, and /healthz counts it.
TEST_F(ConcurrencyFixture, JobCancelOverHttp) {
  ASSERT_EQ(post("/design/add", {{"user", "dl"},
                                 {"model", "register"},
                                 {"design", "C"},
                                 {"row", "R"},
                                 {"p_bits", "8"},
                                 {"p_f", "1000000"}})
                .status,
            200);
  // Two sizable grid jobs on the single runner: the first occupies it,
  // the second is the cancel target — either still queued behind the
  // first or (if the first already finished) too big to have completed
  // inside the cancel round trip.
  ASSERT_EQ(post("/design/sweep", {{"user", "dl"},    {"name", "C"},
                                   {"x_param", "vdd"}, {"x_from", "1.0"},
                                   {"x_to", "3.0"},    {"x_points", "64"},
                                   {"y_param", "f"},   {"y_from", "1e6"},
                                   {"y_to", "4e6"},    {"y_points", "64"}})
                .status,
            200);
  // Different axis ranges: no Play-cache hits, so this one cannot race
  // to completion inside the cancel round trip.
  const Response submit =
      post("/design/sweep", {{"user", "dl"},    {"name", "C"},
                             {"x_param", "vdd"}, {"x_from", "0.7"},
                             {"x_to", "2.9"},    {"x_points", "64"},
                             {"y_param", "f"},   {"y_from", "2e6"},
                             {"y_to", "5e6"},    {"y_points", "64"}});
  ASSERT_EQ(submit.status, 200) << submit.body;
  const std::string id = submit.body.substr(4, submit.body.find('\n') - 4);

  // Another user may not cancel it.
  EXPECT_EQ(post("/job/cancel", {{"user", "mallory"}, {"id", id}}).status,
            403);

  const Response cancel = post("/job/cancel", {{"user", "dl"}, {"id", id}});
  ASSERT_EQ(cancel.status, 200) << cancel.body;
  EXPECT_NE(cancel.body.find("status: cancel"), std::string::npos)
      << cancel.body;  // "cancelled" (queued) or "cancelling" (running)

  // The job reaches the terminal cancelled state and frees its runner.
  std::string status;
  for (int i = 0; i < 500; ++i) {
    const Response poll = get("/job?id=" + id);
    const auto line = poll.body.find("status: ");
    ASSERT_NE(line, std::string::npos);
    status =
        poll.body.substr(line + 8, poll.body.find('\n', line) - line - 8);
    if (status != "queued" && status != "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(status, "cancelled");
  app->jobs().wait_idle();

  // Cancelling again reports the job already finished.
  const Response again = post("/job/cancel", {{"user", "dl"}, {"id", id}});
  EXPECT_NE(again.body.find("already finished"), std::string::npos)
      << again.body;
  // Unknown and malformed ids.
  EXPECT_EQ(post("/job/cancel", {{"user", "dl"}, {"id", "424242"}}).status,
            404);
  EXPECT_EQ(post("/job/cancel", {{"user", "dl"}, {"id", "nope"}}).status,
            400);

  const Response health = get("/healthz");
  EXPECT_NE(health.body.find("jobs_cancelled_total: 1"),
            std::string::npos)
      << health.body;
}

}  // namespace
}  // namespace powerplay::web
