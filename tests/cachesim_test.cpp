// Tests for the Dinero-style cache simulator and its energy bridge.
#include "cachesim/cache.hpp"
#include "cachesim/energy.hpp"
#include "cachesim/hierarchy.hpp"
#include "cachesim/trace.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/programs.hpp"
#include "models/berkeley_library.hpp"

namespace powerplay::cachesim {
namespace {

CacheConfig small_config() {
  CacheConfig c;
  c.size_bytes = 256;
  c.block_bytes = 16;
  c.associativity = 2;
  return c;
}

TEST(Config, Validation) {
  EXPECT_NO_THROW(small_config().validate());
  CacheConfig bad = small_config();
  bad.size_bytes = 300;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = small_config();
  bad.block_bytes = 24;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = small_config();
  bad.block_bytes = 512;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = small_config();
  bad.associativity = 3;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Config, Geometry) {
  const CacheConfig c = small_config();
  EXPECT_EQ(c.ways(), 2u);
  EXPECT_EQ(c.num_sets(), 8u);
  CacheConfig fa = small_config();
  fa.associativity = 0;  // fully associative
  EXPECT_EQ(fa.ways(), 16u);
  EXPECT_EQ(fa.num_sets(), 1u);
}

TEST(Cache, ColdMissesThenHits) {
  Cache cache(small_config());
  EXPECT_FALSE(cache.access(0, false));   // cold miss
  EXPECT_TRUE(cache.access(4, false));    // same 16-byte block
  EXPECT_TRUE(cache.access(12, false));
  EXPECT_FALSE(cache.access(16, false));  // next block
  EXPECT_EQ(cache.stats().read_misses, 2u);
  EXPECT_EQ(cache.stats().reads, 4u);
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.5);
}

TEST(Cache, DirectMappedConflict) {
  CacheConfig c = small_config();
  c.associativity = 1;  // 16 sets
  Cache cache(c);
  // Two blocks 256 bytes apart map to the same set.
  EXPECT_FALSE(cache.access(0, false));
  EXPECT_FALSE(cache.access(256, false));
  EXPECT_FALSE(cache.access(0, false));  // evicted: conflict miss
  EXPECT_EQ(cache.stats().read_misses, 3u);
}

TEST(Cache, TwoWayAbsorbsThatConflict) {
  Cache cache(small_config());  // 2-way
  EXPECT_FALSE(cache.access(0, false));
  EXPECT_FALSE(cache.access(128, false));  // same set (8 sets * 16 B)
  EXPECT_TRUE(cache.access(0, false));     // both fit
  EXPECT_TRUE(cache.access(128, false));
}

TEST(Cache, LruEviction) {
  Cache cache(small_config());  // 2-way, set stride 128
  cache.access(0, false);       // A
  cache.access(128, false);     // B
  cache.access(0, false);       // touch A: B is now LRU
  cache.access(256, false);     // C evicts B
  EXPECT_TRUE(cache.access(0, false));     // A still resident
  EXPECT_FALSE(cache.access(128, false));  // B was evicted
}

TEST(Cache, WriteBackDefersMemoryWrites) {
  Cache cache(small_config());
  cache.access(0, true);  // write miss, allocate, dirty
  EXPECT_EQ(cache.stats().memory_writes, 0u);
  // Evict the dirty block via two conflicting fills.
  cache.access(128, false);
  cache.access(256, false);
  cache.access(384, false);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  EXPECT_EQ(cache.stats().memory_writes, 1u);
}

TEST(Cache, WriteThroughWritesEveryTime) {
  CacheConfig c = small_config();
  c.write_back = false;
  Cache cache(c);
  cache.access(0, true);   // miss: allocate + through
  cache.access(0, true);   // hit: through again
  cache.access(4, true);
  EXPECT_EQ(cache.stats().memory_writes, 3u);
  EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, WriteNoAllocateBypasses) {
  CacheConfig c = small_config();
  c.write_allocate = false;
  Cache cache(c);
  EXPECT_FALSE(cache.access(0, true));
  // Block was not allocated: a read still misses.
  EXPECT_FALSE(cache.access(0, false));
  EXPECT_EQ(cache.stats().write_misses, 1u);
  EXPECT_EQ(cache.stats().memory_writes, 1u);
}

TEST(Cache, FlushWritesDirtyLines) {
  Cache cache(small_config());
  cache.access(0, true);
  cache.access(16, true);
  cache.access(32, false);
  cache.flush();
  EXPECT_EQ(cache.stats().writebacks, 2u);
  // After flush everything misses again.
  EXPECT_FALSE(cache.access(0, false));
}

TEST(Cache, SequentialStreamExploitsSpatialLocality) {
  Cache cache(small_config());
  for (std::uint64_t b = 0; b < 1024; b += 4) cache.access(b, false);
  // One miss per 16-byte block: 64 misses out of 256 accesses.
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.25);
}

TEST(Cache, LargeStrideDefeatsTheCache) {
  Cache cache(small_config());
  for (int i = 0; i < 64; ++i) {
    cache.access(static_cast<std::uint64_t>(i) * 4096, false);
  }
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 1.0);
}

TEST(Cache, BiggerCacheNeverMissesMoreOnSameTrace) {
  // Run the merge-sort memory trace through two cache sizes.
  const int n = 256;
  const auto suite = isa::sorting_suite(n);
  const auto run_with = [&](std::uint32_t size_bytes) {
    CacheConfig c;
    c.size_bytes = size_bytes;
    c.block_bytes = 16;
    c.associativity = 2;
    Cache cache(c);
    isa::Machine m(isa::assemble(suite[3].source), suite[3].memory_words + 4);
    isa::load_array(m, isa::random_data(n, 11));
    m.set_mem_observer([&](const isa::MemAccess& a) {
      cache.access(static_cast<std::uint64_t>(a.word_address) * 4,
                   a.is_write);
    });
    m.run(500'000'000);
    return cache.stats();
  };
  const CacheStats small = run_with(256);
  const CacheStats big = run_with(4096);
  EXPECT_EQ(small.accesses(), big.accesses());
  EXPECT_LE(big.misses(), small.misses());
  EXPECT_LT(big.miss_rate(), 0.3);
}

TEST(Hierarchy, RequiresOneLevel) {
  EXPECT_THROW(CacheHierarchy({}), std::invalid_argument);
}

TEST(Hierarchy, SingleLevelMatchesPlainCache) {
  CacheHierarchy h({small_config()});
  Cache plain(small_config());
  for (std::uint64_t a = 0; a < 2048; a += 8) {
    h.access(a, (a / 8) % 3 == 0);
    plain.access(a, (a / 8) % 3 == 0);
  }
  EXPECT_EQ(h.stats(0).misses(), plain.stats().misses());
  EXPECT_EQ(h.memory_accesses(),
            plain.stats().memory_reads + plain.stats().memory_writes);
}

TEST(Hierarchy, L2AbsorbsL1ConflictMisses) {
  CacheConfig l1 = small_config();      // 256 B
  CacheConfig l2 = small_config();
  l2.size_bytes = 8192;                 // 8 KiB
  CacheHierarchy h({l1, l2});

  // Touch a 4 KiB working set twice: first pass fills L2, second pass
  // misses L1 (too small) but hits L2.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 4096; a += 64) h.access(a, false);
  }
  EXPECT_GT(h.stats(0).misses(), 0u);
  EXPECT_GT(h.stats(1).accesses(), 0u);
  // Second pass should have produced zero main-memory traffic.
  EXPECT_EQ(h.memory_accesses(), h.stats(1).memory_reads +
                                     h.stats(1).memory_writes);
  EXPECT_LT(h.stats(1).misses(), h.stats(1).accesses());
}

TEST(Hierarchy, HitLevelReporting) {
  CacheConfig l1 = small_config();
  CacheConfig l2 = small_config();
  l2.size_bytes = 4096;
  CacheHierarchy h({l1, l2});
  EXPECT_EQ(h.access(0, false), 2);  // cold: memory
  EXPECT_EQ(h.access(0, false), 0);  // L1 hit
  // Evict block 0 from L1 with conflicting fills (stride = set span).
  h.access(128, false);
  h.access(256, false);
  h.access(384, false);
  EXPECT_EQ(h.access(0, false), 1);  // back from L2
}

TEST(Hierarchy, FlushCountsFinalWritebacks) {
  CacheHierarchy h({small_config()});
  h.access(0, true);
  h.access(16, true);
  const auto before = h.memory_accesses();
  h.flush();
  EXPECT_EQ(h.memory_accesses(), before + 2);
}

TEST(Hierarchy, EnergyAccountsEveryLevel) {
  const auto lib = models::berkeley_library();
  CacheConfig l1 = small_config();
  CacheConfig l2 = small_config();
  l2.size_bytes = 8192;
  CacheHierarchy two({l1, l2});
  CacheHierarchy one({l1});
  for (std::uint64_t a = 0; a < 4096; a += 16) {
    two.access(a, false);
    one.access(a, false);
  }
  const double e_two = hierarchy_energy(two, lib, 3.3).si();
  const double e_one = hierarchy_energy(one, lib, 3.3).si();
  EXPECT_GT(e_two, 0.0);
  EXPECT_GT(e_one, 0.0);
  // A streaming (no-reuse) scan gains nothing from L2 but pays for it.
  EXPECT_GT(e_two, e_one);
}

TEST(Trace, DinRoundTrip) {
  std::ostringstream out;
  write_din(out, {0x3fc0, TraceRecord::Kind::kRead});
  write_din(out, {0x1000, TraceRecord::Kind::kWrite});
  write_din(out, {0x200, TraceRecord::Kind::kFetch});
  std::istringstream in(out.str());
  const auto trace = read_din(in);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].byte_address, 0x3fc0u);
  EXPECT_EQ(trace[0].kind, TraceRecord::Kind::kRead);
  EXPECT_EQ(trace[1].kind, TraceRecord::Kind::kWrite);
  EXPECT_EQ(trace[2].kind, TraceRecord::Kind::kFetch);
}

TEST(Trace, CommentsAndBlanksSkippedErrorsReported) {
  std::istringstream ok("# header\n\n0 10\n1 20 # inline\n");
  EXPECT_EQ(read_din(ok).size(), 2u);
  std::istringstream bad_label("7 10\n");
  EXPECT_THROW(read_din(bad_label), std::invalid_argument);
  std::istringstream bad_addr("0 zz\n");
  EXPECT_THROW(read_din(bad_addr), std::invalid_argument);
}

TEST(Trace, ReplayMatchesLiveSimulation) {
  // Capture a machine run to a din trace, replay through a fresh cache,
  // and compare against the live-attached cache: identical stats.
  const int n = 128;
  const auto suite = isa::sorting_suite(n);
  Cache live(small_config());
  std::ostringstream din;
  isa::Machine m(isa::assemble(suite[2].source), suite[2].memory_words + 4);
  isa::load_array(m, isa::random_data(n, 3));
  m.set_mem_observer([&](const isa::MemAccess& a) {
    const std::uint64_t byte = std::uint64_t{a.word_address} * 4;
    live.access(byte, a.is_write);
    write_din(din, {byte, a.is_write ? TraceRecord::Kind::kWrite
                                     : TraceRecord::Kind::kRead});
  });
  m.run(500'000'000);

  std::istringstream in(din.str());
  Cache replayed(small_config());
  const auto trace = read_din(in);
  EXPECT_EQ(replay(trace, replayed), trace.size());
  EXPECT_EQ(replayed.stats().reads, live.stats().reads);
  EXPECT_EQ(replayed.stats().writes, live.stats().writes);
  EXPECT_EQ(replayed.stats().misses(), live.stats().misses());
  EXPECT_EQ(replayed.stats().writebacks, live.stats().writebacks);
}

TEST(Stats, Rendering) {
  Cache cache(small_config());
  cache.access(0, false);
  const std::string text = to_string(cache.stats());
  EXPECT_NE(text.find("accesses"), std::string::npos);
  EXPECT_NE(text.find("miss rate"), std::string::npos);
}

TEST(Energy, DerivedFromLibraryModels) {
  const auto lib = models::berkeley_library();
  const auto e = derive_memory_energy(lib, small_config(), 3.3);
  EXPECT_GT(e.cache_access.si(), 0.0);
  // A main-memory block transfer costs more than one cache probe.
  EXPECT_GT(e.memory_access.si(), e.cache_access.si());

  CacheStats stats;
  stats.reads = 100;
  stats.writes = 50;
  stats.memory_reads = 10;
  stats.memory_writes = 5;
  const double total = memory_energy(stats, e).si();
  EXPECT_NEAR(total,
              150 * e.cache_access.si() + 15 * e.memory_access.si(),
              total * 1e-12);
  EXPECT_DOUBLE_EQ(per_miss_energy(e).si(), e.memory_access.si());
}

TEST(Energy, BiggerCacheCostsMorePerAccess) {
  const auto lib = models::berkeley_library();
  CacheConfig big = small_config();
  big.size_bytes = 8192;
  const auto small_e = derive_memory_energy(lib, small_config(), 3.3);
  const auto big_e = derive_memory_energy(lib, big, 3.3);
  EXPECT_GT(big_e.cache_access.si(), small_e.cache_access.si());
}

}  // namespace
}  // namespace powerplay::cachesim
