// Tests pinning the paper's reported results (the reproduction anchors):
// Figure 2's spreadsheet structure, the ~150 uW / ~1:5 Figure 1-vs-3
// comparison, the 100 uW measured chip within an octave, and the
// InfoPad Figure 5 breakdown with its computed converter row.
#include "studies/infopad.hpp"
#include "studies/vq.hpp"

#include <gtest/gtest.h>

#include "models/berkeley_library.hpp"
#include "sheet/report.hpp"
#include "sheet/sweep.hpp"

namespace powerplay::studies {
namespace {

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = models::berkeley_library();
  return registry;
}

TEST(Vq, Impl1HasThePaperRows) {
  const sheet::Design d = make_luminance_impl1(lib());
  for (const char* row :
       {"Read Bank", "Write Bank", "Look Up Table", "Output Register"}) {
    EXPECT_NE(d.find_row(row), nullptr) << row;
  }
}

TEST(Vq, AccessRatesMatchThePaper) {
  // f = 2 MHz pixel rate; reads at f/16, writes at f/32 (buffer read
  // twice per arriving frame).
  const auto r = make_luminance_impl1(lib()).play();
  auto rate_of = [&](const char* row) {
    for (const auto& [name, value] : r.find_row(row)->shown_params) {
      if (name == "f") return value;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(rate_of("Look Up Table"), 2e6);
  EXPECT_DOUBLE_EQ(rate_of("Read Bank"), 125e3);
  EXPECT_DOUBLE_EQ(rate_of("Write Bank"), 62.5e3);
}

TEST(Vq, ReadBankBurnsTwiceTheWriteBank) {
  const auto r = make_luminance_impl1(lib()).play();
  EXPECT_NEAR(r.find_row("Read Bank")->estimate.total_power().si(),
              2 * r.find_row("Write Bank")->estimate.total_power().si(),
              1e-12);
}

TEST(Vq, LutDominatesImpl1) {
  // The per-pixel LUT access at full rate is the power hog the Figure 3
  // redesign attacks.
  const auto r = make_luminance_impl1(lib()).play();
  EXPECT_GT(r.find_row("Look Up Table")->estimate.total_power().si(),
            0.6 * r.total.total_power().si());
}

TEST(Vq, PaperAnchorImpl2Around150uW) {
  const auto r = make_luminance_impl2(lib()).play();
  const double watts = r.total.total_power().si();
  // "~150 uW": accept a generous band around the paper's figure.
  EXPECT_GT(watts, 100e-6);
  EXPECT_LT(watts, 250e-6);
}

TEST(Vq, PaperAnchorRatioAboutFive) {
  const double p1 =
      make_luminance_impl1(lib()).play().total.total_power().si();
  const double p2 =
      make_luminance_impl2(lib()).play().total.total_power().si();
  const double ratio = p1 / p2;
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 7.0);
}

TEST(Vq, WithinAnOctaveOfTheMeasuredChip) {
  // "At this level of abstraction, accuracy should be within an octave
  // of the actual value."  The fabricated impl-2 chip measured 100 uW.
  const double estimate =
      make_luminance_impl2(lib()).play().total.total_power().si();
  EXPECT_LT(estimate, 2 * kPaperMeasuredWatts);
  EXPECT_GT(estimate, kPaperMeasuredWatts / 2);
}

TEST(Vq, OnlyMuxAndOutputRegisterRunAtFullRateInImpl2) {
  const auto r = make_luminance_impl2(lib()).play();
  for (const auto& row : r.rows) {
    double f = 0;
    for (const auto& [name, value] : row.shown_params) {
      if (name == "f") f = value;
    }
    if (row.name == "Word Mux" || row.name == "Output Register") {
      EXPECT_DOUBLE_EQ(f, 2e6) << row.name;
    } else {
      EXPECT_LT(f, 1e6) << row.name;
    }
  }
}

TEST(Vq, SupplySweepPreservesTheRatio) {
  // The spreadsheet is parameterized: the architectural conclusion is
  // voltage-independent because both designs are full-swing CMOS.
  const sheet::Design d1 = make_luminance_impl1(lib());
  const sheet::Design d2 = make_luminance_impl2(lib());
  for (double vdd : {1.1, 1.5, 2.5, 3.3}) {
    const auto p1 = sheet::sweep_global(d1, "vdd", {vdd});
    const auto p2 = sheet::sweep_global(d2, "vdd", {vdd});
    const double ratio = p1[0].result.total.total_power().si() /
                         p2[0].result.total.total_power().si();
    EXPECT_GT(ratio, 3.5) << vdd;
    EXPECT_LT(ratio, 7.0) << vdd;
  }
}

TEST(Vq, PixelRateScalesBothDesignsLinearly) {
  const sheet::Design d1 = make_luminance_impl1(lib());
  const auto pts = sheet::sweep_global(d1, "pixel_rate", {1e6, 2e6, 4e6});
  EXPECT_NEAR(pts[2].result.total.total_power().si() /
                  pts[0].result.total.total_power().si(),
              4.0, 1e-9);
}

// --- InfoPad -------------------------------------------------------------------

TEST(InfoPad, HasTheFigure5Rows) {
  const sheet::Design pad = make_infopad(lib());
  for (const char* row :
       {"Custom Hardware", "Radio Subsystem", "Display LCDs",
        "uProcessor Subsystem", "Support Electronics", "Other IO Devices",
        "Voltage Converters"}) {
    EXPECT_NE(pad.find_row(row), nullptr) << row;
  }
}

TEST(InfoPad, ConverterRowComputedFromLoads) {
  const auto r = make_infopad(lib()).play();
  const double conv =
      r.find_row("Voltage Converters")->estimate.total_power().si();
  const double load = r.total.total_power().si() - conv;
  // EQ 19 at eta = 0.8: P_diss = P_load * 0.25.
  EXPECT_NEAR(conv, load * 0.25, load * 1e-6);
  EXPECT_GE(r.iterations, 2);
}

TEST(InfoPad, HierarchyDrillsDownToTheLuminanceChip) {
  // Figure 5's hyperlink chain: system -> custom hardware -> luminance.
  const auto r = make_infopad(lib()).play();
  const auto* custom = r.find_row("Custom Hardware");
  ASSERT_NE(custom->sub_result, nullptr);
  const auto* lum = custom->sub_result->find_row("Luminance Chip");
  ASSERT_NE(lum, nullptr);
  ASSERT_NE(lum->sub_result, nullptr);
  EXPECT_NE(lum->sub_result->find_row("Look Up Table"), nullptr);
}

TEST(InfoPad, LuminanceChipMatchesStandaloneDesign) {
  const auto pad = make_infopad(lib()).play();
  const double in_system = pad.find_row("Custom Hardware")
                               ->sub_result->find_row("Luminance Chip")
                               ->estimate.total_power()
                               .si();
  const double standalone =
      make_luminance_impl2(lib()).play().total.total_power().si();
  EXPECT_NEAR(in_system, standalone, standalone * 1e-9);
}

TEST(InfoPad, ChrominanceRunsAtQuarterRate) {
  const auto pad = make_infopad(lib()).play();
  const auto* chipset = pad.find_row("Custom Hardware")->sub_result.get();
  const double lum =
      chipset->find_row("Luminance Chip")->estimate.total_power().si();
  const double chroma =
      chipset->find_row("Chrominance Chip")->estimate.total_power().si();
  EXPECT_NEAR(chroma, lum / 4.0, lum * 1e-9);
}

TEST(InfoPad, CustomHardwareIsMilliwattsAmongWatts) {
  // The design point of the InfoPad chipset: the custom hardware is
  // orders of magnitude below the commodity subsystems — the "identify
  // the major power consumers" lesson of the System Design section.
  const auto r = make_infopad(lib()).play();
  const double custom =
      r.find_row("Custom Hardware")->estimate.total_power().si();
  const double radio =
      r.find_row("Radio Subsystem")->estimate.total_power().si();
  EXPECT_LT(custom, 0.01 * radio);
}

TEST(InfoPad, TotalInPortableTerminalRange) {
  const auto r = make_infopad(lib()).play();
  const double watts = r.total.total_power().si();
  EXPECT_GT(watts, 2.0);
  EXPECT_LT(watts, 8.0);
}

TEST(InfoPad, DatasheetRowsMatchReconstructedConstants) {
  const auto r = make_infopad(lib()).play();
  EXPECT_NEAR(r.find_row("Radio Subsystem")->estimate.total_power().si(),
              kRadioWatts, 1e-9);
  EXPECT_NEAR(r.find_row("Display LCDs")->estimate.total_power().si(),
              kDisplayWatts, 1e-9);
  EXPECT_NEAR(r.find_row("Support Electronics")->estimate.total_power().si(),
              kSupportWatts, 1e-9);
  EXPECT_NEAR(r.find_row("Other IO Devices")->estimate.total_power().si(),
              kOtherIoWatts, 1e-9);
}

TEST(InfoPad, ReportRendersFullHierarchy) {
  sheet::ReportOptions opt;
  opt.recurse_macros = true;
  const std::string table = sheet::to_table(make_infopad(lib()).play(), opt);
  EXPECT_NE(table.find("InfoPad_System"), std::string::npos);
  EXPECT_NE(table.find("Custom_Chipset"), std::string::npos);
  EXPECT_NE(table.find("Luminance_2"), std::string::npos);
  EXPECT_NE(table.find("Voltage Converters"), std::string::npos);
}

}  // namespace
}  // namespace powerplay::studies
