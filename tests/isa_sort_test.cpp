// Property tests for the sorting workloads (the Ong & Yan experiment's
// substrate): every algorithm must actually sort, across data patterns
// and sizes, and their cost profiles must show the expected shape.
#include "isa/assembler.hpp"
#include "isa/energy.hpp"
#include "isa/programs.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "models/berkeley_library.hpp"

namespace powerplay::isa {
namespace {

enum class Pattern { kRandom, kAscending, kDescending, kConstant };

std::vector<std::int32_t> make_data(Pattern p, int n) {
  switch (p) {
    case Pattern::kRandom: return random_data(n, 1234);
    case Pattern::kAscending: return ascending_data(n);
    case Pattern::kDescending: return descending_data(n);
    case Pattern::kConstant: return std::vector<std::int32_t>(n, 7);
  }
  return {};
}

Machine run_sort(const SortProgram& prog,
                 const std::vector<std::int32_t>& data) {
  Machine m(assemble(prog.source), prog.memory_words + 4);
  load_array(m, data);
  m.run(500'000'000);
  return m;
}

struct Case {
  int sort_index;
  Pattern pattern;
  int n;
};

class SortCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(SortCorrectness, SortsExactly) {
  const auto [index, pattern, n] = GetParam();
  const auto suite = sorting_suite(n);
  const SortProgram& prog = suite[index];
  const auto data = make_data(pattern, n);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  const Machine m = run_sort(prog, data);
  EXPECT_EQ(read_array(m, n), expect)
      << prog.name << " n=" << n << " pattern=" << static_cast<int>(pattern);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (int sort_index : {0, 1, 2, 3}) {
    for (Pattern p : {Pattern::kRandom, Pattern::kAscending,
                      Pattern::kDescending, Pattern::kConstant}) {
      for (int n : {0, 1, 2, 3, 17, 100}) {
        cases.push_back({sort_index, p, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSortsPatternsSizes, SortCorrectness,
                         ::testing::ValuesIn(all_cases()));

TEST(SortCosts, MergeBeatsBubbleAsymptotically) {
  const int n = 300;
  const auto data = random_data(n, 7);
  const auto suite = sorting_suite(n);
  const auto bubble = run_sort(suite[0], data).profile().total;
  const auto merge = run_sort(suite[3], data).profile().total;
  EXPECT_GT(bubble, 4 * merge);
}

TEST(SortCosts, BubbleQuadraticMergeLinearithmic) {
  const auto count = [](int index, int n) {
    const auto suite = sorting_suite(n);
    return static_cast<double>(
        run_sort(suite[index], random_data(n, 3)).profile().total);
  };
  // Quadruple n: bubble grows ~16x, merge ~4.6x.
  const double bubble_ratio = count(0, 400) / count(0, 100);
  const double merge_ratio = count(3, 400) / count(3, 100);
  EXPECT_GT(bubble_ratio, 10.0);
  EXPECT_LT(merge_ratio, 6.5);
}

TEST(SortCosts, InsertionAdaptiveOnSortedInput) {
  const int n = 200;
  const auto suite = sorting_suite(n);
  const auto sorted_cost =
      run_sort(suite[2], ascending_data(n)).profile().total;
  const auto reversed_cost =
      run_sort(suite[2], descending_data(n)).profile().total;
  EXPECT_GT(reversed_cost, 20 * sorted_cost);
}

TEST(SortCosts, SelectionStoresFarFewerThanBubble) {
  const int n = 200;
  const auto data = descending_data(n);  // worst case for bubble swaps
  const auto suite = sorting_suite(n);
  const auto bubble = run_sort(suite[0], data).profile();
  const auto selection = run_sort(suite[1], data).profile();
  EXPECT_GT(bubble.stores(), 10 * selection.stores());
}

TEST(SortEnergy, OrdersOfMagnitudeVariance) {
  // The Ong & Yan headline: across algorithms and inputs the energy for
  // the same task spans orders of magnitude.  Compare the EQ 12 energy
  // of bubble-on-reversed against insertion-on-sorted at equal n.
  const int n = 300;
  const auto lib = models::berkeley_library();
  const auto energy_of = [&](int index,
                             const std::vector<std::int32_t>& data) {
    const auto suite = sorting_suite(n);
    const Machine m = run_sort(suite[index], data);
    auto params = instruction_model_params(m.profile(), ModelParams{});
    return lib.at("processor_instruction")
        .evaluate(params)
        .energy_per_op.si();
  };
  const double worst = energy_of(0, descending_data(n));
  const double best = energy_of(2, ascending_data(n));
  EXPECT_GT(worst / best, 100.0);  // two orders of magnitude
}

TEST(SortEnergy, MergePaysMoreMemoryTrafficPerInstruction) {
  const int n = 256;
  const auto suite = sorting_suite(n);
  const Machine merge = run_sort(suite[3], random_data(n, 5));
  const Profile& p = merge.profile();
  const double mem_fraction =
      static_cast<double>(p.loads() + p.stores()) / p.total;
  EXPECT_GT(mem_fraction, 0.2);
  EXPECT_LT(mem_fraction, 0.6);
}

TEST(SortPrograms, SuiteShape) {
  const auto suite = sorting_suite(64);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "bubble");
  EXPECT_EQ(suite[3].name, "merge");
  EXPECT_GE(suite[3].memory_words, 128u);  // scratch buffer
}

TEST(SortPrograms, DataGenerators) {
  EXPECT_EQ(ascending_data(3), (std::vector<std::int32_t>{0, 1, 2}));
  EXPECT_EQ(descending_data(3), (std::vector<std::int32_t>{3, 2, 1}));
  // Deterministic: same seed, same data; different seed, different data.
  EXPECT_EQ(random_data(16, 9), random_data(16, 9));
  EXPECT_NE(random_data(16, 9), random_data(16, 10));
}

}  // namespace
}  // namespace powerplay::isa
