// Differential tests of compiled evaluation plans against the
// interpreter, the engine's plan-backed Play and clone-free sweeps
// against the serial clone-per-point loops, plan-cache keying, and
// concurrent PlanInstances sharing one plan (the web_tsan target runs
// this file under ThreadSanitizer).
#include "sheet/plan.hpp"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/sweep.hpp"
#include "studies/infopad.hpp"
#include "studies/vq.hpp"

namespace powerplay::sheet {
namespace {

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = models::berkeley_library();
  return registry;
}

void expect_same_estimate(const model::Estimate& a, const model::Estimate& b) {
  EXPECT_EQ(a.switched_capacitance.si(), b.switched_capacitance.si());
  EXPECT_EQ(a.energy_per_op.si(), b.energy_per_op.si());
  EXPECT_EQ(a.dynamic_power.si(), b.dynamic_power.si());
  EXPECT_EQ(a.static_power.si(), b.static_power.si());
  EXPECT_EQ(a.area.si(), b.area.si());
  EXPECT_EQ(a.delay.si(), b.delay.si());
}

void expect_same_result(const PlayResult& a, const PlayResult& b) {
  EXPECT_EQ(a.design_name, b.design_name);
  EXPECT_EQ(a.iterations, b.iterations);
  expect_same_estimate(a.total, b.total);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].name, b.rows[i].name);
    EXPECT_EQ(a.rows[i].model_name, b.rows[i].model_name);
    expect_same_estimate(a.rows[i].estimate, b.rows[i].estimate);
    ASSERT_EQ(a.rows[i].shown_params, b.rows[i].shown_params);
    ASSERT_EQ(a.rows[i].sub_result != nullptr,
              b.rows[i].sub_result != nullptr);
    if (a.rows[i].sub_result != nullptr) {
      expect_same_result(*a.rows[i].sub_result, *b.rows[i].sub_result);
    }
  }
}

void expect_plan_matches_interpreter(const Design& d) {
  PlanInstance inst(EvalPlan::compile(d));
  inst.bind_from(d);
  expect_same_result(d.play(), inst.play());
}

std::string play_error(const Design& d) {
  try {
    (void)d.play();
  } catch (const expr::ExprError& e) {
    return e.what();
  }
  return {};
}

std::string plan_error(const Design& d) {
  try {
    PlanInstance inst(EvalPlan::compile(d));
    inst.bind_from(d);
    (void)inst.play();
  } catch (const expr::ExprError& e) {
    return e.what();
  }
  return {};
}

// --- differential over the paper's study designs ----------------------------

TEST(PlanDifferential, VqLuminanceImplementations) {
  expect_plan_matches_interpreter(studies::make_luminance_impl1(lib()));
  expect_plan_matches_interpreter(studies::make_luminance_impl2(lib()));
}

TEST(PlanDifferential, InfopadSystemWithNestedMacros) {
  // Three levels of macro nesting, shared sub-designs, intermodel rows.
  expect_plan_matches_interpreter(studies::make_custom_chipset(lib()));
  expect_plan_matches_interpreter(studies::make_processor_subsystem(lib()));
  expect_plan_matches_interpreter(studies::make_infopad(lib()));
}

TEST(PlanDifferential, CustomFunctionsAndGlobalFormulas) {
  Design d("custom");
  d.globals().set("vdd", 1.5);
  d.globals().set_formula("f", "base_rate() * 2");
  d.add_function("base_rate", [](const std::vector<expr::Value>&) {
    return 5e5;
  });
  auto& row = d.add_row("r", lib().find_shared("register"));
  row.params.set_formula("bits", "max(4, min(16, vdd * 8))");
  expect_plan_matches_interpreter(d);
}

// --- error-message equality -------------------------------------------------

TEST(PlanDifferential, ErrorMessagesMatchTheInterpreter) {
  // Global formula calling an intermodel function (poisoned design).
  Design poisoned("p");
  poisoned.globals().set("vdd", 1.5);
  poisoned.globals().set("f", 1e6);
  poisoned.globals().set_formula("x", "totalpower()");
  poisoned.add_row("r", lib().find_shared("register"));

  // Circular parameter definitions.
  Design circular("c");
  circular.globals().set("vdd", 1.5);
  circular.globals().set_formula("a", "b * 2");
  circular.globals().set_formula("b", "a + 1");
  auto& crow = circular.add_row("r", lib().find_shared("register"));
  crow.params.set_formula("bits", "a");

  // Unbound parameter.
  Design unbound("u");
  unbound.globals().set("vdd", 1.5);
  unbound.globals().set("f", 1e6);
  unbound.add_row("r", lib().find_shared("register"))
      .params.set_formula("bits", "no_such_param");

  // rowpower with a numeric argument (arity/shape error).
  Design badcall("b");
  badcall.globals().set("vdd", 6.0);
  badcall.add_row("Conv", lib().find_shared("dcdc_converter"))
      .params.set_formula("p_load", "rowpower(3)");

  // rowpower of a missing row.
  Design missing("m");
  missing.globals().set("vdd", 6.0);
  missing.add_row("Conv", lib().find_shared("dcdc_converter"))
      .params.set_formula("p_load", "rowpower(\"Nope\")");

  // totalpower with arguments.
  Design args("a");
  args.globals().set("vdd", 6.0);
  args.add_row("Conv", lib().find_shared("dcdc_converter"))
      .params.set_formula("p_load", "totalpower(1)");

  for (const Design* d :
       {&poisoned, &circular, &unbound, &badcall, &missing, &args}) {
    const std::string expect = play_error(*d);
    ASSERT_FALSE(expect.empty()) << d->name();
    EXPECT_EQ(expect, plan_error(*d)) << d->name();
  }
}

// --- engine: plan-backed play and clone-free sweeps -------------------------

TEST(PlanEngine, PlayMatchesInterpreter) {
  engine::EvalEngine engine;
  const Design d = studies::make_luminance_impl2(lib());
  expect_same_result(d.play(), *engine.play(d));
}

TEST(PlanEngine, PlanCacheHitsOnStructurallyIdenticalDesigns) {
  engine::EvalEngine engine;
  Design d = studies::make_luminance_impl2(lib());
  (void)engine.play(d);
  EXPECT_EQ(engine.plans().stats().misses, 1u);

  // A literal edit keeps the structure: same plan, fresh Play.
  d.globals().set("vdd", 2.2);
  expect_same_result(d.play(), *engine.play(d));
  EXPECT_EQ(engine.plans().stats().misses, 1u);
  EXPECT_EQ(engine.plans().stats().hits, 1u);

  // A structural edit (new binding) compiles a new plan.
  d.globals().set("extra", 1.0);
  (void)engine.play(d);
  EXPECT_EQ(engine.plans().stats().misses, 2u);
}

TEST(PlanEngine, SweepGlobalMatchesSerial) {
  engine::EvalEngine engine;
  const Design d = studies::make_luminance_impl2(lib());
  const auto values = linspace(1.0, 3.0, 7);
  const auto serial = sweep_global(d, "vdd", values);
  const auto compiled = engine.sweep_global(d, "vdd", values);
  ASSERT_EQ(serial.size(), compiled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].value, compiled[i].value);
    expect_same_result(serial[i].result, compiled[i].result);
  }
  EXPECT_THROW((void)engine.sweep_global(d, "no_such", values),
               expr::ExprError);
}

TEST(PlanEngine, SweepRowParamMatchesSerial) {
  engine::EvalEngine engine;
  Design d("adders");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  d.add_row("A", lib().find_shared("ripple_adder"))
      .params.set("bitwidth", 16.0);
  d.add_row("B", lib().find_shared("ripple_adder"))
      .params.set("bitwidth", 32.0);
  const std::vector<double> widths = {8, 16, 24, 32};

  // Locally bound parameter: pure slot re-binding.
  auto serial = sweep_row_param(d, "A", "bitwidth", widths);
  auto compiled = engine.sweep_row_param(d, "A", "bitwidth", widths);
  ASSERT_EQ(serial.size(), compiled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same_result(serial[i].result, compiled[i].result);
  }

  // Model-declared parameter the row does not bind: the engine clones
  // once per sweep to materialize the binding, results still match.
  Design def("defaults");
  def.globals().set("vdd", 1.5);
  def.globals().set("f", 1e6);
  def.add_row("r", lib().find_shared("register"));
  serial = sweep_row_param(def, "r", "bits", {4, 8, 12});
  compiled = engine.sweep_row_param(def, "r", "bits", {4, 8, 12});
  ASSERT_EQ(serial.size(), compiled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same_result(serial[i].result, compiled[i].result);
  }

  EXPECT_THROW((void)engine.sweep_row_param(d, "missing", "x", {1}),
               expr::ExprError);
  EXPECT_THROW((void)engine.sweep_row_param(d, "A", "no_such", {1}),
               expr::ExprError);
}

TEST(PlanEngine, SweepGridMatchesSerialAndMemoizesRepeats) {
  engine::EvalEngine engine;
  const Design d = studies::make_luminance_impl2(lib());
  const auto vdds = linspace(1.0, 3.0, 4);
  const auto rates = linspace(1e6, 4e6, 4);
  const auto serial = sweep_grid(d, "vdd", vdds, "pixel_rate", rates);
  const auto compiled = engine.sweep_grid(d, "vdd", vdds, "pixel_rate", rates);
  ASSERT_EQ(serial.results.size(), compiled.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    ASSERT_EQ(serial.results[i].size(), compiled.results[i].size());
    for (std::size_t j = 0; j < serial.results[i].size(); ++j) {
      expect_same_result(serial.results[i][j], compiled.results[i][j]);
    }
  }

  // Per-point keys are deterministic: re-running the identical sweep
  // is pure cache hits, no fresh Plays.
  const auto before = engine.cache().stats();
  const auto again = engine.sweep_grid(d, "vdd", vdds, "pixel_rate", rates);
  const auto after = engine.cache().stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.hits, before.hits + vdds.size() * rates.size());
  for (std::size_t i = 0; i < compiled.results.size(); ++i) {
    for (std::size_t j = 0; j < compiled.results[i].size(); ++j) {
      expect_same_result(compiled.results[i][j], again.results[i][j]);
    }
  }
}

TEST(PlanEngine, SweepProgressReportsEveryPoint) {
  engine::EvalEngine engine;
  const Design d = studies::make_luminance_impl2(lib());
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> final_done{0};
  const auto values = linspace(1.0, 2.0, 5);
  (void)engine.sweep_global(d, "vdd", values,
                            [&](std::size_t done, std::size_t total) {
                              calls.fetch_add(1);
                              if (done == total) final_done.fetch_add(1);
                            });
  EXPECT_EQ(calls.load(), values.size());
  EXPECT_EQ(final_done.load(), 1u);
}

// --- concurrency: one plan, many instances ----------------------------------

TEST(PlanConcurrency, InstancesShareOnePlanAcrossThreads) {
  const Design d = studies::make_luminance_impl2(lib());
  const auto plan = EvalPlan::compile(d);
  const PlayResult reference = d.play();
  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      PlanInstance inst(plan);
      inst.bind_from(d);
      for (int i = 0; i < 25; ++i) {
        const PlayResult r = inst.play();
        if (r.total.total_power().si() != reference.total.total_power().si() ||
            r.iterations != reference.iterations) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(PlanConcurrency, EngineSweepsRunConcurrentlyOverSharedPlan) {
  engine::EvalEngine engine;
  const Design d = studies::make_luminance_impl2(lib());
  const auto vdds = linspace(1.0, 3.0, 8);
  const auto rates = linspace(1e6, 4e6, 8);
  const auto grid = engine.sweep_grid(d, "vdd", vdds, "pixel_rate", rates);
  ASSERT_EQ(grid.results.size(), 8u);
  // Spot-check separability of the CMOS power law on the compiled path.
  const double base = grid.results[0][0].total.total_power().si();
  EXPECT_GT(base, 0.0);
}

}  // namespace
}  // namespace powerplay::sheet
