// Tests for the persistence layer: tokenizer, serialization round trips,
// the on-disk store, and user profiles.
#include "library/serialize.hpp"
#include "library/store.hpp"
#include "library/textio.hpp"

#include <filesystem>

#include <gtest/gtest.h>

#include "models/berkeley_library.hpp"
#include "studies/infopad.hpp"
#include "studies/vq.hpp"

namespace powerplay::library {
namespace {

namespace fs = std::filesystem;

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = models::berkeley_library();
  return registry;
}

/// Unique temp directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("pp_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

// --- textio -------------------------------------------------------------------

TEST(TextIo, TokenizesAllKinds) {
  const auto toks = tokenize_document("model \"x\" { n 1.5e-3 } # comment");
  ASSERT_EQ(toks.size(), 7u);  // incl. kEnd
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[1].kind, TokKind::kString);
  EXPECT_EQ(toks[2].kind, TokKind::kLBrace);
  EXPECT_EQ(toks[4].kind, TokKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[4].number, 1.5e-3);
  EXPECT_EQ(toks[5].kind, TokKind::kRBrace);
}

TEST(TextIo, NegativeNumbersAndLineTracking) {
  const auto toks = tokenize_document("a\n-2.5\nb");
  EXPECT_DOUBLE_EQ(toks[1].number, -2.5);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
}

TEST(TextIo, StringEscapes) {
  const auto toks = tokenize_document(R"("say \"hi\" \\ there")");
  EXPECT_EQ(toks[0].text, "say \"hi\" \\ there");
}

TEST(TextIo, Errors) {
  EXPECT_THROW(tokenize_document("\"unterminated"), FormatError);
  EXPECT_THROW(tokenize_document("@"), FormatError);
}

TEST(TextIo, QuotedRoundTrip) {
  const std::string nasty = "a \"b\" \\c";
  const auto toks = tokenize_document(quoted(nasty));
  EXPECT_EQ(toks[0].text, nasty);
}

TEST(TextIo, NumberTextRoundTrips) {
  for (double v : {1.0, 0.1, 253e-15, 1.0 / 3.0, -2.5e6, 1e300}) {
    EXPECT_DOUBLE_EQ(std::stod(number_text(v)), v) << v;
  }
}

TEST(TextIo, CursorTypedAccess) {
  TokCursor cur(tokenize_document("model \"m\" { }"));
  cur.expect_ident("model");
  EXPECT_EQ(cur.take_string(), "m");
  cur.expect(TokKind::kLBrace);
  cur.expect(TokKind::kRBrace);
  EXPECT_TRUE(cur.at_end());
}

TEST(TextIo, CursorErrorsCarryLine) {
  TokCursor cur(tokenize_document("\n\nwrong"));
  try {
    cur.expect_ident("model");
    FAIL();
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

// --- model serialization -------------------------------------------------------

model::UserModelDefinition sample_model() {
  model::UserModelDefinition def;
  def.name = "vq_lut";
  def.category = model::Category::kStorage;
  def.documentation = "grouped \"codebook\" model";
  def.params = {{"words", "entries", 1024, "", 1, 65536, true},
                {"bits", "word width", 24, "bits", 1, 64, true}};
  def.c_fullswing = "5e-12 + words*20e-15 + bits*500e-15 + words*bits*2.6e-15";
  def.area = "words * bits * 0.15e-9";
  return def;
}

TEST(Serialize, UserModelRoundTrip) {
  const auto def = sample_model();
  const auto back = parse_user_model(to_text(def));
  EXPECT_EQ(back.name, def.name);
  EXPECT_EQ(back.category, def.category);
  EXPECT_EQ(back.documentation, def.documentation);
  ASSERT_EQ(back.params.size(), 2u);
  EXPECT_EQ(back.params[0].name, "words");
  EXPECT_TRUE(back.params[0].integer);
  EXPECT_DOUBLE_EQ(back.params[1].default_value, 24);
  EXPECT_EQ(back.c_fullswing, def.c_fullswing);
  EXPECT_EQ(back.area, def.area);
  // And the round-tripped definition still evaluates identically.
  model::UserModel m1(def), m2(back);
  model::MapParamReader p({{"vdd", 1.5}, {"f", 5e5}, {"words", 1024.0},
                           {"bits", 24.0}});
  EXPECT_DOUBLE_EQ(m1.evaluate(p).total_power().si(),
                   m2.evaluate(p).total_power().si());
}

TEST(Serialize, PartialSwingFieldsRoundTrip) {
  model::UserModelDefinition def;
  def.name = "rs";
  def.c_partialswing = "10e-12";
  def.v_swing = "0.3";
  def.static_current = "1e-6";
  def.power_direct = "0.25";
  def.delay = "5e-9";
  const auto back = parse_user_model(to_text(def));
  EXPECT_EQ(back.c_partialswing, "10e-12");
  EXPECT_EQ(back.v_swing, "0.3");
  EXPECT_EQ(back.static_current, "1e-6");
  EXPECT_EQ(back.power_direct, "0.25");
  EXPECT_EQ(back.delay, "5e-9");
}

TEST(Serialize, ModelParseErrors) {
  EXPECT_THROW(parse_user_model("design \"x\" {}"), FormatError);
  EXPECT_THROW(parse_user_model("model \"x\" { bogus 1 }"), FormatError);
  EXPECT_THROW(parse_user_model("model \"x\" { category \"nope\" }"),
               FormatError);
  EXPECT_THROW(parse_user_model("model \"x\" {"), FormatError);
}

// --- design serialization --------------------------------------------------------

TEST(Serialize, DesignRoundTripPreservesPlayResult) {
  const sheet::Design d = studies::make_luminance_impl2(lib());
  const std::string text = to_text(d);
  const sheet::Design back = parse_design(text, lib(), nullptr);
  EXPECT_EQ(back.name(), d.name());
  EXPECT_EQ(back.rows().size(), d.rows().size());
  EXPECT_NEAR(back.play().total.total_power().si(),
              d.play().total.total_power().si(), 1e-18);
}

TEST(Serialize, DesignFormulasSurviveRoundTrip) {
  const sheet::Design d = studies::make_luminance_impl1(lib());
  const sheet::Design back = parse_design(to_text(d), lib(), nullptr);
  const auto r = back.play();
  for (const auto& [name, value] : r.find_row("Read Bank")->shown_params) {
    if (name == "f") {
      EXPECT_DOUBLE_EQ(value, 125e3);
    }
  }
}

TEST(Serialize, DesignWithMacroNeedsResolver) {
  sheet::Design top("top");
  top.globals().set("vdd", 1.5);
  auto sub = std::make_shared<sheet::Design>("sub");
  sub->globals().set("f", 1e6);
  sub->add_row("r", lib().find_shared("register"));
  top.add_macro("M", sub);
  const std::string text = to_text(top);
  EXPECT_NE(text.find("macro \"sub\""), std::string::npos);
  EXPECT_THROW(parse_design(text, lib(), nullptr), FormatError);
  const sheet::Design back = parse_design(
      text, lib(), [&](const std::string& name) {
        EXPECT_EQ(name, "sub");
        return sub;
      });
  EXPECT_TRUE(back.rows()[0].is_macro());
}

TEST(Serialize, DisabledFlagAndNoteRoundTrip) {
  sheet::Design d("toggles");
  d.globals().set("vdd", 1.5);
  auto& a = d.add_row("A", lib().find_shared("register"));
  a.note = "kept alternative";
  a.enabled = false;
  d.add_row("B", lib().find_shared("register"));
  const std::string text = to_text(d);
  EXPECT_NE(text.find("disabled 1"), std::string::npos);
  EXPECT_NE(text.find("note \"kept alternative\""), std::string::npos);
  const sheet::Design back = parse_design(text, lib(), nullptr);
  EXPECT_FALSE(back.find_row("A")->enabled);
  EXPECT_TRUE(back.find_row("B")->enabled);
  EXPECT_EQ(back.find_row("A")->note, "kept alternative");
}

TEST(Serialize, UnknownModelNameRejected) {
  const std::string text =
      "design \"d\" { row \"r\" { model \"not_a_model\" } }";
  EXPECT_THROW(parse_design(text, lib(), nullptr), FormatError);
}

// --- store ---------------------------------------------------------------------

TEST(Store, ModelSaveLoadList) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  EXPECT_TRUE(store.list_models().empty());
  store.save_model(sample_model());
  EXPECT_EQ(store.list_models(), (std::vector<std::string>{"vq_lut"}));
  auto loaded = store.load_model("vq_lut");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->c_fullswing, sample_model().c_fullswing);
  EXPECT_FALSE(store.load_model("missing").has_value());
}

TEST(Store, ProprietaryFlagPersisted) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  store.save_model(sample_model(), /*proprietary=*/true);
  EXPECT_TRUE(store.is_proprietary("vq_lut"));
  auto other = sample_model();
  other.name = "open_model";
  store.save_model(other);
  EXPECT_FALSE(store.is_proprietary("open_model"));
  // Proprietary models still load locally (firewall-internal use).
  EXPECT_TRUE(store.load_model("vq_lut").has_value());
}

TEST(Store, LoadAllModelsIntoRegistry) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  store.save_model(sample_model());
  model::ModelRegistry reg;
  store.load_all_models(reg);
  EXPECT_TRUE(reg.contains("vq_lut"));
}

TEST(Store, DesignSaveLoadRecursesMacros) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  sheet::Design top("top_design");
  top.globals().set("vdd", 1.5);
  auto sub = std::make_shared<sheet::Design>("sub_design");
  sub->globals().set("f", 1e6);
  sub->add_row("r", lib().find_shared("register"));
  top.add_macro("M", sub);
  store.save_design(top);
  // The macro was saved implicitly.
  EXPECT_TRUE(store.has_design("sub_design"));
  auto back = store.load_design("top_design", lib());
  EXPECT_TRUE(back->rows()[0].is_macro());
  EXPECT_NEAR(back->play().total.total_power().si(),
              top.play().total.total_power().si(), 1e-18);
}

TEST(Store, MissingDesignThrows) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  EXPECT_THROW(store.load_design("ghost", lib()), FormatError);
}

TEST(Store, NameValidation) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  EXPECT_THROW(validate_store_name(""), FormatError);
  EXPECT_THROW(validate_store_name("../etc/passwd"), FormatError);
  EXPECT_THROW(validate_store_name("a/b"), FormatError);
  EXPECT_THROW(validate_store_name(".hidden"), FormatError);
  EXPECT_NO_THROW(validate_store_name("Luminance_1"));
}

TEST(Store, UserProfileRoundTrip) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  UserProfile p;
  p.username = "dlidsky";
  p.defaults = {{"vdd", 1.1}, {"f", 2e6}};
  p.designs = {"Luminance_1", "Luminance_2"};
  store.save_user(p);
  auto back = store.load_user("dlidsky");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->defaults, p.defaults);
  EXPECT_EQ(back->designs, p.designs);
  EXPECT_EQ(store.list_users(), (std::vector<std::string>{"dlidsky"}));
}

TEST(Store, PasswordHashing) {
  UserProfile p;
  p.username = "u";
  EXPECT_FALSE(p.has_password());
  EXPECT_TRUE(p.check_password(""));
  EXPECT_TRUE(p.check_password("anything"));  // open access
  p.set_password("hunter2");
  EXPECT_TRUE(p.has_password());
  EXPECT_TRUE(p.check_password("hunter2"));
  EXPECT_FALSE(p.check_password("hunter3"));
  // Hash is deterministic and not the plaintext.
  EXPECT_EQ(p.password_hash, password_digest("hunter2"));
  EXPECT_NE(p.password_hash, "hunter2");
  p.set_password("");
  EXPECT_FALSE(p.has_password());
}

TEST(Store, PasswordSurvivesRoundTrip) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  UserProfile p;
  p.username = "locked";
  p.set_password("pw");
  store.save_user(p);
  auto back = store.load_user("locked");
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->check_password("pw"));
  EXPECT_FALSE(back->check_password("nope"));
}

TEST(Store, EnsureUserCreatesDefaults) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  const UserProfile fresh = store.ensure_user("newbie");
  EXPECT_EQ(fresh.username, "newbie");
  EXPECT_TRUE(fresh.defaults.contains("vdd"));
  // Second call loads the same profile rather than resetting it.
  UserProfile changed = fresh;
  changed.defaults["vdd"] = 9.0;
  store.save_user(changed);
  EXPECT_DOUBLE_EQ(store.ensure_user("newbie").defaults["vdd"], 9.0);
}

TEST(Store, StudyDesignsRoundTripThroughStore) {
  TempDir tmp;
  LibraryStore store(tmp.path);
  const sheet::Design pad = studies::make_infopad(lib());
  store.save_design(pad);
  EXPECT_TRUE(store.has_design("Custom_Chipset"));
  EXPECT_TRUE(store.has_design("Luminance_2"));
  auto back = store.load_design("InfoPad_System", lib());
  EXPECT_NEAR(back->play().total.total_power().si(),
              pad.play().total.total_power().si(), 1e-9);
}

}  // namespace
}  // namespace powerplay::library
