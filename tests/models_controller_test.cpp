// Tests for the controller macromodels (EQ 9, EQ 10, PLA analogue).
#include "models/berkeley_library.hpp"
#include "models/controller.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace powerplay::models {
namespace {

using model::Estimate;
using model::MapParamReader;

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = berkeley_library();
  return registry;
}

MapParamReader ctrl_params(double ni, double no, double nm = 0,
                           double vdd = 1.5, double f = 1e6) {
  MapParamReader p;
  p.set("n_inputs", ni);
  p.set("n_outputs", no);
  p.set("n_minterms", nm);
  p.set("alpha0", 0.25);
  p.set("alpha1", 0.25);
  p.set("alpha", 0.25);
  p.set("p_low", 0.5);
  p.set("vdd", vdd);
  p.set("f", f);
  return p;
}

TEST(RandomLogic, Eq9TermByTerm) {
  // EQ 9: C_T = C0*a0*N_I*N_O + C1*a1*N_M*N_O.
  const RandomLogicControllerModel m(
      {units::Capacitance{40e-15}, units::Capacitance{12e-15}});
  auto p = ctrl_params(8, 10, 100);
  const Estimate e = m.evaluate(p);
  const double expect =
      40e-15 * 0.25 * 8 * 10 + 12e-15 * 0.25 * 100 * 10;
  EXPECT_NEAR(e.switched_capacitance.si(), expect, 1e-20);
  ASSERT_EQ(e.cap_terms.size(), 2u);
  EXPECT_EQ(e.cap_terms[0].label, "input plane");
  EXPECT_EQ(e.cap_terms[1].label, "output plane");
}

TEST(RandomLogic, MintermDefaultIsHalfTruthTable) {
  auto with_default = ctrl_params(8, 8, 0);
  auto explicit_nm = ctrl_params(8, 8, 128);  // 2^(8-1)
  const double a =
      lib().at("random_logic_controller").evaluate(with_default)
          .total_power().si();
  const double b =
      lib().at("random_logic_controller").evaluate(explicit_nm)
          .total_power().si();
  EXPECT_NEAR(a, b, a * 1e-12);
}

TEST(RandomLogic, SwitchingProbabilitiesScale) {
  auto quarter = ctrl_params(8, 8, 64);
  auto tenth = ctrl_params(8, 8, 64);
  tenth.set("alpha0", 0.025);
  tenth.set("alpha1", 0.025);
  const double a = lib().at("random_logic_controller").evaluate(quarter)
                       .total_power().si();
  const double b = lib().at("random_logic_controller").evaluate(tenth)
                       .total_power().si();
  EXPECT_NEAR(b / a, 0.1, 1e-9);
}

TEST(Rom, Eq10TermByTerm) {
  const RomControllerModel m({units::Capacitance{1e-12},
                              units::Capacitance{2e-15},
                              units::Capacitance{1.5e-15},
                              units::Capacitance{30e-15},
                              units::Capacitance{50e-15}});
  auto p = ctrl_params(6, 12);
  const Estimate e = m.evaluate(p);
  const double rows = 64.0;
  const double expect = 1e-12 + 2e-15 * 6 * rows +
                        1.5e-15 * 0.5 * 12 * rows + 30e-15 * 0.5 * 12 +
                        50e-15 * 12;
  EXPECT_NEAR(e.switched_capacitance.si(), expect, 1e-19);
  EXPECT_EQ(e.cap_terms.size(), 5u);
}

TEST(Rom, ExponentialInInputs) {
  // The 2^N_I decode term must dominate growth.
  auto p6 = ctrl_params(6, 8);
  auto p10 = ctrl_params(10, 8);
  const double a = lib().at("rom_controller").evaluate(p6).total_power().si();
  const double b = lib().at("rom_controller").evaluate(p10).total_power().si();
  EXPECT_GT(b / a, 8.0);  // 2^10/2^6 = 16 on the dominant terms
}

TEST(Rom, PrechargeProbabilityScalesBitlineTerm) {
  // P_O = 0: no bit-line ever recharges (all outputs stayed high).
  auto p_none = ctrl_params(8, 16);
  p_none.set("p_low", 0.0);
  auto p_all = ctrl_params(8, 16);
  p_all.set("p_low", 1.0);
  const double none =
      lib().at("rom_controller").evaluate(p_none).total_power().si();
  const double all =
      lib().at("rom_controller").evaluate(p_all).total_power().si();
  EXPECT_LT(none, all);
}

TEST(Pla, PlanesScaleWithDimensions) {
  auto p = ctrl_params(8, 8, 64);
  const Estimate e = lib().at("pla_controller").evaluate(p);
  ASSERT_EQ(e.cap_terms.size(), 3u);
  // AND plane ~ N_I*N_M, OR plane ~ N_M*N_O; equal coefficients and
  // N_I == N_O makes them equal here.
  EXPECT_NEAR(e.cap_terms[0].c_sw.si(), e.cap_terms[1].c_sw.si(), 1e-20);
}

TEST(Controllers, RomCostsMoreThanRandomLogicForWideDecoders) {
  // With many inputs the ROM's 2^N_I array dwarfs a two-level network
  // of modest minterm count — the crossover the bench sweeps.
  auto p = ctrl_params(12, 16, 64);
  const double rom =
      lib().at("rom_controller").evaluate(p).total_power().si();
  const double rl =
      lib().at("random_logic_controller").evaluate(p).total_power().si();
  EXPECT_GT(rom, rl);
}

TEST(Controllers, InputCountValidated) {
  auto p = ctrl_params(30, 8);  // > 24 inputs rejected (2^N_I blow-up)
  EXPECT_THROW(lib().at("rom_controller").evaluate(p), expr::ExprError);
}

// Property: every controller model is monotone in N_O.
class ControllerNames : public ::testing::TestWithParam<const char*> {};

TEST_P(ControllerNames, MonotoneInOutputs) {
  auto narrow = ctrl_params(8, 4, 32);
  auto wide = ctrl_params(8, 32, 32);
  EXPECT_LT(lib().at(GetParam()).evaluate(narrow).total_power().si(),
            lib().at(GetParam()).evaluate(wide).total_power().si());
}

TEST_P(ControllerNames, PowerLinearInFrequency) {
  auto a = ctrl_params(8, 8, 32, 1.5, 1e6);
  auto b = ctrl_params(8, 8, 32, 1.5, 5e6);
  EXPECT_NEAR(lib().at(GetParam()).evaluate(b).dynamic_power.si() /
                  lib().at(GetParam()).evaluate(a).dynamic_power.si(),
              5.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllControllers, ControllerNames,
                         ::testing::Values("random_logic_controller",
                                           "rom_controller",
                                           "pla_controller"));

}  // namespace
}  // namespace powerplay::models
