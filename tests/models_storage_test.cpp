// Tests for the storage models (EQ 7 organization, EQ 8 reduced swing).
#include "models/berkeley_library.hpp"
#include "models/storage.hpp"

#include <gtest/gtest.h>

namespace powerplay::models {
namespace {

using namespace units;
using namespace units::literals;
using model::Estimate;
using model::MapParamReader;

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = berkeley_library();
  return registry;
}

MapParamReader sram_params(double words, double bits, double vdd, double f,
                           double vswing = 0.0, double blf = 0.6) {
  MapParamReader p;
  p.set("words", words);
  p.set("bits", bits);
  p.set("vdd", vdd);
  p.set("f", f);
  p.set("vswing", vswing);
  p.set("bitline_fraction", blf);
  p.set("i_static", 0.0);
  p.set("alpha", 1.0);
  return p;
}

TEST(Sram, Eq7OrganizationCapacitance) {
  const auto& m = dynamic_cast<const SramModel&>(lib().at("sram"));
  // C_T = C0 + Cw*words + Cb*bits + Ccell*words*bits, term by term.
  const double expect = coeff::kSramC0.si() + coeff::kSramPerWord.si() * 2048 +
                        coeff::kSramPerBit.si() * 8 +
                        coeff::kSramPerCell.si() * 2048 * 8;
  EXPECT_NEAR(m.organization_capacitance(2048, 8).si(), expect, 1e-18);
}

TEST(Sram, OrganizationTermsSeparable) {
  const auto& m = dynamic_cast<const SramModel&>(lib().at("sram"));
  // Doubling words affects the word and cell terms only.
  const double c1 = m.organization_capacitance(1024, 8).si();
  const double c2 = m.organization_capacitance(2048, 8).si();
  EXPECT_NEAR(c2 - c1,
              coeff::kSramPerWord.si() * 1024 +
                  coeff::kSramPerCell.si() * 1024 * 8,
              1e-18);
}

TEST(Sram, FullSwingEnergyIsCV2) {
  auto p = sram_params(2048, 8, 1.5, 0);
  const auto& m = dynamic_cast<const SramModel&>(lib().at("sram"));
  const Estimate e = lib().at("sram").evaluate(p);
  EXPECT_NEAR(e.energy_per_op.si(),
              m.organization_capacitance(2048, 8).si() * 1.5 * 1.5, 1e-15);
}

TEST(Sram, Eq8ReducedSwingSavesPower) {
  auto full = sram_params(4096, 16, 1.5, 1e6);
  auto reduced = sram_params(4096, 16, 1.5, 1e6, /*vswing=*/0.3);
  const double pf = lib().at("sram").evaluate(full).total_power().si();
  const double pr = lib().at("sram").evaluate(reduced).total_power().si();
  EXPECT_LT(pr, pf);
  // EQ 8: P = (1-blf)*C*VDD^2*f + blf*C*Vswing*VDD*f.
  const auto& m = dynamic_cast<const SramModel&>(lib().at("sram"));
  const double c = m.organization_capacitance(4096, 16).si();
  const double expect = (0.4 * c * 1.5 * 1.5 + 0.6 * c * 0.3 * 1.5) * 1e6;
  EXPECT_NEAR(pr, expect, expect * 1e-9);
}

TEST(Sram, ReducedSwingBreaksPureQuadraticScaling) {
  // The paper's warning: an effective-C model times VDD^2 mispredicts
  // reduced-swing memories as voltage scales.  With a fixed vswing, the
  // true power ratio between 3 V and 1.5 V must be *below* the quadratic
  // prediction of 4x.
  auto lo = sram_params(4096, 16, 1.5, 1e6, 0.3);
  auto hi = sram_params(4096, 16, 3.0, 1e6, 0.3);
  const double ratio = lib().at("sram").evaluate(hi).total_power().si() /
                       lib().at("sram").evaluate(lo).total_power().si();
  EXPECT_LT(ratio, 4.0);
  EXPECT_GT(ratio, 2.0);  // ...but above the linear prediction of 2x
}

TEST(Sram, StaticSenseAmpCurrent) {
  auto p = sram_params(1024, 8, 1.5, 0);
  p.set("i_static", 1e-4);
  const Estimate e = lib().at("sram").evaluate(p);
  EXPECT_NEAR(e.static_power.si(), 1.5e-4, 1e-12);
}

TEST(Sram, ReadLatencyGrowsWithWords) {
  auto small = sram_params(256, 8, 1.5, 0);
  auto large = sram_params(65536, 8, 1.5, 0);
  EXPECT_LT(lib().at("sram").evaluate(small).delay,
            lib().at("sram").evaluate(large).delay);
}

TEST(Register, ClockCapSwitchesRegardlessOfActivity) {
  MapParamReader p;
  p.set("bits", 8.0);
  p.set("alpha", 0.0);  // no data activity at all
  p.set("vdd", 1.5);
  p.set("f", 1e6);
  // Half the per-bit capacitance is clock and still burns power.
  const Estimate e = lib().at("register").evaluate(p);
  EXPECT_GT(e.total_power().si(), 0.0);
  MapParamReader p2;
  p2.set("bits", 8.0);
  p2.set("alpha", 1.0);
  p2.set("vdd", 1.5);
  p2.set("f", 1e6);
  EXPECT_NEAR(lib().at("register").evaluate(p2).total_power().si(),
              2.0 * e.total_power().si(), 1e-15);
}

TEST(RegisterFile, GrowsWithWordsAndBits) {
  auto make = [&](double words, double bits) {
    MapParamReader p;
    p.set("words", words);
    p.set("bits", bits);
    p.set("alpha", 1.0);
    p.set("vdd", 1.5);
    p.set("f", 1e6);
    return lib().at("register_file").evaluate(p).total_power().si();
  };
  EXPECT_LT(make(16, 16), make(32, 16));
  EXPECT_LT(make(16, 16), make(16, 32));
}

TEST(Dram, RefreshShowsUpAsStaticPower) {
  MapParamReader p;
  p.set("words", 65536.0);
  p.set("bits", 16.0);
  p.set("alpha", 1.0);
  p.set("vdd", 3.3);
  p.set("f", 0.0);  // idle: only refresh
  const Estimate e = lib().at("dram").evaluate(p);
  EXPECT_DOUBLE_EQ(e.dynamic_power.si(), 0.0);
  EXPECT_GT(e.static_power.si(), 0.0);
}

TEST(Dram, AccessEnergyExceedsSramAtSameOrganization) {
  MapParamReader pd, ps;
  for (auto* p : {&pd, &ps}) {
    p->set("words", 16384.0);
    p->set("bits", 16.0);
    p->set("alpha", 1.0);
    p->set("vdd", 3.3);
    p->set("f", 0.0);
  }
  ps.set("vswing", 0.0);
  ps.set("bitline_fraction", 0.6);
  ps.set("i_static", 0.0);
  EXPECT_GT(lib().at("dram").evaluate(pd).energy_per_op.si(), 0.0);
}

// Parameterized sweep: energy per access is monotone in words and bits.
class SramSizes
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SramSizes, EnergyMonotoneInSize) {
  const auto [words, bits] = GetParam();
  auto small = sram_params(words, bits, 1.5, 0);
  auto more_words = sram_params(words * 2, bits, 1.5, 0);
  auto more_bits = sram_params(words, bits * 2, 1.5, 0);
  const double e0 = lib().at("sram").evaluate(small).energy_per_op.si();
  EXPECT_GT(lib().at("sram").evaluate(more_words).energy_per_op.si(), e0);
  EXPECT_GT(lib().at("sram").evaluate(more_bits).energy_per_op.si(), e0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SramSizes,
    ::testing::Values(std::pair{256.0, 4.0}, std::pair{1024.0, 8.0},
                      std::pair{2048.0, 8.0}, std::pair{4096.0, 6.0},
                      std::pair{8192.0, 16.0}, std::pair{16384.0, 32.0}));

}  // namespace
}  // namespace powerplay::models
