// Tests for the fictitious processor: assembler, machine semantics,
// profiler and the EQ 12 bridge.
#include "isa/assembler.hpp"
#include "isa/energy.hpp"
#include "isa/machine.hpp"
#include "isa/programs.hpp"

#include <gtest/gtest.h>

#include "models/berkeley_library.hpp"

namespace powerplay::isa {
namespace {

Machine run_program(const std::string& source, std::size_t mem = 1024) {
  Machine m(assemble(source), mem);
  m.run();
  return m;
}

TEST(Assembler, EncodesBasicForms) {
  const auto prog = assemble(R"(
    li   r1, 5
    addi r2, r1, -3
    add  r3, r1, r2
    mov  r4, r3
    halt
  )");
  ASSERT_EQ(prog.size(), 5u);
  EXPECT_EQ(prog[0].op, Opcode::kLi);
  EXPECT_EQ(prog[0].rd, 1);
  EXPECT_EQ(prog[0].imm, 5);
  EXPECT_EQ(prog[1].imm, -3);
  EXPECT_EQ(prog[2].rs2, 2);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const auto prog = assemble(R"(
    start: li  r1, 0
           jmp end
           nop
    end:   beq r1, r1, start
           halt
  )");
  EXPECT_EQ(prog[1].imm, 3);  // end
  EXPECT_EQ(prog[3].imm, 0);  // start
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto prog = assemble("; nothing\n\n  # also nothing\n halt ; stop\n");
  ASSERT_EQ(prog.size(), 1u);
  EXPECT_EQ(prog[0].op, Opcode::kHalt);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  auto expect_error = [](const std::string& src, const std::string& what) {
    try {
      assemble(src);
      FAIL() << "expected error for: " << src;
    } catch (const AssemblyError& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };
  expect_error("frobnicate r1, r2", "unknown mnemonic");
  expect_error("li r99, 1", "register out of range");
  expect_error("li x1, 1", "expected register");
  expect_error("add r1, r2", "expects 3 operand");
  expect_error("jmp nowhere", "undefined label");
  expect_error("a: nop\na: halt", "duplicate label");
  expect_error("li r1, 12junk", "bad immediate");
  expect_error("\n\nli r1,", "line 3");
}

TEST(Assembler, DisassembleRoundTripReassembles) {
  const std::string src = R"(
    li   r1, 10
    loop: addi r1, r1, -1
    bne  r1, r0, loop
    halt
  )";
  const auto prog = assemble(src);
  const std::string dis = disassemble(prog);
  EXPECT_NE(dis.find("addi r1, r1, -1"), std::string::npos);
  EXPECT_NE(dis.find("bne r1, r0, @1"), std::string::npos);
}

TEST(Machine, AluSemantics) {
  const Machine m = run_program(R"(
    li  r1, 12
    li  r2, 5
    add r3, r1, r2
    sub r4, r1, r2
    mul r5, r1, r2
    and r6, r1, r2
    or  r7, r1, r2
    xor r8, r1, r2
    li  r9, 2
    shl r10, r1, r9
    shr r11, r1, r9
    halt
  )");
  EXPECT_EQ(m.reg(3), 17);
  EXPECT_EQ(m.reg(4), 7);
  EXPECT_EQ(m.reg(5), 60);
  EXPECT_EQ(m.reg(6), 4);
  EXPECT_EQ(m.reg(7), 13);
  EXPECT_EQ(m.reg(8), 9);
  EXPECT_EQ(m.reg(10), 48);
  EXPECT_EQ(m.reg(11), 3);
}

TEST(Machine, ShiftRightIsArithmetic) {
  const Machine m = run_program(R"(
    li  r1, -8
    li  r2, 1
    shr r3, r1, r2
    halt
  )");
  EXPECT_EQ(m.reg(3), -4);
}

TEST(Machine, LoadStoreWithOffsets) {
  Machine m(assemble(R"(
    li r1, 10
    li r2, 77
    st r2, r1, 5    ; mem[15] = 77
    ld r3, r1, 5
    halt
  )"), 64);
  m.run();
  EXPECT_EQ(m.mem(15), 77);
  EXPECT_EQ(m.reg(3), 77);
}

TEST(Machine, BranchSemantics) {
  const Machine m = run_program(R"(
        li  r1, 0
        li  r2, 5
  loop: addi r1, r1, 1
        blt r1, r2, loop
        halt
  )");
  EXPECT_EQ(m.reg(1), 5);
}

TEST(Machine, ConditionalBranchesAllForms) {
  const Machine m = run_program(R"(
        li  r1, 3
        li  r2, 3
        li  r10, 0
        beq r1, r2, t1
        li  r10, 99
  t1:   bne r1, r2, bad
        li  r11, 1
        bge r1, r2, t2
  bad:  li  r11, 99
  t2:   halt
  )");
  EXPECT_EQ(m.reg(10), 0);
  EXPECT_EQ(m.reg(11), 1);
}

TEST(Machine, OutOfBoundsMemoryThrows) {
  Machine m(assemble("li r1, 5000\nld r2, r1, 0\nhalt"), 64);
  EXPECT_THROW(m.run(), ExecutionError);
  Machine m2(assemble("li r1, -1\nst r1, r1, 0\nhalt"), 64);
  EXPECT_THROW(m2.run(), ExecutionError);
}

TEST(Machine, StepBudgetGuardsRunaways) {
  Machine m(assemble("loop: jmp loop"), 16);
  EXPECT_THROW(m.run(1000), ExecutionError);
}

TEST(Machine, PcWalkOffDetected) {
  Machine m(assemble("nop"), 16);  // no halt
  EXPECT_THROW(m.run(), ExecutionError);
}

TEST(Machine, ResetPreservesMemoryClearsState) {
  Machine m(assemble("li r1, 1\nst r1, r0, 3\nhalt"), 16);
  m.run();
  EXPECT_EQ(m.mem(3), 1);
  m.reset();
  EXPECT_FALSE(m.halted());
  EXPECT_EQ(m.reg(1), 0);
  EXPECT_EQ(m.mem(3), 1);
  EXPECT_EQ(m.profile().total, 0u);
  m.run();  // idempotent second run
  EXPECT_EQ(m.mem(3), 1);
}

TEST(Profiler, CountsByClass) {
  const Machine m = run_program(R"(
    li  r1, 2      ; alu
    li  r2, 3      ; alu
    mul r3, r1, r2 ; mul
    st  r3, r0, 0  ; store
    ld  r4, r0, 0  ; load
    beq r4, r3, go ; branch (taken)
    nop
  go: halt         ; other
  )");
  const Profile& p = m.profile();
  EXPECT_EQ(p.count(InstClass::kAlu), 2u);
  EXPECT_EQ(p.count(InstClass::kMul), 1u);
  EXPECT_EQ(p.count(InstClass::kLoad), 1u);
  EXPECT_EQ(p.count(InstClass::kStore), 1u);
  EXPECT_EQ(p.count(InstClass::kBranch), 1u);
  EXPECT_EQ(p.count(InstClass::kOther), 1u);
  EXPECT_EQ(p.total, 7u);
}

TEST(Profiler, MemObserverSeesTrace) {
  Machine m(assemble(R"(
    li r1, 1
    st r1, r0, 4
    ld r2, r0, 4
    halt
  )"), 16);
  std::vector<MemAccess> trace;
  m.set_mem_observer([&](const MemAccess& a) { trace.push_back(a); });
  m.run();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_TRUE(trace[0].is_write);
  EXPECT_EQ(trace[0].word_address, 4u);
  EXPECT_FALSE(trace[1].is_write);
}

TEST(Profiler, ClassSwitchesCounted) {
  // alu, alu, mul, st, ld, branch(taken), halt:
  // switches at alu->mul, mul->st, st->ld, ld->branch, branch->halt = 5.
  const Machine m = run_program(R"(
    li  r1, 2
    li  r2, 3
    mul r3, r1, r2
    st  r3, r0, 0
    ld  r4, r0, 0
    beq r4, r3, go
    nop
  go: halt
  )");
  EXPECT_EQ(m.profile().class_switches, 5u);
}

TEST(Profiler, HomogeneousStreamHasNoSwitches) {
  const Machine m = run_program(R"(
    li r1, 1
    li r2, 2
    li r3, 3
    halt
  )");
  // alu,alu,alu,other: one switch.
  EXPECT_EQ(m.profile().class_switches, 1u);
}

TEST(ClassOf, CoversEveryOpcode) {
  EXPECT_EQ(class_of(Opcode::kAddi), InstClass::kAlu);
  EXPECT_EQ(class_of(Opcode::kMul), InstClass::kMul);
  EXPECT_EQ(class_of(Opcode::kLd), InstClass::kLoad);
  EXPECT_EQ(class_of(Opcode::kSt), InstClass::kStore);
  EXPECT_EQ(class_of(Opcode::kJmp), InstClass::kBranch);
  EXPECT_EQ(class_of(Opcode::kHalt), InstClass::kOther);
}

TEST(Fir, MatchesReference) {
  const int n = 64, taps = 8;
  const auto x = random_data(n, 5);
  std::vector<std::int32_t> h;
  for (int j = 0; j < taps; ++j) h.push_back((j % 3) - 1);
  Machine m(assemble(fir_filter_source(n, taps)), n + taps + n + 8);
  load_array(m, x, 0);
  load_array(m, h, n);
  m.run();
  const auto expect = fir_reference(x, h);
  EXPECT_EQ(read_array(m, expect.size(), n + taps), expect);
}

TEST(Fir, MultiplyHeavyMix) {
  const int n = 128, taps = 16;
  Machine m(assemble(fir_filter_source(n, taps)), 3 * n);
  load_array(m, random_data(n, 6), 0);
  m.run();
  const Profile& p = m.profile();
  // One multiply per tap per output.
  EXPECT_EQ(p.count(InstClass::kMul),
            static_cast<std::uint64_t>((n - taps) * taps));
  // Far more multiplies per instruction than any sort.
  EXPECT_GT(static_cast<double>(p.count(InstClass::kMul)) / p.total, 0.1);
}

TEST(Fir, DegenerateSizes) {
  // taps == n: no outputs, still halts cleanly.
  Machine m(assemble(fir_filter_source(8, 8)), 64);
  EXPECT_NO_THROW(m.run());
  EXPECT_EQ(m.profile().count(InstClass::kMul), 0u);
}

TEST(VqDecode, MatchesReference) {
  const int n = 256;
  const int codes_n = n / 16;
  isa::Machine m(assemble(vq_decode_source(n)), codes_n + 4096 + n + 8);
  std::vector<std::int32_t> codes, lut;
  for (int i = 0; i < codes_n; ++i) codes.push_back((i * 37) % 256);
  for (int i = 0; i < 4096; ++i) lut.push_back((i * 13) % 64);
  load_array(m, codes, 0);
  load_array(m, lut, codes_n);
  m.run();
  EXPECT_EQ(read_array(m, n, codes_n + 4096),
            vq_reference(codes, lut, n));
}

TEST(EnergyBridge, ParamsMatchProfileAndEq12) {
  const Machine m = run_program(R"(
    li  r1, 10
    li  r2, 0
  loop: addi r2, r2, 1
    blt r2, r1, loop
    halt
  )");
  ModelParams mp;
  mp.f_hz = 25e6;
  mp.vdd = 3.3;
  auto params = instruction_model_params(m.profile(), mp);
  EXPECT_DOUBLE_EQ(params.get("n_alu"),
                   static_cast<double>(m.profile().count(InstClass::kAlu)));
  EXPECT_DOUBLE_EQ(params.get("n_branch"), 10.0);

  const auto lib = models::berkeley_library();
  const auto est = lib.at("processor_instruction").evaluate(params);
  EXPECT_GT(est.energy_per_op.si(), 0.0);
  EXPECT_GT(est.dynamic_power.si(), 0.0);
}

}  // namespace
}  // namespace powerplay::isa
