// Resilience tests for the web stack: malformed-HTTP fuzz tables, hung
// peers vs deadlines, bounded-pool load shedding, and the /healthz
// endpoint.  Every scenario here used to be able to wedge a worker
// thread or crash the server outright.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <thread>

#include <gtest/gtest.h>

#include "library/store.hpp"
#include "web/app.hpp"
#include "web/client.hpp"
#include "web/server.hpp"

namespace powerplay::web {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// Blocking loopback connect for raw-bytes tests (no HTTP client).
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

/// Send raw bytes, half-close, read whatever comes back until EOF.
std::string raw_exchange(std::uint16_t port, const std::string& bytes) {
  const int fd = raw_connect(port);
  if (!bytes.empty()) {
    EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  ::shutdown(fd, SHUT_WR);
  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(Resilience, MalformedRequestsAnswer400AndServerSurvives) {
  HttpServer server(0, [](const Request&) { return Response::ok_text("ok"); },
                    ServerOptions{.io_timeout = 2000ms});
  server.start();

  // Each entry holds a framing-complete but malformed message; the
  // server must answer 400 (never 500, never crash).
  const std::string cases[] = {
      "GET\r\n\r\n",                                // truncated request line
      "\r\n\r\n",                                   // no method at all
      "GET / HTTP/1.0\r\nno colon here\r\n\r\n",    // header without colon
      "GET / HTTP/1.0\r\ncontent-length: zebra\r\n\r\n",
      "GET / HTTP/1.0\r\ncontent-length: 999999999999\r\n\r\n",  // > cap
      "GET / HTTP/1.0\r\ncontent-length: -1\r\n\r\n",            // wraps huge
      "GET / HTTP/1.0\r\ncontent-length: "
      "99999999999999999999999999\r\n\r\n",         // stoull overflow
      // Body shorter than promised, then EOF: truncated request.
      "POST / HTTP/1.0\r\ncontent-length: 10\r\n\r\nabc",
  };
  for (const std::string& wire : cases) {
    const std::string reply = raw_exchange(server.port(), wire);
    EXPECT_NE(reply.find("400 Bad Request"), std::string::npos)
        << "input: " << wire << "\nreply: " << reply;
  }

  // Empty reads (connect then immediately close) must be shrugged off.
  EXPECT_EQ(raw_exchange(server.port(), ""), "");

  // After all that abuse, a normal request still succeeds.
  EXPECT_EQ(http_get(server.port(), "/").body, "ok");
  server.stop();
}

TEST(Resilience, OversizedContentLengthRejectedAtParseTime) {
  // Parse-level checks: no 16 MiB allocation is ever attempted.
  EXPECT_THROW(
      parse_request("GET / HTTP/1.0\r\ncontent-length: 999999999999\r\n\r\n"),
      HttpError);
  EXPECT_THROW(
      message_size("GET / HTTP/1.0\r\ncontent-length: 999999999999\r\n\r\n"),
      HttpError);
  EXPECT_THROW(parse_request("GET / HTTP/1.0\r\ncontent-length: -1\r\n\r\n"),
               HttpError);
  EXPECT_THROW(
      parse_request("GET / HTTP/1.0\r\ncontent-length: 12abc\r\n\r\n"),
      HttpError);
  // At the cap is still fine (framing-wise): 16 MiB exactly is allowed.
  const auto size = message_size("GET / HTTP/1.0\r\ncontent-length: 0\r\n\r\n");
  ASSERT_TRUE(size.has_value());
}

TEST(Resilience, SheddingStatusCodesRenderProperly) {
  EXPECT_EQ(status_text(503), "Service Unavailable");
  EXPECT_EQ(status_text(429), "Too Many Requests");
  EXPECT_EQ(status_text(408), "Request Timeout");
}

TEST(Resilience, DeadlineBasics) {
  EXPECT_FALSE(Deadline::never().bounded());
  EXPECT_FALSE(Deadline::never().expired());
  EXPECT_EQ(Deadline::never().poll_timeout_ms(), -1);
  const Deadline expired = Deadline::after(0ms);
  EXPECT_TRUE(expired.expired());
  EXPECT_EQ(expired.poll_timeout_ms(), 0);
  EXPECT_FALSE(Deadline::after(10s).expired());
}

TEST(Resilience, ClientDeadlineFiresOnHungPeer) {
  // A listener whose backlog accepts the TCP handshake but never reads
  // or answers: the pre-deadline client would block indefinitely.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  SocketOptions options;
  options.connect_timeout = 500ms;
  options.io_timeout = 150ms;
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_THROW(http_get(port, "/", options), HttpTimeout);
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(elapsed, 2s) << "deadline did not bound the hang";
  ::close(listener);
}

TEST(Resilience, ServerDeadlineReapsHungPeer) {
  HttpServer server(0, [](const Request&) { return Response::ok_text("ok"); },
                    ServerOptions{.io_timeout = 100ms});
  server.start();

  // Connect and send nothing: the worker's read deadline must fire.
  const int fd = raw_connect(server.port());
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (server.timeouts() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.timeouts(), 1u);
  ::close(fd);

  // The worker that reaped the hung peer is back in rotation.
  EXPECT_EQ(http_get(server.port(), "/").body, "ok");
  server.stop();
}

TEST(Resilience, LoadSheddingBeyondPoolAndQueue) {
  // One worker, queue of one: request A occupies the worker, request B
  // the queue, request C must be shed with 503 + Retry-After while A
  // and B still complete.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> entered{0};
  ServerOptions options;
  options.worker_count = 1;
  options.queue_capacity = 1;
  options.io_timeout = 10000ms;
  options.retry_after_seconds = 7;
  HttpServer server(
      0,
      [&](const Request& req) {
        ++entered;
        opened.wait();
        return Response::ok_text("done:" + req.target);
      },
      options);
  server.start();

  auto get_async = [&](const std::string& target) {
    return std::async(std::launch::async, [&server, target] {
      return http_get(server.port(), target);
    });
  };

  auto a = get_async("/a");
  // Wait until A is inside the handler (worker busy, queue empty).
  while (entered.load() == 0) std::this_thread::sleep_for(1ms);
  auto b = get_async("/b");
  // Wait until B is parked in the accept queue.
  const auto park = std::chrono::steady_clock::now() + 5s;
  while (server.queue_depth() < 1 && std::chrono::steady_clock::now() < park) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(server.queue_depth(), 1u);

  // Pool and queue are full: C is shed immediately.
  const Response shed = http_get(server.port(), "/c");
  EXPECT_EQ(shed.status, 503);
  ASSERT_TRUE(shed.headers.contains("retry-after"));
  EXPECT_EQ(shed.headers.at("retry-after"), "7");
  EXPECT_EQ(server.requests_shed(), 1u);

  // In-flight work is unaffected: A and B finish normally.
  gate.set_value();
  EXPECT_EQ(a.get().body, "done:/a");
  EXPECT_EQ(b.get().body, "done:/b");
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
}

TEST(Resilience, HealthzReportsCountersWhenWired) {
  static int counter = 0;
  const fs::path dir =
      fs::temp_directory_path() /
      ("pp_healthz_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter++));
  fs::create_directories(dir);
  {
    PowerPlayApp app{library::LibraryStore(dir)};
    HttpServer server(0, [&](const Request& r) { return app.handle(r); });
    app.set_stats_source([&server] { return server.stats(); });
    server.start();

    const Response first = http_get(server.port(), "/healthz");
    EXPECT_EQ(first.status, 200);
    EXPECT_EQ(first.body.rfind("ok\n", 0), 0u);
    EXPECT_NE(first.body.find("models: "), std::string::npos);
    EXPECT_NE(first.body.find("requests_served: 0"), std::string::npos);

    const Response second = http_get(server.port(), "/healthz");
    EXPECT_NE(second.body.find("requests_served: 1"), std::string::npos);
    EXPECT_NE(second.body.find("requests_shed: 0"), std::string::npos);
    EXPECT_NE(second.body.find("timeouts: 0"), std::string::npos);
    server.stop();
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace powerplay::web
