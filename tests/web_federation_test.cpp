// Federated model network: seeded chaos suite.  Dead hosts, virtually
// slow hosts, flapping breakers, mid-body disconnects, and a full
// partition-then-heal resync — all asserting the federation degrades
// into *marked partial results* instead of failing closed, and that
// merged results are byte-stable across fault schedules.
#include "web/federation.hpp"

#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "library/serialize.hpp"
#include "web/app.hpp"
#include "web/fault.hpp"
#include "web/server.hpp"

namespace powerplay::web {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

model::UserModelDefinition make_def(const std::string& name, double femto) {
  model::UserModelDefinition def;
  def.name = name;
  def.category = model::Category::kComputation;
  def.params = {{"k", "scale", 1.0, "", 0, 1e6, false}};
  def.c_fullswing = "k * " + std::to_string(femto) + "e-15";
  return def;
}

/// In-process model host: answers the remote-access protocol for a
/// fixed set of definitions (the shape the federation syncs against).
std::shared_ptr<Transport> model_host(
    const std::vector<model::UserModelDefinition>& defs) {
  auto texts = std::make_shared<std::map<std::string, std::string>>();
  for (const auto& def : defs) (*texts)[def.name] = library::to_text(def);
  return std::make_shared<FunctionTransport>([texts](const Request& req) {
    const Target t = req.parsed_target();
    if (t.path == "/api/models") {
      std::string body;
      for (const auto& [name, text] : *texts) body += name + "\n";
      return Response::ok_text(body);
    }
    if (t.path == "/api/model") {
      const auto it = texts->find(get_or(req.all_params(), "name"));
      if (it == texts->end()) return Response::not_found("model");
      return Response::ok_text(it->second);
    }
    return Response::not_found(t.path);
  });
}

/// Transport whose liveness a test can flip (partition switch).
std::shared_ptr<Transport> gated(std::shared_ptr<Transport> inner,
                                 std::shared_ptr<bool> dead) {
  return std::make_shared<FunctionTransport>(
      [inner, dead](const Request& req) -> Response {
        if (*dead) throw HttpError("partitioned");
        return inner->roundtrip(req);
      });
}

const FedHostOutcome& outcome_of(const FedSearchResult& result,
                                 const std::string& host) {
  for (const FedHostOutcome& o : result.hosts) {
    if (o.host == host) return o;
  }
  throw std::runtime_error("no outcome for host " + host);
}

bool has_model(const FedSearchResult& result, const std::string& name) {
  for (const FedModelEntry& m : result.models) {
    if (m.name == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Deadline propagation (satellite: inbound budget bounds outbound I/O)
// ---------------------------------------------------------------------------

TEST(DeadlineProp, EarlierPicksTheSoonerBound) {
  const Deadline never = Deadline::never();
  const Deadline soon = Deadline::after(10ms);
  const Deadline late = Deadline::after(10'000ms);
  EXPECT_FALSE(Deadline::earlier(never, never).bounded());
  EXPECT_TRUE(Deadline::earlier(never, soon).bounded());
  EXPECT_LE(Deadline::earlier(soon, late).remaining(), 10ms);
  EXPECT_LE(Deadline::earlier(late, soon).remaining(), 10ms);
  EXPECT_GT(Deadline::earlier(late, never).remaining(), 1000ms);
}

TEST(DeadlineProp, ExpiredCallerFailsBeforeConnect) {
  const Deadline spent = Deadline::after(-1ms);
  ASSERT_TRUE(spent.expired());
  Request req;
  // Port 1 is almost certainly closed, but the point is stronger: the
  // client must raise HttpTimeout before even attempting the connect.
  EXPECT_THROW(http_request(1, req, {}, spent), HttpTimeout);
}

// ---------------------------------------------------------------------------
// RemoteLibrary retry safety (satellite: idempotent-only auto-retry)
// ---------------------------------------------------------------------------

TEST(RemoteRetry, NonIdempotentRequestsGetOneAttempt) {
  auto calls = std::make_shared<int>(0);
  auto flaky = std::make_shared<FunctionTransport>(
      [calls](const Request&) -> Response {
        ++*calls;
        throw HttpError("connection dropped");
      });
  RetryPolicy policy;
  policy.max_attempts = 4;
  RemoteLibrary remote(flaky, policy);
  remote.set_sleeper([](std::chrono::milliseconds) {});

  Request post;
  post.method = "POST";
  post.target = "/design/add";
  EXPECT_THROW(remote.perform(post), HttpError);
  EXPECT_EQ(*calls, 1) << "a lost POST must not be replayed blindly";

  Request get;
  get.method = "GET";
  get.target = "/api/models";
  EXPECT_THROW(remote.perform(get), HttpError);
  EXPECT_EQ(*calls, 1 + 4) << "GETs keep the full retry budget";
}

// ---------------------------------------------------------------------------
// Federation core
// ---------------------------------------------------------------------------

TEST(Federation, ParsePeerSpec) {
  EXPECT_EQ(parse_peer_spec("127.0.0.1:8080"), 8080);
  EXPECT_EQ(parse_peer_spec("localhost:9"), 9);
  EXPECT_THROW(parse_peer_spec("8080"), HttpError);
  EXPECT_THROW(parse_peer_spec("example.com:80"), HttpError);
  EXPECT_THROW(parse_peer_spec("127.0.0.1:"), HttpError);
  EXPECT_THROW(parse_peer_spec("127.0.0.1:0"), HttpError);
  EXPECT_THROW(parse_peer_spec("127.0.0.1:65536"), HttpError);
  EXPECT_THROW(parse_peer_spec("127.0.0.1:80x"), HttpError);
}

TEST(Federation, MergeRanksByReplicaCountThenName) {
  FederatedLibrary fed;
  fed.add_host("siteA", model_host({make_def("fed_common", 10),
                                    make_def("fed_alpha", 1)}));
  fed.add_host("siteB", model_host({make_def("fed_common", 10),
                                    make_def("fed_beta", 2)}));
  fed.add_host("siteC", model_host({make_def("fed_common", 10)}));

  const FedSearchResult all = fed.search("", Deadline::after(500ms));
  EXPECT_FALSE(all.partial);
  ASSERT_EQ(all.models.size(), 3u);
  EXPECT_EQ(all.models[0].name, "fed_common");
  EXPECT_EQ(all.models[0].replicas, 3);
  EXPECT_EQ(all.models[1].name, "fed_alpha");  // ties ranked by name
  EXPECT_EQ(all.models[2].name, "fed_beta");
  for (const FedHostOutcome& o : all.hosts) {
    EXPECT_EQ(o.status, HostStatus::kServed);
  }

  const FedSearchResult filtered = fed.search("alpha", Deadline::after(500ms));
  ASSERT_EQ(filtered.models.size(), 1u);
  EXPECT_EQ(filtered.models[0].name, "fed_alpha");
}

TEST(FederationChaos, DeadHostYieldsMarkedPartialResults) {
  FederatedLibrary fed;
  fed.add_host("siteA", model_host({make_def("fed_alive", 5)}));
  fed.add_host("siteDead", std::make_shared<FunctionTransport>(
                               [](const Request&) -> Response {
                                 throw HttpError("connection refused");
                               }));

  const FedSearchResult result = fed.search("", Deadline::after(500ms));
  EXPECT_TRUE(result.partial);
  EXPECT_TRUE(has_model(result, "fed_alive"));
  EXPECT_EQ(outcome_of(result, "siteA").status, HostStatus::kServed);
  const FedHostOutcome& dead = outcome_of(result, "siteDead");
  EXPECT_EQ(dead.status, HostStatus::kDegraded);
  EXPECT_FALSE(dead.error.empty());
  EXPECT_EQ(fed.stats().partial_results, 1u);
  EXPECT_EQ(fed.stats().degraded_seen, 1u);
}

TEST(FederationChaos, SlowHostTimesOutVirtuallyWithinDeadline) {
  FaultSpec spec;
  spec.delay_rate = 1.0;
  spec.delay = 5000ms;    // five real seconds if it actually slept
  spec.deadline = 200ms;  // the simulated client patience
  spec.seed = 7;
  FederatedLibrary fed;
  fed.add_host("siteFast", model_host({make_def("fed_fast", 1)}));
  fed.add_host("siteSlow", std::make_shared<FaultTransport>(
                               model_host({make_def("fed_slow", 2)}), spec));

  const auto begin = std::chrono::steady_clock::now();
  const FedSearchResult result = fed.search("", Deadline::after(10'000ms));
  const auto wall = std::chrono::steady_clock::now() - begin;

  EXPECT_LT(wall, 1s) << "injected delays must never sleep";
  EXPECT_TRUE(result.partial);
  EXPECT_TRUE(has_model(result, "fed_fast"));
  EXPECT_EQ(outcome_of(result, "siteSlow").status, HostStatus::kDegraded);
}

TEST(FederationChaos, MidBodyDisconnectDegradesThatHostOnly) {
  FaultSpec spec;
  spec.truncate_rate = 1.0;
  spec.seed = 3;
  FederatedLibrary fed;
  fed.add_host("siteOk", model_host({make_def("fed_whole", 4)}));
  fed.add_host("siteCut", std::make_shared<FaultTransport>(
                              model_host({make_def("fed_cut", 9)}), spec));

  const FedSearchResult result = fed.search("", Deadline::after(500ms));
  EXPECT_TRUE(result.partial);
  EXPECT_TRUE(has_model(result, "fed_whole"));
  EXPECT_FALSE(has_model(result, "fed_cut"));  // never synced, no mirror
  const FedHostOutcome& cut = outcome_of(result, "siteCut");
  EXPECT_EQ(cut.status, HostStatus::kDegraded);
  EXPECT_NE(cut.error.find("truncated"), std::string::npos) << cut.error;
}

TEST(FederationChaos, FlappingBreakerSkipsThenProbesOnVirtualClock) {
  auto vnow = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::now());
  FederationOptions options;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown = 1000ms;
  options.clock = [vnow] { return *vnow; };
  auto dead = std::make_shared<bool>(true);
  FederatedLibrary fed(options);
  fed.add_host("flappy", gated(model_host({make_def("fed_flap", 6)}), dead));

  // Two failures trip the breaker...
  EXPECT_EQ(outcome_of(fed.search("", Deadline::after(200ms)), "flappy")
                .status,
            HostStatus::kDegraded);
  EXPECT_EQ(outcome_of(fed.search("", Deadline::after(200ms)), "flappy")
                .status,
            HostStatus::kDegraded);
  // ...so the next search does not even attempt the host.
  EXPECT_EQ(outcome_of(fed.search("", Deadline::after(200ms)), "flappy")
                .status,
            HostStatus::kSkippedOpen);
  EXPECT_GE(fed.stats().skipped_open, 1u);

  // Cooldown passes (virtually) and the host heals: the half-open probe
  // succeeds and the breaker closes again.
  *vnow += 1500ms;
  *dead = false;
  EXPECT_EQ(outcome_of(fed.search("", Deadline::after(200ms)), "flappy")
                .status,
            HostStatus::kServed);
  EXPECT_EQ(fed.hosts()[0].breaker, CircuitBreaker::State::kClosed);
}

TEST(Federation, HedgeFailsOverToNextHealthiestHost) {
  FederatedLibrary fed;
  fed.add_host("alpha", std::make_shared<FunctionTransport>(
                            [](const Request&) -> Response {
                              throw HttpError("primary down");
                            }));
  fed.add_host("beta", model_host({make_def("fed_hedge", 8)}));

  // Equal health, ties by key: "alpha" is the primary and fails, so the
  // hedge to "beta" carries the fetch.
  const FedFetchResult result =
      fed.fetch_model("fed_hedge", Deadline::after(500ms));
  EXPECT_EQ(result.def.name, "fed_hedge");
  EXPECT_EQ(result.origin, "beta");
  EXPECT_TRUE(result.hedged);
  EXPECT_TRUE(result.hedge_won);
  EXPECT_FALSE(result.from_mirror);
  EXPECT_EQ(fed.stats().hedges, 1u);
  EXPECT_EQ(fed.stats().hedge_wins, 1u);
}

TEST(FederationChaos, MirrorServesStaleThroughPartitionThenResyncs) {
  auto dead = std::make_shared<bool>(false);
  FederatedLibrary fed;
  int sunk = 0;
  fed.set_mirror_sink([&](const model::UserModelDefinition&) { ++sunk; });
  fed.add_host("solo", gated(model_host({make_def("fed_mirror", 7)}), dead));

  ASSERT_EQ(fed.sync_now(), 1);
  EXPECT_EQ(sunk, 1);
  EXPECT_TRUE(fed.wait_synced("solo", 100ms));

  *dead = true;  // partition
  const FedSearchResult stale = fed.search("", Deadline::after(200ms));
  EXPECT_TRUE(stale.partial);
  EXPECT_TRUE(stale.stale);
  ASSERT_TRUE(has_model(stale, "fed_mirror"));
  EXPECT_TRUE(stale.models[0].stale);
  EXPECT_TRUE(outcome_of(stale, "solo").stale);

  const FedFetchResult fetched =
      fed.fetch_model("fed_mirror", Deadline::after(200ms));
  EXPECT_TRUE(fetched.from_mirror);
  EXPECT_EQ(fetched.def.name, "fed_mirror");
  EXPECT_EQ(fed.stats().mirror_serves, 1u);

  *dead = false;  // heal: resync completes, results go fresh again
  EXPECT_EQ(fed.sync_now(), 1);
  const FedSearchResult fresh = fed.search("", Deadline::after(200ms));
  EXPECT_FALSE(fresh.partial);
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(sunk, 1) << "unchanged definitions are not re-sunk";
}

TEST(FederationChaos, MergedResultsAreByteStableAcrossSeeds) {
  const std::vector<model::UserModelDefinition> site_a = {
      make_def("fed_stable_common", 10), make_def("fed_stable_a", 1)};
  const std::vector<model::UserModelDefinition> site_b = {
      make_def("fed_stable_common", 10), make_def("fed_stable_b", 2)};
  const std::vector<model::UserModelDefinition> site_c = {
      make_def("fed_stable_common", 10), make_def("fed_stable_c", 3)};

  std::string reference;
  bool any_partial = false;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FederatedLibrary fed;
    std::vector<std::shared_ptr<bool>> chaos_on;
    for (const auto* defs : {&site_a, &site_b, &site_c}) {
      FaultSpec spec;
      spec.drop_rate = 0.3;
      spec.error_rate = 0.3;
      spec.delay_rate = 0.3;
      spec.delay = 5000ms;
      spec.deadline = 100ms;  // every injected delay is a timeout
      spec.seed = seed + 100 * chaos_on.size();
      auto clean = model_host(*defs);
      auto chaotic = std::make_shared<FaultTransport>(clean, spec);
      auto on = std::make_shared<bool>(false);
      chaos_on.push_back(on);
      fed.add_host("site" + std::to_string(chaos_on.size()),
                   std::make_shared<FunctionTransport>(
                       [clean, chaotic, on](const Request& req) {
                         return *on ? chaotic->roundtrip(req)
                                    : clean->roundtrip(req);
                       }));
    }
    // Clean sync first (the steady state), then chaos for the search.
    ASSERT_EQ(fed.sync_now(), 3);
    for (const auto& on : chaos_on) *on = true;

    const FedSearchResult result = fed.search("", Deadline::after(2000ms));
    any_partial = any_partial || result.partial;
    std::string rendered;
    for (const FedModelEntry& m : result.models) {
      rendered += m.name + ":" + std::to_string(m.replicas) + "\n";
    }
    if (reference.empty()) {
      reference = rendered;
    } else {
      EXPECT_EQ(rendered, reference)
          << "merge diverged under fault seed " << seed;
    }
  }
  EXPECT_FALSE(reference.empty());
  EXPECT_TRUE(any_partial) << "chaos rates never bit; test is vacuous";
}

// ---------------------------------------------------------------------------
// App integration: /fed/* routes, healthz counters, mirror journaling
// ---------------------------------------------------------------------------

struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("pp_fed_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(FederationApp, RoutesHealthzAndMirrorJournaling) {
  TempDir dir;
  PowerPlayApp app{library::LibraryStore(dir.path)};
  FederatedLibrary& fed = app.enable_federation();
  fed.add_host("siteX", model_host({make_def("fed_routed", 5)}));

  Request search;
  search.target = "/fed/models";
  const Response listed = app.handle(search);
  EXPECT_EQ(listed.status, 200);
  EXPECT_NE(listed.body.find("fed_routed replicas=1"), std::string::npos)
      << listed.body;
  EXPECT_EQ(listed.headers.at("x-fed-partial"), "0");

  Request fetch;
  fetch.target = "/fed/model?name=fed_routed";
  const Response got = app.handle(fetch);
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.headers.at("x-fed-origin"), "siteX");
  EXPECT_EQ(library::parse_user_model(got.body).name, "fed_routed");
  // The mirror sink journaled the fetched definition into the store and
  // registered it for local evaluation.
  EXPECT_TRUE(app.store().load_model("fed_routed").has_value());
  EXPECT_NE(app.registry().find_shared("fed_routed"), nullptr);

  Request missing;
  missing.target = "/fed/model?name=no_such_model";
  EXPECT_EQ(app.handle(missing).status, 502);

  Request admin;
  admin.method = "POST";
  admin.target = "/fed/hosts?add=127.0.0.1:9";
  EXPECT_EQ(app.handle(admin).status, 200);
  EXPECT_EQ(fed.host_count(), 2u);
  admin.target = "/fed/hosts?remove=127.0.0.1:9";
  EXPECT_EQ(app.handle(admin).status, 200);
  EXPECT_EQ(fed.host_count(), 1u);

  Request hosts;
  hosts.target = "/fed/hosts";
  EXPECT_NE(app.handle(hosts).body.find("siteX"), std::string::npos);

  Request healthz;
  healthz.target = "/healthz";
  const Response health = app.handle(healthz);
  EXPECT_NE(health.body.find("fed_hosts: 1"), std::string::npos);
  // Two fetch attempts so far: the served one and the 502.
  EXPECT_NE(health.body.find("fed_fetches: 2"), std::string::npos)
      << health.body;
  app.shutdown();
}

TEST(FederationApp, FedRoutesReport400WhenDisabled) {
  TempDir dir;
  PowerPlayApp app{library::LibraryStore(dir.path)};
  Request search;
  search.target = "/fed/models";
  EXPECT_EQ(app.handle(search).status, 400);
  app.shutdown();
}

// ---------------------------------------------------------------------------
// Acceptance: three real sites, one killed mid-query, then healed
// ---------------------------------------------------------------------------

struct Site {
  fs::path dir;
  std::unique_ptr<PowerPlayApp> app;
  std::unique_ptr<HttpServer> server;

  Site() {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("pp_fedsite_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    fs::create_directories(dir);
    app = std::make_unique<PowerPlayApp>(library::LibraryStore(dir));
    server = std::make_unique<HttpServer>(
        0, [this](const Request& r) { return app->handle(r); });
    server->start();
  }
  ~Site() {
    server->stop();
    app->shutdown();
    fs::remove_all(dir);
  }
  [[nodiscard]] std::uint16_t port() const { return server->port(); }

  void publish_model(const std::string& name, double femto) {
    app->store().save_model(make_def(name, femto), /*proprietary=*/false);
  }
};

TEST(FederationChaos, AcceptanceDeadSitePartialThenBreakerHealsAndResyncs) {
  Site a;
  Site b;
  Site c;
  a.publish_model("fed_site_a", 100);
  b.publish_model("fed_site_b", 200);
  c.publish_model("fed_site_c", 300);
  for (Site* s : {&a, &b, &c}) s->publish_model("fed_everywhere", 10);

  FederationOptions options;
  options.breaker.failure_threshold = 1;  // flap fast for the test
  options.breaker.cooldown = 50ms;
  FederatedLibrary fed(options);
  std::mutex sink_mutex;
  std::vector<std::string> sunk;
  fed.set_mirror_sink([&](const model::UserModelDefinition& def) {
    std::lock_guard lock(sink_mutex);
    sunk.push_back(def.name);
  });
  fed.add_host(a.port());
  fed.add_host(b.port());
  fed.add_host(c.port());
  ASSERT_EQ(fed.sync_now(), 3);
  std::size_t mirrored_before;
  {
    std::lock_guard lock(sink_mutex);
    mirrored_before = sunk.size();
  }
  EXPECT_GE(mirrored_before, 4u);  // 3 singles + fed_everywhere

  // Kill site B; its port stays closed until the restart below.
  const std::uint16_t b_port = b.port();
  const std::string b_key = "127.0.0.1:" + std::to_string(b_port);
  b.server->stop();

  const auto begin = std::chrono::steady_clock::now();
  const FedSearchResult partial = fed.search("", Deadline::after(2000ms));
  EXPECT_LT(std::chrono::steady_clock::now() - begin, 2500ms)
      << "the caller's deadline bounds the fan-out";

  // Survivors' results merged; the dead site is *marked* degraded and
  // its models still appear via the mirror, stamped stale.
  EXPECT_TRUE(partial.partial);
  EXPECT_EQ(outcome_of(partial, b_key).status, HostStatus::kDegraded);
  EXPECT_TRUE(outcome_of(partial, b_key).stale);
  EXPECT_TRUE(has_model(partial, "fed_site_a"));
  EXPECT_TRUE(has_model(partial, "fed_site_b"));  // from the mirror
  EXPECT_TRUE(has_model(partial, "fed_site_c"));
  for (const FedModelEntry& m : partial.models) {
    if (m.name == "fed_everywhere") EXPECT_EQ(m.replicas, 3);
  }
  // Zero locally-synced models lost.
  {
    std::lock_guard lock(sink_mutex);
    EXPECT_EQ(sunk.size(), mirrored_before);
  }

  // The breaker opened on the failure; the next search skips the host.
  const FedSearchResult skipped = fed.search("", Deadline::after(2000ms));
  EXPECT_EQ(outcome_of(skipped, b_key).status, HostStatus::kSkippedOpen);

  // Site B returns on the same port (SO_REUSEADDR makes this immediate);
  // after the cooldown the half-open probe lets the resync through.
  b.server = std::make_unique<HttpServer>(
      b_port, [&b](const Request& r) { return b.app->handle(r); });
  b.server->start();
  std::this_thread::sleep_for(80ms);  // past the 50ms breaker cooldown
  EXPECT_EQ(fed.sync_now(), 3);

  const FedSearchResult healed = fed.search("", Deadline::after(2000ms));
  EXPECT_FALSE(healed.partial);
  EXPECT_EQ(outcome_of(healed, b_key).status, HostStatus::kServed);
  {
    std::lock_guard lock(sink_mutex);
    EXPECT_EQ(sunk.size(), mirrored_before) << "resync must not re-sink";
  }
}

}  // namespace
}  // namespace powerplay::web
