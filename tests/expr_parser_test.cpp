#include "expr/parser.hpp"

#include <gtest/gtest.h>

#include "expr/eval.hpp"

namespace powerplay::expr {
namespace {

double eval_const(const std::string& src) {
  Scope scope;
  static const FunctionTable fns = FunctionTable::with_builtins();
  return evaluate(*parse(src), scope, fns);
}

TEST(Parser, PrecedenceMulOverAdd) {
  EXPECT_DOUBLE_EQ(eval_const("2 + 3 * 4"), 14.0);
  EXPECT_DOUBLE_EQ(eval_const("(2 + 3) * 4"), 20.0);
}

TEST(Parser, LeftAssociativity) {
  EXPECT_DOUBLE_EQ(eval_const("10 - 4 - 3"), 3.0);
  EXPECT_DOUBLE_EQ(eval_const("100 / 10 / 5"), 2.0);
  EXPECT_DOUBLE_EQ(eval_const("10 % 7 % 2"), 1.0);
}

TEST(Parser, PowerIsRightAssociativeAndTight) {
  EXPECT_DOUBLE_EQ(eval_const("2^3^2"), 512.0);
  EXPECT_DOUBLE_EQ(eval_const("2*3^2"), 18.0);
  EXPECT_DOUBLE_EQ(eval_const("2^-2"), 0.25);
  EXPECT_DOUBLE_EQ(eval_const("-2^2"), -4.0);  // unary minus binds looser
}

TEST(Parser, Comparisons) {
  EXPECT_DOUBLE_EQ(eval_const("1 < 2"), 1.0);
  EXPECT_DOUBLE_EQ(eval_const("2 <= 1"), 0.0);
  EXPECT_DOUBLE_EQ(eval_const("3 == 3"), 1.0);
  EXPECT_DOUBLE_EQ(eval_const("3 != 3"), 0.0);
  EXPECT_DOUBLE_EQ(eval_const("1 + 1 >= 2"), 1.0);
}

TEST(Parser, LogicalOperatorsAndNot) {
  EXPECT_DOUBLE_EQ(eval_const("1 && 0"), 0.0);
  EXPECT_DOUBLE_EQ(eval_const("1 || 0"), 1.0);
  EXPECT_DOUBLE_EQ(eval_const("!0"), 1.0);
  EXPECT_DOUBLE_EQ(eval_const("!3"), 0.0);
  EXPECT_DOUBLE_EQ(eval_const("0 && 1 || 1"), 1.0);  // && binds tighter
}

TEST(Parser, Conditional) {
  EXPECT_DOUBLE_EQ(eval_const("1 ? 10 : 20"), 10.0);
  EXPECT_DOUBLE_EQ(eval_const("0 ? 10 : 20"), 20.0);
  // Nested/right-associative.
  EXPECT_DOUBLE_EQ(eval_const("0 ? 1 : 0 ? 2 : 3"), 3.0);
  EXPECT_DOUBLE_EQ(eval_const("2 > 1 ? 2 + 3 : 9"), 5.0);
}

TEST(Parser, FunctionCalls) {
  EXPECT_DOUBLE_EQ(eval_const("max(1, 5, 3)"), 5.0);
  EXPECT_DOUBLE_EQ(eval_const("min(4, 2)"), 2.0);
  EXPECT_DOUBLE_EQ(eval_const("pow(2, 10)"), 1024.0);
  EXPECT_DOUBLE_EQ(eval_const("if(2 > 1, 7, 8)"), 7.0);
  EXPECT_DOUBLE_EQ(eval_const("log2(4096)"), 12.0);
  EXPECT_DOUBLE_EQ(eval_const("ceil(2.1) + floor(2.9) + round(2.5)"), 8.0);
}

TEST(Parser, ScientificNotationExpression) {
  EXPECT_DOUBLE_EQ(eval_const("253e-15 * 16 * 16"), 253e-15 * 256);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW(parse(""), ExprError);
  EXPECT_THROW(parse("1 +"), ExprError);
  EXPECT_THROW(parse("(1 + 2"), ExprError);
  EXPECT_THROW(parse("f(1,"), ExprError);
  EXPECT_THROW(parse("1 2"), ExprError);       // trailing garbage
  EXPECT_THROW(parse("a ? 1"), ExprError);     // missing ':'
  EXPECT_THROW(parse("* 3"), ExprError);
}

TEST(Parser, ReferencedVariablesInOrderDeduplicated) {
  const auto e = parse("a + b*a + max(c, b)");
  EXPECT_EQ(referenced_variables(*e),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Parser, ReferencedFunctions) {
  const auto e = parse("max(1, min(2, 3)) + max(4, 5)");
  EXPECT_EQ(referenced_functions(*e),
            (std::vector<std::string>{"max", "min"}));
}

// Property: to_source() of a parsed expression re-parses to the same
// value (round-trip semantic identity) over a corpus of expressions.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ParseRenderParseIsStable) {
  const auto e1 = parse(GetParam());
  const std::string rendered = to_source(*e1);
  const auto e2 = parse(rendered);
  Scope scope;
  scope.set("a", 3.0);
  scope.set("b", 5.0);
  scope.set("c", 7.0);
  scope.set("vdd", 1.5);
  const FunctionTable fns = FunctionTable::with_builtins();
  EXPECT_DOUBLE_EQ(evaluate(*e1, scope, fns), evaluate(*e2, scope, fns))
      << "rendered as: " << rendered;
  // Rendering must also be a fixed point.
  EXPECT_EQ(to_source(*e2), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip,
    ::testing::Values(
        "1 + 2 * 3", "(1 + 2) * 3", "a - b - c", "a - (b - c)",
        "2^3^2", "(2^3)^2", "-a + b", "-(a + b)", "a / b / c",
        "a / (b * c)", "a < b ? a : b", "(a < b) + 1",
        "!a && b || c", "!(a && b)", "max(a, b, c) * min(a, 2)",
        "if(a > b, a - b, b - a)", "a % b % 2", "2.5e-3 * a",
        "pow(a, 2) + sqrt(b)", "a ? b : c ? a : b",
        "vdd * vdd * 253e-15 * a * b"));

}  // namespace
}  // namespace powerplay::expr
