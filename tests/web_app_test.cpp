// End-to-end tests of the PowerPlay web application: the paper's
// login -> menu -> library -> model form -> spreadsheet -> Play loop,
// plus the model-creation form and the export API.
#include "web/app.hpp"

#include <filesystem>

#include <gtest/gtest.h>

#include "web/client.hpp"
#include "web/server.hpp"

namespace powerplay::web {
namespace {

namespace fs = std::filesystem;

struct AppFixture : ::testing::Test {
  fs::path dir;
  std::unique_ptr<PowerPlayApp> app;
  std::unique_ptr<HttpServer> server;

  void SetUp() override {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("pp_app_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    fs::create_directories(dir);
    app = std::make_unique<PowerPlayApp>(library::LibraryStore(dir));
    server = std::make_unique<HttpServer>(
        0, [this](const Request& r) { return app->handle(r); });
    server->start();
  }

  void TearDown() override {
    server->stop();
    fs::remove_all(dir);
  }

  [[nodiscard]] Response get(const std::string& target) const {
    return http_get(server->port(), target);
  }
  [[nodiscard]] Response post(const std::string& path,
                              const Params& form) const {
    return http_post_form(server->port(), path, form);
  }
};

TEST_F(AppFixture, RootShowsIdentificationForm) {
  const Response r = get("/");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("identify"), std::string::npos);
  EXPECT_NE(r.body.find("name=\"user\""), std::string::npos);
}

TEST_F(AppFixture, MenuCreatesProfileAndShowsDefaults) {
  const Response r = get("/menu?user=dlidsky");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("dlidsky"), std::string::npos);
  EXPECT_NE(r.body.find("vdd"), std::string::npos);
  // Profile persisted.
  EXPECT_TRUE(app->store().load_user("dlidsky").has_value());
}

TEST_F(AppFixture, MenuWithoutUserIsBadRequest) {
  EXPECT_EQ(get("/menu").status, 400);
}

TEST_F(AppFixture, LibraryListsModelsByCategory) {
  const Response r = get("/library?user=dl");
  EXPECT_EQ(r.status, 200);
  for (const char* expect :
       {"computation", "storage", "controller", "array_multiplier", "sram",
        "dcdc_converter"}) {
    EXPECT_NE(r.body.find(expect), std::string::npos) << expect;
  }
}

TEST_F(AppFixture, ModelFormShowsParameters) {
  const Response r = get("/model?user=dl&name=array_multiplier");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("bitwidthA"), std::string::npos);
  EXPECT_NE(r.body.find("253"), std::string::npos);  // EQ 20 doc text
}

TEST_F(AppFixture, ModelFormComputesOnSubmit) {
  // Figure 4's loop: set bit-widths, get the result excerpt instantly.
  const Response r = get(
      "/model?user=dl&name=array_multiplier&p_bitwidthA=16&p_bitwidthB=16"
      "&p_correlated=0&p_alpha=1&p_vdd=1.5&p_f=1000000");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("Result"), std::string::npos);
  // C_T = 256 * 253 fF = 64.77 nF? no: 64.77 pF... check printed value.
  EXPECT_NE(r.body.find("64.77 pF"), std::string::npos);
  EXPECT_NE(r.body.find("Add to design"), std::string::npos);
}

TEST_F(AppFixture, UnknownModelIs400WithMessage) {
  const Response r = get("/model?user=dl&name=warp_core");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("warp_core"), std::string::npos);
}

TEST_F(AppFixture, AddToDesignThenPlayFlow) {
  // Add an SRAM row.
  Response r = post("/design/add",
                    {{"user", "dl"},
                     {"model", "sram"},
                     {"design", "MyChip"},
                     {"row", "Buffer"},
                     {"p_words", "2048"},
                     {"p_bits", "8"},
                     {"p_f", "125000"}});
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("Buffer"), std::string::npos);
  EXPECT_NE(r.body.find("TOTAL"), std::string::npos);

  // It persisted and is listed for the user.
  EXPECT_TRUE(app->store().has_design("MyChip"));
  const Response menu = get("/menu?user=dl");
  EXPECT_NE(menu.body.find("MyChip"), std::string::npos);

  // Add a second row and re-Play with a new supply voltage.
  post("/design/add", {{"user", "dl"},
                       {"model", "register"},
                       {"design", "MyChip"},
                       {"row", "OutReg"},
                       {"p_bits", "6"},
                       {"p_f", "2000000"}});
  r = post("/design/play",
           {{"user", "dl"}, {"name", "MyChip"}, {"g_vdd", "3.0"}});
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("recomputed"), std::string::npos);
  EXPECT_NE(r.body.find("OutReg"), std::string::npos);

  // The voltage change persisted into the stored design.
  const auto design = app->store().load_design("MyChip", app->registry());
  auto found = design->globals().lookup("vdd");
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(std::get<double>(*found->binding), 3.0);
}

TEST_F(AppFixture, PlayAcceptsFormulasForGlobals) {
  post("/design/add", {{"user", "dl"},
                       {"model", "register"},
                       {"design", "F"},
                       {"row", "R"},
                       {"p_f", "1000000"}});
  const Response r = post(
      "/design/play",
      {{"user", "dl"}, {"name", "F"}, {"g_derived", "vdd * 2"}});
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("derived"), std::string::npos);
}

TEST_F(AppFixture, SetRowParameterRecomputes) {
  post("/design/add", {{"user", "dl"},
                       {"model", "sram"},
                       {"design", "S"},
                       {"row", "Mem"},
                       {"p_words", "1024"},
                       {"p_bits", "8"},
                       {"p_f", "1000000"}});
  const Response r = post("/design/setrow", {{"user", "dl"},
                                             {"name", "S"},
                                             {"row", "Mem"},
                                             {"param", "words"},
                                             {"value", "4096"}});
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("words=4096"), std::string::npos);
}

TEST_F(AppFixture, EmptyDesignPageInvitesAdding) {
  const Response r = get("/design?user=dl&name=Fresh");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("No rows yet"), std::string::npos);
}

TEST_F(AppFixture, NewModelFormCreatesWorkingModel) {
  const Response created = post("/newmodel",
                                {{"user", "dl"},
                                 {"name", "my_dsp"},
                                 {"category", "computation"},
                                 {"doc", "homebrew DSP slice"},
                                 {"params", "bitwidth=16 taps=8"},
                                 {"c_fullswing", "bitwidth*taps*40e-15"},
                                 {"proprietary", "0"}});
  EXPECT_EQ(created.status, 200);
  EXPECT_NE(created.body.find("my_dsp"), std::string::npos);

  // The model is immediately usable through its form.
  const Response r = get(
      "/model?user=dl&name=my_dsp&p_bitwidth=16&p_taps=8");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("Result"), std::string::npos);
  // And persisted for the next session.
  EXPECT_TRUE(app->store().load_model("my_dsp").has_value());
}

TEST_F(AppFixture, NewModelValidationErrorsSurface) {
  const Response r = post("/newmodel", {{"user", "dl"},
                                        {"name", "bad"},
                                        {"params", "k=1"},
                                        {"c_fullswing", "undeclared * 2"}});
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("undeclared"), std::string::npos);
}

TEST_F(AppFixture, DocPageShowsEquationProvenance) {
  const Response r = get("/doc?user=dl&name=rom_controller");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("EQ 10"), std::string::npos);
  EXPECT_NE(r.body.find("n_inputs"), std::string::npos);
}

TEST_F(AppFixture, MacroDrillDownRenderedInline) {
  // Store a design with a macro through the store API, then view it.
  auto& reg = app->registry();
  sheet::Design sub("SubBlock");
  sub.globals().set("f", 1e6);
  sub.add_row("reg", reg.find_shared("register"));
  sheet::Design top("TopChip");
  top.globals().set("vdd", 1.5);
  top.add_macro("Block", std::make_shared<const sheet::Design>(sub));
  app->store().save_design(top);

  const Response r = get("/design?user=dl&name=TopChip");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("macro drill-down"), std::string::npos);
  EXPECT_NE(r.body.find("reg"), std::string::npos);
}

TEST_F(AppFixture, NotFoundRoute) {
  EXPECT_EQ(get("/nonsense").status, 404);
}

TEST_F(AppFixture, ApiListsAndExportsModels) {
  post("/newmodel", {{"user", "dl"},
                     {"name", "shared_amp"},
                     {"category", "analog"},
                     {"params", "i=0.001"},
                     {"static_current", "i"}});
  post("/newmodel", {{"user", "dl"},
                     {"name", "secret_amp"},
                     {"category", "analog"},
                     {"params", "i=0.001"},
                     {"static_current", "i"},
                     {"proprietary", "1"}});
  const Response list = get("/api/models");
  EXPECT_NE(list.body.find("shared_amp"), std::string::npos);
  EXPECT_EQ(list.body.find("secret_amp"), std::string::npos);

  const Response exported = get("/api/model?name=shared_amp");
  EXPECT_EQ(exported.status, 200);
  EXPECT_NE(exported.body.find("model \"shared_amp\""), std::string::npos);

  // Proprietary models are withheld from the network.
  EXPECT_EQ(get("/api/model?name=secret_amp").status, 403);
  EXPECT_EQ(get("/api/model?name=ghost").status, 404);
}

TEST_F(AppFixture, ApiExportsDesigns) {
  post("/design/add", {{"user", "dl"},
                       {"model", "register"},
                       {"design", "Exportable"},
                       {"row", "R"}});
  const Response list = get("/api/designs");
  EXPECT_NE(list.body.find("Exportable"), std::string::npos);
  const Response d = get("/api/design?name=Exportable");
  EXPECT_EQ(d.status, 200);
  EXPECT_NE(d.body.find("design \"Exportable\""), std::string::npos);
  EXPECT_EQ(get("/api/design?name=ghost").status, 404);
}

TEST_F(AppFixture, AgentPageShowsContextFlows) {
  const Response r = get("/agent?user=dl");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("sketch"), std::string::npos);
  EXPECT_NE(r.body.find("layout"), std::string::npos);
  EXPECT_NE(r.body.find("sram_quick -&gt; swing_refine -&gt; static_refine"),
            std::string::npos);
}

TEST_F(AppFixture, ToolBackedModelUsableThroughForm) {
  // The "paths to estimation tools in lieu of an equation" claim: the
  // agent-backed SRAM entry answers the same form as an equation model,
  // and raising the context refines the estimate downward.
  const Response sketch = get(
      "/model?user=dl&name=sram_toolflow&p_words=4096&p_bits=16"
      "&p_vswing=0.3&p_bitline_fraction=0.6&p_i_static=0&p_alpha=1"
      "&p_vdd=1.5&p_f=1000000&p_context=0");
  EXPECT_EQ(sketch.status, 200);
  EXPECT_NE(sketch.body.find("Result"), std::string::npos);
  const Response circuit = get(
      "/model?user=dl&name=sram_toolflow&p_words=4096&p_bits=16"
      "&p_vswing=0.3&p_bitline_fraction=0.6&p_i_static=0&p_alpha=1"
      "&p_vdd=1.5&p_f=1000000&p_context=1");
  EXPECT_EQ(circuit.status, 200);
  // Sketch (full swing) reports 597.0 uW, circuit (EQ 8) 310.4 uW.
  EXPECT_NE(sketch.body.find("597.0 uW"), std::string::npos);
  EXPECT_NE(circuit.body.find("310.4 uW"), std::string::npos);
}

TEST_F(AppFixture, HelpPageLinkedFromMenu) {
  const Response menu = get("/menu?user=dl");
  EXPECT_NE(menu.body.find("/help?user=dl"), std::string::npos);
  const Response help = get("/help?user=dl");
  EXPECT_EQ(help.status, 200);
  EXPECT_NE(help.body.find("PLAY"), std::string::npos);
  EXPECT_NE(help.body.find("rowpower"), std::string::npos);
  EXPECT_NE(help.body.find("/agent"), std::string::npos);
}

TEST_F(AppFixture, DesignCsvExport) {
  post("/design/add", {{"user", "dl"},
                       {"model", "register"},
                       {"design", "CsvChip"},
                       {"row", "R"},
                       {"p_f", "1000000"}});
  const Response r = get("/design/csv?user=dl&name=CsvChip");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "text/csv");
  EXPECT_NE(r.body.find("row,model,power_w"), std::string::npos);
  EXPECT_NE(r.body.find("\"R\",\"register\""), std::string::npos);
  EXPECT_EQ(get("/design/csv?user=dl&name=Ghost").status, 404);
}

TEST_F(AppFixture, PasswordRestrictedAccess) {
  // "PowerPlay can provide password-restricted access."
  // Open access initially...
  EXPECT_EQ(get("/menu?user=secure").status, 200);
  // ...set a password (requires the current, absent one)...
  EXPECT_EQ(post("/setpw", {{"user", "secure"}, {"newpw", "s3cret"}}).status,
            200);
  // ...now the menu and mutating routes demand it.
  EXPECT_EQ(get("/menu?user=secure").status, 403);
  EXPECT_EQ(get("/menu?user=secure&pw=wrong").status, 403);
  EXPECT_EQ(get("/menu?user=secure&pw=s3cret").status, 200);
  EXPECT_EQ(post("/design/add", {{"user", "secure"},
                                 {"model", "register"},
                                 {"design", "Priv"},
                                 {"row", "R"}})
                .status,
            403);
  EXPECT_EQ(post("/design/add", {{"user", "secure"},
                                 {"pw", "s3cret"},
                                 {"model", "register"},
                                 {"design", "Priv"},
                                 {"row", "R"}})
                .status,
            200);
  // Other users are unaffected.
  EXPECT_EQ(get("/menu?user=open_user").status, 200);
  // Changing the password requires the old one; removing it reopens.
  EXPECT_EQ(post("/setpw", {{"user", "secure"}, {"newpw", "x"}}).status, 403);
  EXPECT_EQ(
      post("/setpw", {{"user", "secure"}, {"pw", "s3cret"}, {"newpw", ""}})
          .status,
      200);
  EXPECT_EQ(get("/menu?user=secure").status, 200);
}

TEST_F(AppFixture, PathTraversalRejected) {
  EXPECT_NE(get("/api/model?name=..%2F..%2Fetc%2Fpasswd").status, 200);
  EXPECT_NE(get("/design?user=dl&name=..%2Fx").status, 200);
}

}  // namespace
}  // namespace powerplay::web
