// Tests for the Design Agent: tool registration, context-dependent flow
// resolution, execution audit trail, and the tool-backed library model.
#include "flow/design_agent.hpp"
#include "flow/standard_flows.hpp"

#include <gtest/gtest.h>

#include "models/berkeley_library.hpp"
#include "sheet/design.hpp"

namespace powerplay::flow {
namespace {

using model::Estimate;
using model::MapParamReader;

Tool constant_tool(const std::string& name, double watts) {
  return Tool{name, "adds " + std::to_string(watts) + " W",
              [watts](const model::ParamReader&, const Estimate& prev) {
                Estimate e = prev;
                e.static_power += units::Power{watts};
                return e;
              }};
}

TEST(Agent, ToolRegistration) {
  DesignAgent agent;
  agent.add_tool(constant_tool("t1", 1.0));
  EXPECT_TRUE(agent.has_tool("t1"));
  EXPECT_FALSE(agent.has_tool("t2"));
  EXPECT_THROW(agent.add_tool(constant_tool("t1", 2.0)), expr::ExprError);
  EXPECT_THROW(agent.add_tool(Tool{"", "x", nullptr}), expr::ExprError);
  EXPECT_THROW(agent.add_tool(Tool{"t3", "no impl", nullptr}),
               expr::ExprError);
  EXPECT_EQ(agent.tool_names(), (std::vector<std::string>{"t1"}));
}

TEST(Agent, RuleValidation) {
  DesignAgent agent;
  agent.add_tool(constant_tool("t1", 1.0));
  EXPECT_THROW(agent.add_rule(FlowRule{"power", "x", {"ghost"}}),
               expr::ExprError);
  EXPECT_THROW(agent.add_rule(FlowRule{"power", "x", {}}), expr::ExprError);
  agent.add_rule(FlowRule{"power", "x", {"t1"}});
  EXPECT_THROW(agent.add_rule(FlowRule{"power", "x", {"t1"}}),
               expr::ExprError);
}

TEST(Agent, ContextSelectsFlowWithDefaultFallback) {
  DesignAgent agent;
  agent.add_tool(constant_tool("quick", 1.0));
  agent.add_tool(constant_tool("refine", 0.5));
  agent.add_rule(FlowRule{"power", "", {"quick"}});
  agent.add_rule(FlowRule{"power", "layout", {"quick", "refine"}});

  EXPECT_EQ(agent.resolve("power", "layout"),
            (std::vector<std::string>{"quick", "refine"}));
  // Unknown context falls back to the default rule.
  EXPECT_EQ(agent.resolve("power", "napkin"),
            (std::vector<std::string>{"quick"}));
  EXPECT_THROW((void)agent.resolve("area", "layout"), expr::ExprError);
}

TEST(Agent, RunChainsToolsAndLogsInvocations) {
  DesignAgent agent;
  agent.add_tool(constant_tool("a", 1.0));
  agent.add_tool(constant_tool("b", 0.25));
  agent.add_rule(FlowRule{"power", "deep", {"a", "b", "a"}});
  MapParamReader p;
  const FlowResult r = agent.run("power", "deep", p);
  EXPECT_EQ(r.invoked, (std::vector<std::string>{"a", "b", "a"}));
  EXPECT_NEAR(r.estimate.static_power.si(), 2.25, 1e-12);
}

TEST(Agent, ToolsSeePreviousEstimate) {
  DesignAgent agent;
  agent.add_tool(constant_tool("base", 2.0));
  agent.add_tool(Tool{"halve", "halves the running estimate",
                      [](const model::ParamReader&, const Estimate& prev) {
                        Estimate e = prev;
                        e.static_power = prev.static_power / 2.0;
                        return e;
                      }});
  agent.add_rule(FlowRule{"power", "", {"base", "halve"}});
  MapParamReader p;
  EXPECT_NEAR(agent.run("power", "", p).estimate.static_power.si(), 1.0,
              1e-12);
}

// --- standard flows -------------------------------------------------------

struct StandardFixture : ::testing::Test {
  model::ModelRegistry lib = models::berkeley_library();
  DesignAgent agent = make_standard_agent(lib);
};

TEST_F(StandardFixture, FlowsResolvePerContext) {
  EXPECT_EQ(agent.resolve("power", "sketch").size(), 1u);
  EXPECT_EQ(agent.resolve("power", "circuit").size(), 2u);
  EXPECT_EQ(agent.resolve("power", "layout").size(), 3u);
}

TEST_F(StandardFixture, SketchMatchesPlainSramModel) {
  MapParamReader p;
  p.set("words", 2048.0);
  p.set("bits", 8.0);
  p.set("vdd", 1.5);
  p.set("f", 125e3);
  const FlowResult r = agent.run("power", "sketch", p);
  MapParamReader direct = p;
  direct.set("vswing", 0.0);
  direct.set("bitline_fraction", 0.6);
  direct.set("i_static", 0.0);
  direct.set("alpha", 1.0);
  EXPECT_NEAR(r.estimate.total_power().si(),
              lib.at("sram").evaluate(direct).total_power().si(), 1e-15);
}

TEST_F(StandardFixture, RefinementsOnlyApplyAtTheirContext) {
  MapParamReader p;
  p.set("words", 4096.0);
  p.set("bits", 16.0);
  p.set("vswing", 0.3);
  p.set("i_static", 1e-4);
  p.set("vdd", 1.5);
  p.set("f", 1e6);
  const double sketch = agent.run("power", "sketch", p)
                            .estimate.total_power().si();
  const double circuit = agent.run("power", "circuit", p)
                             .estimate.total_power().si();
  const double layout = agent.run("power", "layout", p)
                            .estimate.total_power().si();
  // Sketch ignores the swing data (conservative, higher).
  EXPECT_GT(sketch, circuit);
  // Layout adds the static term on top of the circuit estimate.
  EXPECT_NEAR(layout, circuit + 1.5e-4, 1e-9);
}

TEST_F(StandardFixture, ToolFlowModelOnASheet) {
  auto tool_model = make_sram_toolflow_model(agent);
  sheet::Design d("toolflow_demo");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  auto& row = d.add_row("Mem", tool_model);
  row.params.set("words", 4096.0);
  row.params.set("bits", 16.0);
  row.params.set("vswing", 0.3);
  row.params.set("context", 0.0);  // sketch
  const double sketch = d.play().total.total_power().si();
  row.params.set("context", 1.0);  // circuit: one cell edit refines
  const double circuit = d.play().total.total_power().si();
  EXPECT_GT(sketch, circuit);
}

TEST_F(StandardFixture, ToolFlowModelValidation) {
  auto tool_model = make_sram_toolflow_model(agent);
  MapParamReader p;
  p.set("words", 1024.0);
  p.set("bits", 8.0);
  p.set("vdd", 1.5);
  p.set("f", 0.0);
  p.set("context", 7.0);  // out of range
  EXPECT_THROW(tool_model->evaluate(p), expr::ExprError);
  const auto& adapter =
      dynamic_cast<const ToolFlowModel&>(*tool_model);
  EXPECT_EQ(adapter.flow_for_level(2).size(), 3u);
  EXPECT_THROW((void)adapter.flow_for_level(9), expr::ExprError);
}

}  // namespace
}  // namespace powerplay::flow
