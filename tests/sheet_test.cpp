// Tests for the design spreadsheet: Play, inheritance, intermodel
// interaction, macros, reports and sweeps.
#include "sheet/budget.hpp"
#include "sheet/design.hpp"
#include "sheet/plan.hpp"
#include "sheet/report.hpp"
#include "sheet/sweep.hpp"

#include <gtest/gtest.h>

#include "model/user_model.hpp"
#include "models/berkeley_library.hpp"

namespace powerplay::sheet {
namespace {

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = models::berkeley_library();
  return registry;
}

Design adder_design() {
  Design d("adders");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  auto& a = d.add_row("A", lib().find_shared("ripple_adder"));
  a.params.set("bitwidth", 16.0);
  auto& b = d.add_row("B", lib().find_shared("ripple_adder"));
  b.params.set("bitwidth", 32.0);
  return d;
}

TEST(Design, RowManagement) {
  Design d("t");
  d.add_row("x", lib().find_shared("register"));
  EXPECT_NE(d.find_row("x"), nullptr);
  EXPECT_EQ(d.find_row("y"), nullptr);
  EXPECT_THROW(d.add_row("x", lib().find_shared("register")),
               expr::ExprError);
  EXPECT_THROW(d.add_row("z", nullptr), expr::ExprError);
  d.remove_row("x");
  EXPECT_EQ(d.find_row("x"), nullptr);
  EXPECT_THROW(d.remove_row("x"), expr::ExprError);
}

TEST(Design, PlayComputesEveryRowAndTotal) {
  const PlayResult r = adder_design().play();
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.iterations, 1);  // no intermodel terms
  EXPECT_GT(r.rows[0].estimate.total_power().si(), 0.0);
  // 32-bit adder burns exactly twice the 16-bit one (EQ 3).
  EXPECT_NEAR(r.rows[1].estimate.total_power().si(),
              2 * r.rows[0].estimate.total_power().si(), 1e-15);
  EXPECT_NEAR(r.total.total_power().si(),
              r.rows[0].estimate.total_power().si() +
                  r.rows[1].estimate.total_power().si(),
              1e-15);
  EXPECT_NE(r.find_row("A"), nullptr);
  EXPECT_EQ(r.find_row("missing"), nullptr);
}

TEST(Design, GlobalsInheritedByRows) {
  Design d("inherit");
  d.globals().set("vdd", 2.0);
  d.globals().set("f", 1e6);
  d.add_row("r", lib().find_shared("register")).params.set("bits", 8.0);
  const PlayResult r = d.play();
  // Register at vdd=2: C = 8*15fF, E = C*V^2.
  EXPECT_NEAR(r.rows[0].estimate.energy_per_op.si(), 8 * 15e-15 * 4.0,
              1e-18);
}

TEST(Design, RowOverridesGlobal) {
  Design d("override");
  d.globals().set("vdd", 2.0);
  d.globals().set("f", 1e6);
  auto& row = d.add_row("r", lib().find_shared("register"));
  row.params.set("bits", 8.0);
  row.params.set("vdd", 1.0);
  const PlayResult r = d.play();
  EXPECT_NEAR(r.rows[0].estimate.energy_per_op.si(), 8 * 15e-15, 1e-18);
}

TEST(Design, RowFormulasUseGlobals) {
  Design d("formulas");
  d.globals().set("vdd", 1.5);
  d.globals().set("pixel_rate", 2e6);
  auto& row = d.add_row("bank", lib().find_shared("sram"));
  row.params.set("words", 2048.0);
  row.params.set("bits", 8.0);
  row.params.set_formula("f", "pixel_rate/16");
  const PlayResult r = d.play();
  bool found = false;
  for (const auto& [name, value] : r.rows[0].shown_params) {
    if (name == "f") {
      EXPECT_DOUBLE_EQ(value, 125e3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Design, ModelDefaultsApplyWhenRowSilent) {
  Design d("defaults");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  d.add_row("r", lib().find_shared("register"));  // bits defaults to 8
  const PlayResult r = d.play();
  EXPECT_NEAR(r.rows[0].estimate.energy_per_op.si(), 8 * 15e-15 * 2.25,
              1e-18);
}

// --- Intermodel interaction ---------------------------------------------------

TEST(Intermodel, RowpowerFeedsConverter) {
  Design d("conv");
  d.globals().set("vdd", 6.0);
  auto& load = d.add_row("Load", lib().find_shared("datasheet_component"));
  load.params.set("p_typical", 1.0);
  auto& conv = d.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set("efficiency", 0.8);
  conv.params.set_formula("p_load", "rowpower(\"Load\")");
  const PlayResult r = d.play();
  EXPECT_GE(r.iterations, 2);
  EXPECT_NEAR(r.find_row("Conv")->estimate.total_power().si(), 0.25, 1e-9);
  EXPECT_NEAR(r.total.total_power().si(), 1.25, 1e-9);
}

TEST(Intermodel, SelfReferentialTotalpowerConverges) {
  // Converter fed from totalpower() *including itself*: fixed point
  // P_c = (P_load + P_c)(1-eta)/eta converges for eta > 0.5.
  Design d("self");
  d.globals().set("vdd", 6.0);
  auto& load = d.add_row("Load", lib().find_shared("datasheet_component"));
  load.params.set("p_typical", 3.0);
  auto& conv = d.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set("efficiency", 0.8);
  conv.params.set_formula("p_load",
                          "totalpower() - rowpower(\"Conv\")");
  const PlayResult r = d.play();
  EXPECT_NEAR(r.find_row("Conv")->estimate.total_power().si(), 0.75, 1e-6);
  EXPECT_NEAR(r.total.total_power().si(), 3.75, 1e-6);
}

TEST(Intermodel, DivergingLoopReported) {
  // eta = 0.3 makes the self-feeding converter a divergence.
  Design d("diverge");
  d.globals().set("vdd", 6.0);
  auto& load = d.add_row("Load", lib().find_shared("datasheet_component"));
  load.params.set("p_typical", 1.0);
  auto& conv = d.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set("efficiency", 0.3);
  conv.params.set_formula("p_load", "totalpower()");
  EXPECT_THROW(d.play(), expr::ExprError);
}

TEST(Intermodel, UnknownRowNameRejected) {
  Design d("bad");
  d.globals().set("vdd", 6.0);
  auto& conv = d.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set_formula("p_load", "rowpower(\"Nope\")");
  EXPECT_THROW(d.play(), expr::ExprError);
}

TEST(Intermodel, TotalareaFeedsInterconnect) {
  Design d("wires");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  auto& a = d.add_row("A", lib().find_shared("array_multiplier"));
  a.params.set("bitwidthA", 16.0);
  a.params.set("bitwidthB", 16.0);
  auto& w = d.add_row("Wires", lib().find_shared("interconnect"));
  w.params.set("n_blocks", 1000.0);
  w.params.set_formula("active_area", "totalarea() - rowarea(\"Wires\")");
  const PlayResult r = d.play();
  const double mult_area = r.find_row("A")->estimate.area.si();
  EXPECT_GT(mult_area, 0.0);
  EXPECT_GT(r.find_row("Wires")->estimate.total_power().si(), 0.0);
}

TEST(Intermodel, GlobalFormulaMayNotUseIntermodelFunctions) {
  Design d("badglobal");
  d.globals().set("vdd", 1.5);
  d.globals().set_formula("x", "totalpower()");
  d.add_row("r", lib().find_shared("register"));
  EXPECT_THROW(d.play(), expr::ExprError);
}

TEST(Intermodel, RowenergyAccessor) {
  Design d("energy");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  auto& a = d.add_row("A", lib().find_shared("register"));
  a.params.set("bits", 8.0);
  // A user model converting another row's energy/op into a direct power.
  model::UserModelDefinition def;
  def.name = "echo";
  def.params = {{"e", "", 0, "J", 0, 1, false}};
  def.power_direct = "e * 1e6";
  auto echo = std::make_shared<model::UserModel>(def);
  auto& b = d.add_row("B", echo);
  b.params.set_formula("e", "rowenergy(\"A\")");
  const PlayResult r = d.play();
  EXPECT_NEAR(r.find_row("B")->estimate.total_power().si(),
              r.find_row("A")->estimate.energy_per_op.si() * 1e6, 1e-15);
}

TEST(Intermodel, RowdelayAccessor) {
  Design d("timing");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  auto& a = d.add_row("A", lib().find_shared("ripple_adder"));
  a.params.set("bitwidth", 32.0);
  // A row whose frequency is capped by another row's critical path:
  // f = min(f, 0.8 / delay(A)).
  auto& b = d.add_row("B", lib().find_shared("register"));
  b.params.set("bits", 8.0);
  b.params.set_formula("f", "min(100e6, 0.8 / rowdelay(\"A\"))");
  const PlayResult r = d.play();
  const double delay_a = r.find_row("A")->estimate.delay.si();
  ASSERT_GT(delay_a, 0.0);
  for (const auto& [name, value] : r.find_row("B")->shown_params) {
    if (name == "f") {
      EXPECT_NEAR(value, std::min(100e6, 0.8 / delay_a), 1.0);
    }
  }
}

TEST(CustomFunctions, RegisteredFunctionUsableInFormulas) {
  Design d("custom");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  d.add_function("double_it", [](const std::vector<expr::Value>& args) {
    return std::get<double>(args.at(0)) * 2.0;
  });
  auto& row = d.add_row("A", lib().find_shared("register"));
  row.params.set_formula("bits", "double_it(4)");
  const PlayResult r = d.play();
  for (const auto& [name, value] : r.find_row("A")->shown_params) {
    if (name == "bits") {
      EXPECT_DOUBLE_EQ(value, 8.0);
    }
  }
}

TEST(CustomFunctions, SurviveDesignCopy) {
  Design d("copyable");
  d.globals().set("vdd", 1.5);
  d.add_function("three", [](const std::vector<expr::Value>&) {
    return 3.0;
  });
  auto& row = d.add_row("A", lib().find_shared("register"));
  row.params.set_formula("bits", "three() + 1");
  const Design copy = d;
  EXPECT_NO_THROW(copy.play());
}

TEST(Report, DelayColumnWhenRequested) {
  ReportOptions opt;
  opt.show_delay = true;
  const std::string table = to_table(adder_design().play(), opt);
  EXPECT_NE(table.find("Delay"), std::string::npos);
  EXPECT_NE(table.find("ns"), std::string::npos);
}

// --- Macros ---------------------------------------------------------------------

std::shared_ptr<const Design> register_macro() {
  auto d = std::make_shared<Design>("regmacro");
  d->globals().set("vdd", 1.5);
  d->globals().set("f", 1e6);
  d->add_row("reg", lib().find_shared("register")).params.set("bits", 8.0);
  return d;
}

TEST(Macro, SubDesignTotalsRollUp) {
  Design top("top");
  top.globals().set("vdd", 1.5);
  top.add_macro("M", register_macro());
  const PlayResult r = top.play();
  ASSERT_NE(r.rows[0].sub_result, nullptr);
  EXPECT_NEAR(r.rows[0].estimate.total_power().si(),
              r.rows[0].sub_result->total.total_power().si(), 1e-18);
}

TEST(Macro, InstantiationOverridesMacroGlobals) {
  Design top("top");
  top.globals().set("vdd", 1.5);
  auto& m = top.add_macro("M", register_macro());
  m.params.set("f", 2e6);  // macro default was 1 MHz
  const PlayResult r = top.play();
  const PlayResult base = register_macro()->play();
  EXPECT_NEAR(r.rows[0].estimate.total_power().si(),
              2 * base.total.total_power().si(), 1e-15);
}

TEST(Macro, UnsetMacroGlobalsInheritFromDesign) {
  auto sub = std::make_shared<Design>("sub");
  // No vdd in the macro: it must flow from the instantiating design.
  sub->globals().set("f", 1e6);
  sub->add_row("reg", lib().find_shared("register")).params.set("bits", 8.0);

  Design top("top");
  top.globals().set("vdd", 2.0);
  top.add_macro("M", sub);
  const PlayResult r = top.play();
  EXPECT_NEAR(r.rows[0].estimate.energy_per_op.si(), 8 * 15e-15 * 4.0, 1e-18);
}

TEST(Macro, DesignMacroModelAdapter) {
  DesignMacroModel adapter(register_macro());
  EXPECT_EQ(adapter.name(), "macro:regmacro");
  model::MapParamReader p;
  p.set("f", 3e6);
  const model::Estimate e = adapter.evaluate(p);
  const double base =
      register_macro()->play().total.total_power().si();
  EXPECT_NEAR(e.total_power().si(), 3 * base, 1e-15);
}

TEST(Macro, NestedTwoLevels) {
  auto leaf = register_macro();
  auto mid = std::make_shared<Design>("mid");
  mid->globals().set("vdd", 1.5);
  mid->add_macro("L", leaf);
  Design top("top");
  top.globals().set("vdd", 1.5);
  top.add_macro("M", mid);
  const PlayResult r = top.play();
  ASSERT_NE(r.rows[0].sub_result, nullptr);
  ASSERT_NE(r.rows[0].sub_result->rows[0].sub_result, nullptr);
  EXPECT_GT(r.total.total_power().si(), 0.0);
}

TEST(Design, DisabledRowsSkippedByPlay) {
  Design d = adder_design();
  const double both = d.play().total.total_power().si();
  d.find_row("B")->enabled = false;
  const auto r = d.play();
  EXPECT_EQ(r.rows.size(), 1u);
  EXPECT_NEAR(r.total.total_power().si(), both / 3.0, 1e-15);
  d.find_row("B")->enabled = true;
  EXPECT_NEAR(d.play().total.total_power().si(), both, 1e-15);
}

TEST(Design, DisabledRowsInvisibleToIntermodel) {
  Design d("alt");
  d.globals().set("vdd", 6.0);
  auto& load = d.add_row("Load", lib().find_shared("datasheet_component"));
  load.params.set("p_typical", 1.0);
  auto& alt = d.add_row("AltLoad", lib().find_shared("datasheet_component"));
  alt.params.set("p_typical", 5.0);
  alt.enabled = false;  // the dismissed alternative stays on the sheet
  auto& conv = d.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set("efficiency", 0.8);
  conv.params.set_formula(
      "p_load", "rowpower(\"Load\") + rowpower(\"AltLoad\")");
  const auto r = d.play();
  EXPECT_NEAR(r.find_row("Conv")->estimate.total_power().si(), 0.25, 1e-9);
}

// --- Budgets --------------------------------------------------------------------

TEST(Budget, SlackAndOverruns) {
  const PlayResult r = adder_design().play();
  const double pa = r.find_row("A")->estimate.total_power().si();
  const auto report = check_budget(
      r, {{"A", units::Power{pa * 2}}, {"B", units::Power{pa}}});
  ASSERT_EQ(report.lines.size(), 2u);
  EXPECT_FALSE(report.lines[0].over);
  EXPECT_NEAR(report.lines[0].slack.si(), pa, 1e-15);
  // B burns 2*pa against a budget of pa: over.
  EXPECT_TRUE(report.lines[1].over);
  EXPECT_TRUE(report.any_over);
  EXPECT_FALSE(report.pass());
}

TEST(Budget, DesignTotalAllowance) {
  const PlayResult r = adder_design().play();
  const double total = r.total.total_power().si();
  EXPECT_TRUE(check_budget(r, {}, units::Power{total * 1.1}).pass());
  EXPECT_FALSE(check_budget(r, {}, units::Power{total * 0.9}).pass());
}

TEST(Budget, UnknownRowRejected) {
  const PlayResult r = adder_design().play();
  EXPECT_THROW(check_budget(r, {{"Ghost", units::Power{1}}}),
               expr::ExprError);
}

TEST(Budget, TableShowsPassFail) {
  const PlayResult r = adder_design().play();
  const auto ok = check_budget(r, {}, units::Power{1.0});
  EXPECT_NE(budget_table(ok).find("PASS"), std::string::npos);
  const auto bad = check_budget(r, {{"A", units::Power{0}}});
  const std::string t = budget_table(bad);
  EXPECT_NE(t.find("FAIL"), std::string::npos);
  EXPECT_NE(t.find("OVER by"), std::string::npos);
}

// --- Reports --------------------------------------------------------------------

TEST(Report, TableContainsRowsAndTotal) {
  const std::string table = to_table(adder_design().play());
  EXPECT_NE(table.find("A"), std::string::npos);
  EXPECT_NE(table.find("B"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  EXPECT_NE(table.find("ripple_adder"), std::string::npos);
  EXPECT_NE(table.find("W"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndAllRows) {
  const std::string csv = to_csv(adder_design().play());
  EXPECT_NE(csv.find("row,model,power_w"), std::string::npos);
  // Header + 2 rows + total = 4 lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(Report, BreakdownListsEq1Terms) {
  const PlayResult r = adder_design().play();
  const std::string b = to_breakdown(r.rows[0]);
  EXPECT_NE(b.find("adder bit-slices"), std::string::npos);
  EXPECT_NE(b.find("energy/op"), std::string::npos);
}

TEST(Report, SummaryLine) {
  const std::string s = summary_line(adder_design().play());
  EXPECT_NE(s.find("adders:"), std::string::npos);
  EXPECT_NE(s.find("2 rows"), std::string::npos);
}

TEST(Timing, SummaryFindsCriticalPathAcrossStages) {
  Design d("pipe");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  auto& a = d.add_row("Mult", lib().find_shared("array_multiplier"));
  a.params.set("bitwidthA", 16.0);
  a.params.set("bitwidthB", 16.0);
  a.params.set("stage", 0.0);
  auto& b = d.add_row("Add", lib().find_shared("ripple_adder"));
  b.params.set("bitwidth", 32.0);
  b.params.set("stage", 1.0);
  auto& c = d.add_row("Reg", lib().find_shared("register"));
  c.params.set("stage", 1.0);
  const auto summary = timing_summary(d.play());
  ASSERT_EQ(summary.stages.size(), 2u);
  EXPECT_EQ(summary.stages[0].critical_row, "Mult");
  EXPECT_EQ(summary.stages[1].critical_row, "Add");
  // Multiplier: (16+16)*1.2ns = 38.4ns > adder 28.8ns.
  EXPECT_EQ(summary.critical_row, "Mult");
  EXPECT_NEAR(summary.critical_path.si(), 38.4e-9, 1e-12);
  EXPECT_NEAR(summary.max_clock.si(), 1.0 / 38.4e-9, 1.0);
  EXPECT_NE(timing_table(summary).find("Mult"), std::string::npos);
}

TEST(Timing, EmptyDelayGivesZeroClock) {
  Design d("nodelay");
  d.globals().set("vdd", 6.0);
  d.add_row("L", lib().find_shared("datasheet_component"));
  const auto summary = timing_summary(d.play());
  EXPECT_DOUBLE_EQ(summary.max_clock.si(), 0.0);
}

TEST(Report, EmptyDesignPlays) {
  Design d("empty");
  const auto r = d.play();
  EXPECT_TRUE(r.rows.empty());
  EXPECT_DOUBLE_EQ(r.total.total_power().si(), 0.0);
  EXPECT_NE(to_table(r).find("TOTAL"), std::string::npos);
}

// --- Sweeps ---------------------------------------------------------------------

TEST(Sweep, GlobalVoltageSweepIsQuadratic) {
  const Design d = adder_design();
  const auto points = sweep_global(d, "vdd", {1.0, 2.0});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_NEAR(points[1].result.total.total_power().si() /
                  points[0].result.total.total_power().si(),
              4.0, 1e-9);
}

TEST(Sweep, OriginalDesignUntouched) {
  Design d = adder_design();
  sweep_global(d, "vdd", {3.0});
  const PlayResult r = d.play();
  // Still at the original 1.5 V.
  const double expect_e = 16 * 33e-15 * 2.25;
  EXPECT_NEAR(r.rows[0].estimate.energy_per_op.si(), expect_e, 1e-18);
}

TEST(Sweep, RowParamSweep) {
  const Design d = adder_design();
  const auto points = sweep_row_param(d, "A", "bitwidth", {8, 16, 24});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_NEAR(points[2].result.find_row("A")->estimate.total_power().si() /
                  points[0].result.find_row("A")->estimate.total_power().si(),
              3.0, 1e-9);
  EXPECT_THROW(sweep_row_param(d, "missing", "x", {1}), expr::ExprError);
}

TEST(Sweep, RangeHelpers) {
  EXPECT_EQ(linspace(0, 10, 5), (std::vector<double>{0, 2.5, 5, 7.5, 10}));
  const auto g = geomspace(1, 8, 4);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_NEAR(g[1], 2.0, 1e-12);
  EXPECT_NEAR(g[3], 8.0, 1e-12);
  EXPECT_THROW(geomspace(0, 8, 3), expr::ExprError);
}

TEST(Sweep, GridSweepIsSeparableForCmosSheets) {
  // P = C * vdd^2 * f: the grid must factor exactly.
  const Design d = adder_design();
  const auto grid = sheet::sweep_grid(d, "vdd", {1.0, 2.0}, "f",
                                      {1e6, 4e6});
  ASSERT_EQ(grid.results.size(), 2u);
  ASSERT_EQ(grid.results[0].size(), 2u);
  const double base = grid.results[0][0].total.total_power().si();
  EXPECT_NEAR(grid.results[1][0].total.total_power().si(), 4 * base, 1e-12);
  EXPECT_NEAR(grid.results[0][1].total.total_power().si(), 4 * base, 1e-12);
  EXPECT_NEAR(grid.results[1][1].total.total_power().si(), 16 * base,
              1e-12);
}

TEST(Sweep, GridRejectsSameParameterTwice) {
  EXPECT_THROW(sheet::sweep_grid(adder_design(), "vdd", {1}, "vdd", {2}),
               expr::ExprError);
}

TEST(Sweep, GridTableRendering) {
  const auto grid =
      sheet::sweep_grid(adder_design(), "vdd", {1.0, 1.5}, "f", {1e6});
  const std::string t = sheet::grid_table(grid);
  EXPECT_NE(t.find("vdd"), std::string::npos);
  EXPECT_NE(t.find("1.5"), std::string::npos);
  EXPECT_NE(t.find("W"), std::string::npos);
}

TEST(Sweep, TableRendering) {
  const auto points = sweep_global(adder_design(), "vdd", {1.0, 1.5});
  const std::string t = sweep_table("vdd", points);
  EXPECT_NE(t.find("vdd"), std::string::npos);
  EXPECT_NE(t.find("1.5"), std::string::npos);
}

// --- Compiled evaluation plans ----------------------------------------------

void expect_same_estimate(const model::Estimate& a, const model::Estimate& b) {
  EXPECT_EQ(a.switched_capacitance.si(), b.switched_capacitance.si());
  EXPECT_EQ(a.energy_per_op.si(), b.energy_per_op.si());
  EXPECT_EQ(a.dynamic_power.si(), b.dynamic_power.si());
  EXPECT_EQ(a.static_power.si(), b.static_power.si());
  EXPECT_EQ(a.area.si(), b.area.si());
  EXPECT_EQ(a.delay.si(), b.delay.si());
}

void expect_same_result(const PlayResult& a, const PlayResult& b) {
  EXPECT_EQ(a.design_name, b.design_name);
  EXPECT_EQ(a.iterations, b.iterations);
  expect_same_estimate(a.total, b.total);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].name, b.rows[i].name);
    EXPECT_EQ(a.rows[i].model_name, b.rows[i].model_name);
    expect_same_estimate(a.rows[i].estimate, b.rows[i].estimate);
    ASSERT_EQ(a.rows[i].shown_params, b.rows[i].shown_params);
    ASSERT_EQ(a.rows[i].sub_result != nullptr,
              b.rows[i].sub_result != nullptr);
    if (a.rows[i].sub_result != nullptr) {
      expect_same_result(*a.rows[i].sub_result, *b.rows[i].sub_result);
    }
  }
}

/// Compile, bind, play, and require bit-identity with the interpreter.
PlanStats expect_plan_matches_interpreter(const Design& d) {
  const PlayResult reference = d.play();
  PlanInstance inst(EvalPlan::compile(d));
  inst.bind_from(d);
  const PlayResult compiled = inst.play();
  expect_same_result(reference, compiled);
  return inst.stats();
}

TEST(Plan, NoIntermodelDesignEvaluatesEveryRowExactlyOnce) {
  const PlanStats s = expect_plan_matches_interpreter(adder_design());
  EXPECT_EQ(s.iterations, 1);
  EXPECT_EQ(s.row_evaluations, 2u);
}

TEST(Plan, BackwardReferenceSettlesWithoutReevaluation) {
  // Conv reads Load, which sits *earlier* in sheet order: by the time
  // Conv evaluates in sweep 1 the value it reads is already final, so
  // neither row re-evaluates in the confirmation sweep.
  Design d("conv");
  d.globals().set("vdd", 6.0);
  auto& load = d.add_row("Load", lib().find_shared("datasheet_component"));
  load.params.set("p_typical", 1.0);
  auto& conv = d.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set("efficiency", 0.8);
  conv.params.set_formula("p_load", "rowpower(\"Load\")");
  const PlanStats s = expect_plan_matches_interpreter(d);
  EXPECT_EQ(s.iterations, 2);
  EXPECT_EQ(s.row_evaluations, 2u);

  const auto plan = EvalPlan::compile(d);
  EXPECT_EQ(plan->row_rank("Load"), 1u);
  EXPECT_EQ(plan->row_rank("Conv"), 1u);
}

TEST(Plan, ForwardReferenceNeedsOneExtraEvaluation) {
  // Conv reads a row *later* in sheet order, so its first sweep sees a
  // stale zero and only the second sweep is final: 2 iterations, and
  // only Conv re-evaluates in the second one (2 + 1 = 3 evaluations).
  Design d("fwd");
  d.globals().set("vdd", 6.0);
  auto& conv = d.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set("efficiency", 0.8);
  conv.params.set_formula("p_load", "rowpower(\"Load\")");
  auto& load = d.add_row("Load", lib().find_shared("datasheet_component"));
  load.params.set("p_typical", 1.0);
  const PlanStats s = expect_plan_matches_interpreter(d);
  // Sweep 1 reads a stale zero, sweep 2 changes the total, sweep 3
  // confirms convergence — but only sweep 2 re-evaluates Conv (rank 2);
  // the confirmation sweep reuses everything: 2 + 1 + 0 = 3.
  EXPECT_EQ(s.iterations, 3);
  EXPECT_EQ(s.row_evaluations, 3u);

  const auto plan = EvalPlan::compile(d);
  EXPECT_EQ(plan->row_rank("Load"), 1u);
  EXPECT_EQ(plan->row_rank("Conv"), 2u);
}

TEST(Plan, IntermodelCycleConfinesIterationToTheScc) {
  // Self-feeding converter: Conv is its own SCC and re-evaluates every
  // sweep; Load is outside the cycle and evaluates exactly once.
  Design d("self");
  d.globals().set("vdd", 6.0);
  auto& load = d.add_row("Load", lib().find_shared("datasheet_component"));
  load.params.set("p_typical", 3.0);
  auto& conv = d.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set("efficiency", 0.8);
  conv.params.set_formula("p_load", "totalpower() - rowpower(\"Conv\")");
  const PlanStats s = expect_plan_matches_interpreter(d);
  // The fixed point lands in sweep 1 here (totalpower() already sees
  // Load's fresh value, and Conv's self-term cancels), sweep 2 confirms.
  EXPECT_EQ(s.iterations, 2);
  // Load once, Conv once per iteration.
  EXPECT_EQ(s.row_evaluations, 1u + static_cast<std::size_t>(s.iterations));

  const auto plan = EvalPlan::compile(d);
  EXPECT_EQ(plan->row_rank("Load"), 1u);
  EXPECT_EQ(plan->row_rank("Conv"), EvalPlan::kIterativeRank);
}

TEST(Plan, DivergenceReportsTheInterpreterMessage) {
  Design d("diverge");
  d.globals().set("vdd", 6.0);
  auto& load = d.add_row("Load", lib().find_shared("datasheet_component"));
  load.params.set("p_typical", 1.0);
  auto& conv = d.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set("efficiency", 0.3);
  conv.params.set_formula("p_load", "totalpower()");

  std::string expect_error;
  try {
    (void)d.play();
    FAIL() << "interpreter accepted a diverging loop";
  } catch (const expr::ExprError& e) {
    expect_error = e.what();
  }
  PlanInstance inst(EvalPlan::compile(d));
  inst.bind_from(d);
  try {
    (void)inst.play();
    FAIL() << "plan accepted a diverging loop";
  } catch (const expr::ExprError& e) {
    EXPECT_EQ(expect_error, e.what());
  }
}

TEST(Plan, DisabledRowsAreSkippedAndInvisible) {
  Design d = adder_design();
  d.find_row("B")->enabled = false;
  const PlanStats s = expect_plan_matches_interpreter(d);
  EXPECT_EQ(s.row_evaluations, 1u);

  // rowpower() of a disabled row reads zero, exactly as the interpreter.
  Design e("disabled-ref");
  e.globals().set("vdd", 6.0);
  auto& off = e.add_row("Off", lib().find_shared("datasheet_component"));
  off.params.set("p_typical", 9.0);
  off.enabled = false;
  auto& conv = e.add_row("Conv", lib().find_shared("dcdc_converter"));
  conv.params.set("efficiency", 0.8);
  conv.params.set_formula("p_load", "rowpower(\"Off\") + 1");
  expect_plan_matches_interpreter(e);
}

TEST(Plan, MacroRowsRunTheSubDesignPlan) {
  auto sub = std::make_shared<Design>("sub");
  sub->globals().set("vdd", 1.2);
  sub->globals().set("f", 1e6);
  sub->add_row("reg", lib().find_shared("register")).params.set("bits", 8.0);
  Design d("top");
  d.globals().set("vdd", 2.0);
  d.globals().set("f", 1e6);
  auto& m = d.add_macro("core", sub);
  m.params.set("vdd", 1.0);  // instantiation override beats sub default
  d.add_row("io", lib().find_shared("register")).params.set("bits", 16.0);
  const PlanStats s = expect_plan_matches_interpreter(d);
  EXPECT_EQ(s.iterations, 1);
  // core (which plays sub's one row) + io: 1 + 1 + 1.
  EXPECT_EQ(s.row_evaluations, 3u);
}

TEST(Plan, SweepSlotRebindMatchesCloneAndSet) {
  const Design d = adder_design();
  const auto plan = EvalPlan::compile(d);
  const auto slot = plan->global_slot("vdd");
  ASSERT_TRUE(slot.has_value());
  PlanInstance inst(plan);
  inst.bind_from(d);
  for (double v : {1.0, 2.0, 3.0}) {
    Design clone = d;
    clone.globals().set("vdd", v);
    inst.bind(*slot, v);
    expect_same_result(clone.play(), inst.play());
  }
  // bind_from drops the override.
  inst.bind_from(d);
  expect_same_result(d.play(), inst.play());
}

TEST(Plan, UnboundSlotLookupsReturnNullopt) {
  const auto plan = EvalPlan::compile(adder_design());
  EXPECT_FALSE(plan->global_slot("nope").has_value());
  EXPECT_FALSE(plan->row_param_slot("A", "nope").has_value());
  EXPECT_FALSE(plan->row_param_slot("missing", "bitwidth").has_value());
  EXPECT_TRUE(plan->row_param_slot("A", "bitwidth").has_value());
}

}  // namespace
}  // namespace powerplay::sheet
