// Tests for the command-line REPL, driven through string streams.
#include "cli/repl.hpp"

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

namespace powerplay::cli {
namespace {

namespace fs = std::filesystem;

struct CliFixture : ::testing::Test {
  fs::path dir;

  void SetUp() override {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("pp_cli_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    fs::create_directories(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  /// Run a script; returns (failures, output).
  std::pair<int, std::string> run(const std::string& script) {
    std::istringstream in(script);
    std::ostringstream out;
    ReplOptions opt;
    opt.echo_prompt = false;
    const int failures =
        run_repl(in, out, library::LibraryStore(dir), opt);
    return {failures, out.str()};
  }
};

TEST_F(CliFixture, HelpAndQuit) {
  const auto [failures, out] = run("help\nquit\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("commands:"), std::string::npos);
  EXPECT_NE(out.find("sweep"), std::string::npos);
}

TEST_F(CliFixture, LibraryListingAndCategoryFilter) {
  const auto [failures, out] = run("library storage\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("sram"), std::string::npos);
  EXPECT_EQ(out.find("array_multiplier"), std::string::npos);
}

TEST_F(CliFixture, DocShowsParameters) {
  const auto [failures, out] = run("doc array_multiplier\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("EQ 20"), std::string::npos);
  EXPECT_NE(out.find("bitwidthA"), std::string::npos);
}

TEST_F(CliFixture, BuildPlaySaveReopen) {
  const auto [failures, out] = run(
      "new my_chip\n"
      "global vdd 1.5\n"
      "global pixel_rate 2e6\n"
      "add LUT sram\n"
      "set LUT words 4096\n"
      "set LUT bits 6\n"
      "set LUT f pixel_rate\n"
      "play\n"
      "save\n"
      "quit\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("my_chip summary"), std::string::npos);
  EXPECT_NE(out.find("692.2 uW"), std::string::npos);  // the Fig-2 LUT
  EXPECT_NE(out.find("saved 'my_chip'"), std::string::npos);

  // Reopen in a new session: the sheet persisted with its formula.
  const auto [failures2, out2] = run("open my_chip\nplay\nquit\n");
  EXPECT_EQ(failures2, 0);
  EXPECT_NE(out2.find("692.2 uW"), std::string::npos);
}

TEST_F(CliFixture, FormulasWithSpacesBindAsExpressions) {
  const auto [failures, out] = run(
      "new f\n"
      "global vdd 1.5\n"
      "global base 1e6\n"
      "add R register\n"
      "set R f base * 2 + 1000\n"
      "play\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("f=2.001e+06"), std::string::npos);
}

TEST_F(CliFixture, SweepPrintsSeries) {
  const auto [failures, out] = run(
      "new s\n"
      "global vdd 1.0\n"
      "global f 1e6\n"
      "add A ripple_adder\n"
      "sweep vdd 1 3 3\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("vdd\ttotal power"), std::string::npos);
  // Quadratic: 1 V -> x, 3 V -> 9x.
  EXPECT_NE(out.find("528.0 nW"), std::string::npos);
  EXPECT_NE(out.find("4.752 uW"), std::string::npos);
}

TEST_F(CliFixture, MacroComposition) {
  const auto [failures, out] = run(
      "new leaf\n"
      "global f 1e6\n"
      "add R register\n"
      "save\n"
      "new top\n"
      "global vdd 2.0\n"
      "addmacro Inner leaf\n"
      "play\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("macro:leaf"), std::string::npos);
}

TEST_F(CliFixture, ErrorsAreReportedAndSessionContinues) {
  const auto [failures, out] = run(
      "play\n"                 // no open design
      "new d\n"
      "add R no_such_model\n"  // unknown model
      "set Ghost f 1\n"        // unknown row
      "bogus\n"                // unknown command
      "global vdd 1.5\n"
      "add R register\n"
      "global f 1e6\n"
      "play\n");               // still works at the end
  EXPECT_EQ(failures, 4);
  EXPECT_NE(out.find("no open design"), std::string::npos);
  EXPECT_NE(out.find("unknown model"), std::string::npos);
  EXPECT_NE(out.find("no row named"), std::string::npos);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
  EXPECT_NE(out.find("d summary"), std::string::npos);
}

TEST_F(CliFixture, CommentsAndBlankLinesIgnored) {
  const auto [failures, out] = run("# a comment\n\n  \nhelp\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("commands:"), std::string::npos);
}

TEST_F(CliFixture, EnableDisableToggleRows) {
  const auto [failures, out] = run(
      "new t\n"
      "global vdd 1.5\n"
      "global f 1e6\n"
      "add A register\n"
      "add B register\n"
      "disable B\n"
      "play\n"
      "enable B\n"
      "play\n");
  EXPECT_EQ(failures, 0);
  // First play shows only A; second shows both.
  const auto first = out.find("t summary");
  const auto second = out.find("t summary", first + 1);
  ASSERT_NE(second, std::string::npos);
  EXPECT_EQ(out.substr(first, second - first).find("| B "),
            std::string::npos);
  EXPECT_NE(out.substr(second).find("| B "), std::string::npos);
}

TEST_F(CliFixture, CsvOutput) {
  const auto [failures, out] = run(
      "new c\nglobal vdd 1.5\nglobal f 1e6\nadd A comparator\ncsv\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("row,model,power_w"), std::string::npos);
  EXPECT_NE(out.find("\"A\",\"comparator\""), std::string::npos);
}

}  // namespace
}  // namespace powerplay::cli
