#include "expr/lexer.hpp"

#include <gtest/gtest.h>

#include "expr/ast.hpp"

namespace powerplay::expr {
namespace {

std::vector<TokenKind> kinds(const std::string& src) {
  std::vector<TokenKind> out;
  for (const Token& t : tokenize(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto toks = tokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEnd);
}

TEST(Lexer, Numbers) {
  const auto toks = tokenize("1 2.5 .5 253e-15 1E6 0.5e+2");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_DOUBLE_EQ(toks[0].number, 1.0);
  EXPECT_DOUBLE_EQ(toks[1].number, 2.5);
  EXPECT_DOUBLE_EQ(toks[2].number, 0.5);
  EXPECT_DOUBLE_EQ(toks[3].number, 253e-15);
  EXPECT_DOUBLE_EQ(toks[4].number, 1e6);
  EXPECT_DOUBLE_EQ(toks[5].number, 50.0);
}

TEST(Lexer, MalformedExponentThrows) {
  EXPECT_THROW(tokenize("2e"), ExprError);
  EXPECT_THROW(tokenize("2e+"), ExprError);
}

TEST(Lexer, IdentifiersIncludeDotsAndUnderscores) {
  const auto toks = tokenize("vdd pixel_rate lut.bitwidth _x");
  EXPECT_EQ(toks[0].text, "vdd");
  EXPECT_EQ(toks[1].text, "pixel_rate");
  EXPECT_EQ(toks[2].text, "lut.bitwidth");
  EXPECT_EQ(toks[3].text, "_x");
}

TEST(Lexer, Strings) {
  const auto toks = tokenize(R"("Read Bank" "a\"b" "back\\slash")");
  EXPECT_EQ(toks[0].text, "Read Bank");
  EXPECT_EQ(toks[1].text, "a\"b");
  EXPECT_EQ(toks[2].text, "back\\slash");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("\"abc"), ExprError);
}

TEST(Lexer, UnsupportedEscapeThrows) {
  EXPECT_THROW(tokenize(R"("a\n")"), ExprError);
}

TEST(Lexer, OperatorsSingleAndDouble) {
  const auto k = kinds("+ - * / % ^ ( ) , ? : < <= > >= == != ! && ||");
  const std::vector<TokenKind> expect = {
      TokenKind::kPlus,    TokenKind::kMinus,     TokenKind::kStar,
      TokenKind::kSlash,   TokenKind::kPercent,   TokenKind::kCaret,
      TokenKind::kLParen,  TokenKind::kRParen,    TokenKind::kComma,
      TokenKind::kQuestion, TokenKind::kColon,    TokenKind::kLess,
      TokenKind::kLessEq,  TokenKind::kGreater,   TokenKind::kGreaterEq,
      TokenKind::kEqualEqual, TokenKind::kBangEqual, TokenKind::kBang,
      TokenKind::kAndAnd,  TokenKind::kOrOr,      TokenKind::kEnd};
  EXPECT_EQ(k, expect);
}

TEST(Lexer, SingleEqualsAmpPipeRejected) {
  EXPECT_THROW(tokenize("a = b"), ExprError);
  EXPECT_THROW(tokenize("a & b"), ExprError);
  EXPECT_THROW(tokenize("a | b"), ExprError);
}

TEST(Lexer, UnexpectedCharacterReportsPosition) {
  try {
    tokenize("a @ b");
    FAIL() << "expected throw";
  } catch (const ExprError& e) {
    EXPECT_NE(std::string(e.what()).find("position 2"), std::string::npos);
  }
}

TEST(Lexer, PositionsRecorded) {
  const auto toks = tokenize("ab + 12");
  EXPECT_EQ(toks[0].pos, 0u);
  EXPECT_EQ(toks[1].pos, 3u);
  EXPECT_EQ(toks[2].pos, 5u);
}

TEST(Lexer, TokenKindNamesAreHuman) {
  EXPECT_EQ(token_kind_name(TokenKind::kNumber), "number");
  EXPECT_EQ(token_kind_name(TokenKind::kAndAnd), "'&&'");
  EXPECT_EQ(token_kind_name(TokenKind::kEnd), "end of input");
}

}  // namespace
}  // namespace powerplay::expr
