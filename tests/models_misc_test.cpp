// Tests for interconnect (Rent/Donath), processors (EQ 11/12), analog
// (EQ 13-17), DC-DC converters (EQ 18-19), and system components.
#include "models/analog.hpp"
#include "models/berkeley_library.hpp"
#include "models/converter.hpp"
#include "models/interconnect.hpp"
#include "models/processor.hpp"
#include "models/system.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace powerplay::models {
namespace {

using namespace units;
using namespace units::literals;
using model::Estimate;
using model::MapParamReader;

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = berkeley_library();
  return registry;
}

// --- Donath / Rent -----------------------------------------------------------

TEST(Donath, AverageLengthGrowsWithRentExponent) {
  const double l_low = donath_average_length(10000, 0.3);
  const double l_mid = donath_average_length(10000, 0.6);
  const double l_high = donath_average_length(10000, 0.8);
  EXPECT_LT(l_low, l_mid);
  EXPECT_LT(l_mid, l_high);
}

TEST(Donath, AverageLengthGrowsWithBlockCountForHighP) {
  // For p > 0.5 the average length grows with N (Donath's classic
  // result); for p < 0.5 it saturates.
  EXPECT_LT(donath_average_length(1e3, 0.7), donath_average_length(1e6, 0.7));
  const double small = donath_average_length(1e4, 0.3);
  const double large = donath_average_length(1e6, 0.3);
  EXPECT_NEAR(small, large, small * 0.35);
}

TEST(Donath, ContinuousThroughHalf) {
  // p = 0.5 is a removable singularity: values just around it agree.
  const double below = donath_average_length(1e5, 0.4999);
  const double at = donath_average_length(1e5, 0.5);
  const double above = donath_average_length(1e5, 0.5001);
  EXPECT_NEAR(below, at, std::fabs(at) * 1e-2);
  EXPECT_NEAR(above, at, std::fabs(at) * 1e-2);
}

TEST(Donath, DomainErrors) {
  EXPECT_THROW(donath_average_length(1, 0.6), expr::ExprError);
  EXPECT_THROW(donath_average_length(100, 0.0), expr::ExprError);
  EXPECT_THROW(donath_average_length(100, 1.0), expr::ExprError);
}

TEST(Rent, TerminalCount) {
  // T = t * N^p.
  EXPECT_NEAR(rent_terminals(1024, 3.0, 0.5), 3.0 * 32.0, 1e-9);
  EXPECT_THROW(rent_terminals(0, 3.0, 0.5), expr::ExprError);
}

TEST(Interconnect, CapacitanceScalesWithArea) {
  auto make = [&](double area) {
    MapParamReader p;
    p.set("n_blocks", 10000.0);
    p.set("rent_exponent", 0.6);
    p.set("fanout", 3.0);
    p.set("active_area", area);
    p.set("c_per_length", 0.0);
    p.set("alpha", 0.15);
    p.set("vdd", 1.5);
    p.set("f", 1e6);
    return lib().at("interconnect").evaluate(p).total_power().si();
  };
  // Wire length ~ pitch ~ sqrt(area): doubling area gives sqrt(2)x power.
  EXPECT_NEAR(make(2e-6) / make(1e-6), std::sqrt(2.0), 1e-6);
}

TEST(ClockTree, EveryCycleCost) {
  MapParamReader p;
  p.set("active_area", 1e-6);
  p.set("n_sinks", 1000.0);
  p.set("c_per_sink", 15e-15);
  p.set("c_per_length", 0.0);
  p.set("vdd", 1.5);
  p.set("f", 2e6);
  const Estimate e = lib().at("clock_tree").evaluate(p);
  EXPECT_GT(e.total_power().si(), 0.0);
  // Sink load alone: 1000 * 15 fF * V^2 * f is a strict lower bound.
  EXPECT_GT(e.total_power().si(), 1000 * 15e-15 * 2.25 * 2e6 * 0.99);
}

TEST(Bus, ScalesWithWidthLengthAndTaps) {
  auto power = [&](double bits, double length, double taps) {
    MapParamReader p;
    p.set("bits", bits);
    p.set("length", length);
    p.set("taps", taps);
    p.set("c_per_length", 0.0);
    p.set("alpha", 0.25);
    p.set("vdd", 1.5);
    p.set("f", 10e6);
    return lib().at("bus").evaluate(p).total_power().si();
  };
  EXPECT_NEAR(power(32, 5e-3, 4) / power(16, 5e-3, 4), 2.0, 1e-9);
  EXPECT_GT(power(16, 10e-3, 4), power(16, 5e-3, 4));
  EXPECT_GT(power(16, 5e-3, 8), power(16, 5e-3, 4));
}

TEST(Bus, TapLoadMatchesFormula) {
  // C per line = length*c/m + taps*c_tap; check the tap term in
  // isolation by zeroing the length.
  MapParamReader p;
  p.set("bits", 8.0);
  p.set("length", 0.0);
  p.set("taps", 4.0);
  p.set("c_per_length", 0.0);
  p.set("alpha", 1.0);
  p.set("vdd", 1.0);
  p.set("f", 0.0);
  const auto e = lib().at("bus").evaluate(p);
  EXPECT_NEAR(e.switched_capacitance.si(), 8 * 4 * 40e-15, 1e-20);
}

TEST(IoPads, CountsAndActivity) {
  MapParamReader p;
  p.set("n_pads", 16.0);
  p.set("alpha", 0.25);
  p.set("vdd", 3.3);
  p.set("f", 1e6);
  const Estimate e = lib().at("io_pads").evaluate(p);
  EXPECT_NEAR(e.switched_capacitance.si(), 16 * 0.25 * 12e-12, 1e-18);
}

// --- Processors ----------------------------------------------------------------

TEST(ProcessorAvg, Eq11ActivityFactor) {
  MapParamReader p;
  p.set("alpha", 1.0);
  p.set("vdd", 3.3);
  p.set("f", 0.0);
  const double full =
      lib().at("processor_average").evaluate(p).total_power().si();
  EXPECT_NEAR(full, 0.5, 1e-9);  // library data-book figure at 3.3 V
  p.set("alpha", 0.25);
  EXPECT_NEAR(lib().at("processor_average").evaluate(p).total_power().si(),
              0.125, 1e-9);
}

TEST(ProcessorAvg, QuadraticVoltageScalingFromDataBook) {
  MapParamReader p;
  p.set("alpha", 1.0);
  p.set("vdd", 1.65);  // half the reference
  p.set("f", 0.0);
  EXPECT_NEAR(lib().at("processor_average").evaluate(p).total_power().si(),
              0.125, 1e-9);
}

TEST(ProcessorInstr, Eq12SumsPerClassEnergies) {
  const auto& m = dynamic_cast<const InstructionProcessorModel&>(
      lib().at("processor_instruction"));
  MapParamReader p;
  p.set("n_alu", 1000.0);
  p.set("n_mul", 10.0);
  p.set("n_load", 200.0);
  p.set("n_store", 100.0);
  p.set("n_branch", 300.0);
  p.set("n_other", 1.0);
  p.set("cpi", 1.0);
  p.set("n_misses", 0.0);
  p.set("miss_cycles", 10.0);
  p.set("e_miss", 0.0);
  p.set("vdd", 3.3);
  p.set("f", 25e6);
  const Estimate e = m.evaluate(p);
  const auto& t = m.table();
  const double expect =
      1000 * t.at(InstClass::kAlu).si() + 10 * t.at(InstClass::kMul).si() +
      200 * t.at(InstClass::kLoad).si() +
      100 * t.at(InstClass::kStore).si() +
      300 * t.at(InstClass::kBranch).si() +
      1 * t.at(InstClass::kOther).si();
  EXPECT_NEAR(e.energy_per_op.si(), expect, expect * 1e-12);
  // Power = E / (cycles/f).
  const double runtime = 1611.0 / 25e6;
  EXPECT_NEAR(e.dynamic_power.si(), expect / runtime, expect / runtime * 1e-9);
}

TEST(ProcessorInstr, CacheMissesAddEnergyAndTime) {
  MapParamReader p;
  p.set("n_alu", 1000.0);
  p.set("n_load", 500.0);
  p.set("cpi", 1.0);
  p.set("vdd", 3.3);
  p.set("f", 25e6);
  p.set("n_misses", 0.0);
  const Estimate ideal = lib().at("processor_instruction").evaluate(p);
  p.set("n_misses", 100.0);
  const Estimate real = lib().at("processor_instruction").evaluate(p);
  EXPECT_GT(real.energy_per_op.si(), ideal.energy_per_op.si());
  EXPECT_GT(real.delay.si(), ideal.delay.si());
}

TEST(ProcessorInstr, TiwariSwitchOverheadAddsEnergy) {
  MapParamReader p;
  p.set("n_alu", 1000.0);
  p.set("vdd", 3.3);
  p.set("f", 25e6);
  p.set("n_switches", 0.0);
  const double base =
      lib().at("processor_instruction").evaluate(p).energy_per_op.si();
  p.set("n_switches", 500.0);
  const double with_overhead =
      lib().at("processor_instruction").evaluate(p).energy_per_op.si();
  // Library default: 0.3 nJ per class switch.
  EXPECT_NEAR(with_overhead - base, 500 * 0.3e-9, 1e-12);
  // Explicit override wins.
  p.set("e_switch", 1e-9);
  EXPECT_NEAR(
      lib().at("processor_instruction").evaluate(p).energy_per_op.si() -
          base,
      500 * 1e-9, 1e-12);
}

TEST(ProcessorInstr, UnderestimationWithoutMisses) {
  // The paper: "These models tend to underestimate power because factors
  // such as cache and branch misses are neglected."  Energy-wise the
  // miss-free estimate must be a strict lower bound.
  MapParamReader p;
  p.set("n_load", 1e6);
  p.set("vdd", 3.3);
  p.set("f", 25e6);
  const double base =
      lib().at("processor_instruction").evaluate(p).energy_per_op.si();
  p.set("n_misses", 1e5);
  EXPECT_GT(lib().at("processor_instruction").evaluate(p).energy_per_op.si(),
            base);
}

// --- Analog -------------------------------------------------------------------

TEST(Analog, Eq13LinearInSupply) {
  MapParamReader p;
  p.set("i_bias", 2e-3);
  p.set("vdd", 3.0);
  p.set("f", 0.0);
  EXPECT_NEAR(lib().at("analog_bias").evaluate(p).total_power().si(), 6e-3,
              1e-12);
  p.set("vdd", 6.0);
  // *Linear* in V_supply — the paper's contrast with quadratic digital.
  EXPECT_NEAR(lib().at("analog_bias").evaluate(p).total_power().si(), 12e-3,
              1e-12);
}

TEST(Analog, Eq14TransconductanceBijection) {
  const Current i = bias_for_transconductance(Conductance{0.001});
  EXPECT_NEAR(amp_transconductance(i).si(), 0.001, 1e-12);
  EXPECT_NEAR(i.si(), 0.001 * kThermalVoltage300K.si(), 1e-12);
}

TEST(Analog, Eq15InputImpedanceInverseInBias) {
  const Resistance r1 = amp_input_impedance(100, Current{1e-3});
  const Resistance r2 = amp_input_impedance(100, Current{2e-3});
  EXPECT_NEAR(r1.si() / r2.si(), 2.0, 1e-9);
  EXPECT_THROW(amp_input_impedance(100, Current{0}), expr::ExprError);
}

TEST(Analog, Eq16OutputImpedance) {
  EXPECT_NEAR(amp_output_impedance(Voltage{50}, Current{1e-3}).si(), 50000,
              1e-6);
}

TEST(Analog, Eq17PowerFromGm) {
  MapParamReader p;
  p.set("gm", 0.001);
  p.set("i_bias", 0.0);
  p.set("vdd", 3.0);
  p.set("f", 0.0);
  // P = 2 * V * (kT/q) * Gm.
  const double expect = 2.0 * 3.0 * kThermalVoltage300K.si() * 0.001;
  EXPECT_NEAR(lib().at("gm_amplifier").evaluate(p).total_power().si(),
              expect, 1e-12);
}

TEST(Analog, GmZeroFallsBackToExplicitBias) {
  MapParamReader p;
  p.set("gm", 0.0);
  p.set("i_bias", 1e-3);
  p.set("vdd", 3.0);
  p.set("f", 0.0);
  EXPECT_NEAR(lib().at("gm_amplifier").evaluate(p).total_power().si(),
              2.0 * 3.0 * 1e-3, 1e-12);
}

TEST(Analog, OpAmpStagesAdd) {
  MapParamReader p;
  p.set("n_stages", 3.0);
  p.set("i_bias_per_stage", 0.5e-3);
  p.set("vdd", 3.0);
  p.set("f", 0.0);
  EXPECT_NEAR(lib().at("op_amp").evaluate(p).total_power().si(),
              3 * 0.5e-3 * 3.0, 1e-12);
}

// --- DC-DC ----------------------------------------------------------------------

TEST(Converter, Eq19Dissipation) {
  EXPECT_NEAR(converter_dissipation(Power{1.0}, 0.8).si(), 0.25, 1e-12);
  EXPECT_NEAR(converter_dissipation(Power{2.0}, 0.5).si(), 2.0, 1e-12);
  EXPECT_NEAR(converter_input_power(Power{1.0}, 0.8).si(), 1.25, 1e-12);
  EXPECT_THROW(converter_dissipation(Power{1.0}, 0.0), expr::ExprError);
  EXPECT_THROW(converter_dissipation(Power{1.0}, 1.5), expr::ExprError);
}

TEST(Converter, ModelMatchesFormula) {
  MapParamReader p;
  p.set("p_load", 3.0);
  p.set("efficiency", 0.8);
  p.set("vdd", 6.0);
  p.set("f", 0.0);
  EXPECT_NEAR(lib().at("dcdc_converter").evaluate(p).total_power().si(),
              0.75, 1e-9);
}

TEST(Converter, PerfectEfficiencyDissipatesNothing) {
  MapParamReader p;
  p.set("p_load", 3.0);
  p.set("efficiency", 1.0);
  p.set("vdd", 6.0);
  p.set("f", 0.0);
  EXPECT_NEAR(lib().at("dcdc_converter").evaluate(p).total_power().si(), 0.0,
              1e-15);
}

// --- System ---------------------------------------------------------------------

TEST(DataSheet, DutyGatesTypicalPower) {
  MapParamReader p;
  p.set("p_typical", 0.39);
  p.set("duty", 0.5);
  p.set("vdd", 5.0);
  p.set("f", 0.0);
  EXPECT_NEAR(
      lib().at("datasheet_component").evaluate(p).total_power().si(), 0.195,
      1e-9);
}

TEST(Fpga, UtilizationAndStatic) {
  MapParamReader p;
  p.set("cells_used", 1000.0);
  p.set("alpha", 0.15);
  p.set("i_static", 5e-3);
  p.set("vdd", 5.0);
  p.set("f", 10e6);
  const Estimate e = lib().at("fpga").evaluate(p);
  EXPECT_GT(e.dynamic_power.si(), 0.0);
  EXPECT_NEAR(e.static_power.si(), 25e-3, 1e-9);
}

TEST(Servo, MechanicalPowerThroughEfficiency) {
  MapParamReader p;
  p.set("torque", 0.02);
  p.set("speed", 100.0);
  p.set("eta", 0.5);
  p.set("duty", 0.25);
  p.set("i_idle", 0.0);
  p.set("vdd", 6.0);
  p.set("f", 0.0);
  // 0.25 * (0.02*100/0.5) = 1 W.
  EXPECT_NEAR(lib().at("servo_motor").evaluate(p).total_power().si(), 1.0,
              1e-9);
  p.set("i_idle", 10e-3);
  EXPECT_NEAR(lib().at("servo_motor").evaluate(p).total_power().si(),
              1.0 + 0.06, 1e-9);
}

TEST(Display, BacklightDominates) {
  MapParamReader p;
  p.set("area", 0.01);
  p.set("refresh", 60.0);
  p.set("p_backlight", 1.0);
  p.set("backlight_duty", 0.5);
  p.set("vdd", 12.0);
  p.set("f", 0.0);
  const Estimate e = lib().at("backlit_display").evaluate(p);
  EXPECT_NEAR(e.static_power.si(), 0.5, 1e-9);
  EXPECT_GT(e.dynamic_power.si(), 0.0);
  EXPECT_LT(e.dynamic_power.si(), 0.1 * e.static_power.si());
}

TEST(Library, AllExpectedModelsPresent) {
  for (const char* name :
       {"ripple_adder", "array_multiplier", "log_shifter", "multiplexer",
        "comparator", "sv_buffer_chain", "sv_mux_latch", "register",
        "register_file", "sram", "dram", "random_logic_controller",
        "rom_controller", "pla_controller", "interconnect", "clock_tree",
        "io_pads", "processor_average", "processor_instruction",
        "analog_bias", "gm_amplifier", "op_amp", "dcdc_converter",
        "datasheet_component", "fpga", "bus", "servo_motor",
        "backlit_display"}) {
    EXPECT_TRUE(lib().contains(name)) << name;
  }
  EXPECT_GE(lib().size(), 25u);
}

TEST(Library, EveryModelEvaluatesOnDefaults) {
  // Property: the declared defaults of every built-in model form a
  // valid operating point — an empty reader must evaluate cleanly.
  for (const std::string& name : lib().names()) {
    const model::Model& m = lib().at(name);
    MapParamReader empty;
    Estimate e;
    ASSERT_NO_THROW(e = m.evaluate(empty)) << name;
    EXPECT_GE(e.total_power().si(), 0.0) << name;
  }
}

TEST(Library, EveryModelHasDocumentationAndParams) {
  for (const std::string& name : lib().names()) {
    const model::Model& m = lib().at(name);
    EXPECT_FALSE(m.documentation().empty()) << name;
    EXPECT_FALSE(m.params().empty()) << name;
  }
}

}  // namespace
}  // namespace powerplay::models
