// Property-based fuzzing of the expression pipeline: generate random
// ASTs from a deterministic PRNG, render them to source, re-parse, and
// check that evaluation agrees exactly — plus robustness sweeps feeding
// mutated source strings to the parser (must throw ExprError, never
// crash or accept-and-misparse) — plus differential fuzzing of the
// bytecode compiler (expr/compile.hpp) against the tree-walk reference:
// every random expression must produce the exact same double bits, or
// throw an ExprError with the exact same message.
#include <cstdint>
#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "expr/ast.hpp"
#include "expr/compile.hpp"
#include "expr/eval.hpp"
#include "expr/parser.hpp"

namespace powerplay::expr {
namespace {

/// xorshift64 — deterministic across platforms (std::mt19937 would be
/// fine too, but this keeps failures reproducible from the seed alone).
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  int below(int n) { return static_cast<int>(next() % n); }
  double number() {
    // Mix of small integers, decimals and scientific-notation values.
    switch (below(4)) {
      case 0: return static_cast<double>(below(100));
      case 1: return below(1000) / 8.0;
      case 2: return below(1000) * 1e-15;
      default: return below(1000) * 1e6;
    }
  }
};

const char* kVariables[] = {"vdd", "f", "alpha", "words", "bits"};
const char* kUnaryFns[] = {"abs", "sqrt", "exp", "ceil", "floor", "round"};

ExprPtr gen(Rng& rng, int depth) {
  auto make = [](Expr e) { return std::make_shared<const Expr>(std::move(e)); };
  if (depth <= 0 || rng.below(4) == 0) {
    if (rng.below(3) == 0) {
      return make(Expr{VariableNode{kVariables[rng.below(5)]}});
    }
    return make(Expr{NumberNode{rng.number()}});
  }
  switch (rng.below(8)) {
    case 0:
      return make(Expr{UnaryNode{UnOp::kNeg, gen(rng, depth - 1)}});
    case 1:
      return make(Expr{UnaryNode{UnOp::kNot, gen(rng, depth - 1)}});
    case 2:
      return make(Expr{ConditionalNode{gen(rng, depth - 1),
                                       gen(rng, depth - 1),
                                       gen(rng, depth - 1)}});
    case 3: {
      // abs() keeps sqrt's domain safe under re-association.
      return make(Expr{CallNode{
          kUnaryFns[rng.below(6)],
          {make(Expr{CallNode{"abs", {gen(rng, depth - 1)}}})}}});
    }
    case 4:
      return make(Expr{CallNode{
          rng.below(2) ? "max" : "min",
          {gen(rng, depth - 1), gen(rng, depth - 1)}}});
    default: {
      // Arithmetic and comparisons; division/modulo excluded because a
      // random zero denominator is legitimate ExprError territory.
      static const BinOp ops[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul,
                                  BinOp::kLess, BinOp::kLessEq,
                                  BinOp::kGreater, BinOp::kGreaterEq,
                                  BinOp::kAnd, BinOp::kOr};
      return make(Expr{BinaryNode{ops[rng.below(9)], gen(rng, depth - 1),
                                  gen(rng, depth - 1)}});
    }
  }
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RenderReparseEvaluateIdentity) {
  Rng rng(GetParam());
  Scope scope;
  scope.set("vdd", 1.5);
  scope.set("f", 2e6);
  scope.set("alpha", 0.5);
  scope.set("words", 2048.0);
  scope.set("bits", 8.0);
  const FunctionTable fns = FunctionTable::with_builtins();

  for (int i = 0; i < 200; ++i) {
    const ExprPtr original = gen(rng, 4);
    const std::string source = to_source(*original);
    ExprPtr reparsed;
    ASSERT_NO_THROW(reparsed = parse(source)) << source;

    double expect = 0, got = 0;
    bool expect_threw = false, got_threw = false;
    try {
      expect = evaluate(*original, scope, fns);
    } catch (const ExprError&) {
      expect_threw = true;
    }
    try {
      got = evaluate(*reparsed, scope, fns);
    } catch (const ExprError&) {
      got_threw = true;
    }
    ASSERT_EQ(expect_threw, got_threw) << source;
    if (!expect_threw) {
      if (std::isnan(expect)) {
        EXPECT_TRUE(std::isnan(got)) << source;
      } else {
        EXPECT_DOUBLE_EQ(expect, got) << source;
      }
      // Second render must be a fixed point.
      EXPECT_EQ(to_source(*reparsed), source);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

class MutationSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationSeeds, MutatedSourceNeverCrashes) {
  Rng rng(GetParam() * 7919);
  Scope scope;
  scope.set("vdd", 1.5);
  const FunctionTable fns = FunctionTable::with_builtins();
  const std::string base = "max(vdd * 2, (3 + 4) ^ 2) - 1.5e-3";

  for (int i = 0; i < 500; ++i) {
    std::string mutated = base;
    const int edits = 1 + rng.below(4);
    for (int e = 0; e < edits; ++e) {
      const int pos = rng.below(static_cast<int>(mutated.size()));
      switch (rng.below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.below(95));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.below(95)));
      }
      if (mutated.empty()) mutated = "1";
    }
    // Any outcome is fine except a crash or a non-ExprError exception.
    try {
      const auto e = parse(mutated);
      (void)evaluate(*e, scope, fns);
    } catch (const ExprError&) {
      // expected for most mutations
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSeeds,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- differential: bytecode vs tree walk -----------------------------------

std::uint64_t bit_pattern(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// Full-surface generator: unlike gen() above it includes division,
/// modulo, pow, equality and unknown functions — error outcomes are
/// part of what the differential suite compares.
ExprPtr gen_full(Rng& rng, int depth) {
  auto make = [](Expr e) { return std::make_shared<const Expr>(std::move(e)); };
  if (depth <= 0 || rng.below(4) == 0) {
    if (rng.below(3) == 0) {
      return make(Expr{VariableNode{kVariables[rng.below(5)]}});
    }
    return make(Expr{NumberNode{rng.number()}});
  }
  switch (rng.below(10)) {
    case 0:
      return make(Expr{UnaryNode{UnOp::kNeg, gen_full(rng, depth - 1)}});
    case 1:
      return make(Expr{UnaryNode{UnOp::kNot, gen_full(rng, depth - 1)}});
    case 2:
      return make(Expr{ConditionalNode{gen_full(rng, depth - 1),
                                       gen_full(rng, depth - 1),
                                       gen_full(rng, depth - 1)}});
    case 3:
      return make(Expr{CallNode{kUnaryFns[rng.below(6)],
                                {gen_full(rng, depth - 1)}}});
    case 4:
      return make(Expr{CallNode{rng.below(2) ? "max" : "min",
                                {gen_full(rng, depth - 1),
                                 gen_full(rng, depth - 1)}}});
    case 5:
      // Unknown and wrong-arity calls: both paths must raise the same
      // ExprError lazily (only when the call is actually reached).
      return make(Expr{CallNode{rng.below(2) ? "no_such_fn" : "sqrt",
                                {gen_full(rng, depth - 1),
                                 gen_full(rng, depth - 1),
                                 gen_full(rng, depth - 1)}}});
    default: {
      static const BinOp ops[] = {
          BinOp::kAdd,     BinOp::kSub,       BinOp::kMul,   BinOp::kDiv,
          BinOp::kMod,     BinOp::kPow,       BinOp::kLess,  BinOp::kLessEq,
          BinOp::kGreater, BinOp::kGreaterEq, BinOp::kEqual, BinOp::kNotEqual,
          BinOp::kAnd,     BinOp::kOr};
      return make(Expr{BinaryNode{ops[rng.below(14)], gen_full(rng, depth - 1),
                                  gen_full(rng, depth - 1)}});
    }
  }
}

/// Evaluate both ways and require identical outcomes: same double bits,
/// or ExprError with the same message.
void expect_bit_identical(const Expr& e, const Scope& scope,
                          const FunctionTable& fns) {
  double expect = 0;
  std::string expect_error;
  bool expect_threw = false;
  try {
    expect = evaluate(e, scope, fns);
  } catch (const ExprError& err) {
    expect_threw = true;
    expect_error = err.what();
  }

  double got = 0;
  std::string got_error;
  bool got_threw = false;
  try {
    CompiledExpr compiled(e, scope, fns);
    got = compiled.evaluate();
  } catch (const ExprError& err) {
    got_threw = true;
    got_error = err.what();
  }

  const std::string source = to_source(e);
  ASSERT_EQ(expect_threw, got_threw)
      << source << (expect_threw ? " interpreter: " + expect_error
                                 : " bytecode: " + got_error);
  if (expect_threw) {
    EXPECT_EQ(expect_error, got_error) << source;
  } else {
    EXPECT_EQ(bit_pattern(expect), bit_pattern(got)) << source;
  }
}

class CompiledSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledSeeds, BytecodeMatchesTreeWalkBitForBit) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  // Mixed scope: literals plus formulas (with a formula-to-formula
  // chain), so slot kinds kValue, kFormula and kUnbound all occur —
  // "bits" is deliberately left unbound.
  Scope scope;
  scope.set("vdd", 1.5);
  scope.set("f", 2e6);
  scope.set_formula("alpha", "vdd * 0.25");
  scope.set_formula("words", "alpha * 4096 + f / 1e6");
  const FunctionTable fns = FunctionTable::with_builtins();

  for (int i = 0; i < 700; ++i) {
    const ExprPtr e = gen_full(rng, 5);
    expect_bit_identical(*e, scope, fns);
    if (HasFatalFailure()) return;
  }
}

// 15 seeds x 700 expressions = 10500 differential cases.
INSTANTIATE_TEST_SUITE_P(Seeds, CompiledSeeds,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u, 13u, 14u, 15u));

TEST(CompiledExprDifferential, CyclicFormulasRaiseTheSameMessage) {
  Scope scope;
  scope.set_formula("a", "b + 1");
  scope.set_formula("b", "a * 2");
  const FunctionTable fns = FunctionTable::with_builtins();
  const ExprPtr e = parse("a");

  std::string expect_error;
  try {
    (void)evaluate(*e, scope, fns);
    FAIL() << "interpreter accepted a cyclic definition";
  } catch (const ExprError& err) {
    expect_error = err.what();
  }
  EXPECT_EQ(expect_error, "circular parameter definition: a -> b -> a");

  CompiledExpr compiled(*e, scope, fns);
  try {
    (void)compiled.evaluate();
    FAIL() << "bytecode accepted a cyclic definition";
  } catch (const ExprError& err) {
    EXPECT_EQ(expect_error, err.what());
  }
}

TEST(CompiledExprDifferential, ErrorsInUntakenBranchesStaySilent) {
  Scope scope;
  scope.set("vdd", 1.5);
  const FunctionTable fns = FunctionTable::with_builtins();
  // The interpreter never evaluates the divide-by-zero / unknown
  // function; folding or eager resolution in the compiler must not
  // surface them either.
  for (const char* source :
       {"vdd > 0 ? 7 : 1 / 0", "0 && boom(1)", "1 || no_such(2)",
        "0 ? sqrt(-1) : 3", "vdd >= 0 ? 2 : missing_var"}) {
    const ExprPtr e = parse(source);
    expect_bit_identical(*e, scope, fns);
  }
}

TEST(CompiledExprDifferential, RepeatedEvaluationIsStable) {
  Scope scope;
  scope.set("vdd", 1.8);
  scope.set_formula("alpha", "vdd / 4");
  const FunctionTable fns = FunctionTable::with_builtins();
  const ExprPtr e = parse("alpha * vdd + sqrt(alpha)");
  const double expect = evaluate(*e, scope, fns);
  CompiledExpr compiled(*e, scope, fns);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(bit_pattern(expect), bit_pattern(compiled.evaluate()));
  }
}

}  // namespace
}  // namespace powerplay::expr
