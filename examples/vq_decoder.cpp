// vq_decoder — the paper's design-example walkthrough: compare the two
// architectures of the VQ luminance decompression chip (Figures 1 and
// 3), drill into the winning design, and explore the design space the
// way the paper's user would.
//
//   $ ./vq_decoder
#include <cstdio>

#include "models/berkeley_library.hpp"
#include "sheet/report.hpp"
#include "sheet/sweep.hpp"
#include "studies/vq.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();

  const sheet::Design impl1 = studies::make_luminance_impl1(lib);
  const sheet::Design impl2 = studies::make_luminance_impl2(lib);
  const auto r1 = impl1.play();
  const auto r2 = impl2.play();

  std::printf("VQ luminance decompression — architectural comparison\n\n");
  std::printf("%s\n", sheet::to_table(r1).c_str());
  std::printf("%s\n", sheet::to_table(r2).c_str());

  const double p1 = r1.total.total_power().si();
  const double p2 = r2.total.total_power().si();
  std::printf("Grouped-LUT architecture wins by %.1fx (%s vs %s).\n\n",
              p1 / p2, units::format_si(p2, "W").c_str(),
              units::format_si(p1, "W").c_str());

  // Where did the savings come from?  Per-module EQ 1 breakdown.
  std::printf("Winning design, term by term:\n");
  for (const auto& row : r2.rows) {
    std::printf("%s", sheet::to_breakdown(row).c_str());
  }

  // Design-space exploration: group size is the architectural knob —
  // each doubling fetches twice the bits per access at half the rate
  // and widens the mux.  (Group 1 degenerates to the Figure 1 design.)
  std::printf("\nGroup-size exploration (words fetched per LUT access):\n");
  std::printf("%-7s %-10s %-10s %-12s\n", "group", "LUT org", "mux",
              "total power");
  for (int group : {1, 2, 4, 8, 16}) {
    sheet::Design d("group_sweep");
    d.globals().set("vdd", studies::kSupplyVolts);
    d.globals().set("pixel_rate", studies::kPixelRateHz);

    auto& read = d.add_row("Read Bank", lib.find_shared("sram"));
    read.params.set("words", 2048.0);
    read.params.set("bits", 8.0);
    read.params.set_formula("f", "pixel_rate/16");
    auto& write = d.add_row("Write Bank", lib.find_shared("sram"));
    write.params.set("words", 2048.0);
    write.params.set("bits", 8.0);
    write.params.set_formula("f", "pixel_rate/32");

    auto& lut = d.add_row("LUT", lib.find_shared("sram"));
    lut.params.set("words", 4096.0 / group);
    lut.params.set("bits", 6.0 * group);
    lut.params.set_formula("f",
                           "pixel_rate/" + std::to_string(group));
    if (group > 1) {
      auto& hold = d.add_row("Hold Register", lib.find_shared("register"));
      hold.params.set("bits", 6.0 * group);
      hold.params.set_formula("f", "pixel_rate/" + std::to_string(group));
      auto& mux = d.add_row("Word Mux", lib.find_shared("multiplexer"));
      mux.params.set("bits", 6.0);
      mux.params.set("inputs", static_cast<double>(group));
      mux.params.set_formula("f", "pixel_rate");
    }
    auto& reg = d.add_row("Output Register", lib.find_shared("register"));
    reg.params.set("bits", 6.0);
    reg.params.set_formula("f", "pixel_rate");

    const auto r = d.play();
    char org[32];
    std::snprintf(org, sizeof org, "%dx%d", 4096 / group, 6 * group);
    std::printf("%-7d %-10s %-10s %-12s\n", group, org,
                group > 1 ? (std::to_string(group) + ":1").c_str() : "-",
                units::format_si(r.total.total_power().si(), "W").c_str());
  }
  std::printf("\n(The paper's chip used group = 4; the sweep shows the "
              "knee, where mux + wide-register overhead starts paying "
              "back less.)\n");
  return 0;
}
