// sorting_explorer — software power exploration on the fictitious
// processor: pick an algorithm the way the paper's EQ 12 section
// (following Ong & Yan) prescribes — profile it, price the instruction
// mix, refine with a cache simulation, and compare against the naive
// data-book estimate.
//
//   $ ./sorting_explorer [n]
#include <cstdio>
#include <cstdlib>

#include "cachesim/cache.hpp"
#include "cachesim/energy.hpp"
#include "isa/assembler.hpp"
#include "isa/energy.hpp"
#include "isa/programs.hpp"
#include "models/berkeley_library.hpp"

int main(int argc, char** argv) {
  using namespace powerplay;
  const int n = argc > 1 ? std::atoi(argv[1]) : 512;
  const auto lib = models::berkeley_library();

  std::printf("Sorting %d words on the fictitious processor "
              "(25 MHz @ 3.3 V, 1 KiB 2-way cache)\n\n",
              n);
  std::printf("%-11s %-12s %-10s %-9s %-12s %-12s %-12s\n", "algorithm",
              "instructions", "mem refs", "miss%", "E (ideal)",
              "E (cached)", "runtime");

  cachesim::CacheConfig cache_config;
  cache_config.size_bytes = 1024;
  cache_config.block_bytes = 16;
  cache_config.associativity = 2;
  const auto mem_energy =
      cachesim::derive_memory_energy(lib, cache_config, 3.3);

  double best_energy = 1e300;
  std::string best_name;
  for (const auto& prog : isa::sorting_suite(n)) {
    cachesim::Cache cache(cache_config);
    isa::Machine m(isa::assemble(prog.source), prog.memory_words + 4);
    isa::load_array(m, isa::random_data(n, 2024));
    m.set_mem_observer([&](const isa::MemAccess& a) {
      cache.access(static_cast<std::uint64_t>(a.word_address) * 4,
                   a.is_write);
    });
    m.run(2'000'000'000ULL);

    isa::ModelParams mp;
    mp.f_hz = 25e6;
    mp.vdd = 3.3;
    auto ideal = isa::instruction_model_params(m.profile(), mp);
    const auto e_ideal = lib.at("processor_instruction").evaluate(ideal);

    mp.cache_misses = cache.stats().misses();
    auto cached = isa::instruction_model_params(m.profile(), mp);
    cached.set("e_miss", cachesim::per_miss_energy(mem_energy).si());
    const auto e_cached = lib.at("processor_instruction").evaluate(cached);

    std::printf("%-11s %-12llu %-10llu %-9.1f %-12s %-12s %-12s\n",
                prog.name.c_str(),
                static_cast<unsigned long long>(m.profile().total),
                static_cast<unsigned long long>(cache.stats().accesses()),
                100.0 * cache.stats().miss_rate(),
                units::format_si(e_ideal.energy_per_op.si(), "J").c_str(),
                units::format_si(e_cached.energy_per_op.si(), "J").c_str(),
                units::format_si(e_cached.delay.si(), "s").c_str());
    if (e_cached.energy_per_op.si() < best_energy) {
      best_energy = e_cached.energy_per_op.si();
      best_name = prog.name;
    }
  }

  // Naive data-book estimate for contrast (EQ 11): power only, blind to
  // what the software does.
  model::MapParamReader p11;
  p11.set("alpha", 1.0);
  p11.set("vdd", 3.3);
  p11.set("f", 0.0);
  std::printf("\nEQ 11 data-book view: the processor draws %s whichever "
              "algorithm runs — the instruction-level model is what "
              "exposes the %s choice.\n",
              units::format_si(
                  lib.at("processor_average").evaluate(p11).total_power()
                      .si(),
                  "W")
                  .c_str(),
              best_name.c_str());
  return 0;
}
