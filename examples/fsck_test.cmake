# fsck_test.cmake — end-to-end exercise of `ppcli fsck`.
#
# Builds a store through the ppcli repl, checks that fsck of the clean
# store exits 0, then plants a snapshot whose checksum footer does not
# match its contents and checks that fsck exits nonzero and names it.
#
# Run via ctest:  cmake -DPPCLI=... -DWORK_DIR=... -DCOMMANDS=... -P fsck_test.cmake
set(store "${WORK_DIR}/fsck_store")
file(REMOVE_RECURSE "${store}")
file(MAKE_DIRECTORY "${store}")

execute_process(
  COMMAND "${PPCLI}" "${store}"
  INPUT_FILE "${COMMANDS}"
  RESULT_VARIABLE repl_rc
  OUTPUT_VARIABLE repl_out
  ERROR_VARIABLE repl_err)
if(NOT repl_rc EQUAL 0)
  message(FATAL_ERROR "ppcli repl failed (${repl_rc}): ${repl_out}${repl_err}")
endif()

execute_process(
  COMMAND "${PPCLI}" fsck "${store}"
  RESULT_VARIABLE clean_rc
  OUTPUT_VARIABLE clean_out)
if(NOT clean_rc EQUAL 0)
  message(FATAL_ERROR "fsck of a clean store exited ${clean_rc}: ${clean_out}")
endif()
if(NOT clean_out MATCHES "clean")
  message(FATAL_ERROR "fsck of a clean store did not report clean: ${clean_out}")
endif()

# --json mode: machine-readable, same verdict, framing fields present.
execute_process(
  COMMAND "${PPCLI}" fsck "${store}" --json
  RESULT_VARIABLE json_rc
  OUTPUT_VARIABLE json_out)
if(NOT json_rc EQUAL 0)
  message(FATAL_ERROR "fsck --json of a clean store exited ${json_rc}: ${json_out}")
endif()
if(NOT json_out MATCHES "\"clean\": true")
  message(FATAL_ERROR "fsck --json did not report clean: ${json_out}")
endif()
if(NOT json_out MATCHES "\"journal_sequence_ok\": true")
  message(FATAL_ERROR "fsck --json missing sequence verdict: ${json_out}")
endif()
if(NOT json_out MATCHES "\"journal_epoch\": ")
  message(FATAL_ERROR "fsck --json missing epoch field: ${json_out}")
endif()

file(GLOB designs "${store}/designs/*.ppdesign")
list(LENGTH designs n)
if(n EQUAL 0)
  message(FATAL_ERROR "the repl session saved no design under ${store}/designs")
endif()
list(GET designs 0 victim)
file(WRITE "${victim}" "design \"x\" {\n}\n#ppck 00000000 3\n")

execute_process(
  COMMAND "${PPCLI}" fsck "${store}"
  RESULT_VARIABLE bad_rc
  OUTPUT_VARIABLE bad_out)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR "fsck missed the corrupted snapshot: ${bad_out}")
endif()
if(NOT bad_out MATCHES "checksum mismatch")
  message(FATAL_ERROR "fsck failed but did not name the problem: ${bad_out}")
endif()
message(STATUS "ppcli fsck: clean store passes, corruption exits ${bad_rc}")
