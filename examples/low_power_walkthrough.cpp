// low_power_walkthrough — the paper's methodology as a guided session:
// start from a naive architecture, let the spreadsheet point at the
// power hog, apply the paper's levers one at a time (access grouping,
// voltage scaling, reduced-swing refinement through the Design Agent,
// signal-correlation refinement), and sign off against a power budget
// after every step.
//
//   $ ./low_power_walkthrough
#include <cstdio>

#include "flow/standard_flows.hpp"
#include "models/activity.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/budget.hpp"
#include "sheet/report.hpp"
#include "studies/vq.hpp"

namespace {

using namespace powerplay;

void checkpoint(const char* step, const sheet::PlayResult& r,
                double budget_watts) {
  const auto report =
      sheet::check_budget(r, {}, units::Power{budget_watts});
  std::printf("%-44s %10s   [%s]\n", step,
              units::format_si(r.total.total_power().si(), "W").c_str(),
              report.pass() ? "fits budget" : "OVER budget");
}

}  // namespace

int main() {
  const auto lib = models::berkeley_library();
  const double kBudget = 150e-6;  // the decompression subsystem allowance

  std::printf("Goal: the VQ luminance decoder under %s.\n\n",
              units::format_si(kBudget, "W").c_str());

  // Step 0: the naive architecture (Figure 1).
  sheet::Design naive = studies::make_luminance_impl1(lib);
  auto r = naive.play();
  checkpoint("0. per-pixel LUT (Figure 1)", r, kBudget);
  std::printf("   -> the spreadsheet points at the hog: %s of %s is the "
              "Look Up Table.\n\n",
              units::format_si(
                  r.find_row("Look Up Table")->estimate.total_power().si(),
                  "W")
                  .c_str(),
              units::format_si(r.total.total_power().si(), "W").c_str());

  // Step 1: architectural lever — grouped accesses (Figure 3).
  sheet::Design grouped = studies::make_luminance_impl2(lib);
  r = grouped.play();
  checkpoint("1. grouped LUT accesses (Figure 3)", r, kBudget);

  // Step 2: voltage scaling, the spreadsheet's one-cell what-if.
  grouped.globals().set("vdd", 1.1);
  r = grouped.play();
  checkpoint("2. + scale the supply to 1.1 V", r, kBudget);

  // Step 3: circuit lever — reduced-swing bit-lines, estimated through
  // the Design Agent's circuit-level flow (EQ 8) by replacing the LUT
  // row with the tool-backed entry at context 1.
  const flow::DesignAgent agent = flow::make_standard_agent(lib);
  const auto toolflow = flow::make_sram_toolflow_model(agent);
  sheet::Design swing = grouped;
  swing.remove_row("Look Up Table");
  auto& lut = swing.add_row("Look Up Table", toolflow);
  lut.params.set("words", 1024.0);
  lut.params.set("bits", 24.0);
  lut.params.set("vswing", 0.3);
  lut.params.set("context", 1.0);  // "circuit" design context
  lut.params.set_formula("f", "pixel_rate/4");
  r = swing.play();
  checkpoint("3. + reduced-swing bit-lines (agent EQ 8)", r, kBudget);

  // Step 4: account for real signal statistics — video luminance is
  // strongly correlated frame to frame, so the uncorrelated default
  // over-reports the datapath registers and mux.
  models::dbt_register(swing);
  for (const char* row : {"Hold Register", "Output Register", "Word Mux"}) {
    swing.find_row(row)->params.set_formula(
        "alpha", "dbt_alpha(8, 32, 0.85)");
  }
  r = swing.play();
  checkpoint("4. + correlated-signal activity (DBT)", r, kBudget);

  std::printf("\nFinal sheet:\n%s\n", sheet::to_table(r).c_str());
  std::printf("%s", sheet::budget_table(sheet::check_budget(
                        r,
                        {{"Look Up Table", units::Power{60e-6}},
                         {"Read Bank", units::Power{20e-6}},
                         {"Write Bank", units::Power{10e-6}}},
                        units::Power{kBudget}))
                        .c_str());
  std::printf(
      "\nEvery lever above is one the paper names: architecture "
      "selection (Figures 1->3), dynamic parameter variation, tool-"
      "refined memory models (EQ 8), and signal-correlation refinement "
      "of the conservative default.\n");
  return 0;
}
