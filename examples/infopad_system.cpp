// infopad_system — system-level power analysis of the InfoPad portable
// multimedia terminal (the paper's Figure 5 walkthrough): hierarchy,
// mixed modeling abstractions, and the DC-DC converter computed from the
// rest of the sheet.  Also answers the System Design section's question:
// where is the point of diminishing returns for optimization effort?
//
//   $ ./infopad_system
#include <cstdio>

#include "models/berkeley_library.hpp"
#include "sheet/report.hpp"
#include "studies/infopad.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();
  const sheet::Design pad = studies::make_infopad(lib);
  const sheet::PlayResult r = pad.play();

  sheet::ReportOptions opt;
  opt.recurse_macros = true;
  std::printf("%s\n", sheet::to_table(r, opt).c_str());

  // The low-power design lesson: rank subsystems and show what killing
  // each entirely would save — effort spent below the radio is wasted
  // until the big consumers shrink.
  const double total = r.total.total_power().si();
  std::printf("If a subsystem's power went to zero, the terminal would "
              "save:\n");
  for (const auto& row : r.rows) {
    if (row.name == "Voltage Converters") continue;  // derived row
    const double w = row.estimate.total_power().si();
    // The converter tax (EQ 19) amplifies every load saving.
    const double saving =
        w * (1.0 + (1.0 - studies::kConverterEfficiency) /
                       studies::kConverterEfficiency);
    std::printf("  %-22s %10s  (%.2f%% of the terminal)\n",
                row.name.c_str(), units::format_si(saving, "W").c_str(),
                100.0 * saving / total);
  }

  std::printf("\nThe custom video chipset — the part that got the "
              "low-power design attention — is already down at %s.\n",
              units::format_si(
                  r.find_row("Custom Hardware")->estimate.total_power().si(),
                  "W")
                  .c_str());
  std::printf("Battery view: a 12 V * 2 Ah pack (86.4 kJ) lasts %.1f "
              "hours at this drain.\n",
              86.4e3 / total / 3600.0);
  return 0;
}
