// ppcli — interactive PowerPlay shell over a shared on-disk library.
//
//   $ ./ppcli [data-dir]
//   powerplay> new my_chip
//   powerplay> global vdd 1.5
//   powerplay> global f 2e6
//   powerplay> add LUT sram
//   powerplay> set LUT words 4096
//   powerplay> play
//   powerplay> save
//
// Uses the same store layout as powerplay_server, so sheets edited here
// appear in the web UI and vice versa.
//
// Offline integrity check (exit 0 clean, 1 corruption found):
//
//   $ ./ppcli fsck [data-dir] [--json]
//
// Verifies snapshot checksums plus the replication framing invariants:
// journal epoch/sequence continuity and the follower cursor file.
// --json emits one machine-readable object for monitoring scrapes.
#include <cstdio>
#include <iostream>
#include <string>

#include "cli/repl.hpp"
#include "library/store.hpp"

namespace {

/// Minimal JSON string escaping for problem lines (paths, quotes).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_fsck_json(std::ostream& os, const std::string& data_dir,
                     const powerplay::library::FsckReport& report) {
  const char* const comma = ",\n  ";
  os << "{\n  ";
  os << "\"data_dir\": \"" << json_escape(data_dir) << "\"" << comma;
  os << "\"files_checked\": " << report.files_checked << comma;
  os << "\"corrupt\": " << report.corrupt << comma;
  os << "\"journal_present\": " << (report.journal_present ? "true" : "false")
     << comma;
  os << "\"journal_header_ok\": "
     << (report.journal_header_ok ? "true" : "false") << comma;
  os << "\"journal_torn\": " << (report.journal_torn ? "true" : "false")
     << comma;
  os << "\"journal_records\": " << report.journal_records << comma;
  os << "\"journal_version\": " << report.journal_version << comma;
  os << "\"journal_epoch\": " << report.journal_epoch << comma;
  os << "\"journal_base_seq\": " << report.journal_base_seq << comma;
  os << "\"journal_last_seq\": " << report.journal_last_seq << comma;
  os << "\"journal_sequence_ok\": "
     << (report.journal_sequence_ok ? "true" : "false") << comma;
  os << "\"cursor_present\": " << (report.cursor_present ? "true" : "false")
     << comma;
  os << "\"cursor_ok\": " << (report.cursor_ok ? "true" : "false") << comma;
  os << "\"cursor_epoch\": " << report.cursor_epoch << comma;
  os << "\"cursor_seq\": " << report.cursor_seq << comma;
  os << "\"problems\": [";
  for (std::size_t i = 0; i < report.problems.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(report.problems[i]) << "\"";
  }
  os << "]" << comma;
  os << "\"clean\": " << (report.clean() ? "true" : "false") << "\n}\n";
}

int run_fsck(const std::string& data_dir, bool json) {
  using namespace powerplay;
  const library::FsckReport report = library::fsck_store(data_dir);
  if (json) {
    print_fsck_json(std::cout, data_dir, report);
    return report.clean() ? 0 : 1;
  }
  std::cout << "fsck " << data_dir << "\n";
  std::cout << "files_checked: " << report.files_checked << "\n";
  std::cout << "corrupt: " << report.corrupt << "\n";
  std::cout << "journal_present: " << (report.journal_present ? "yes" : "no")
            << "\n";
  if (report.journal_present) {
    std::cout << "journal_header_ok: "
              << (report.journal_header_ok ? "yes" : "no") << "\n";
    std::cout << "journal_version: " << report.journal_version << "\n";
    std::cout << "journal_records: " << report.journal_records << "\n";
    std::cout << "journal_torn: " << (report.journal_torn ? "yes" : "no")
              << "\n";
    // The durable replication position this journal attests to: a
    // follower at (epoch, last_seq) has everything it holds.
    std::cout << "journal_epoch: " << report.journal_epoch << "\n";
    std::cout << "journal_base_seq: " << report.journal_base_seq << "\n";
    std::cout << "journal_last_seq: " << report.journal_last_seq << "\n";
    std::cout << "journal_sequence_ok: "
              << (report.journal_sequence_ok ? "yes" : "no") << "\n";
  }
  if (report.cursor_present) {
    std::cout << "cursor_ok: " << (report.cursor_ok ? "yes" : "no") << "\n";
    std::cout << "cursor: " << report.cursor_epoch << ":" << report.cursor_seq
              << "\n";
  }
  for (const std::string& problem : report.problems) {
    std::cout << "problem: " << problem << "\n";
  }
  std::cout << (report.clean() ? "clean\n" : "CORRUPT\n");
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powerplay;
  if (argc > 1 && std::string(argv[1]) == "fsck") {
    std::string data_dir = "powerplay_data";
    bool json = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        json = true;
      } else {
        data_dir = arg;
      }
    }
    return run_fsck(data_dir, json);
  }
  const std::string data_dir = argc > 1 ? argv[1] : "powerplay_data";
  return cli::run_repl(std::cin, std::cout,
                       library::LibraryStore(data_dir)) == 0
             ? 0
             : 1;
}
