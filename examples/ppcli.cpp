// ppcli — interactive PowerPlay shell over a shared on-disk library.
//
//   $ ./ppcli [data-dir]
//   powerplay> new my_chip
//   powerplay> global vdd 1.5
//   powerplay> global f 2e6
//   powerplay> add LUT sram
//   powerplay> set LUT words 4096
//   powerplay> play
//   powerplay> save
//
// Uses the same store layout as powerplay_server, so sheets edited here
// appear in the web UI and vice versa.
//
// Offline integrity check (exit 0 clean, 1 corruption found):
//
//   $ ./ppcli fsck [data-dir]
#include <iostream>

#include "cli/repl.hpp"
#include "library/store.hpp"

namespace {

int run_fsck(const std::string& data_dir) {
  using namespace powerplay;
  const library::FsckReport report = library::fsck_store(data_dir);
  std::cout << "fsck " << data_dir << "\n";
  std::cout << "files_checked: " << report.files_checked << "\n";
  std::cout << "corrupt: " << report.corrupt << "\n";
  std::cout << "journal_present: " << (report.journal_present ? "yes" : "no")
            << "\n";
  if (report.journal_present) {
    std::cout << "journal_header_ok: "
              << (report.journal_header_ok ? "yes" : "no") << "\n";
    std::cout << "journal_records: " << report.journal_records << "\n";
    std::cout << "journal_torn: " << (report.journal_torn ? "yes" : "no")
              << "\n";
  }
  for (const std::string& problem : report.problems) {
    std::cout << "problem: " << problem << "\n";
  }
  std::cout << (report.clean() ? "clean\n" : "CORRUPT\n");
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powerplay;
  if (argc > 1 && std::string(argv[1]) == "fsck") {
    return run_fsck(argc > 2 ? argv[2] : "powerplay_data");
  }
  const std::string data_dir = argc > 1 ? argv[1] : "powerplay_data";
  return cli::run_repl(std::cin, std::cout,
                       library::LibraryStore(data_dir)) == 0
             ? 0
             : 1;
}
