// ppcli — interactive PowerPlay shell over a shared on-disk library.
//
//   $ ./ppcli [data-dir]
//   powerplay> new my_chip
//   powerplay> global vdd 1.5
//   powerplay> global f 2e6
//   powerplay> add LUT sram
//   powerplay> set LUT words 4096
//   powerplay> play
//   powerplay> save
//
// Uses the same store layout as powerplay_server, so sheets edited here
// appear in the web UI and vice versa.
#include <iostream>

#include "cli/repl.hpp"

int main(int argc, char** argv) {
  using namespace powerplay;
  const std::string data_dir = argc > 1 ? argv[1] : "powerplay_data";
  return cli::run_repl(std::cin, std::cout,
                       library::LibraryStore(data_dir)) == 0
             ? 0
             : 1;
}
