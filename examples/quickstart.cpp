// quickstart — the smallest useful PowerPlay session, in code:
// pick models from the characterized library, compose a design sheet
// with parameter formulas, press Play, read the spreadsheet, then do a
// supply-voltage what-if.
//
//   $ ./quickstart
#include <cstdio>

#include "models/berkeley_library.hpp"
#include "sheet/design.hpp"
#include "sheet/report.hpp"
#include "sheet/sweep.hpp"

int main() {
  using namespace powerplay;

  // 1. The shared library of pre-characterized models.
  const model::ModelRegistry lib = models::berkeley_library();

  // 2. A design sheet with global parameters every row inherits.
  sheet::Design mac("mac_unit",
                    "16x16 multiply-accumulate datapath with coefficient "
                    "store");
  mac.globals().set("vdd", 1.5);       // volts
  mac.globals().set("clock", 10e6);    // Hz

  // 3. Rows: model instances with parameter overrides.  Parameters can
  //    be literals or formulas over the globals.
  auto& mult = mac.add_row("Multiplier", lib.find_shared("array_multiplier"));
  mult.params.set("bitwidthA", 16.0);
  mult.params.set("bitwidthB", 16.0);
  mult.params.set_formula("f", "clock");

  auto& acc = mac.add_row("Accumulator", lib.find_shared("ripple_adder"));
  acc.params.set("bitwidth", 32.0);
  acc.params.set_formula("f", "clock");

  auto& coeffs = mac.add_row("Coefficient RAM", lib.find_shared("sram"));
  coeffs.params.set("words", 256.0);
  coeffs.params.set("bits", 16.0);
  coeffs.params.set_formula("f", "clock / 2");  // new coefficient every
                                                // other cycle

  auto& out = mac.add_row("Output Register", lib.find_shared("register"));
  out.params.set("bits", 32.0);
  out.params.set_formula("f", "clock");

  // 4. Play.
  const sheet::PlayResult result = mac.play();
  std::printf("%s\n", sheet::to_table(result).c_str());
  std::printf("%s\n\n", sheet::summary_line(result).c_str());

  // 5. What-if: how does total power respond to voltage scaling?
  std::printf("Supply what-if:\n%s",
              sheet::sweep_table(
                  "vdd", sheet::sweep_global(mac, "vdd",
                                             {1.1, 1.5, 2.0, 2.5, 3.3}))
                  .c_str());
  return 0;
}
