// powerplay_server — run the PowerPlay WWW application.
//
//   $ ./powerplay_server [port] [data-dir]
//
// Then point any browser (or curl) at it:
//
//   curl 'http://127.0.0.1:8080/'                      # identify yourself
//   curl 'http://127.0.0.1:8080/menu?user=you'
//   curl 'http://127.0.0.1:8080/library?user=you'
//   curl 'http://127.0.0.1:8080/model?user=you&name=array_multiplier&p_bitwidthA=16&p_bitwidthB=16&p_vdd=1.5&p_f=2000000&p_correlated=0&p_alpha=1'
//   curl 'http://127.0.0.1:8080/api/models'            # remote-access API
//   curl 'http://127.0.0.1:8080/healthz'               # liveness + counters
//
// The data directory persists users, designs and user-defined models
// between runs, and the two reference designs (Luminance_2, the full
// InfoPad terminal) are pre-loaded so their spreadsheets are one click
// away, hyperlinked drill-down included.
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "library/store.hpp"
#include "models/berkeley_library.hpp"
#include "studies/infopad.hpp"
#include "studies/vq.hpp"
#include "web/app.hpp"
#include "web/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace powerplay;
  const std::uint16_t port =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 8080;
  const std::string data_dir = argc > 2 ? argv[2] : "powerplay_data";

  web::PowerPlayApp app{library::LibraryStore(data_dir)};

  // Pre-load the paper's reference designs for browsing.
  const auto& lib = app.registry();
  if (!app.store().has_design("Luminance_1")) {
    app.store().save_design(studies::make_luminance_impl1(lib));
  }
  if (!app.store().has_design("InfoPad_System")) {
    app.store().save_design(studies::make_infopad(lib));
  }

  web::HttpServer server(port, [&](const web::Request& r) {
    return app.handle(r);
  });
  app.set_stats_source([&server] { return server.stats(); });
  server.start();
  std::printf("PowerPlay serving on http://127.0.0.1:%u/ (data in %s)\n",
              server.port(), data_dir.c_str());
  std::printf("Pre-loaded designs: Luminance_1, Luminance_2, "
              "Custom_Chipset, InfoPad_System\n");
  std::printf("Ctrl-C to stop.\n");

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop) {
    ::pause();
  }
  server.stop();
  // Graceful shutdown: drain job runners (cancelling what remains) and
  // compact the store's journal so the next start replays nothing.
  app.shutdown();
  std::printf("\n%llu requests served, %llu shed, %llu timed out.\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.requests_shed()),
              static_cast<unsigned long long>(server.timeouts()));
  return 0;
}
