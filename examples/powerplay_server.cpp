// powerplay_server — run the PowerPlay WWW application.
//
//   $ ./powerplay_server [port] [data-dir] [flags]
//
// Flags (positional port/data-dir still work for compatibility):
//
//   --port N            listen port (default 8080; 0 = ephemeral)
//   --data DIR          persistent library directory (default powerplay_data)
//   --workers N         handler worker threads (default 4)
//   --queue N           parsed-request queue capacity before shedding (default 64)
//   --io-timeout-ms N   per-request read/write deadline (default 15000)
//   --keepalive-max N   requests served per connection before close (default 100)
//   --idle-timeout-ms N keep-alive idle window before silent close (default 5000)
//   --no-cache          disable the rendered-response cache
//
// Then point any browser (or curl) at it:
//
//   curl 'http://127.0.0.1:8080/'                      # identify yourself
//   curl 'http://127.0.0.1:8080/menu?user=you'
//   curl 'http://127.0.0.1:8080/library?user=you'
//   curl 'http://127.0.0.1:8080/model?user=you&name=array_multiplier&p_bitwidthA=16&p_bitwidthB=16&p_vdd=1.5&p_f=2000000&p_correlated=0&p_alpha=1'
//   curl 'http://127.0.0.1:8080/api/models'            # remote-access API
//   curl 'http://127.0.0.1:8080/healthz'               # liveness + counters
//
// The data directory persists users, designs and user-defined models
// between runs, and the two reference designs (Luminance_2, the full
// InfoPad terminal) are pre-loaded so their spreadsheets are one click
// away, hyperlinked drill-down included.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "library/store.hpp"
#include "models/berkeley_library.hpp"
#include "studies/infopad.hpp"
#include "studies/vq.hpp"
#include "web/app.hpp"
#include "web/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

long flag_value(const char* flag, const char* value) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 0) {
    std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powerplay;

  std::uint16_t port = 8080;
  std::string data_dir = "powerplay_data";
  web::ServerOptions server_options;
  web::AppOptions app_options;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(flag_value("--port", next()));
    } else if (arg == "--data") {
      data_dir = next();
    } else if (arg == "--workers") {
      server_options.worker_count =
          static_cast<std::size_t>(flag_value("--workers", next()));
    } else if (arg == "--queue") {
      server_options.queue_capacity =
          static_cast<std::size_t>(flag_value("--queue", next()));
    } else if (arg == "--io-timeout-ms") {
      server_options.io_timeout =
          std::chrono::milliseconds(flag_value("--io-timeout-ms", next()));
    } else if (arg == "--keepalive-max") {
      server_options.max_keepalive_requests =
          static_cast<std::size_t>(flag_value("--keepalive-max", next()));
    } else if (arg == "--idle-timeout-ms") {
      server_options.keepalive_idle_timeout =
          std::chrono::milliseconds(flag_value("--idle-timeout-ms", next()));
    } else if (arg == "--no-cache") {
      app_options.response_cache = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [port] [data-dir] [--port N] [--data DIR] "
                  "[--workers N] [--queue N] [--io-timeout-ms N] "
                  "[--keepalive-max N] [--idle-timeout-ms N] [--no-cache]\n",
                  argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 2;
    } else if (positional == 0) {
      port = static_cast<std::uint16_t>(std::atoi(arg.c_str()));
      positional += 1;
    } else if (positional == 1) {
      data_dir = arg;
      positional += 1;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  web::PowerPlayApp app{library::LibraryStore(data_dir), {}, {}, app_options};

  // Pre-load the paper's reference designs for browsing.
  const auto& lib = app.registry();
  if (!app.store().has_design("Luminance_1")) {
    app.store().save_design(studies::make_luminance_impl1(lib));
  }
  if (!app.store().has_design("InfoPad_System")) {
    app.store().save_design(studies::make_infopad(lib));
  }

  web::HttpServer server(port, [&](const web::Request& r) {
    return app.handle(r);
  }, server_options);
  app.set_stats_source([&server] { return server.stats(); });
  server.start();
  std::printf("PowerPlay serving on http://127.0.0.1:%u/ (data in %s)\n",
              server.port(), data_dir.c_str());
  std::printf("Workers: %zu, queue: %zu, keep-alive: %zu req/conn, cache: %s\n",
              server_options.worker_count, server_options.queue_capacity,
              server_options.max_keepalive_requests,
              app_options.response_cache ? "on" : "off");
  std::printf("Pre-loaded designs: Luminance_1, Luminance_2, "
              "Custom_Chipset, InfoPad_System\n");
  std::printf("Ctrl-C to stop.\n");

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop) {
    ::pause();
  }
  server.stop();
  // Graceful shutdown: drain job runners (cancelling what remains) and
  // compact the store's journal so the next start replays nothing.
  app.shutdown();
  std::printf("\n%llu requests served, %llu shed, %llu timed out, "
              "%llu connections reused.\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.requests_shed()),
              static_cast<unsigned long long>(server.timeouts()),
              static_cast<unsigned long long>(server.connections_reused()));
  return 0;
}
