// powerplay_server — run the PowerPlay WWW application.
//
//   $ ./powerplay_server [port] [data-dir] [flags]
//
// Flags (positional port/data-dir still work for compatibility):
//
//   --port N            listen port (default 8080; 0 = ephemeral)
//   --data DIR          persistent library directory (default powerplay_data)
//   --workers N         handler worker threads (default 4)
//   --queue N           parsed-request queue capacity before shedding (default 64)
//   --io-timeout-ms N   per-request read/write deadline (default 15000)
//   --keepalive-max N   requests served per connection before close (default 100)
//   --idle-timeout-ms N keep-alive idle window before silent close (default 5000)
//   --no-cache          disable the rendered-response cache
//   --follow HOST:PORT  run as a read-only replication follower of the
//                       primary at HOST:PORT (loopback only).  Reads are
//                       served locally; writes answer 307 to the primary.
//                       SIGUSR1 or POST /repl/promote promotes to primary.
//   --peer HOST:PORT    join the federated model network with the peer
//                       site at HOST:PORT (loopback only; repeatable).
//                       Enables /fed/* routes and the background mirror
//                       sync (docs/federation.md).
//
// Then point any browser (or curl) at it:
//
//   curl 'http://127.0.0.1:8080/'                      # identify yourself
//   curl 'http://127.0.0.1:8080/menu?user=you'
//   curl 'http://127.0.0.1:8080/library?user=you'
//   curl 'http://127.0.0.1:8080/model?user=you&name=array_multiplier&p_bitwidthA=16&p_bitwidthB=16&p_vdd=1.5&p_f=2000000&p_correlated=0&p_alpha=1'
//   curl 'http://127.0.0.1:8080/api/models'            # remote-access API
//   curl 'http://127.0.0.1:8080/healthz'               # liveness + counters
//
// The data directory persists users, designs and user-defined models
// between runs, and the two reference designs (Luminance_2, the full
// InfoPad terminal) are pre-loaded so their spreadsheets are one click
// away, hyperlinked drill-down included.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "library/store.hpp"
#include "web/client.hpp"
#include "web/repl.hpp"
#include "models/berkeley_library.hpp"
#include "studies/infopad.hpp"
#include "studies/vq.hpp"
#include "web/app.hpp"
#include "web/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_promote = 0;
void handle_signal(int) { g_stop = 1; }
void handle_promote(int) { g_promote = 1; }

long flag_value(const char* flag, const char* value) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 0) {
    std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return v;
}

/// "HOST:PORT" -> port, insisting on loopback: every socket in this
/// codebase binds and connects to 127.0.0.1 only.
std::uint16_t parse_follow_target(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--follow wants HOST:PORT, got '%s'\n", spec.c_str());
    std::exit(2);
  }
  const std::string host = spec.substr(0, colon);
  if (host != "127.0.0.1" && host != "localhost") {
    std::fprintf(stderr,
                 "--follow supports loopback primaries only, got '%s'\n",
                 host.c_str());
    std::exit(2);
  }
  const long port = flag_value("--follow", spec.substr(colon + 1).c_str());
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "--follow port out of range: %ld\n", port);
    std::exit(2);
  }
  return static_cast<std::uint16_t>(port);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powerplay;

  std::uint16_t port = 8080;
  std::string data_dir = "powerplay_data";
  std::uint16_t follow_port = 0;  // 0 = primary (no one to follow)
  std::vector<std::uint16_t> peer_ports;
  web::ServerOptions server_options;
  web::AppOptions app_options;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(flag_value("--port", next()));
    } else if (arg == "--data") {
      data_dir = next();
    } else if (arg == "--workers") {
      server_options.worker_count =
          static_cast<std::size_t>(flag_value("--workers", next()));
    } else if (arg == "--queue") {
      server_options.queue_capacity =
          static_cast<std::size_t>(flag_value("--queue", next()));
    } else if (arg == "--io-timeout-ms") {
      server_options.io_timeout =
          std::chrono::milliseconds(flag_value("--io-timeout-ms", next()));
    } else if (arg == "--keepalive-max") {
      server_options.max_keepalive_requests =
          static_cast<std::size_t>(flag_value("--keepalive-max", next()));
    } else if (arg == "--idle-timeout-ms") {
      server_options.keepalive_idle_timeout =
          std::chrono::milliseconds(flag_value("--idle-timeout-ms", next()));
    } else if (arg == "--no-cache") {
      app_options.response_cache = false;
    } else if (arg == "--follow") {
      follow_port = parse_follow_target(next());
    } else if (arg == "--peer") {
      try {
        peer_ports.push_back(web::parse_peer_spec(next()));
      } catch (const web::HttpError& e) {
        std::fprintf(stderr, "--peer: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [port] [data-dir] [--port N] [--data DIR] "
                  "[--workers N] [--queue N] [--io-timeout-ms N] "
                  "[--keepalive-max N] [--idle-timeout-ms N] [--no-cache] "
                  "[--follow HOST:PORT] [--peer HOST:PORT ...]\n",
                  argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 2;
    } else if (positional == 0) {
      port = static_cast<std::uint16_t>(std::atoi(arg.c_str()));
      positional += 1;
    } else if (positional == 1) {
      data_dir = arg;
      positional += 1;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  web::PowerPlayApp app{library::LibraryStore(data_dir), {}, {}, app_options};

  // Pre-load the paper's reference designs for browsing.  Not on a
  // follower: its store mirrors the primary's stream, and a local
  // commit here would be divergence before the first poll.
  if (follow_port == 0) {
    const auto& lib = app.registry();
    if (!app.store().has_design("Luminance_1")) {
      app.store().save_design(studies::make_luminance_impl1(lib));
    }
    if (!app.store().has_design("InfoPad_System")) {
      app.store().save_design(studies::make_infopad(lib));
    }
  }

  web::HttpServer server(port, [&](const web::Request& r) {
    return app.handle(r);
  }, server_options);
  app.set_stats_source([&server] { return server.stats(); });

  // Follower wiring: a background thread keeps the local store converged
  // with the primary; the app redirects writes there and reports lag.
  std::unique_ptr<web::ReplicationFollower> follower;
  if (follow_port != 0) {
    follower = std::make_unique<web::ReplicationFollower>(
        app.store(), std::make_shared<web::TcpTransport>(follow_port));
    app.set_role(web::PowerPlayApp::ReplRole::kFollower,
                 "http://127.0.0.1:" + std::to_string(follow_port));
    app.set_repl_stats_source([&f = *follower] { return f.stats(); });
    app.set_promote_hook([&app, &f = *follower] {
      const std::uint64_t epoch = f.promote();
      app.set_role(web::PowerPlayApp::ReplRole::kPrimary);
      return epoch;
    });
    follower->start();
  }

  // Federation wiring: peers fan out from /fed/* under the same I/O
  // budget the server grants each inbound request, and the background
  // sync mirrors their shareable models into this site's store.
  if (!peer_ports.empty()) {
    web::FederatedLibrary& fed = app.enable_federation();
    for (const std::uint16_t peer : peer_ports) fed.add_host(peer);
    app.set_request_budget(server_options.io_timeout);
    fed.start_sync();
  }

  server.start();
  std::printf("PowerPlay serving on http://127.0.0.1:%u/ (data in %s)\n",
              server.port(), data_dir.c_str());
  std::printf("Workers: %zu, queue: %zu, keep-alive: %zu req/conn, cache: %s\n",
              server_options.worker_count, server_options.queue_capacity,
              server_options.max_keepalive_requests,
              app_options.response_cache ? "on" : "off");
  if (follower != nullptr) {
    std::printf("Role: follower of http://127.0.0.1:%u/ "
                "(writes redirect there; SIGUSR1 promotes)\n",
                follow_port);
  } else {
    std::printf("Role: primary (epoch %llu)\n",
                static_cast<unsigned long long>(app.store().epoch()));
  }
  if (!peer_ports.empty()) {
    std::printf("Federation: %zu peer(s):", peer_ports.size());
    for (const std::uint16_t peer : peer_ports) {
      std::printf(" 127.0.0.1:%u", peer);
    }
    std::printf("  (/fed/models, /fed/hosts)\n");
  }
  std::printf("Pre-loaded designs: Luminance_1, Luminance_2, "
              "Custom_Chipset, InfoPad_System\n");
  std::printf("Ctrl-C to stop.\n");

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGUSR1, handle_promote);
  while (!g_stop) {
    ::pause();
    if (g_promote) {
      g_promote = 0;
      if (follower != nullptr &&
          app.role() == web::PowerPlayApp::ReplRole::kFollower) {
        const std::uint64_t epoch = follower->promote();
        app.set_role(web::PowerPlayApp::ReplRole::kPrimary);
        std::printf("promoted to primary (epoch %llu)\n",
                    static_cast<unsigned long long>(epoch));
      } else {
        std::printf("already primary; SIGUSR1 ignored\n");
      }
    }
  }
  if (follower != nullptr) follower->stop();
  server.stop();
  // Graceful shutdown: drain job runners (cancelling what remains) and
  // compact the store's journal so the next start replays nothing.
  app.shutdown();
  std::printf("\n%llu requests served, %llu shed, %llu timed out, "
              "%llu connections reused.\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.requests_shed()),
              static_cast<unsigned long long>(server.timeouts()),
              static_cast<unsigned long long>(server.connections_reused()));
  return 0;
}
