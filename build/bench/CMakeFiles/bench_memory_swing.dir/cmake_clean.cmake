file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_swing.dir/bench_memory_swing.cpp.o"
  "CMakeFiles/bench_memory_swing.dir/bench_memory_swing.cpp.o.d"
  "bench_memory_swing"
  "bench_memory_swing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_swing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
