# Empty compiler generated dependencies file for bench_memory_swing.
# This may be replaced when dependencies are built.
