file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_multiplier.dir/bench_fig4_multiplier.cpp.o"
  "CMakeFiles/bench_fig4_multiplier.dir/bench_fig4_multiplier.cpp.o.d"
  "bench_fig4_multiplier"
  "bench_fig4_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
