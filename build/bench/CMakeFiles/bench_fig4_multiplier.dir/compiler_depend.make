# Empty compiler generated dependencies file for bench_fig4_multiplier.
# This may be replaced when dependencies are built.
