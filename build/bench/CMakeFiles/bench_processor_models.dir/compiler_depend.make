# Empty compiler generated dependencies file for bench_processor_models.
# This may be replaced when dependencies are built.
