file(REMOVE_RECURSE
  "CMakeFiles/bench_processor_models.dir/bench_processor_models.cpp.o"
  "CMakeFiles/bench_processor_models.dir/bench_processor_models.cpp.o.d"
  "bench_processor_models"
  "bench_processor_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_processor_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
