# Empty dependencies file for bench_fig7_protocol.
# This may be replaced when dependencies are built.
