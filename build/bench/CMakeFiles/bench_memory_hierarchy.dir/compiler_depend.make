# Empty compiler generated dependencies file for bench_memory_hierarchy.
# This may be replaced when dependencies are built.
