file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_hierarchy.dir/bench_memory_hierarchy.cpp.o"
  "CMakeFiles/bench_memory_hierarchy.dir/bench_memory_hierarchy.cpp.o.d"
  "bench_memory_hierarchy"
  "bench_memory_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
