# Empty compiler generated dependencies file for bench_controllers.
# This may be replaced when dependencies are built.
