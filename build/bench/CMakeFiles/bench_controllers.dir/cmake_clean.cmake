file(REMOVE_RECURSE
  "CMakeFiles/bench_controllers.dir/bench_controllers.cpp.o"
  "CMakeFiles/bench_controllers.dir/bench_controllers.cpp.o.d"
  "bench_controllers"
  "bench_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
