# Empty compiler generated dependencies file for bench_hw_vs_sw.
# This may be replaced when dependencies are built.
