file(REMOVE_RECURSE
  "CMakeFiles/bench_hw_vs_sw.dir/bench_hw_vs_sw.cpp.o"
  "CMakeFiles/bench_hw_vs_sw.dir/bench_hw_vs_sw.cpp.o.d"
  "bench_hw_vs_sw"
  "bench_hw_vs_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hw_vs_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
