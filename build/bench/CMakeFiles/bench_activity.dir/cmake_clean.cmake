file(REMOVE_RECURSE
  "CMakeFiles/bench_activity.dir/bench_activity.cpp.o"
  "CMakeFiles/bench_activity.dir/bench_activity.cpp.o.d"
  "bench_activity"
  "bench_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
