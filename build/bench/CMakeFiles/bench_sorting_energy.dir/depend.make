# Empty dependencies file for bench_sorting_energy.
# This may be replaced when dependencies are built.
