file(REMOVE_RECURSE
  "CMakeFiles/bench_sorting_energy.dir/bench_sorting_energy.cpp.o"
  "CMakeFiles/bench_sorting_energy.dir/bench_sorting_energy.cpp.o.d"
  "bench_sorting_energy"
  "bench_sorting_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sorting_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
