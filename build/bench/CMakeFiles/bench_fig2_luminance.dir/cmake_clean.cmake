file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_luminance.dir/bench_fig2_luminance.cpp.o"
  "CMakeFiles/bench_fig2_luminance.dir/bench_fig2_luminance.cpp.o.d"
  "bench_fig2_luminance"
  "bench_fig2_luminance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_luminance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
