# Empty dependencies file for bench_fig2_luminance.
# This may be replaced when dependencies are built.
