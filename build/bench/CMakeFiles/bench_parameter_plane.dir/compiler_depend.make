# Empty compiler generated dependencies file for bench_parameter_plane.
# This may be replaced when dependencies are built.
