file(REMOVE_RECURSE
  "CMakeFiles/bench_parameter_plane.dir/bench_parameter_plane.cpp.o"
  "CMakeFiles/bench_parameter_plane.dir/bench_parameter_plane.cpp.o.d"
  "bench_parameter_plane"
  "bench_parameter_plane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parameter_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
