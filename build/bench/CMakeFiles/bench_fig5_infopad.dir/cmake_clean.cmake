file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_infopad.dir/bench_fig5_infopad.cpp.o"
  "CMakeFiles/bench_fig5_infopad.dir/bench_fig5_infopad.cpp.o.d"
  "bench_fig5_infopad"
  "bench_fig5_infopad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_infopad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
