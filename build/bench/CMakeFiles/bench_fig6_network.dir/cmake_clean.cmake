file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_network.dir/bench_fig6_network.cpp.o"
  "CMakeFiles/bench_fig6_network.dir/bench_fig6_network.cpp.o.d"
  "bench_fig6_network"
  "bench_fig6_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
