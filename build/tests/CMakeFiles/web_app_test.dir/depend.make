# Empty dependencies file for web_app_test.
# This may be replaced when dependencies are built.
