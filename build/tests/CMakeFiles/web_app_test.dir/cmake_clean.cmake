file(REMOVE_RECURSE
  "CMakeFiles/web_app_test.dir/web_app_test.cpp.o"
  "CMakeFiles/web_app_test.dir/web_app_test.cpp.o.d"
  "web_app_test"
  "web_app_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
