# Empty dependencies file for models_controller_test.
# This may be replaced when dependencies are built.
