file(REMOVE_RECURSE
  "CMakeFiles/models_controller_test.dir/models_controller_test.cpp.o"
  "CMakeFiles/models_controller_test.dir/models_controller_test.cpp.o.d"
  "models_controller_test"
  "models_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
