file(REMOVE_RECURSE
  "CMakeFiles/web_server_test.dir/web_server_test.cpp.o"
  "CMakeFiles/web_server_test.dir/web_server_test.cpp.o.d"
  "web_server_test"
  "web_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
