# Empty compiler generated dependencies file for web_http_test.
# This may be replaced when dependencies are built.
