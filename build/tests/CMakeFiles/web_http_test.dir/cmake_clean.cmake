file(REMOVE_RECURSE
  "CMakeFiles/web_http_test.dir/web_http_test.cpp.o"
  "CMakeFiles/web_http_test.dir/web_http_test.cpp.o.d"
  "web_http_test"
  "web_http_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
