
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/expr_fuzz_test.cpp" "tests/CMakeFiles/expr_fuzz_test.dir/expr_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/expr_fuzz_test.dir/expr_fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/web/CMakeFiles/pp_web.dir/DependInfo.cmake"
  "/root/repo/build/src/studies/CMakeFiles/pp_studies.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/pp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/pp_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/pp_library.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/pp_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/sheet/CMakeFiles/pp_sheet.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/pp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/pp_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
