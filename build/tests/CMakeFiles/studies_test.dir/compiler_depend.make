# Empty compiler generated dependencies file for studies_test.
# This may be replaced when dependencies are built.
