file(REMOVE_RECURSE
  "CMakeFiles/models_computation_test.dir/models_computation_test.cpp.o"
  "CMakeFiles/models_computation_test.dir/models_computation_test.cpp.o.d"
  "models_computation_test"
  "models_computation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_computation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
