# Empty compiler generated dependencies file for models_computation_test.
# This may be replaced when dependencies are built.
