file(REMOVE_RECURSE
  "CMakeFiles/models_storage_test.dir/models_storage_test.cpp.o"
  "CMakeFiles/models_storage_test.dir/models_storage_test.cpp.o.d"
  "models_storage_test"
  "models_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
