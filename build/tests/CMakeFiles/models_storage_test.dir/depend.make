# Empty dependencies file for models_storage_test.
# This may be replaced when dependencies are built.
