# Empty dependencies file for isa_sort_test.
# This may be replaced when dependencies are built.
