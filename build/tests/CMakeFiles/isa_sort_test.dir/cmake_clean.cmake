file(REMOVE_RECURSE
  "CMakeFiles/isa_sort_test.dir/isa_sort_test.cpp.o"
  "CMakeFiles/isa_sort_test.dir/isa_sort_test.cpp.o.d"
  "isa_sort_test"
  "isa_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
