# Empty dependencies file for web_remote_test.
# This may be replaced when dependencies are built.
