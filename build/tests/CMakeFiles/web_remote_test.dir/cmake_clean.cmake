file(REMOVE_RECURSE
  "CMakeFiles/web_remote_test.dir/web_remote_test.cpp.o"
  "CMakeFiles/web_remote_test.dir/web_remote_test.cpp.o.d"
  "web_remote_test"
  "web_remote_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_remote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
