# Empty dependencies file for expr_lexer_test.
# This may be replaced when dependencies are built.
