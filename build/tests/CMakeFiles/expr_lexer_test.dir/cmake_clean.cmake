file(REMOVE_RECURSE
  "CMakeFiles/expr_lexer_test.dir/expr_lexer_test.cpp.o"
  "CMakeFiles/expr_lexer_test.dir/expr_lexer_test.cpp.o.d"
  "expr_lexer_test"
  "expr_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
