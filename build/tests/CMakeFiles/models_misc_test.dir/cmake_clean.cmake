file(REMOVE_RECURSE
  "CMakeFiles/models_misc_test.dir/models_misc_test.cpp.o"
  "CMakeFiles/models_misc_test.dir/models_misc_test.cpp.o.d"
  "models_misc_test"
  "models_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
