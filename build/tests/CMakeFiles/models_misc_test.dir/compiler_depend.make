# Empty compiler generated dependencies file for models_misc_test.
# This may be replaced when dependencies are built.
