file(REMOVE_RECURSE
  "CMakeFiles/vq_decoder.dir/vq_decoder.cpp.o"
  "CMakeFiles/vq_decoder.dir/vq_decoder.cpp.o.d"
  "vq_decoder"
  "vq_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vq_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
