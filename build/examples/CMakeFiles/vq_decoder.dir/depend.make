# Empty dependencies file for vq_decoder.
# This may be replaced when dependencies are built.
