# Empty compiler generated dependencies file for infopad_system.
# This may be replaced when dependencies are built.
