file(REMOVE_RECURSE
  "CMakeFiles/infopad_system.dir/infopad_system.cpp.o"
  "CMakeFiles/infopad_system.dir/infopad_system.cpp.o.d"
  "infopad_system"
  "infopad_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infopad_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
