file(REMOVE_RECURSE
  "CMakeFiles/powerplay_server.dir/powerplay_server.cpp.o"
  "CMakeFiles/powerplay_server.dir/powerplay_server.cpp.o.d"
  "powerplay_server"
  "powerplay_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerplay_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
