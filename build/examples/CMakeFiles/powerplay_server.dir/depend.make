# Empty dependencies file for powerplay_server.
# This may be replaced when dependencies are built.
