file(REMOVE_RECURSE
  "CMakeFiles/sorting_explorer.dir/sorting_explorer.cpp.o"
  "CMakeFiles/sorting_explorer.dir/sorting_explorer.cpp.o.d"
  "sorting_explorer"
  "sorting_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorting_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
