# Empty dependencies file for sorting_explorer.
# This may be replaced when dependencies are built.
