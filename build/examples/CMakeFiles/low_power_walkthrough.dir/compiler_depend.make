# Empty compiler generated dependencies file for low_power_walkthrough.
# This may be replaced when dependencies are built.
