file(REMOVE_RECURSE
  "CMakeFiles/low_power_walkthrough.dir/low_power_walkthrough.cpp.o"
  "CMakeFiles/low_power_walkthrough.dir/low_power_walkthrough.cpp.o.d"
  "low_power_walkthrough"
  "low_power_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_power_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
