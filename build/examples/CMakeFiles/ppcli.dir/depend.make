# Empty dependencies file for ppcli.
# This may be replaced when dependencies are built.
