file(REMOVE_RECURSE
  "CMakeFiles/ppcli.dir/ppcli.cpp.o"
  "CMakeFiles/ppcli.dir/ppcli.cpp.o.d"
  "ppcli"
  "ppcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
