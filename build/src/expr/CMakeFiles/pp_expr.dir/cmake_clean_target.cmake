file(REMOVE_RECURSE
  "libpp_expr.a"
)
