# Empty compiler generated dependencies file for pp_expr.
# This may be replaced when dependencies are built.
