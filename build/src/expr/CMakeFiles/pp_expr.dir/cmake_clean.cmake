file(REMOVE_RECURSE
  "CMakeFiles/pp_expr.dir/ast.cpp.o"
  "CMakeFiles/pp_expr.dir/ast.cpp.o.d"
  "CMakeFiles/pp_expr.dir/eval.cpp.o"
  "CMakeFiles/pp_expr.dir/eval.cpp.o.d"
  "CMakeFiles/pp_expr.dir/lexer.cpp.o"
  "CMakeFiles/pp_expr.dir/lexer.cpp.o.d"
  "CMakeFiles/pp_expr.dir/parser.cpp.o"
  "CMakeFiles/pp_expr.dir/parser.cpp.o.d"
  "libpp_expr.a"
  "libpp_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
