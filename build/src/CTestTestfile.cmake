# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("units")
subdirs("expr")
subdirs("model")
subdirs("models")
subdirs("sheet")
subdirs("flow")
subdirs("studies")
subdirs("library")
subdirs("isa")
subdirs("cachesim")
subdirs("web")
subdirs("cli")
