file(REMOVE_RECURSE
  "CMakeFiles/pp_model.dir/estimate.cpp.o"
  "CMakeFiles/pp_model.dir/estimate.cpp.o.d"
  "CMakeFiles/pp_model.dir/model.cpp.o"
  "CMakeFiles/pp_model.dir/model.cpp.o.d"
  "CMakeFiles/pp_model.dir/param.cpp.o"
  "CMakeFiles/pp_model.dir/param.cpp.o.d"
  "CMakeFiles/pp_model.dir/registry.cpp.o"
  "CMakeFiles/pp_model.dir/registry.cpp.o.d"
  "CMakeFiles/pp_model.dir/user_model.cpp.o"
  "CMakeFiles/pp_model.dir/user_model.cpp.o.d"
  "libpp_model.a"
  "libpp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
