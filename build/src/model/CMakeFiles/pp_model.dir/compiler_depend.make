# Empty compiler generated dependencies file for pp_model.
# This may be replaced when dependencies are built.
