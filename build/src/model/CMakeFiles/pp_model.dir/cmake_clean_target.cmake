file(REMOVE_RECURSE
  "libpp_model.a"
)
