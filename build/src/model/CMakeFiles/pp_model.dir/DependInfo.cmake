
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/estimate.cpp" "src/model/CMakeFiles/pp_model.dir/estimate.cpp.o" "gcc" "src/model/CMakeFiles/pp_model.dir/estimate.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/pp_model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/pp_model.dir/model.cpp.o.d"
  "/root/repo/src/model/param.cpp" "src/model/CMakeFiles/pp_model.dir/param.cpp.o" "gcc" "src/model/CMakeFiles/pp_model.dir/param.cpp.o.d"
  "/root/repo/src/model/registry.cpp" "src/model/CMakeFiles/pp_model.dir/registry.cpp.o" "gcc" "src/model/CMakeFiles/pp_model.dir/registry.cpp.o.d"
  "/root/repo/src/model/user_model.cpp" "src/model/CMakeFiles/pp_model.dir/user_model.cpp.o" "gcc" "src/model/CMakeFiles/pp_model.dir/user_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/pp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/pp_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
