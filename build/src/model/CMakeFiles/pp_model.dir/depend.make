# Empty dependencies file for pp_model.
# This may be replaced when dependencies are built.
