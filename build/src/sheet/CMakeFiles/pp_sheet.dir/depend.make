# Empty dependencies file for pp_sheet.
# This may be replaced when dependencies are built.
