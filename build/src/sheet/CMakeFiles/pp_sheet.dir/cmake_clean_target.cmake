file(REMOVE_RECURSE
  "libpp_sheet.a"
)
