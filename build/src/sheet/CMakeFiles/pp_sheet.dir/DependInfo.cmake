
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sheet/budget.cpp" "src/sheet/CMakeFiles/pp_sheet.dir/budget.cpp.o" "gcc" "src/sheet/CMakeFiles/pp_sheet.dir/budget.cpp.o.d"
  "/root/repo/src/sheet/design.cpp" "src/sheet/CMakeFiles/pp_sheet.dir/design.cpp.o" "gcc" "src/sheet/CMakeFiles/pp_sheet.dir/design.cpp.o.d"
  "/root/repo/src/sheet/report.cpp" "src/sheet/CMakeFiles/pp_sheet.dir/report.cpp.o" "gcc" "src/sheet/CMakeFiles/pp_sheet.dir/report.cpp.o.d"
  "/root/repo/src/sheet/sweep.cpp" "src/sheet/CMakeFiles/pp_sheet.dir/sweep.cpp.o" "gcc" "src/sheet/CMakeFiles/pp_sheet.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/pp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/pp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/pp_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
