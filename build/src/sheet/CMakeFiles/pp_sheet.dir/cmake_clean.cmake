file(REMOVE_RECURSE
  "CMakeFiles/pp_sheet.dir/budget.cpp.o"
  "CMakeFiles/pp_sheet.dir/budget.cpp.o.d"
  "CMakeFiles/pp_sheet.dir/design.cpp.o"
  "CMakeFiles/pp_sheet.dir/design.cpp.o.d"
  "CMakeFiles/pp_sheet.dir/report.cpp.o"
  "CMakeFiles/pp_sheet.dir/report.cpp.o.d"
  "CMakeFiles/pp_sheet.dir/sweep.cpp.o"
  "CMakeFiles/pp_sheet.dir/sweep.cpp.o.d"
  "libpp_sheet.a"
  "libpp_sheet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_sheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
