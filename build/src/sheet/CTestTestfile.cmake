# CMake generated Testfile for 
# Source directory: /root/repo/src/sheet
# Build directory: /root/repo/build/src/sheet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
