# Empty compiler generated dependencies file for pp_models.
# This may be replaced when dependencies are built.
