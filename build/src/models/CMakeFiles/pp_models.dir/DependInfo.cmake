
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/activity.cpp" "src/models/CMakeFiles/pp_models.dir/activity.cpp.o" "gcc" "src/models/CMakeFiles/pp_models.dir/activity.cpp.o.d"
  "/root/repo/src/models/analog.cpp" "src/models/CMakeFiles/pp_models.dir/analog.cpp.o" "gcc" "src/models/CMakeFiles/pp_models.dir/analog.cpp.o.d"
  "/root/repo/src/models/berkeley_library.cpp" "src/models/CMakeFiles/pp_models.dir/berkeley_library.cpp.o" "gcc" "src/models/CMakeFiles/pp_models.dir/berkeley_library.cpp.o.d"
  "/root/repo/src/models/computation.cpp" "src/models/CMakeFiles/pp_models.dir/computation.cpp.o" "gcc" "src/models/CMakeFiles/pp_models.dir/computation.cpp.o.d"
  "/root/repo/src/models/controller.cpp" "src/models/CMakeFiles/pp_models.dir/controller.cpp.o" "gcc" "src/models/CMakeFiles/pp_models.dir/controller.cpp.o.d"
  "/root/repo/src/models/converter.cpp" "src/models/CMakeFiles/pp_models.dir/converter.cpp.o" "gcc" "src/models/CMakeFiles/pp_models.dir/converter.cpp.o.d"
  "/root/repo/src/models/interconnect.cpp" "src/models/CMakeFiles/pp_models.dir/interconnect.cpp.o" "gcc" "src/models/CMakeFiles/pp_models.dir/interconnect.cpp.o.d"
  "/root/repo/src/models/processor.cpp" "src/models/CMakeFiles/pp_models.dir/processor.cpp.o" "gcc" "src/models/CMakeFiles/pp_models.dir/processor.cpp.o.d"
  "/root/repo/src/models/storage.cpp" "src/models/CMakeFiles/pp_models.dir/storage.cpp.o" "gcc" "src/models/CMakeFiles/pp_models.dir/storage.cpp.o.d"
  "/root/repo/src/models/system.cpp" "src/models/CMakeFiles/pp_models.dir/system.cpp.o" "gcc" "src/models/CMakeFiles/pp_models.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/pp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sheet/CMakeFiles/pp_sheet.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/pp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/pp_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
