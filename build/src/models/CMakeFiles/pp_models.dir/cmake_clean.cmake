file(REMOVE_RECURSE
  "CMakeFiles/pp_models.dir/activity.cpp.o"
  "CMakeFiles/pp_models.dir/activity.cpp.o.d"
  "CMakeFiles/pp_models.dir/analog.cpp.o"
  "CMakeFiles/pp_models.dir/analog.cpp.o.d"
  "CMakeFiles/pp_models.dir/berkeley_library.cpp.o"
  "CMakeFiles/pp_models.dir/berkeley_library.cpp.o.d"
  "CMakeFiles/pp_models.dir/computation.cpp.o"
  "CMakeFiles/pp_models.dir/computation.cpp.o.d"
  "CMakeFiles/pp_models.dir/controller.cpp.o"
  "CMakeFiles/pp_models.dir/controller.cpp.o.d"
  "CMakeFiles/pp_models.dir/converter.cpp.o"
  "CMakeFiles/pp_models.dir/converter.cpp.o.d"
  "CMakeFiles/pp_models.dir/interconnect.cpp.o"
  "CMakeFiles/pp_models.dir/interconnect.cpp.o.d"
  "CMakeFiles/pp_models.dir/processor.cpp.o"
  "CMakeFiles/pp_models.dir/processor.cpp.o.d"
  "CMakeFiles/pp_models.dir/storage.cpp.o"
  "CMakeFiles/pp_models.dir/storage.cpp.o.d"
  "CMakeFiles/pp_models.dir/system.cpp.o"
  "CMakeFiles/pp_models.dir/system.cpp.o.d"
  "libpp_models.a"
  "libpp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
