file(REMOVE_RECURSE
  "libpp_models.a"
)
