
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/app.cpp" "src/web/CMakeFiles/pp_web.dir/app.cpp.o" "gcc" "src/web/CMakeFiles/pp_web.dir/app.cpp.o.d"
  "/root/repo/src/web/client.cpp" "src/web/CMakeFiles/pp_web.dir/client.cpp.o" "gcc" "src/web/CMakeFiles/pp_web.dir/client.cpp.o.d"
  "/root/repo/src/web/html.cpp" "src/web/CMakeFiles/pp_web.dir/html.cpp.o" "gcc" "src/web/CMakeFiles/pp_web.dir/html.cpp.o.d"
  "/root/repo/src/web/http.cpp" "src/web/CMakeFiles/pp_web.dir/http.cpp.o" "gcc" "src/web/CMakeFiles/pp_web.dir/http.cpp.o.d"
  "/root/repo/src/web/remote.cpp" "src/web/CMakeFiles/pp_web.dir/remote.cpp.o" "gcc" "src/web/CMakeFiles/pp_web.dir/remote.cpp.o.d"
  "/root/repo/src/web/server.cpp" "src/web/CMakeFiles/pp_web.dir/server.cpp.o" "gcc" "src/web/CMakeFiles/pp_web.dir/server.cpp.o.d"
  "/root/repo/src/web/url.cpp" "src/web/CMakeFiles/pp_web.dir/url.cpp.o" "gcc" "src/web/CMakeFiles/pp_web.dir/url.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/pp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/pp_library.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sheet/CMakeFiles/pp_sheet.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/pp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/pp_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
