file(REMOVE_RECURSE
  "CMakeFiles/pp_web.dir/app.cpp.o"
  "CMakeFiles/pp_web.dir/app.cpp.o.d"
  "CMakeFiles/pp_web.dir/client.cpp.o"
  "CMakeFiles/pp_web.dir/client.cpp.o.d"
  "CMakeFiles/pp_web.dir/html.cpp.o"
  "CMakeFiles/pp_web.dir/html.cpp.o.d"
  "CMakeFiles/pp_web.dir/http.cpp.o"
  "CMakeFiles/pp_web.dir/http.cpp.o.d"
  "CMakeFiles/pp_web.dir/remote.cpp.o"
  "CMakeFiles/pp_web.dir/remote.cpp.o.d"
  "CMakeFiles/pp_web.dir/server.cpp.o"
  "CMakeFiles/pp_web.dir/server.cpp.o.d"
  "CMakeFiles/pp_web.dir/url.cpp.o"
  "CMakeFiles/pp_web.dir/url.cpp.o.d"
  "libpp_web.a"
  "libpp_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
