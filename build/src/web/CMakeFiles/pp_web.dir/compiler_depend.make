# Empty compiler generated dependencies file for pp_web.
# This may be replaced when dependencies are built.
