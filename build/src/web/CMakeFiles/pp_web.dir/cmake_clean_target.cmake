file(REMOVE_RECURSE
  "libpp_web.a"
)
