file(REMOVE_RECURSE
  "CMakeFiles/pp_library.dir/serialize.cpp.o"
  "CMakeFiles/pp_library.dir/serialize.cpp.o.d"
  "CMakeFiles/pp_library.dir/store.cpp.o"
  "CMakeFiles/pp_library.dir/store.cpp.o.d"
  "CMakeFiles/pp_library.dir/textio.cpp.o"
  "CMakeFiles/pp_library.dir/textio.cpp.o.d"
  "libpp_library.a"
  "libpp_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
