
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/library/serialize.cpp" "src/library/CMakeFiles/pp_library.dir/serialize.cpp.o" "gcc" "src/library/CMakeFiles/pp_library.dir/serialize.cpp.o.d"
  "/root/repo/src/library/store.cpp" "src/library/CMakeFiles/pp_library.dir/store.cpp.o" "gcc" "src/library/CMakeFiles/pp_library.dir/store.cpp.o.d"
  "/root/repo/src/library/textio.cpp" "src/library/CMakeFiles/pp_library.dir/textio.cpp.o" "gcc" "src/library/CMakeFiles/pp_library.dir/textio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sheet/CMakeFiles/pp_sheet.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/pp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/pp_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
