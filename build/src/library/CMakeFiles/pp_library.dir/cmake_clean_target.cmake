file(REMOVE_RECURSE
  "libpp_library.a"
)
