# Empty compiler generated dependencies file for pp_library.
# This may be replaced when dependencies are built.
