# Empty dependencies file for pp_cachesim.
# This may be replaced when dependencies are built.
