file(REMOVE_RECURSE
  "CMakeFiles/pp_cachesim.dir/cache.cpp.o"
  "CMakeFiles/pp_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/pp_cachesim.dir/energy.cpp.o"
  "CMakeFiles/pp_cachesim.dir/energy.cpp.o.d"
  "CMakeFiles/pp_cachesim.dir/hierarchy.cpp.o"
  "CMakeFiles/pp_cachesim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/pp_cachesim.dir/trace.cpp.o"
  "CMakeFiles/pp_cachesim.dir/trace.cpp.o.d"
  "libpp_cachesim.a"
  "libpp_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
