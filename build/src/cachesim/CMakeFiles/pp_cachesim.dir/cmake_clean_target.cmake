file(REMOVE_RECURSE
  "libpp_cachesim.a"
)
