# Empty dependencies file for pp_units.
# This may be replaced when dependencies are built.
