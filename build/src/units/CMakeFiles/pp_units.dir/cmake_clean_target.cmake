file(REMOVE_RECURSE
  "libpp_units.a"
)
