file(REMOVE_RECURSE
  "CMakeFiles/pp_units.dir/units.cpp.o"
  "CMakeFiles/pp_units.dir/units.cpp.o.d"
  "libpp_units.a"
  "libpp_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
