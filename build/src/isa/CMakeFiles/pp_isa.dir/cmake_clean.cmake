file(REMOVE_RECURSE
  "CMakeFiles/pp_isa.dir/assembler.cpp.o"
  "CMakeFiles/pp_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/pp_isa.dir/energy.cpp.o"
  "CMakeFiles/pp_isa.dir/energy.cpp.o.d"
  "CMakeFiles/pp_isa.dir/isa.cpp.o"
  "CMakeFiles/pp_isa.dir/isa.cpp.o.d"
  "CMakeFiles/pp_isa.dir/machine.cpp.o"
  "CMakeFiles/pp_isa.dir/machine.cpp.o.d"
  "CMakeFiles/pp_isa.dir/programs.cpp.o"
  "CMakeFiles/pp_isa.dir/programs.cpp.o.d"
  "libpp_isa.a"
  "libpp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
