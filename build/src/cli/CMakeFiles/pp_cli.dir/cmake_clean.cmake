file(REMOVE_RECURSE
  "CMakeFiles/pp_cli.dir/repl.cpp.o"
  "CMakeFiles/pp_cli.dir/repl.cpp.o.d"
  "libpp_cli.a"
  "libpp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
