# Empty compiler generated dependencies file for pp_cli.
# This may be replaced when dependencies are built.
