file(REMOVE_RECURSE
  "libpp_cli.a"
)
