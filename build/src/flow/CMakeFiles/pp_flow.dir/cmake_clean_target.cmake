file(REMOVE_RECURSE
  "libpp_flow.a"
)
