# Empty compiler generated dependencies file for pp_flow.
# This may be replaced when dependencies are built.
