file(REMOVE_RECURSE
  "CMakeFiles/pp_flow.dir/design_agent.cpp.o"
  "CMakeFiles/pp_flow.dir/design_agent.cpp.o.d"
  "CMakeFiles/pp_flow.dir/standard_flows.cpp.o"
  "CMakeFiles/pp_flow.dir/standard_flows.cpp.o.d"
  "libpp_flow.a"
  "libpp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
