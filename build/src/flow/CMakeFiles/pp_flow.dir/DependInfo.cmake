
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/design_agent.cpp" "src/flow/CMakeFiles/pp_flow.dir/design_agent.cpp.o" "gcc" "src/flow/CMakeFiles/pp_flow.dir/design_agent.cpp.o.d"
  "/root/repo/src/flow/standard_flows.cpp" "src/flow/CMakeFiles/pp_flow.dir/standard_flows.cpp.o" "gcc" "src/flow/CMakeFiles/pp_flow.dir/standard_flows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/pp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/pp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/pp_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
