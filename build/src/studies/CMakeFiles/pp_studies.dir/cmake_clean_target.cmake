file(REMOVE_RECURSE
  "libpp_studies.a"
)
