file(REMOVE_RECURSE
  "CMakeFiles/pp_studies.dir/infopad.cpp.o"
  "CMakeFiles/pp_studies.dir/infopad.cpp.o.d"
  "CMakeFiles/pp_studies.dir/vq.cpp.o"
  "CMakeFiles/pp_studies.dir/vq.cpp.o.d"
  "libpp_studies.a"
  "libpp_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
