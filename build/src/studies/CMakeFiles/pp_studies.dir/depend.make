# Empty dependencies file for pp_studies.
# This may be replaced when dependencies are built.
