// batch.hpp — point-per-lane batch execution of compiled expressions.
//
// ExecState (compile.hpp) evaluates one point at a time: sweeps and
// Monte Carlo runs re-bind a slot and re-run every program per point,
// so the interpreter dispatch, the memo bookkeeping and the call
// marshalling are all paid N times for N points.  BatchExec executes
// the same Module across a whole *lane block* of points at once:
// every slot's storage is a lane-major double array (structure of
// arrays), arithmetic opcodes become tight loops over the lanes that
// the compiler auto-vectorizes, and formula memoization happens once
// per block instead of once per point.
//
// Semantics contract: lane `l` of a batch observes exactly the
// operation sequence the scalar ExecState would run for that point —
// the same opcodes on the same doubles in the same order, with no
// reassociation across lanes and no fused ops inside a lane (each
// opcode is a separate load/compute/store loop) — so batch results are
// bit-identical to per-point scalar execution.  Two situations break
// the lanes-move-together model and trigger a *per-lane replay* of the
// current program through a scalar interpreter over the lane storage:
//
//  * lane-divergent control flow: a kJumpIfZero whose condition is not
//    uniform across the block (a conditional splitting the batch);
//  * any would-throw condition (kThrow reached, a zero divisor or
//    modulus in any lane, a throwing function call, an unbound slot) —
//    errors must surface per point, not per block.
//
// Replays are counted (`lane_replays`) and feed the engine's
// batch_scalar_fallbacks_total health counter.  Errors raised during a
// replay propagate to the caller; the sheet-level batch runner then
// degrades the whole block to the scalar PlanInstance path so the
// error that surfaces is the one the scalar sweep would have raised.
//
// kExt (intermodel ops) never appears here: the sheet layer only
// batches plans with no extension sites (intermodel fixed-point work
// stays on the per-point scalar path, keeping convergence per-point
// exact).
#pragma once

#include <cstdint>
#include <vector>

#include "expr/compile.hpp"

namespace powerplay::expr {

/// Batch (lane-block) execution state over a shared immutable Module.
/// One BatchExec per worker thread, reset() per block; the lane width
/// is chosen by the caller (sheet::BatchPlanInstance::kLaneWidth).
class BatchExec {
 public:
  explicit BatchExec(const Module& module);

  BatchExec(const BatchExec&) = delete;
  BatchExec& operator=(const BatchExec&) = delete;

  /// Start a fresh batch of `width` lanes: every kValue slot is filled
  /// from its base value, all memo stamps and overrides are dropped.
  void reset(std::size_t width);

  /// Refresh the base value of a kValue slot (plan bind_from); takes
  /// effect at the next reset().
  void rebind_value(SlotId slot, double value);

  /// Override one lane of a slot (sweep point binding).  The caller
  /// must bind every lane of a swept slot, as the override flag is
  /// per slot, not per lane.
  void bind_lane(SlotId slot, std::size_t lane, double value);

  /// Invalidate the formula memos of one epoch domain (block-wide).
  void begin_epoch(std::uint32_t domain) { ++domain_epoch_[domain]; }

  [[nodiscard]] std::size_t width() const { return width_; }

  /// Lane values of `slot`, evaluating its formula across the block on
  /// first read in the current epoch.  The pointer stays valid until
  /// the next reset().  Throws exactly the scalar errors (unbound
  /// slot, circular definition, formula errors via replay).
  const double* slot_lanes(SlotId slot);

  /// One lane of a slot — the model-parameter read path.  Evaluates
  /// the whole slot batched when the memo is stale.
  double slot_value_lane(SlotId slot, std::size_t lane) {
    return slot_lanes(slot)[lane];
  }

  /// Programs that had to be replayed lane-by-lane (divergent branch
  /// or would-throw condition) since construction.
  [[nodiscard]] std::uint64_t lane_replays() const { return lane_replays_; }

 private:
  /// Internal control-flow signal: the current program cannot continue
  /// lockstep across the lanes; rerun it per lane.  Never escapes
  /// execute_program().
  struct NeedLaneReplay {};

  /// Run `p` across all lanes, writing the block result to `out`
  /// (width_ doubles).  Replays per lane on divergence.
  void execute_program(std::uint32_t program, double* out);
  void run_batch(const Program& p, double* out);
  double run_lane(const Program& p, std::size_t lane);

  /// Arena stack entry `i`, recomputed after any push (the arena may
  /// reallocate as it grows).
  double* entry(std::size_t i) { return stack_.data() + i * width_; }
  double* push() {
    if ((sp_ + 1) * width_ > stack_.size()) stack_.resize((sp_ + 1) * width_);
    return stack_.data() + (sp_++) * width_;
  }

  const Module* module_;
  std::size_t width_ = 0;
  std::vector<double> base_;    ///< per-slot base value (kValue slots)
  std::vector<double> values_;  ///< slot-major lanes: [slot * width_ + lane]
  std::vector<std::uint8_t> overridden_;
  std::vector<std::uint32_t> stamp_;  ///< formula memo stamps, block-wide
  std::vector<std::uint8_t> in_flight_;
  std::vector<SlotId> flight_order_;  ///< for the cycle message
  std::vector<std::uint32_t> domain_epoch_;
  std::vector<double> stack_;  ///< lane-entry arena, reused across blocks
  std::size_t sp_ = 0;         ///< arena depth, in lane entries
  std::vector<double> scalar_stack_;  ///< per-lane replay stack
  std::uint64_t lane_replays_ = 0;
};

}  // namespace powerplay::expr
