#include "expr/batch.hpp"

#include <cmath>
#include <cstring>

namespace powerplay::expr {

BatchExec::BatchExec(const Module& module)
    : module_(&module),
      base_(module.slots.size(), 0.0),
      domain_epoch_(module.domain_count, 1) {
  for (std::size_t i = 0; i < module.slots.size(); ++i) {
    if (module.slots[i].kind == SlotKind::kValue) {
      base_[i] = module.slots[i].initial;
    }
  }
  scalar_stack_.reserve(32);
  flight_order_.reserve(8);
}

void BatchExec::reset(std::size_t width) {
  width_ = width;
  const std::size_t slots = module_->slots.size();
  values_.assign(slots * width, 0.0);
  for (std::size_t s = 0; s < slots; ++s) {
    if (module_->slots[s].kind == SlotKind::kValue) {
      double* v = values_.data() + s * width;
      for (std::size_t l = 0; l < width; ++l) v[l] = base_[s];
    }
  }
  overridden_.assign(slots, 0);
  stamp_.assign(slots, 0);
  in_flight_.assign(slots, 0);
  flight_order_.clear();
  for (auto& e : domain_epoch_) e = 1;
  sp_ = 0;
}

void BatchExec::rebind_value(SlotId slot, double value) { base_[slot] = value; }

void BatchExec::bind_lane(SlotId slot, std::size_t lane, double value) {
  values_[slot * width_ + lane] = value;
  overridden_[slot] = 1;
}

const double* BatchExec::slot_lanes(SlotId slot) {
  double* v = values_.data() + slot * width_;
  if (overridden_[slot]) return v;
  const SlotInfo& info = module_->slots[slot];
  switch (info.kind) {
    case SlotKind::kValue:
      return v;
    case SlotKind::kFormula: {
      const std::uint32_t epoch = domain_epoch_[info.domain];
      if (stamp_[slot] == epoch) return v;
      if (in_flight_[slot]) {
        // Same chain format as ExecState::formula_value.
        std::string cycle;
        for (const SlotId s : flight_order_) {
          cycle += module_->slots[s].name;
          cycle += " -> ";
        }
        cycle += info.name;
        throw ExprError("circular parameter definition: " + cycle);
      }
      in_flight_[slot] = 1;
      flight_order_.push_back(slot);
      try {
        execute_program(info.program, v);
      } catch (...) {
        in_flight_[slot] = 0;
        flight_order_.pop_back();
        throw;
      }
      in_flight_[slot] = 0;
      flight_order_.pop_back();
      stamp_[slot] = epoch;
      return v;
    }
    case SlotKind::kUnbound:
      break;
  }
  throw ExprError("unbound parameter '" + info.name + "'");
}

void BatchExec::execute_program(std::uint32_t program, double* out) {
  const Program& p = module_->programs[program];
  try {
    run_batch(p, out);
  } catch (const NeedLaneReplay&) {
    // The lanes diverged (or one of them would throw): run the program
    // once per lane through the scalar interpreter over the same lane
    // storage.  Lane order matters only when an error escapes — the
    // sheet layer then degrades the block to the whole-point scalar
    // path, which restores the exact scalar error ordering.
    ++lane_replays_;
    for (std::size_t l = 0; l < width_; ++l) out[l] = run_lane(p, l);
  }
}

void BatchExec::run_batch(const Program& p, double* out) {
  const std::size_t base = sp_;
  const std::size_t w = width_;
  try {
    const Instr* code = p.code.data();
    const auto n = static_cast<std::uint32_t>(p.code.size());
    for (std::uint32_t pc = 0; pc < n;) {
      const Instr ins = code[pc];
      switch (ins.op) {
        case Op::kConst: {
          double* top = push();
          const double c = module_->constants[ins.a];
          for (std::size_t l = 0; l < w; ++l) top[l] = c;
          ++pc;
          break;
        }
        case Op::kSlot: {
          // Evaluate the slot first (it may run nested programs on the
          // arena), then push: push() can grow the arena and would
          // invalidate a pointer taken earlier.
          const double* src = slot_lanes(ins.a);
          double* top = push();
          std::memcpy(top, src, w * sizeof(double));
          ++pc;
          break;
        }
        case Op::kThrow:
          // All lanes are at this pc, so all would throw; replay so the
          // error surfaces through the per-lane path.
          throw NeedLaneReplay{};
        case Op::kNeg: {
          double* a = entry(sp_ - 1);
          for (std::size_t l = 0; l < w; ++l) a[l] = -a[l];
          ++pc;
          break;
        }
        case Op::kNot: {
          double* a = entry(sp_ - 1);
          for (std::size_t l = 0; l < w; ++l) a[l] = a[l] == 0.0 ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kAdd: {
          const double* r = entry(sp_ - 1);
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] += r[l];
          --sp_;
          ++pc;
          break;
        }
        case Op::kSub: {
          const double* r = entry(sp_ - 1);
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] -= r[l];
          --sp_;
          ++pc;
          break;
        }
        case Op::kMul: {
          const double* r = entry(sp_ - 1);
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] *= r[l];
          --sp_;
          ++pc;
          break;
        }
        case Op::kDiv: {
          const double* r = entry(sp_ - 1);
          for (std::size_t l = 0; l < w; ++l) {
            if (r[l] == 0.0) throw NeedLaneReplay{};
          }
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] /= r[l];
          --sp_;
          ++pc;
          break;
        }
        case Op::kMod: {
          const double* r = entry(sp_ - 1);
          for (std::size_t l = 0; l < w; ++l) {
            if (r[l] == 0.0) throw NeedLaneReplay{};
          }
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] = std::fmod(a[l], r[l]);
          --sp_;
          ++pc;
          break;
        }
        case Op::kPow: {
          const double* r = entry(sp_ - 1);
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] = std::pow(a[l], r[l]);
          --sp_;
          ++pc;
          break;
        }
        case Op::kLess: {
          const double* r = entry(sp_ - 1);
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] = a[l] < r[l] ? 1.0 : 0.0;
          --sp_;
          ++pc;
          break;
        }
        case Op::kLessEq: {
          const double* r = entry(sp_ - 1);
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] = a[l] <= r[l] ? 1.0 : 0.0;
          --sp_;
          ++pc;
          break;
        }
        case Op::kGreater: {
          const double* r = entry(sp_ - 1);
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] = a[l] > r[l] ? 1.0 : 0.0;
          --sp_;
          ++pc;
          break;
        }
        case Op::kGreaterEq: {
          const double* r = entry(sp_ - 1);
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] = a[l] >= r[l] ? 1.0 : 0.0;
          --sp_;
          ++pc;
          break;
        }
        case Op::kEqual: {
          const double* r = entry(sp_ - 1);
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] = a[l] == r[l] ? 1.0 : 0.0;
          --sp_;
          ++pc;
          break;
        }
        case Op::kNotEqual: {
          const double* r = entry(sp_ - 1);
          double* a = entry(sp_ - 2);
          for (std::size_t l = 0; l < w; ++l) a[l] = a[l] != r[l] ? 1.0 : 0.0;
          --sp_;
          ++pc;
          break;
        }
        case Op::kJump:
          pc = ins.a;
          break;
        case Op::kJumpIfZero: {
          const double* v = entry(sp_ - 1);
          const bool zero = v[0] == 0.0;
          for (std::size_t l = 1; l < w; ++l) {
            if ((v[l] == 0.0) != zero) throw NeedLaneReplay{};
          }
          --sp_;
          pc = zero ? ins.a : pc + 1;
          break;
        }
        case Op::kCall: {
          const CallSite& site = module_->call_sites[ins.a];
          const std::size_t argbase = sp_ - site.numeric_argc;
          std::vector<double> results(w);
          std::vector<Value> args;
          args.reserve(site.args.size());
          for (std::size_t l = 0; l < w; ++l) {
            args.clear();
            std::size_t next = argbase;
            for (const CallArg& a : site.args) {
              if (a.is_string) {
                args.emplace_back(module_->strings[a.string_index]);
              } else {
                args.emplace_back(stack_[(next++) * w + l]);
              }
            }
            try {
              results[l] = module_->functions[site.function](args);
            } catch (...) {
              // A throwing call must surface per point: replay.
              throw NeedLaneReplay{};
            }
          }
          sp_ = argbase;
          double* top = push();
          std::memcpy(top, results.data(), w * sizeof(double));
          ++pc;
          break;
        }
        case Op::kExt:
          // The sheet layer never batches a plan with extension sites.
          throw ExprError(
              "internal error: intermodel op reached batch execution");
      }
    }
    std::memcpy(out, entry(sp_ - 1), w * sizeof(double));
    sp_ = base;
  } catch (...) {
    sp_ = base;
    throw;
  }
}

double BatchExec::run_lane(const Program& p, std::size_t lane) {
  // The scalar interpreter over lane storage: op for op the same
  // sequence as ExecState::run, so a replayed lane computes (or
  // throws) exactly what the scalar path would for that point.
  const std::size_t base = scalar_stack_.size();
  auto& st = scalar_stack_;
  try {
    const Instr* code = p.code.data();
    const auto n = static_cast<std::uint32_t>(p.code.size());
    for (std::uint32_t pc = 0; pc < n;) {
      const Instr ins = code[pc];
      switch (ins.op) {
        case Op::kConst:
          st.push_back(module_->constants[ins.a]);
          ++pc;
          break;
        case Op::kSlot:
          st.push_back(slot_value_lane(ins.a, lane));
          ++pc;
          break;
        case Op::kThrow:
          throw ExprError(module_->messages[ins.a]);
        case Op::kNeg:
          st.back() = -st.back();
          ++pc;
          break;
        case Op::kNot:
          st.back() = st.back() == 0.0 ? 1.0 : 0.0;
          ++pc;
          break;
        case Op::kAdd: {
          const double r = st.back();
          st.pop_back();
          st.back() += r;
          ++pc;
          break;
        }
        case Op::kSub: {
          const double r = st.back();
          st.pop_back();
          st.back() -= r;
          ++pc;
          break;
        }
        case Op::kMul: {
          const double r = st.back();
          st.pop_back();
          st.back() *= r;
          ++pc;
          break;
        }
        case Op::kDiv: {
          const double r = st.back();
          st.pop_back();
          if (r == 0.0) throw ExprError("division by zero");
          st.back() /= r;
          ++pc;
          break;
        }
        case Op::kMod: {
          const double r = st.back();
          st.pop_back();
          if (r == 0.0) throw ExprError("modulo by zero");
          st.back() = std::fmod(st.back(), r);
          ++pc;
          break;
        }
        case Op::kPow: {
          const double r = st.back();
          st.pop_back();
          st.back() = std::pow(st.back(), r);
          ++pc;
          break;
        }
        case Op::kLess: {
          const double r = st.back();
          st.pop_back();
          st.back() = st.back() < r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kLessEq: {
          const double r = st.back();
          st.pop_back();
          st.back() = st.back() <= r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kGreater: {
          const double r = st.back();
          st.pop_back();
          st.back() = st.back() > r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kGreaterEq: {
          const double r = st.back();
          st.pop_back();
          st.back() = st.back() >= r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kEqual: {
          const double r = st.back();
          st.pop_back();
          st.back() = st.back() == r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kNotEqual: {
          const double r = st.back();
          st.pop_back();
          st.back() = st.back() != r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kJump:
          pc = ins.a;
          break;
        case Op::kJumpIfZero: {
          const double v = st.back();
          st.pop_back();
          pc = v == 0.0 ? ins.a : pc + 1;
          break;
        }
        case Op::kCall: {
          const CallSite& site = module_->call_sites[ins.a];
          std::vector<Value> args;
          args.reserve(site.args.size());
          const std::size_t argbase = st.size() - site.numeric_argc;
          std::size_t next = argbase;
          for (const CallArg& a : site.args) {
            if (a.is_string) {
              args.emplace_back(module_->strings[a.string_index]);
            } else {
              args.emplace_back(st[next++]);
            }
          }
          st.resize(argbase);
          st.push_back(module_->functions[site.function](args));
          ++pc;
          break;
        }
        case Op::kExt:
          throw ExprError(
              "internal error: intermodel op reached batch execution");
      }
    }
    const double result = st.back();
    st.resize(base);
    return result;
  } catch (...) {
    st.resize(base);
    throw;
  }
}

}  // namespace powerplay::expr
