// compile.hpp — slot-indexed bytecode for spreadsheet expressions.
//
// The tree-walk Evaluator (eval.hpp) resolves every variable through a
// string-keyed scope chain and every function through a string-keyed
// table, on every evaluation.  That is the right reference semantics,
// but the interactive loop evaluates the same formulas thousands of
// times per sweep, so this module compiles an AST once into a flat
// stack program over an interned symbol table: variable names become
// integer slots, constants are folded, and function calls are resolved
// to table indices at compile time.  Execution must be bit-identical
// to the Evaluator — same operation order, same doubles, and the same
// ExprError classes raised at the same points (errors compile to
// throwing instructions so an error inside a never-taken conditional
// branch stays silent, exactly as the lazy tree walk behaves).
//
// The sheet-level plan compiler (sheet/plan.hpp) builds on the same
// Module/Program machinery, adding extension opcodes for the
// intermodel functions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "expr/ast.hpp"
#include "expr/eval.hpp"

namespace powerplay::expr {

using SlotId = std::uint32_t;

/// What a slot stands for at run time.
enum class SlotKind : std::uint8_t {
  kValue,    ///< a literal; the instance holds its current double
  kFormula,  ///< a bound expression, compiled to a program of its own
  kUnbound,  ///< name not bound anywhere: reading it throws, lazily
};

struct SlotInfo {
  std::string name;       ///< source name, for error messages
  SlotKind kind = SlotKind::kUnbound;
  double initial = 0.0;         ///< kValue: value at compile time
  std::uint32_t program = 0;    ///< kFormula: index into Module::programs
  std::uint32_t domain = 0;     ///< kFormula: memo epoch domain (see ExecState)
};

enum class Op : std::uint8_t {
  kConst,        ///< push constants[a]
  kSlot,         ///< push the value of slot a (memoized / cycle-checked)
  kThrow,        ///< throw ExprError(messages[a])
  kNeg,          ///< unary minus
  kNot,          ///< x == 0 ? 1 : 0
  kAdd, kSub, kMul,
  kDiv,          ///< throws "division by zero" when rhs == 0
  kMod,          ///< std::fmod, throws "modulo by zero" when rhs == 0
  kPow,          ///< std::pow
  kLess, kLessEq, kGreater, kGreaterEq, kEqual, kNotEqual,
  kJump,         ///< pc := a
  kJumpIfZero,   ///< pop; if zero pc := a (short-circuit and ?: lowering)
  kCall,         ///< invoke call_sites[a] (function index resolved at compile)
  kExt,          ///< extension hook: push ext(a, b) — sheet intermodel ops
};

struct Instr {
  Op op;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// One argument of a compiled call: either an interned string literal
/// (sheet extension functions take row-name strings) or the next
/// numeric value computed on the stack.  Which one each argument is
/// gets decided at compile time, exactly as Evaluator::eval_value only
/// treats direct StringNode arguments as strings.
struct CallArg {
  bool is_string = false;
  std::uint32_t string_index = 0;  ///< into Module::strings when is_string
};

struct CallSite {
  std::uint32_t function = 0;  ///< into Module::functions
  std::vector<CallArg> args;   ///< in source order
  std::uint32_t numeric_argc = 0;
};

struct Program {
  std::vector<Instr> code;
};

/// A compilation unit: programs plus the pools they index into.  One
/// module may hold many programs (a design plan compiles every formula
/// of every row into one module so slots are shared).
struct Module {
  std::vector<Program> programs;
  std::vector<SlotInfo> slots;
  std::vector<double> constants;
  std::vector<std::string> strings;   ///< call string arguments
  std::vector<std::string> messages;  ///< kThrow texts
  std::vector<Function> functions;    ///< resolved at compile time
  std::vector<CallSite> call_sites;
  std::uint32_t domain_count = 1;     ///< memo epoch domains in use
};

/// Mutable per-evaluation state over an immutable Module: slot values,
/// formula memo stamps, the value stack, and in-flight cycle tracking.
/// One ExecState per thread; the Module is shared and read-only.
///
/// Formula slots are memoized per *epoch domain*: the caller groups
/// slots into domains (e.g. "design globals" vs "row locals") and bumps
/// a domain's epoch when the values that feed it may have changed; a
/// slot evaluated in the current epoch returns its cached double.  The
/// reference Evaluator re-evaluates formulas on every read; memoization
/// is observationally identical because formulas are pure within an
/// epoch — same doubles, and a formula that threw is never cached.
class ExecState {
 public:
  explicit ExecState(const Module& module);

  /// Invalidate the formula memos of one domain.
  void begin_epoch(std::uint32_t domain) { ++domain_epoch_[domain]; }

  /// Override a slot with a literal value (sweep re-binding).  Works on
  /// kValue and kFormula slots; kUnbound stays an error.
  void bind(SlotId slot, double value);

  /// Reset a kValue slot to `value` and drop any bind() override.
  void rebind_value(SlotId slot, double value);

  /// Current value of a slot: literal / override directly, formulas
  /// through the memo with cycle detection, kUnbound throws.
  double slot_value(SlotId slot);

  /// Execute one program and return its result.  Re-entrant: formula
  /// slots and extension ops may run nested programs.
  double run(const Program& p);
  double run_program(std::uint32_t index) {
    return run(module_->programs[index]);
  }

  /// Extension hook for Op::kExt (the sheet plan's intermodel ops).
  using ExtFn = double (*)(void* ctx, std::uint32_t a, std::uint32_t b);
  void set_ext(ExtFn fn, void* ctx) {
    ext_ = fn;
    ext_ctx_ = ctx;
  }
  [[nodiscard]] void* ext_ctx() const { return ext_ctx_; }

  [[nodiscard]] const Module& module() const { return *module_; }

 private:
  [[nodiscard]] double formula_value(SlotId slot);

  const Module* module_;
  ExtFn ext_ = nullptr;
  void* ext_ctx_ = nullptr;
  std::vector<double> values_;
  std::vector<std::uint32_t> stamp_;        ///< formula memo stamps
  std::vector<std::uint8_t> overridden_;
  std::vector<std::uint8_t> in_flight_;
  std::vector<SlotId> flight_order_;        ///< for the cycle message
  std::vector<std::uint32_t> domain_epoch_;
  std::vector<double> stack_;
};

/// AST-to-bytecode compiler.  Name and function resolution are
/// delegated to hooks so the same lowering serves both the standalone
/// CompiledExpr below (resolution against a Scope chain) and the sheet
/// plan compiler (resolution against a design's static scope layout,
/// plus intermodel extension ops).
class Compiler {
 public:
  struct Hooks {
    /// Map a variable name to a slot, creating it on first sight.
    std::function<SlotId(const std::string&)> variable;
    /// Resolve a function name to an index into Module::functions;
    /// nullopt compiles to a throwing instruction (lazy, like the
    /// tree walk's unknown-function error).
    std::function<std::optional<std::uint32_t>(const std::string&)> function;
    /// Optional: lower a call specially (intermodel ops).  Return true
    /// when handled; the hook may use the emit API below.
    std::function<bool(const CallNode&)> special_call;
  };

  Compiler(Module& module, Hooks hooks)
      : module_(&module), hooks_(std::move(hooks)) {}

  /// Compile `e` into a fresh program appended to the module; returns
  /// its index.
  std::uint32_t add_program(const Expr& e);

  /// Compile `e` and return the program without appending it — for
  /// filling a program index reserved earlier (formula slots must get
  /// their index before their body compiles, or a cyclic binding like
  /// a = "b", b = "a" would recurse forever at compile time; the cycle
  /// is detected at run time instead, like the tree walk does).
  Program build(const Expr& e);

  // ---- emit API (used internally and by special_call hooks) ----
  void compile(const Expr& e);  ///< append code computing e
  void emit(Op op, std::uint32_t a = 0, std::uint32_t b = 0);
  void emit_const(double v);
  void emit_throw(const std::string& message);
  std::uint32_t intern_string(const std::string& s);

  [[nodiscard]] Module& module() { return *module_; }

 private:
  /// Compile-time constant value of `e`, when folding it cannot change
  /// observable behavior (no calls, no variables, no foldable error).
  std::optional<double> fold(const Expr& e);

  void compile_binary(const BinaryNode& b);
  void compile_call(const CallNode& c);

  std::uint32_t here() const;
  void patch(std::uint32_t jump_instr);  ///< point a jump at `here`

  Module* module_;
  Hooks hooks_;
  std::vector<Instr> code_;  ///< program under construction
  std::map<std::uint64_t, std::uint32_t> const_pool_;  ///< value bits → index
};

/// A single expression compiled against a scope chain and function
/// table — the drop-in compiled counterpart of expr::evaluate().
/// Referenced names are interned from the chain at compile time:
/// literal bindings become value slots, formula bindings compile to
/// programs evaluated in their owning scope, missing names become
/// lazily-throwing slots.  evaluate() is bit-identical to
/// expr::evaluate(e, scope, functions) — same doubles, same ExprError
/// classes — which tests/expr_fuzz_test.cpp verifies differentially.
class CompiledExpr {
 public:
  CompiledExpr(const Expr& e, const Scope& scope,
               const FunctionTable& functions);

  /// Evaluate with the bindings captured at compile time.  Each call is
  /// a fresh epoch (formula slots re-evaluate once per call).
  double evaluate();

  [[nodiscard]] const Module& module() const { return module_; }

 private:
  Module module_;
  std::uint32_t entry_ = 0;
  std::optional<ExecState> state_;  ///< built after module_ is final
};

}  // namespace powerplay::expr
