// parser.hpp — recursive-descent parser for spreadsheet expressions.
//
// Grammar (lowest to highest precedence):
//   expr        := or_expr ('?' expr ':' expr)?
//   or_expr     := and_expr ('||' and_expr)*
//   and_expr    := cmp_expr ('&&' cmp_expr)*
//   cmp_expr    := add_expr (('<'|'<='|'>'|'>='|'=='|'!=') add_expr)?
//   add_expr    := mul_expr (('+'|'-') mul_expr)*
//   mul_expr    := unary (('*'|'/'|'%') unary)*
//   unary       := ('-'|'!') unary | pow_expr
//   pow_expr    := primary ('^' unary)?          // right associative
//   primary     := number | string | ident | ident '(' args ')' | '(' expr ')'
#pragma once

#include <string>

#include "expr/ast.hpp"

namespace powerplay::expr {

/// Parse `source` to an AST.  Throws ExprError with position info on
/// syntax errors, including trailing garbage after a complete expression.
ExprPtr parse(const std::string& source);

}  // namespace powerplay::expr
