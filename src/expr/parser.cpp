#include "expr/parser.hpp"

#include <utility>

#include "expr/lexer.hpp"

namespace powerplay::expr {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ExprPtr parse_all() {
    ExprPtr e = conditional();
    expect(TokenKind::kEnd);
    return e;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }

  Token advance() { return tokens_[pos_++]; }

  bool match(TokenKind kind) {
    if (peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  void expect(TokenKind kind) {
    if (peek().kind != kind) {
      throw ExprError("expected " + token_kind_name(kind) + " but found " +
                      token_kind_name(peek().kind) + " at position " +
                      std::to_string(peek().pos));
    }
    ++pos_;
  }

  static ExprPtr make(Expr e) { return std::make_shared<const Expr>(std::move(e)); }

  ExprPtr conditional() {
    ExprPtr cond = or_expr();
    if (!match(TokenKind::kQuestion)) return cond;
    ExprPtr then_branch = conditional();
    expect(TokenKind::kColon);
    ExprPtr else_branch = conditional();
    return make(Expr{ConditionalNode{std::move(cond), std::move(then_branch),
                                     std::move(else_branch)}});
  }

  ExprPtr or_expr() {
    ExprPtr lhs = and_expr();
    while (match(TokenKind::kOrOr)) {
      lhs = make(Expr{BinaryNode{BinOp::kOr, std::move(lhs), and_expr()}});
    }
    return lhs;
  }

  ExprPtr and_expr() {
    ExprPtr lhs = cmp_expr();
    while (match(TokenKind::kAndAnd)) {
      lhs = make(Expr{BinaryNode{BinOp::kAnd, std::move(lhs), cmp_expr()}});
    }
    return lhs;
  }

  ExprPtr cmp_expr() {
    ExprPtr lhs = add_expr();
    BinOp op;
    switch (peek().kind) {
      case TokenKind::kLess: op = BinOp::kLess; break;
      case TokenKind::kLessEq: op = BinOp::kLessEq; break;
      case TokenKind::kGreater: op = BinOp::kGreater; break;
      case TokenKind::kGreaterEq: op = BinOp::kGreaterEq; break;
      case TokenKind::kEqualEqual: op = BinOp::kEqual; break;
      case TokenKind::kBangEqual: op = BinOp::kNotEqual; break;
      default: return lhs;
    }
    ++pos_;
    return make(Expr{BinaryNode{op, std::move(lhs), add_expr()}});
  }

  ExprPtr add_expr() {
    ExprPtr lhs = mul_expr();
    for (;;) {
      if (match(TokenKind::kPlus)) {
        lhs = make(Expr{BinaryNode{BinOp::kAdd, std::move(lhs), mul_expr()}});
      } else if (match(TokenKind::kMinus)) {
        lhs = make(Expr{BinaryNode{BinOp::kSub, std::move(lhs), mul_expr()}});
      } else {
        return lhs;
      }
    }
  }

  ExprPtr mul_expr() {
    ExprPtr lhs = unary();
    for (;;) {
      if (match(TokenKind::kStar)) {
        lhs = make(Expr{BinaryNode{BinOp::kMul, std::move(lhs), unary()}});
      } else if (match(TokenKind::kSlash)) {
        lhs = make(Expr{BinaryNode{BinOp::kDiv, std::move(lhs), unary()}});
      } else if (match(TokenKind::kPercent)) {
        lhs = make(Expr{BinaryNode{BinOp::kMod, std::move(lhs), unary()}});
      } else {
        return lhs;
      }
    }
  }

  ExprPtr unary() {
    if (match(TokenKind::kMinus)) {
      return make(Expr{UnaryNode{UnOp::kNeg, unary()}});
    }
    if (match(TokenKind::kBang)) {
      return make(Expr{UnaryNode{UnOp::kNot, unary()}});
    }
    return pow_expr();
  }

  ExprPtr pow_expr() {
    ExprPtr base = primary();
    if (match(TokenKind::kCaret)) {
      // Right associative: 2^3^2 == 2^(3^2).  The exponent may itself be
      // a unary expression so that 2^-3 parses.
      return make(Expr{BinaryNode{BinOp::kPow, std::move(base), unary()}});
    }
    return base;
  }

  ExprPtr primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        Token tok = advance();
        return make(Expr{NumberNode{tok.number}});
      }
      case TokenKind::kString: {
        Token tok = advance();
        return make(Expr{StringNode{std::move(tok.text)}});
      }
      case TokenKind::kIdent: {
        Token tok = advance();
        if (match(TokenKind::kLParen)) {
          std::vector<ExprPtr> args;
          if (peek().kind != TokenKind::kRParen) {
            args.push_back(conditional());
            while (match(TokenKind::kComma)) args.push_back(conditional());
          }
          expect(TokenKind::kRParen);
          return make(Expr{CallNode{std::move(tok.text), std::move(args)}});
        }
        return make(Expr{VariableNode{std::move(tok.text)}});
      }
      case TokenKind::kLParen: {
        ++pos_;
        ExprPtr inner = conditional();
        expect(TokenKind::kRParen);
        return inner;
      }
      default:
        throw ExprError("expected expression but found " +
                        token_kind_name(t.kind) + " at position " +
                        std::to_string(t.pos));
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ExprPtr parse(const std::string& source) {
  return Parser(tokenize(source)).parse_all();
}

}  // namespace powerplay::expr
