// ast.hpp — abstract syntax tree for PowerPlay's spreadsheet expressions.
//
// The paper's design sheet allows "any parameter [to] be expressed as a
// function of these parameters".  Expressions over parameter names are the
// substrate of that capability: model parameters, user-defined equation
// models (the "interactive HTML page" model editor), and intermodel
// interaction terms (DC-DC converter load, interconnect area) are all
// parsed to this AST and evaluated against a hierarchical scope.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace powerplay::expr {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Binary operators in precedence groups (see Parser).
enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kPow,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEqual,
  kNotEqual,
  kAnd,
  kOr,
};

/// Unary operators.
enum class UnOp { kNeg, kNot };

struct NumberNode {
  double value;
};

/// A reference to a parameter, resolved against the evaluation scope chain.
struct VariableNode {
  std::string name;
};

/// String literal; only meaningful as a function argument
/// (e.g. rowpower("Read Bank")).
struct StringNode {
  std::string value;
};

struct UnaryNode {
  UnOp op;
  ExprPtr operand;
};

struct BinaryNode {
  BinOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// cond ? a : b, and the if(cond, a, b) builtin lowers to this too.
struct ConditionalNode {
  ExprPtr condition;
  ExprPtr then_branch;
  ExprPtr else_branch;
};

struct CallNode {
  std::string name;
  std::vector<ExprPtr> args;
};

struct Expr {
  std::variant<NumberNode, VariableNode, StringNode, UnaryNode, BinaryNode,
               ConditionalNode, CallNode>
      node;
};

/// Error raised by the lexer, parser or evaluator; carries a
/// human-readable message including source position where available.
class ExprError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Collect every variable name referenced anywhere in `e` (depth first,
/// in order of first appearance, deduplicated).  Used for spreadsheet
/// dependency display and for validating user-defined models.
std::vector<std::string> referenced_variables(const Expr& e);

/// Collect every function name called anywhere in `e` (deduplicated).
std::vector<std::string> referenced_functions(const Expr& e);

/// Render the AST back to a canonical source string (fully parenthesized
/// only where required).  parse(to_source(e)) is semantically `e`.
std::string to_source(const Expr& e);

}  // namespace powerplay::expr
