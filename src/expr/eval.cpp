#include "expr/eval.hpp"

#include <algorithm>
#include <cmath>

#include "expr/parser.hpp"

namespace powerplay::expr {

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

void Scope::set(const std::string& name, double value) {
  bindings_[name] = value;
}

void Scope::set(const std::string& name, ExprPtr formula) {
  bindings_[name] = std::move(formula);
}

void Scope::set_formula(const std::string& name,
                        const std::string& formula_source) {
  bindings_[name] = parse(formula_source);
}

void Scope::erase(const std::string& name) { bindings_.erase(name); }

bool Scope::has_local(const std::string& name) const {
  return bindings_.contains(name);
}

std::vector<std::string> Scope::local_names() const {
  std::vector<std::string> names;
  names.reserve(bindings_.size());
  for (const auto& [name, binding] : bindings_) names.push_back(name);
  return names;
}

std::optional<Scope::Found> Scope::lookup(const std::string& name) const {
  for (const Scope* s = this; s != nullptr; s = s->parent_) {
    auto it = s->bindings_.find(name);
    if (it != s->bindings_.end()) return Found{&it->second, s};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// FunctionTable
// ---------------------------------------------------------------------------

namespace {

double need_number(const Value& v, const char* fn) {
  if (const double* d = std::get_if<double>(&v)) return *d;
  throw ExprError(std::string(fn) + ": expected a numeric argument");
}

void need_arity(const std::vector<Value>& args, std::size_t n,
                const char* fn) {
  if (args.size() != n) {
    throw ExprError(std::string(fn) + ": expected " + std::to_string(n) +
                    " argument(s), got " + std::to_string(args.size()));
  }
}

}  // namespace

const FunctionTable& FunctionTable::builtins() {
  static const FunctionTable table = make_builtins();
  return table;
}

FunctionTable FunctionTable::with_builtins() {
  return FunctionTable(&builtins());
}

FunctionTable FunctionTable::make_builtins() {
  FunctionTable t;
  t.register_function("abs", [](const std::vector<Value>& a) {
    need_arity(a, 1, "abs");
    return std::fabs(need_number(a[0], "abs"));
  });
  t.register_function("sqrt", [](const std::vector<Value>& a) {
    need_arity(a, 1, "sqrt");
    const double x = need_number(a[0], "sqrt");
    if (x < 0) throw ExprError("sqrt: negative argument");
    return std::sqrt(x);
  });
  t.register_function("exp", [](const std::vector<Value>& a) {
    need_arity(a, 1, "exp");
    return std::exp(need_number(a[0], "exp"));
  });
  t.register_function("ln", [](const std::vector<Value>& a) {
    need_arity(a, 1, "ln");
    const double x = need_number(a[0], "ln");
    if (x <= 0) throw ExprError("ln: non-positive argument");
    return std::log(x);
  });
  t.register_function("log2", [](const std::vector<Value>& a) {
    need_arity(a, 1, "log2");
    const double x = need_number(a[0], "log2");
    if (x <= 0) throw ExprError("log2: non-positive argument");
    return std::log2(x);
  });
  t.register_function("log10", [](const std::vector<Value>& a) {
    need_arity(a, 1, "log10");
    const double x = need_number(a[0], "log10");
    if (x <= 0) throw ExprError("log10: non-positive argument");
    return std::log10(x);
  });
  t.register_function("ceil", [](const std::vector<Value>& a) {
    need_arity(a, 1, "ceil");
    return std::ceil(need_number(a[0], "ceil"));
  });
  t.register_function("floor", [](const std::vector<Value>& a) {
    need_arity(a, 1, "floor");
    return std::floor(need_number(a[0], "floor"));
  });
  t.register_function("round", [](const std::vector<Value>& a) {
    need_arity(a, 1, "round");
    return std::round(need_number(a[0], "round"));
  });
  t.register_function("pow", [](const std::vector<Value>& a) {
    need_arity(a, 2, "pow");
    return std::pow(need_number(a[0], "pow"), need_number(a[1], "pow"));
  });
  t.register_function("min", [](const std::vector<Value>& a) {
    if (a.empty()) throw ExprError("min: needs at least one argument");
    double m = need_number(a[0], "min");
    for (std::size_t i = 1; i < a.size(); ++i)
      m = std::min(m, need_number(a[i], "min"));
    return m;
  });
  t.register_function("max", [](const std::vector<Value>& a) {
    if (a.empty()) throw ExprError("max: needs at least one argument");
    double m = need_number(a[0], "max");
    for (std::size_t i = 1; i < a.size(); ++i)
      m = std::max(m, need_number(a[i], "max"));
    return m;
  });
  t.register_function("if", [](const std::vector<Value>& a) {
    need_arity(a, 3, "if");
    return need_number(a[0], "if") != 0.0 ? need_number(a[1], "if")
                                          : need_number(a[2], "if");
  });
  return t;
}

void FunctionTable::register_function(const std::string& name, Function fn) {
  functions_[name] = std::move(fn);
}

bool FunctionTable::contains(const std::string& name) const {
  return functions_.contains(name) ||
         (base_ != nullptr && base_->contains(name));
}

const Function* FunctionTable::find(const std::string& name) const {
  auto it = functions_.find(name);
  if (it != functions_.end()) return &it->second;
  return base_ != nullptr ? base_->find(name) : nullptr;
}

std::vector<std::string> FunctionTable::names() const {
  std::vector<std::string> names;
  if (base_ != nullptr) names = base_->names();
  for (const auto& [name, fn] : functions_) names.push_back(name);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

double Evaluator::evaluate(const Expr& e) { return eval_in(e, *scope_); }

double Evaluator::variable(const std::string& name) {
  return resolve(name, *scope_);
}

double Evaluator::resolve(const std::string& name, const Scope& start) {
  auto found = start.lookup(name);
  if (!found) {
    throw ExprError("unbound parameter '" + name + "'");
  }
  if (const double* literal = std::get_if<double>(found->binding)) {
    return *literal;
  }
  const auto key = std::make_pair(found->owner, name);
  if (std::find(in_flight_.begin(), in_flight_.end(), key) !=
      in_flight_.end()) {
    std::string cycle;
    for (const auto& [scope, nm] : in_flight_) {
      cycle += nm;
      cycle += " -> ";
    }
    cycle += name;
    throw ExprError("circular parameter definition: " + cycle);
  }
  in_flight_.push_back(key);
  const ExprPtr& formula = std::get<ExprPtr>(*found->binding);
  // Evaluate in the owning scope so a macro's formula sees the macro's
  // own overrides first, falling back to ancestors.
  const double result = eval_in(*formula, *found->owner);
  in_flight_.pop_back();
  return result;
}

Value Evaluator::eval_value(const Expr& e, const Scope& scope) {
  if (const auto* s = std::get_if<StringNode>(&e.node)) return s->value;
  return eval_in(e, scope);
}

double Evaluator::eval_in(const Expr& e, const Scope& scope) {
  struct Visitor {
    Evaluator& ev;
    const Scope& scope;

    double operator()(const NumberNode& n) const { return n.value; }

    double operator()(const VariableNode& v) const {
      return ev.resolve(v.name, scope);
    }

    double operator()(const StringNode&) const {
      throw ExprError(
          "string literal used as a number (strings are only valid as "
          "function arguments)");
    }

    double operator()(const UnaryNode& u) const {
      const double x = ev.eval_in(*u.operand, scope);
      switch (u.op) {
        case UnOp::kNeg: return -x;
        case UnOp::kNot: return x == 0.0 ? 1.0 : 0.0;
      }
      throw ExprError("bad unary operator");
    }

    double operator()(const BinaryNode& b) const {
      // Short-circuit logical operators before evaluating the rhs.
      if (b.op == BinOp::kAnd) {
        return ev.eval_in(*b.lhs, scope) != 0.0 &&
                       ev.eval_in(*b.rhs, scope) != 0.0
                   ? 1.0
                   : 0.0;
      }
      if (b.op == BinOp::kOr) {
        return ev.eval_in(*b.lhs, scope) != 0.0 ||
                       ev.eval_in(*b.rhs, scope) != 0.0
                   ? 1.0
                   : 0.0;
      }
      const double l = ev.eval_in(*b.lhs, scope);
      const double r = ev.eval_in(*b.rhs, scope);
      switch (b.op) {
        case BinOp::kAdd: return l + r;
        case BinOp::kSub: return l - r;
        case BinOp::kMul: return l * r;
        case BinOp::kDiv:
          if (r == 0.0) throw ExprError("division by zero");
          return l / r;
        case BinOp::kMod:
          if (r == 0.0) throw ExprError("modulo by zero");
          return std::fmod(l, r);
        case BinOp::kPow: return std::pow(l, r);
        case BinOp::kLess: return l < r ? 1.0 : 0.0;
        case BinOp::kLessEq: return l <= r ? 1.0 : 0.0;
        case BinOp::kGreater: return l > r ? 1.0 : 0.0;
        case BinOp::kGreaterEq: return l >= r ? 1.0 : 0.0;
        case BinOp::kEqual: return l == r ? 1.0 : 0.0;
        case BinOp::kNotEqual: return l != r ? 1.0 : 0.0;
        case BinOp::kAnd:
        case BinOp::kOr: break;  // handled above
      }
      throw ExprError("bad binary operator");
    }

    double operator()(const ConditionalNode& c) const {
      return ev.eval_in(*c.condition, scope) != 0.0
                 ? ev.eval_in(*c.then_branch, scope)
                 : ev.eval_in(*c.else_branch, scope);
    }

    double operator()(const CallNode& c) const {
      const Function* fn = ev.functions_->find(c.name);
      if (fn == nullptr) {
        throw ExprError("unknown function '" + c.name + "'");
      }
      std::vector<Value> args;
      args.reserve(c.args.size());
      for (const ExprPtr& arg : c.args) {
        args.push_back(ev.eval_value(*arg, scope));
      }
      return (*fn)(args);
    }
  };
  return std::visit(Visitor{*this, scope}, e.node);
}

double evaluate(const Expr& e, const Scope& scope,
                const FunctionTable& functions) {
  Evaluator ev(scope, functions);
  return ev.evaluate(e);
}

double evaluate_source(const std::string& source, const Scope& scope,
                       const FunctionTable& functions) {
  return evaluate(*parse(source), scope, functions);
}

}  // namespace powerplay::expr
