#include "expr/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "expr/ast.hpp"

namespace powerplay::expr {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

[[noreturn]] void fail(const std::string& message, std::size_t pos) {
  throw ExprError(message + " at position " + std::to_string(pos));
}

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto push = [&](TokenKind kind, std::size_t pos, std::string text = {}) {
    tokens.push_back(Token{kind, std::move(text), 0.0, pos});
  };

  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      // Number: digits [. digits] [eE [+-] digits].  We scan the extent
      // manually so that "1e-3" is one token but "2e" is an error.
      std::size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) ++j;
      if (j < n && source[j] == '.') {
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(source[j])))
          ++j;
      }
      if (j < n && (source[j] == 'e' || source[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (source[k] == '+' || source[k] == '-')) ++k;
        if (k >= n || !std::isdigit(static_cast<unsigned char>(source[k]))) {
          fail("malformed exponent in number", start);
        }
        while (k < n && std::isdigit(static_cast<unsigned char>(source[k])))
          ++k;
        j = k;
      }
      Token t{TokenKind::kNumber, source.substr(i, j - i), 0.0, start};
      t.number = std::strtod(t.text.c_str(), nullptr);
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }

    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(source[j])) ++j;
      Token t{TokenKind::kIdent, source.substr(i, j - i), 0.0, start};
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }

    if (c == '"') {
      std::string value;
      std::size_t j = i + 1;
      while (j < n && source[j] != '"') {
        if (source[j] == '\\') {
          ++j;
          if (j >= n) fail("unterminated escape in string", start);
          if (source[j] != '"' && source[j] != '\\') {
            fail("unsupported escape in string", j);
          }
        }
        value.push_back(source[j]);
        ++j;
      }
      if (j >= n) fail("unterminated string literal", start);
      tokens.push_back(Token{TokenKind::kString, std::move(value), 0.0, start});
      i = j + 1;
      continue;
    }

    switch (c) {
      case '+': push(TokenKind::kPlus, start); ++i; break;
      case '-': push(TokenKind::kMinus, start); ++i; break;
      case '*': push(TokenKind::kStar, start); ++i; break;
      case '/': push(TokenKind::kSlash, start); ++i; break;
      case '%': push(TokenKind::kPercent, start); ++i; break;
      case '^': push(TokenKind::kCaret, start); ++i; break;
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case ',': push(TokenKind::kComma, start); ++i; break;
      case '?': push(TokenKind::kQuestion, start); ++i; break;
      case ':': push(TokenKind::kColon, start); ++i; break;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kLessEq, start);
          i += 2;
        } else {
          push(TokenKind::kLess, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kGreaterEq, start);
          i += 2;
        } else {
          push(TokenKind::kGreater, start);
          ++i;
        }
        break;
      case '=':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kEqualEqual, start);
          i += 2;
        } else {
          fail("single '=' is not an operator (use '==')", start);
        }
        break;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kBangEqual, start);
          i += 2;
        } else {
          push(TokenKind::kBang, start);
          ++i;
        }
        break;
      case '&':
        if (i + 1 < n && source[i + 1] == '&') {
          push(TokenKind::kAndAnd, start);
          i += 2;
        } else {
          fail("single '&' is not an operator (use '&&')", start);
        }
        break;
      case '|':
        if (i + 1 < n && source[i + 1] == '|') {
          push(TokenKind::kOrOr, start);
          i += 2;
        } else {
          fail("single '|' is not an operator (use '||')", start);
        }
        break;
      default:
        fail(std::string("unexpected character '") + c + "'", start);
    }
  }

  tokens.push_back(Token{TokenKind::kEnd, "", 0.0, n});
  return tokens;
}

std::string token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kNumber: return "number";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kString: return "string";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kEqualEqual: return "'=='";
    case TokenKind::kBangEqual: return "'!='";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

}  // namespace powerplay::expr
