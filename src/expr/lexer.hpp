// lexer.hpp — tokenizer for spreadsheet expressions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace powerplay::expr {

enum class TokenKind {
  kNumber,
  kIdent,
  kString,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kCaret,
  kLParen,
  kRParen,
  kComma,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEqualEqual,
  kBangEqual,
  kBang,
  kAndAnd,
  kOrOr,
  kQuestion,
  kColon,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;    ///< identifier name or string literal contents
  double number = 0;   ///< valid when kind == kNumber
  std::size_t pos = 0; ///< byte offset in the source, for error messages
};

/// Tokenize `source`.  Numbers accept decimal and scientific notation
/// ("253e-15", "2.5", ".5", "1e6").  Identifiers are
/// [A-Za-z_][A-Za-z0-9_.]* — dots are allowed so hierarchical parameter
/// names like "lut.bitwidth" lex as one identifier.  Strings are
/// double-quoted with \" and \\ escapes.  Throws ExprError on malformed
/// input.  The returned vector always ends with a kEnd token.
std::vector<Token> tokenize(const std::string& source);

/// Human-readable token kind name, used in parser diagnostics.
std::string token_kind_name(TokenKind kind);

}  // namespace powerplay::expr
