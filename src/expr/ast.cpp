#include "expr/ast.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

namespace powerplay::expr {

namespace {

void walk(const Expr& e, const std::function<void(const Expr&)>& visit) {
  visit(e);
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, UnaryNode>) {
          walk(*node.operand, visit);
        } else if constexpr (std::is_same_v<T, BinaryNode>) {
          walk(*node.lhs, visit);
          walk(*node.rhs, visit);
        } else if constexpr (std::is_same_v<T, ConditionalNode>) {
          walk(*node.condition, visit);
          walk(*node.then_branch, visit);
          walk(*node.else_branch, visit);
        } else if constexpr (std::is_same_v<T, CallNode>) {
          for (const ExprPtr& arg : node.args) walk(*arg, visit);
        }
      },
      e.node);
}

void push_unique(std::vector<std::string>& out, const std::string& name) {
  if (std::find(out.begin(), out.end(), name) == out.end()) {
    out.push_back(name);
  }
}

int precedence(BinOp op) {
  switch (op) {
    case BinOp::kOr: return 1;
    case BinOp::kAnd: return 2;
    case BinOp::kLess:
    case BinOp::kLessEq:
    case BinOp::kGreater:
    case BinOp::kGreaterEq:
    case BinOp::kEqual:
    case BinOp::kNotEqual: return 3;
    case BinOp::kAdd:
    case BinOp::kSub: return 4;
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod: return 5;
    case BinOp::kPow: return 7;
  }
  return 0;
}

const char* op_text(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return " + ";
    case BinOp::kSub: return " - ";
    case BinOp::kMul: return " * ";
    case BinOp::kDiv: return " / ";
    case BinOp::kMod: return " % ";
    case BinOp::kPow: return "^";
    case BinOp::kLess: return " < ";
    case BinOp::kLessEq: return " <= ";
    case BinOp::kGreater: return " > ";
    case BinOp::kGreaterEq: return " >= ";
    case BinOp::kEqual: return " == ";
    case BinOp::kNotEqual: return " != ";
    case BinOp::kAnd: return " && ";
    case BinOp::kOr: return " || ";
  }
  return "?";
}

std::string format_number(double v) {
  // Shortest round-trippable-ish representation for display.
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string full = buf;
  for (int prec = 1; prec <= 16; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return full;
}

std::string render(const Expr& e, int parent_prec);

std::string render_child(const ExprPtr& e, int parent_prec) {
  return render(*e, parent_prec);
}

std::string render(const Expr& e, int parent_prec) {
  struct Visitor {
    int parent_prec;

    std::string operator()(const NumberNode& n) const {
      return format_number(n.value);
    }
    std::string operator()(const VariableNode& v) const { return v.name; }
    std::string operator()(const StringNode& s) const {
      std::string out = "\"";
      for (char c : s.value) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
    std::string operator()(const UnaryNode& u) const {
      const char* op = u.op == UnOp::kNeg ? "-" : "!";
      std::string inner = render_child(u.operand, 6);
      std::string out = std::string(op) + inner;
      return parent_prec > 6 ? "(" + out + ")" : out;
    }
    std::string operator()(const BinaryNode& b) const {
      const int prec = precedence(b.op);
      // Render children at a precedence that forces parentheses where
      // the grammar would otherwise change meaning: '^' is right
      // associative, comparisons are non-associative (the parser accepts
      // at most one per level, so a comparison child always needs
      // parentheses), everything else is left associative.
      const bool right_assoc = b.op == BinOp::kPow;
      const bool non_assoc =
          b.op == BinOp::kLess || b.op == BinOp::kLessEq ||
          b.op == BinOp::kGreater || b.op == BinOp::kGreaterEq ||
          b.op == BinOp::kEqual || b.op == BinOp::kNotEqual;
      const int lhs_prec = (right_assoc || non_assoc) ? prec + 1 : prec;
      std::string out = render_child(b.lhs, lhs_prec) + op_text(b.op) +
                        render_child(b.rhs, prec + 1);
      return parent_prec > prec ? "(" + out + ")" : out;
    }
    std::string operator()(const ConditionalNode& c) const {
      std::string out = render_child(c.condition, 1) + " ? " +
                        render_child(c.then_branch, 0) + " : " +
                        render_child(c.else_branch, 0);
      return parent_prec > 0 ? "(" + out + ")" : out;
    }
    std::string operator()(const CallNode& c) const {
      std::string out = c.name + "(";
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += render_child(c.args[i], 0);
      }
      out += ")";
      return out;
    }
  };
  return std::visit(Visitor{parent_prec}, e.node);
}

}  // namespace

std::vector<std::string> referenced_variables(const Expr& e) {
  std::vector<std::string> out;
  walk(e, [&](const Expr& node) {
    if (const auto* v = std::get_if<VariableNode>(&node.node)) {
      push_unique(out, v->name);
    }
  });
  return out;
}

std::vector<std::string> referenced_functions(const Expr& e) {
  std::vector<std::string> out;
  walk(e, [&](const Expr& node) {
    if (const auto* c = std::get_if<CallNode>(&node.node)) {
      push_unique(out, c->name);
    }
  });
  return out;
}

std::string to_source(const Expr& e) { return render(e, 0); }

}  // namespace powerplay::expr
