// eval.hpp — hierarchical scopes and expression evaluation.
//
// Scopes mirror the paper's design hierarchy: the top-level design sheet
// holds global parameters (supply voltage, clock frequency, technology
// constants); each subcircuit row has its own scope whose parent is the
// design scope, so "subcircuits may be defined to inherit global
// parameters" falls out of plain chained lookup.  A binding may be a
// literal number or another expression; expressions are evaluated in the
// scope where the binding was found, so a macro's internal formulas see
// the instantiation's parameter overrides.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "expr/ast.hpp"

namespace powerplay::expr {

/// A function argument value: spreadsheet cells are numbers, but sheet
/// extension functions (rowpower("Read Bank")) take string arguments.
using Value = std::variant<double, std::string>;

/// Extension function: receives evaluated arguments, returns a number.
using Function = std::function<double(const std::vector<Value>&)>;

/// One level of the parameter hierarchy.
class Scope {
 public:
  Scope() = default;
  explicit Scope(const Scope* parent) : parent_(parent) {}

  /// Bind `name` to a literal value, replacing any previous local binding.
  void set(const std::string& name, double value);

  /// Bind `name` to an expression (parsed lazily elsewhere); the
  /// expression is evaluated in *this* scope when the name is read.
  void set(const std::string& name, ExprPtr formula);

  /// Parse `formula_source` and bind it.  Throws ExprError on bad syntax.
  void set_formula(const std::string& name, const std::string& formula_source);

  /// Remove a local binding if present.
  void erase(const std::string& name);

  [[nodiscard]] bool has_local(const std::string& name) const;

  /// Names bound locally (sorted).
  [[nodiscard]] std::vector<std::string> local_names() const;

  [[nodiscard]] const Scope* parent() const { return parent_; }
  void set_parent(const Scope* parent) { parent_ = parent; }

  using Binding = std::variant<double, ExprPtr>;

  /// Find the binding and the scope that owns it, walking up the chain.
  struct Found {
    const Binding* binding;
    const Scope* owner;
  };
  [[nodiscard]] std::optional<Found> lookup(const std::string& name) const;

 private:
  const Scope* parent_ = nullptr;
  std::map<std::string, Binding> bindings_;
};

/// Registry of callable functions.  A fresh table starts with the math
/// builtins (abs, min, max, pow, sqrt, exp, ln, log2, log10, ceil, floor,
/// round, if); the sheet engine registers its intermodel functions
/// (rowpower, rowarea, totalpower, totalarea) on top.
class FunctionTable {
 public:
  FunctionTable() = default;

  /// Layered table: lookups check local registrations first, then fall
  /// through to `base`, which must outlive this table.
  explicit FunctionTable(const FunctionTable* base) : base_(base) {}

  /// The immutable math-builtin table, built once per process and
  /// shared.  Layer per-design functions over it (the constructor
  /// above) instead of re-creating a dozen std::functions per Play.
  static const FunctionTable& builtins();

  /// Table preloaded with the math builtins — a cheap layer over
  /// builtins(), not a fresh copy.
  static FunctionTable with_builtins();

  void register_function(const std::string& name, Function fn);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const Function* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  static FunctionTable make_builtins();

  const FunctionTable* base_ = nullptr;
  std::map<std::string, Function> functions_;
};

/// Evaluation context: scope + functions + cycle detection state.
/// Create one per evaluation "session" (e.g. one Play press); it is cheap.
class Evaluator {
 public:
  Evaluator(const Scope& scope, const FunctionTable& functions)
      : scope_(&scope), functions_(&functions) {}

  /// Evaluate an AST against the context's scope.  Throws ExprError on
  /// unbound variables, unknown functions, arity errors, and circular
  /// parameter definitions (with the cycle spelled out in the message).
  double evaluate(const Expr& e);

  /// Convenience: resolve a variable exactly as a VariableNode would.
  double variable(const std::string& name);

 private:
  double eval_in(const Expr& e, const Scope& scope);
  double resolve(const std::string& name, const Scope& start);
  Value eval_value(const Expr& e, const Scope& scope);

  const Scope* scope_;
  const FunctionTable* functions_;
  // (owner scope, name) pairs currently being resolved — a repeat is a cycle.
  std::vector<std::pair<const Scope*, std::string>> in_flight_;
};

/// One-shot helpers.
double evaluate(const Expr& e, const Scope& scope,
                const FunctionTable& functions);
double evaluate_source(const std::string& source, const Scope& scope,
                       const FunctionTable& functions);

}  // namespace powerplay::expr
