#include "expr/compile.hpp"

#include <cmath>
#include <cstring>
#include <utility>

namespace powerplay::expr {

// ---------------------------------------------------------------------------
// ExecState
// ---------------------------------------------------------------------------

ExecState::ExecState(const Module& module)
    : module_(&module),
      values_(module.slots.size(), 0.0),
      stamp_(module.slots.size(), 0),
      overridden_(module.slots.size(), 0),
      in_flight_(module.slots.size(), 0),
      domain_epoch_(module.domain_count, 1) {
  for (std::size_t i = 0; i < module.slots.size(); ++i) {
    if (module.slots[i].kind == SlotKind::kValue) {
      values_[i] = module.slots[i].initial;
    }
  }
  stack_.reserve(32);
  flight_order_.reserve(8);
}

void ExecState::bind(SlotId slot, double value) {
  values_[slot] = value;
  overridden_[slot] = 1;
}

void ExecState::rebind_value(SlotId slot, double value) {
  values_[slot] = value;
  overridden_[slot] = 0;
}

double ExecState::slot_value(SlotId slot) {
  if (overridden_[slot]) return values_[slot];
  const SlotInfo& info = module_->slots[slot];
  switch (info.kind) {
    case SlotKind::kValue:
      return values_[slot];
    case SlotKind::kFormula:
      return formula_value(slot);
    case SlotKind::kUnbound:
      break;
  }
  throw ExprError("unbound parameter '" + info.name + "'");
}

double ExecState::formula_value(SlotId slot) {
  const SlotInfo& info = module_->slots[slot];
  const std::uint32_t epoch = domain_epoch_[info.domain];
  if (stamp_[slot] == epoch) return values_[slot];
  if (in_flight_[slot]) {
    // Same chain format as Evaluator::resolve: every in-flight name in
    // resolution order, then the repeated name.
    std::string cycle;
    for (const SlotId s : flight_order_) {
      cycle += module_->slots[s].name;
      cycle += " -> ";
    }
    cycle += info.name;
    throw ExprError("circular parameter definition: " + cycle);
  }
  in_flight_[slot] = 1;
  flight_order_.push_back(slot);
  double result;
  try {
    result = run(module_->programs[info.program]);
  } catch (...) {
    // The tree walk leaves its in-flight list dirty on throw, but its
    // Evaluator dies with the exception; this state is reused across
    // evaluations, so unwind cleanly.
    in_flight_[slot] = 0;
    flight_order_.pop_back();
    throw;
  }
  in_flight_[slot] = 0;
  flight_order_.pop_back();
  values_[slot] = result;
  stamp_[slot] = epoch;
  return result;
}

double ExecState::run(const Program& p) {
  const std::size_t base = stack_.size();
  try {
    const Instr* code = p.code.data();
    const auto n = static_cast<std::uint32_t>(p.code.size());
    for (std::uint32_t pc = 0; pc < n;) {
      const Instr ins = code[pc];
      switch (ins.op) {
        case Op::kConst:
          stack_.push_back(module_->constants[ins.a]);
          ++pc;
          break;
        case Op::kSlot:
          stack_.push_back(slot_value(ins.a));
          ++pc;
          break;
        case Op::kThrow:
          throw ExprError(module_->messages[ins.a]);
        case Op::kNeg:
          stack_.back() = -stack_.back();
          ++pc;
          break;
        case Op::kNot:
          stack_.back() = stack_.back() == 0.0 ? 1.0 : 0.0;
          ++pc;
          break;
        case Op::kAdd: {
          const double r = stack_.back();
          stack_.pop_back();
          stack_.back() += r;
          ++pc;
          break;
        }
        case Op::kSub: {
          const double r = stack_.back();
          stack_.pop_back();
          stack_.back() -= r;
          ++pc;
          break;
        }
        case Op::kMul: {
          const double r = stack_.back();
          stack_.pop_back();
          stack_.back() *= r;
          ++pc;
          break;
        }
        case Op::kDiv: {
          const double r = stack_.back();
          stack_.pop_back();
          if (r == 0.0) throw ExprError("division by zero");
          stack_.back() /= r;
          ++pc;
          break;
        }
        case Op::kMod: {
          const double r = stack_.back();
          stack_.pop_back();
          if (r == 0.0) throw ExprError("modulo by zero");
          stack_.back() = std::fmod(stack_.back(), r);
          ++pc;
          break;
        }
        case Op::kPow: {
          const double r = stack_.back();
          stack_.pop_back();
          stack_.back() = std::pow(stack_.back(), r);
          ++pc;
          break;
        }
        case Op::kLess: {
          const double r = stack_.back();
          stack_.pop_back();
          stack_.back() = stack_.back() < r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kLessEq: {
          const double r = stack_.back();
          stack_.pop_back();
          stack_.back() = stack_.back() <= r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kGreater: {
          const double r = stack_.back();
          stack_.pop_back();
          stack_.back() = stack_.back() > r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kGreaterEq: {
          const double r = stack_.back();
          stack_.pop_back();
          stack_.back() = stack_.back() >= r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kEqual: {
          const double r = stack_.back();
          stack_.pop_back();
          stack_.back() = stack_.back() == r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kNotEqual: {
          const double r = stack_.back();
          stack_.pop_back();
          stack_.back() = stack_.back() != r ? 1.0 : 0.0;
          ++pc;
          break;
        }
        case Op::kJump:
          pc = ins.a;
          break;
        case Op::kJumpIfZero: {
          const double v = stack_.back();
          stack_.pop_back();
          pc = v == 0.0 ? ins.a : pc + 1;
          break;
        }
        case Op::kCall: {
          const CallSite& site = module_->call_sites[ins.a];
          std::vector<Value> args;
          args.reserve(site.args.size());
          const std::size_t argbase = stack_.size() - site.numeric_argc;
          std::size_t next = argbase;
          for (const CallArg& a : site.args) {
            if (a.is_string) {
              args.emplace_back(module_->strings[a.string_index]);
            } else {
              args.emplace_back(stack_[next++]);
            }
          }
          stack_.resize(argbase);
          stack_.push_back(module_->functions[site.function](args));
          ++pc;
          break;
        }
        case Op::kExt:
          stack_.push_back(ext_(ext_ctx_, ins.a, ins.b));
          ++pc;
          break;
      }
    }
    const double result = stack_.back();
    stack_.resize(base);
    return result;
  } catch (...) {
    stack_.resize(base);
    throw;
  }
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

std::uint32_t Compiler::add_program(const Expr& e) {
  // Build before taking the index: compiling may reserve program slots
  // for referenced formulas (the variable hook grows the pool).
  Program p = build(e);
  const auto index = static_cast<std::uint32_t>(module_->programs.size());
  module_->programs.push_back(std::move(p));
  return index;
}

Program Compiler::build(const Expr& e) {
  code_.clear();
  compile(e);
  Program p{std::move(code_)};
  code_.clear();
  return p;
}

void Compiler::emit(Op op, std::uint32_t a, std::uint32_t b) {
  code_.push_back(Instr{op, a, b});
}

void Compiler::emit_const(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  auto [it, inserted] = const_pool_.try_emplace(
      bits, static_cast<std::uint32_t>(module_->constants.size()));
  if (inserted) module_->constants.push_back(v);
  emit(Op::kConst, it->second);
}

void Compiler::emit_throw(const std::string& message) {
  const auto index = static_cast<std::uint32_t>(module_->messages.size());
  module_->messages.push_back(message);
  emit(Op::kThrow, index);
}

std::uint32_t Compiler::intern_string(const std::string& s) {
  for (std::size_t i = 0; i < module_->strings.size(); ++i) {
    if (module_->strings[i] == s) return static_cast<std::uint32_t>(i);
  }
  module_->strings.push_back(s);
  return static_cast<std::uint32_t>(module_->strings.size() - 1);
}

std::uint32_t Compiler::here() const {
  return static_cast<std::uint32_t>(code_.size());
}

void Compiler::patch(std::uint32_t jump_instr) { code_[jump_instr].a = here(); }

std::optional<double> Compiler::fold(const Expr& e) {
  return std::visit(
      [this](const auto& node) -> std::optional<double> {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberNode>) {
          return node.value;
        } else if constexpr (std::is_same_v<T, UnaryNode>) {
          const auto x = fold(*node.operand);
          if (!x) return std::nullopt;
          switch (node.op) {
            case UnOp::kNeg: return -*x;
            case UnOp::kNot: return *x == 0.0 ? 1.0 : 0.0;
          }
          return std::nullopt;
        } else if constexpr (std::is_same_v<T, BinaryNode>) {
          const auto l = fold(*node.lhs);
          // Short-circuit folding mirrors the evaluator's laziness: a
          // statically-false && (or statically-true ||) never observes
          // the rhs, so rhs errors must stay silent.
          if (node.op == BinOp::kAnd) {
            if (!l) return std::nullopt;
            if (*l == 0.0) return 0.0;
            const auto r = fold(*node.rhs);
            if (!r) return std::nullopt;
            return *r != 0.0 ? 1.0 : 0.0;
          }
          if (node.op == BinOp::kOr) {
            if (!l) return std::nullopt;
            if (*l != 0.0) return 1.0;
            const auto r = fold(*node.rhs);
            if (!r) return std::nullopt;
            return *r != 0.0 ? 1.0 : 0.0;
          }
          const auto r = fold(*node.rhs);
          if (!l || !r) return std::nullopt;
          switch (node.op) {
            case BinOp::kAdd: return *l + *r;
            case BinOp::kSub: return *l - *r;
            case BinOp::kMul: return *l * *r;
            case BinOp::kDiv:
              // Folding 1/0 would turn a lazy runtime error into
              // something else; leave it to the emitted kDiv.
              if (*r == 0.0) return std::nullopt;
              return *l / *r;
            case BinOp::kMod:
              if (*r == 0.0) return std::nullopt;
              return std::fmod(*l, *r);
            case BinOp::kPow: return std::pow(*l, *r);
            case BinOp::kLess: return *l < *r ? 1.0 : 0.0;
            case BinOp::kLessEq: return *l <= *r ? 1.0 : 0.0;
            case BinOp::kGreater: return *l > *r ? 1.0 : 0.0;
            case BinOp::kGreaterEq: return *l >= *r ? 1.0 : 0.0;
            case BinOp::kEqual: return *l == *r ? 1.0 : 0.0;
            case BinOp::kNotEqual: return *l != *r ? 1.0 : 0.0;
            case BinOp::kAnd:
            case BinOp::kOr: break;  // handled above
          }
          return std::nullopt;
        } else if constexpr (std::is_same_v<T, ConditionalNode>) {
          const auto c = fold(*node.condition);
          if (!c) return std::nullopt;
          return fold(*c != 0.0 ? *node.then_branch : *node.else_branch);
        } else {
          // Variables, calls and strings never fold: their value (or
          // error) depends on run-time state.
          return std::nullopt;
        }
      },
      e.node);
}

void Compiler::compile(const Expr& e) {
  if (const auto folded = fold(e)) {
    emit_const(*folded);
    return;
  }
  std::visit(
      [this](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberNode>) {
          emit_const(node.value);  // unreachable: fold() handles it
        } else if constexpr (std::is_same_v<T, VariableNode>) {
          emit(Op::kSlot, hooks_.variable(node.name));
        } else if constexpr (std::is_same_v<T, StringNode>) {
          emit_throw(
              "string literal used as a number (strings are only valid as "
              "function arguments)");
        } else if constexpr (std::is_same_v<T, UnaryNode>) {
          compile(*node.operand);
          emit(node.op == UnOp::kNeg ? Op::kNeg : Op::kNot);
        } else if constexpr (std::is_same_v<T, BinaryNode>) {
          compile_binary(node);
        } else if constexpr (std::is_same_v<T, ConditionalNode>) {
          if (const auto c = fold(*node.condition)) {
            // Constant condition: only the taken branch exists at run
            // time, exactly the branch the tree walk would enter.
            compile(*c != 0.0 ? *node.then_branch : *node.else_branch);
            return;
          }
          compile(*node.condition);
          const std::uint32_t to_else = here();
          emit(Op::kJumpIfZero);
          compile(*node.then_branch);
          const std::uint32_t to_end = here();
          emit(Op::kJump);
          patch(to_else);
          compile(*node.else_branch);
          patch(to_end);
        } else if constexpr (std::is_same_v<T, CallNode>) {
          compile_call(node);
        }
      },
      e.node);
}

void Compiler::compile_binary(const BinaryNode& b) {
  if (b.op == BinOp::kAnd || b.op == BinOp::kOr) {
    // Lower to jumps that reproduce the evaluator's short-circuit:
    // the rhs only runs (and only raises errors) when the lhs demands.
    std::vector<std::uint32_t> to_false;
    std::uint32_t to_end_true = 0;
    bool have_true_exit = false;
    if (const auto l = fold(*b.lhs)) {
      // fold(whole) failed, so the lhs constant selects the rhs path:
      // And with non-zero lhs / Or with zero lhs reduce to rhs != 0.
      (void)l;
    } else {
      compile(*b.lhs);
      if (b.op == BinOp::kAnd) {
        to_false.push_back(here());
        emit(Op::kJumpIfZero);
      } else {
        const std::uint32_t to_rhs = here();
        emit(Op::kJumpIfZero);
        emit_const(1.0);
        to_end_true = here();
        have_true_exit = true;
        emit(Op::kJump);
        patch(to_rhs);
      }
    }
    compile(*b.rhs);
    to_false.push_back(here());
    emit(Op::kJumpIfZero);
    emit_const(1.0);
    const std::uint32_t to_end = here();
    emit(Op::kJump);
    for (const std::uint32_t j : to_false) patch(j);
    emit_const(0.0);
    patch(to_end);
    if (have_true_exit) {
      // The early-true exit of || jumps past the 0.0 tail to the same
      // join point; patch() above already aimed to_end there.
      code_[to_end_true].a = code_[to_end].a;
    }
    return;
  }
  compile(*b.lhs);
  compile(*b.rhs);
  switch (b.op) {
    case BinOp::kAdd: emit(Op::kAdd); break;
    case BinOp::kSub: emit(Op::kSub); break;
    case BinOp::kMul: emit(Op::kMul); break;
    case BinOp::kDiv: emit(Op::kDiv); break;
    case BinOp::kMod: emit(Op::kMod); break;
    case BinOp::kPow: emit(Op::kPow); break;
    case BinOp::kLess: emit(Op::kLess); break;
    case BinOp::kLessEq: emit(Op::kLessEq); break;
    case BinOp::kGreater: emit(Op::kGreater); break;
    case BinOp::kGreaterEq: emit(Op::kGreaterEq); break;
    case BinOp::kEqual: emit(Op::kEqual); break;
    case BinOp::kNotEqual: emit(Op::kNotEqual); break;
    case BinOp::kAnd:
    case BinOp::kOr: break;  // handled above
  }
}

void Compiler::compile_call(const CallNode& c) {
  if (hooks_.special_call && hooks_.special_call(c)) return;
  const auto function = hooks_.function ? hooks_.function(c.name)
                                        : std::optional<std::uint32_t>{};
  if (!function) {
    // The tree walk throws before evaluating any argument; so do we.
    emit_throw("unknown function '" + c.name + "'");
    return;
  }
  CallSite site;
  site.function = *function;
  site.args.reserve(c.args.size());
  for (const ExprPtr& arg : c.args) {
    if (const auto* s = std::get_if<StringNode>(&arg->node)) {
      // Only a *direct* string literal is a string argument, exactly
      // like Evaluator::eval_value.
      site.args.push_back(CallArg{true, intern_string(s->value)});
    } else {
      compile(*arg);
      site.args.push_back(CallArg{false, 0});
      ++site.numeric_argc;
    }
  }
  const auto index = static_cast<std::uint32_t>(module_->call_sites.size());
  module_->call_sites.push_back(std::move(site));
  emit(Op::kCall, index);
}

// ---------------------------------------------------------------------------
// CompiledExpr
// ---------------------------------------------------------------------------

CompiledExpr::CompiledExpr(const Expr& e, const Scope& scope,
                           const FunctionTable& functions) {
  struct Pending {
    std::uint32_t program;
    ExprPtr formula;
    const Scope* owner;
  };
  // Slot identity is (owning scope, name) — the evaluator's cycle key —
  // so two contexts that resolve a name to the same binding share a
  // slot; unbound names key on the lookup context instead.
  std::map<std::pair<const void*, std::string>, SlotId> interned;
  std::map<std::string, std::uint32_t> fn_index;
  std::vector<Pending> pending;

  const auto make_hooks = [&](const Scope* context) {
    Compiler::Hooks hooks;
    hooks.variable = [this, &interned, &pending,
                      context](const std::string& name) -> SlotId {
      const auto found = context->lookup(name);
      const void* key_scope =
          found ? static_cast<const void*>(found->owner)
                : static_cast<const void*>(context);
      const auto key = std::make_pair(key_scope, name);
      if (const auto it = interned.find(key); it != interned.end()) {
        return it->second;
      }
      const auto id = static_cast<SlotId>(module_.slots.size());
      SlotInfo info;
      info.name = name;
      if (!found) {
        info.kind = SlotKind::kUnbound;
      } else if (const double* literal = std::get_if<double>(found->binding)) {
        info.kind = SlotKind::kValue;
        info.initial = *literal;
      } else {
        info.kind = SlotKind::kFormula;
        info.program = static_cast<std::uint32_t>(module_.programs.size());
        module_.programs.emplace_back();  // reserved, filled from `pending`
        pending.push_back(Pending{info.program,
                                  std::get<ExprPtr>(*found->binding),
                                  found->owner});
      }
      module_.slots.push_back(std::move(info));
      interned.emplace(key, id);
      return id;
    };
    hooks.function = [this, &fn_index, &functions](const std::string& name)
        -> std::optional<std::uint32_t> {
      if (const auto it = fn_index.find(name); it != fn_index.end()) {
        return it->second;
      }
      const Function* fn = functions.find(name);
      if (fn == nullptr) return std::nullopt;
      const auto index = static_cast<std::uint32_t>(module_.functions.size());
      module_.functions.push_back(*fn);
      fn_index.emplace(name, index);
      return index;
    };
    return hooks;
  };

  {
    Compiler compiler(module_, make_hooks(&scope));
    entry_ = compiler.add_program(e);
  }
  while (!pending.empty()) {
    const Pending p = std::move(pending.back());
    pending.pop_back();
    // Formulas compile (and at run time evaluate) in their owning
    // scope, so a parent-scope formula does not see leaf overrides —
    // same resolution rule as Evaluator::resolve.
    Compiler compiler(module_, make_hooks(p.owner));
    module_.programs[p.program] = compiler.build(*p.formula);
  }
  state_.emplace(module_);
}

double CompiledExpr::evaluate() {
  for (std::uint32_t d = 0; d < module_.domain_count; ++d) {
    state_->begin_epoch(d);
  }
  return state_->run_program(entry_);
}

}  // namespace powerplay::expr
