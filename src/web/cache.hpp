// cache.hpp — fingerprint-keyed cache of rendered GET responses.
//
// The serving hot loop used to re-load, re-Play and re-render a design
// page on every hit.  This cache keys each cacheable GET by its route +
// canonical query and remembers the library revision (and, for
// design-scoped pages, the design's content fingerprint) it was
// rendered at:
//
//   - revision match            → serve the cached bytes outright;
//   - revision mismatch, but a design-scoped entry whose design still
//     fingerprints identically  → the commit touched something else;
//     refresh the entry's revision instead of re-rendering (the app
//     performs the fingerprint check — it owns the store);
//   - otherwise                 → re-render and replace.
//
// Every cached 200 carries a strong ETag (FNV-1a over status, media
// type and body), so a client that presents If-None-Match gets a 304
// without a byte of body moving.  Entries are LRU-bounded by count and
// total body bytes.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "web/http.hpp"

namespace powerplay::web {

struct ResponseCacheOptions {
  std::size_t max_entries = 256;
  std::size_t max_bytes = 8u << 20;  ///< sum of cached body bytes
};

/// Counters for /healthz.
struct ResponseCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;     ///< responses_cached
  std::uint64_t revalidations = 0;  ///< refreshed via fingerprint match
  std::uint64_t not_modified = 0;   ///< 304s answered from an ETag match
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

class ResponseCache {
 public:
  struct Entry {
    Response response;           ///< includes the etag header
    std::string etag;            ///< strong, quoted
    std::uint64_t revision = 0;  ///< library revision at render
    std::uint64_t model_revision = 0;  ///< registry generation at render
    std::string design;          ///< design this page depends on, if any
    std::uint64_t design_fp = 0; ///< fingerprint(design) at render
  };

  explicit ResponseCache(ResponseCacheOptions options = {});

  /// Copy of the entry under `key`, regardless of staleness (the caller
  /// revalidates against the current revision/fingerprint).
  [[nodiscard]] std::optional<Entry> find(const std::string& key);

  /// Mark the entry current again after a successful fingerprint
  /// revalidation (no re-render happened).
  void refresh(const std::string& key, std::uint64_t revision);

  void insert(const std::string& key, Entry entry);

  /// Strong quoted ETag over the bytes a client would observe.
  static std::string make_etag(const Response& response);

  // Stats hooks the app calls on its own cache decisions (hit / miss /
  // 304 are app-level outcomes; the cache only sees find/insert).
  void count_hit();
  void count_miss();
  void count_revalidation();
  void count_not_modified();

  [[nodiscard]] ResponseCacheStats stats() const;

 private:
  void evict_locked();

  ResponseCacheOptions options_;
  mutable std::mutex mutex_;
  /// LRU list of keys, most recent first; map values point into it.
  std::list<std::string> order_;
  struct Slot {
    Entry entry;
    std::list<std::string>::iterator lru;
  };
  std::unordered_map<std::string, Slot> entries_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t revalidations_ = 0;
  std::uint64_t not_modified_ = 0;
  std::uint64_t evictions_ = 0;
};

/// True when the request's If-None-Match header matches `etag` (exact
/// entry in a comma-separated list, or "*").
bool if_none_match(const Request& request, const std::string& etag);

}  // namespace powerplay::web
