// federation.hpp — the federated model network (Figures 6 and 7 at
// scale).
//
// The paper's networking claim is that models characterized at sites B
// and C are transparently usable from site A.  RemoteLibrary realizes
// that for exactly one peer; FederatedLibrary generalizes it to N model
// hosts queried *concurrently* from one poll-based fan-out loop (the
// pazpar2 metasearch shape: one event loop, one connection state
// machine per host, merged and ranked results), and — the hard part —
// stays correct and responsive when part of the federation is down:
//
//   health scoring     per-host EWMA latency and error rate plus a
//                      recent-latency p95 window; scores rank hosts for
//                      fetch routing and feed the per-host
//                      CircuitBreaker (skip-with-status, never
//                      fail-closed)
//   deadline           the inbound request's Deadline propagates into
//   propagation        every outbound connect/read, so a federated
//                      call can never outlive its caller's I/O budget
//   hedged requests    a fetch that exceeds the chosen host's p95-based
//                      hedge delay fires a duplicate to the
//                      next-healthiest host; first response wins
//   bounded in-flight  each host carries at most max_in_flight
//                      concurrent requests; excess attempts degrade
//                      instead of queueing without bound
//   partial results    fan-out search returns the survivors' merged
//                      results with per-host status (served / degraded
//                      / skipped-open-breaker) instead of failing
//                      closed
//   stale-while-       a background sync job mirrors remote model
//   revalidate         definitions locally (via the mirror sink, which
//                      the app wires into its journaled LibraryStore),
//                      stamped with sync time; through a partition the
//                      mirror keeps search and sweeps working, with the
//                      staleness surfaced in every response
//
// Hosts added by port use real sockets driven by the shared poll loop;
// hosts added with an injected Transport (FaultTransport chaos rigs,
// FunctionTransport benches) run deterministically in registration
// order with the same deadline, breaker, and status accounting, so the
// chaos suite replays bit-identical schedules.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "model/user_model.hpp"
#include "web/client.hpp"
#include "web/remote.hpp"

namespace powerplay::web {

/// How one host fared in one federated operation.
enum class HostStatus {
  kServed,       ///< answered within the deadline
  kDegraded,     ///< failed, timed out, or over its in-flight bound
  kSkippedOpen,  ///< circuit breaker open: not even attempted
};
std::string to_string(HostStatus status);

/// Federation tuning.  Defaults suit tests and small sites.
struct FederationOptions {
  BreakerOptions breaker{};     ///< per-host breaker thresholds
  double ewma_alpha = 0.2;      ///< latency/error EWMA smoothing
  std::size_t max_in_flight = 4;  ///< concurrent requests per host
  /// Hedge a fetch when the primary host has been silent longer than
  /// max(hedge_min_delay, hedge_p95_factor * its p95 latency).
  double hedge_p95_factor = 1.5;
  std::chrono::milliseconds hedge_min_delay{20};
  /// Outbound budget when the caller's deadline is unbounded.
  std::chrono::milliseconds default_deadline{2000};
  /// Background mirror-sync cadence.
  std::chrono::milliseconds sync_interval{5000};
  /// Virtual clock for breaker state + staleness stamps (tests).
  CircuitBreaker::Clock clock;
};

/// Health + traffic counters for one host (the /fed/hosts page).
struct FedHostStats {
  std::string key;              ///< "127.0.0.1:port" or the injected name
  CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
  double ewma_latency_ms = 0;
  double p95_latency_ms = 0;
  double error_rate = 0;        ///< EWMA of failure indicator, in [0,1]
  double health = 0;            ///< ranking score, higher is better
  std::size_t in_flight = 0;
  std::uint64_t requests = 0;   ///< attempts actually sent
  std::uint64_t failures = 0;
  std::uint64_t hedges = 0;     ///< hedge attempts aimed at this host
  std::uint64_t hedge_wins = 0; ///< hedges whose response won
  std::uint64_t skipped_open = 0;
  std::size_t mirrored_models = 0;
  bool synced = false;          ///< at least one successful mirror sync
  std::uint64_t staleness_ms = 0;  ///< time since the last good sync
};

/// Per-host verdict attached to every federated result.
struct FedHostOutcome {
  std::string host;
  HostStatus status = HostStatus::kServed;
  std::string error;        ///< why, when degraded
  double latency_ms = 0;
  bool hedged = false;      ///< a hedge was fired while waiting on it
  std::size_t items = 0;    ///< names this host contributed to the merge
  bool stale = false;       ///< contribution served from the local mirror
};

/// One merged search hit.
struct FedModelEntry {
  std::string name;
  int replicas = 0;   ///< hosts believed to hold it (fresh + mirrored)
  bool stale = false; ///< only known via the mirror of unreachable hosts
};

/// Fan-out search result: always a result, never fail-closed.  `hosts`
/// is sorted by host key so rendered bytes are independent of network
/// completion order.
struct FedSearchResult {
  std::vector<FedModelEntry> models;
  std::vector<FedHostOutcome> hosts;
  bool partial = false;  ///< at least one host degraded or skipped
  bool stale = false;    ///< at least one entry served from the mirror
};

/// Federated fetch result.
struct FedFetchResult {
  model::UserModelDefinition def;
  std::string origin;        ///< host that answered (or mirror source)
  bool hedged = false;       ///< a hedge request was fired
  bool hedge_won = false;    ///< ...and its response is the one returned
  bool from_mirror = false;  ///< every live host failed; stale local copy
  std::uint64_t staleness_ms = 0;  ///< mirror age when from_mirror
};

/// Aggregate counters for /healthz.
struct FederationStats {
  std::size_t hosts = 0;
  std::size_t hosts_available = 0;  ///< breaker not open
  std::uint64_t searches = 0;
  std::uint64_t fetches = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t partial_results = 0;
  std::uint64_t degraded_seen = 0;   ///< host-outcomes marked degraded
  std::uint64_t skipped_open = 0;    ///< host-outcomes skipped on breaker
  std::uint64_t sync_runs = 0;
  std::uint64_t sync_models = 0;     ///< new/changed defs mirrored
  std::uint64_t sync_failures = 0;
  std::uint64_t mirror_serves = 0;   ///< fetches answered from the mirror
};

/// "host:port" (loopback only, like every socket in this codebase) ->
/// port.  Throws HttpError with a usable message otherwise.
std::uint16_t parse_peer_spec(const std::string& spec);

class FederatedLibrary {
 public:
  explicit FederatedLibrary(FederationOptions options = {});
  ~FederatedLibrary();

  FederatedLibrary(const FederatedLibrary&) = delete;
  FederatedLibrary& operator=(const FederatedLibrary&) = delete;

  /// Where mirrored model definitions go (the app wires a sink that
  /// journals them into its LibraryStore and registers them, so synced
  /// models survive crashes and partitions).  Called once per new or
  /// changed definition, never under internal locks.
  using MirrorSink = std::function<void(const model::UserModelDefinition&)>;
  void set_mirror_sink(MirrorSink sink);

  // --- membership ------------------------------------------------------
  /// Socket-backed peer at 127.0.0.1:`port`, driven by the poll loop.
  void add_host(std::uint16_t port);
  /// Transport-backed peer (chaos tests, in-process benches), driven
  /// synchronously in registration order.
  void add_host(const std::string& key, std::shared_ptr<Transport> transport);
  /// Forget a host.  Its mirrored definitions stay wherever the sink
  /// put them (removal never destroys local data); its mirror entries
  /// stop contributing to searches.  False if unknown.
  bool remove_host(const std::string& key);
  [[nodiscard]] std::vector<FedHostStats> hosts() const;
  [[nodiscard]] std::size_t host_count() const;

  // --- federated operations -------------------------------------------
  /// Fan out to every breaker-permitted host, merge and rank the union
  /// of their model lists (dedup by name; ranked by replica count, then
  /// name).  `query` filters by substring ("" = everything).  Degraded
  /// and skipped hosts contribute their mirrored names, marked stale.
  FedSearchResult search(const std::string& query, const Deadline& deadline);

  /// Fetch one model from the healthiest host holding it, hedging to
  /// the next-healthiest when the primary exceeds its hedge delay, then
  /// failing over down the health ranking, and finally serving the
  /// local mirror (stale-while-revalidate) when every live host fails.
  /// Throws HttpError only when no host answers AND no mirror copy
  /// exists.  A fresh fetch also refreshes the mirror for that model.
  FedFetchResult fetch_model(const std::string& name,
                             const Deadline& deadline);

  // --- background sync -------------------------------------------------
  void start_sync();
  void stop_sync();
  /// One synchronous pass over all hosts; returns how many synced
  /// cleanly.  The background thread calls exactly this.
  int sync_now();
  /// Test/ops helper: wait until `key` has completed a successful sync.
  bool wait_synced(const std::string& key, std::chrono::milliseconds timeout);

  [[nodiscard]] FederationStats stats() const;

 private:
  struct Host;
  struct TaskResult {
    bool ok = false;
    Response response;
    std::string error;
    bool timed_out = false;
    double latency_ms = 0;
  };

  [[nodiscard]] Deadline effective(const Deadline& deadline) const;
  [[nodiscard]] std::chrono::steady_clock::time_point now() const;
  /// Health-ordered snapshot of hosts (breaker-open hosts last).
  [[nodiscard]] std::vector<std::shared_ptr<Host>> snapshot() const;
  static double health_score(const Host& host);
  static double p95_latency(const Host& host);

  /// One request to one host under `deadline`, synchronous (transport
  /// seam or blocking socket path) — used by sync and as the hedged
  /// fetch's building block for injected transports.
  TaskResult single_roundtrip(const std::shared_ptr<Host>& host,
                              const Request& request,
                              const Deadline& deadline);
  /// Concurrent fan-out of `request` to `targets` under one poll loop.
  /// Socket-backed hosts multiplex; injected transports run inline in
  /// order.  Results index-match `targets`.
  std::vector<TaskResult> fanout(
      const std::vector<std::shared_ptr<Host>>& targets,
      const Request& request, const Deadline& deadline);
  /// Hedged fetch against an ordered candidate list.  Returns the
  /// winning (index, result); fired_hedge/hedge_won report hedging.
  TaskResult hedged_fetch(const std::vector<std::shared_ptr<Host>>& order,
                          const Request& request, const Deadline& deadline,
                          std::size_t& winner, bool& fired_hedge,
                          bool& hedge_won);

  /// Reserve an in-flight slot; false when the host is at its bound.
  bool reserve(const std::shared_ptr<Host>& host);
  void release(const std::shared_ptr<Host>& host);
  /// Fold one outcome into the host's health state + counters.
  void record(const std::shared_ptr<Host>& host, const TaskResult& result);

  void sync_loop();
  /// Sync one host; returns new/changed defs (sunk by the caller after
  /// the lock is dropped).  Throws on failure.
  std::vector<model::UserModelDefinition> sync_host(
      const std::shared_ptr<Host>& host);

  FederationOptions options_;
  MirrorSink sink_;

  mutable std::mutex mutex_;  ///< hosts_, per-host state, stats_, cv
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Host>> hosts_;
  FederationStats stats_;

  std::thread sync_thread_;
  std::atomic<bool> sync_running_{false};
};

}  // namespace powerplay::web
