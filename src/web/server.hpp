// server.hpp — the PowerPlay HTTP daemon.
//
// "since PowerPlay is local to one server, it can be accessed by any
// machine on the web.  There is no need to port, recompile and install
// the tool."  This is a small HTTP/1.0 server over POSIX sockets: one
// listener thread accepts connections into a bounded queue, a fixed
// pool of worker threads drains it (one request per connection, as
// HTTP/1.0 browsers did).  When the queue is full the listener sheds
// load immediately with 503 + Retry-After instead of letting backlog
// grow without bound, and every socket read/write runs under a
// Deadline so a hung peer can never wedge a worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "web/http.hpp"

namespace powerplay::web {

using Handler = std::function<Response(const Request&)>;

/// Capacity and patience knobs.  Defaults suit tests and small sites;
/// a production deployment raises worker_count/queue_capacity.
struct ServerOptions {
  std::size_t worker_count = 4;     ///< fixed worker pool size
  std::size_t queue_capacity = 64;  ///< accepted-but-unserved connections
  std::chrono::milliseconds io_timeout{15000};  ///< per-connection exchange
  int retry_after_seconds = 1;      ///< advertised in shed responses
};

/// Counters a health endpoint or operator can poll.
struct ServerStats {
  std::uint64_t requests_served = 0;
  std::uint64_t requests_shed = 0;  ///< 503s sent because the queue was full
  std::uint64_t timeouts = 0;       ///< connections dropped by the Deadline
};

class HttpServer {
 public:
  /// Bind and listen on 127.0.0.1:`port`; port 0 picks a free port
  /// (query with port()).  Throws HttpError on bind failure.
  HttpServer(std::uint16_t port, Handler handler, ServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Start the accept loop and worker pool (idempotent).
  void start();

  /// Stop accepting, drain queued connections, join all threads.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load();
  }
  [[nodiscard]] std::uint64_t requests_shed() const {
    return requests_shed_.load();
  }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_.load(); }
  [[nodiscard]] ServerStats stats() const {
    return {requests_served_.load(), requests_shed_.load(), timeouts_.load()};
  }
  /// Accepted connections waiting for a worker (tests, health checks).
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);
  void shed_connection(int fd);

  Handler handler_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;  ///< accepted fds awaiting a worker
};

/// Read one complete HTTP message from a connected socket (uses
/// message_size() framing).  Returns empty string on EOF before any
/// data.  Throws HttpTimeout once `deadline` expires; the default
/// deadline never does.
std::string read_http_message(int fd,
                              const Deadline& deadline = Deadline::never());

/// Write all bytes; throws HttpError on failure, HttpTimeout on
/// deadline expiry.
void write_all(int fd, const std::string& data,
               const Deadline& deadline = Deadline::never());

}  // namespace powerplay::web
