// server.hpp — the PowerPlay HTTP daemon.
//
// "since PowerPlay is local to one server, it can be accessed by any
// machine on the web.  There is no need to port, recompile and install
// the tool."  This is an HTTP/1.1 keep-alive server over POSIX sockets,
// split into an event-driven front end and a worker pool:
//
//   - One reactor thread owns every connection: it accepts, runs a
//     poll() loop over all idle keep-alive sockets, and feeds bytes into
//     each connection's incremental RequestParser.  Parked connections
//     cost one pollfd, never a worker thread.
//   - A fixed pool of workers drains a bounded queue of *parsed
//     requests* (not raw fds): a worker only ever runs handler logic and
//     writes the response, then hands the connection back to the
//     reactor for the next request.
//
// When the request queue is full the reactor sheds load immediately with
// 503 + Retry-After instead of letting backlog grow without bound, and
// every connection carries a Deadline: a peer that never completes a
// request is reaped (and counted as a timeout), an idle keep-alive
// connection is quietly closed after keepalive_idle_timeout.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "web/http.hpp"

namespace powerplay::web {

using Handler = std::function<Response(const Request&)>;

/// Capacity and patience knobs.  Defaults suit tests and small sites;
/// a production deployment raises worker_count/queue_capacity (all four
/// are reachable from the powerplay_server binary's flags).
struct ServerOptions {
  std::size_t worker_count = 4;     ///< fixed worker pool size
  std::size_t queue_capacity = 64;  ///< parsed requests awaiting a worker
  std::chrono::milliseconds io_timeout{15000};  ///< per-request exchange
  int retry_after_seconds = 1;      ///< advertised in shed responses
  /// Requests served on one connection before the server closes it
  /// (bounds how long one client can pin per-connection state).
  std::size_t max_keepalive_requests = 100;
  /// How long a connection may sit idle *between* requests before the
  /// reactor closes it.  Distinct from io_timeout: expiring here is
  /// normal keep-alive hygiene, not a counted timeout.
  std::chrono::milliseconds keepalive_idle_timeout{5000};
};

/// Counters a health endpoint or operator can poll.
struct ServerStats {
  std::uint64_t requests_served = 0;
  std::uint64_t requests_shed = 0;  ///< 503s sent because the queue was full
  std::uint64_t timeouts = 0;       ///< connections dropped mid-request
  std::uint64_t connections_reused = 0;  ///< served a 2nd request
  std::uint64_t parser_resumes = 0;  ///< reads that left a partial request
};

class HttpServer {
 public:
  /// Bind and listen on 127.0.0.1:`port`; port 0 picks a free port
  /// (query with port()).  Throws HttpError on bind failure.
  HttpServer(std::uint16_t port, Handler handler, ServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Start the reactor and worker pool (idempotent).
  void start();

  /// Stop accepting, drain queued requests, join all threads.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load();
  }
  [[nodiscard]] std::uint64_t requests_shed() const {
    return requests_shed_.load();
  }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_.load(); }
  [[nodiscard]] std::uint64_t connections_reused() const {
    return connections_reused_.load();
  }
  [[nodiscard]] std::uint64_t parser_resumes() const {
    return parser_resumes_.load();
  }
  [[nodiscard]] ServerStats stats() const {
    return {requests_served_.load(), requests_shed_.load(), timeouts_.load(),
            connections_reused_.load(), parser_resumes_.load()};
  }
  /// Parsed requests waiting for a worker (tests, health checks).
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  /// One keep-alive connection, owned by the reactor thread.  While a
  /// request is in flight with a worker the fd is not polled; the
  /// worker's completion message returns ownership.
  struct Connection {
    RequestParser parser;
    Deadline deadline;            ///< read (first request) or idle budget
    std::uint64_t served = 0;     ///< responses written on this connection
    bool in_flight = false;       ///< a request is queued or being handled
    bool peer_closed = false;     ///< read EOF (half-close)
  };

  /// A parsed request travelling to the worker pool.
  struct Dispatch {
    int fd = -1;
    Request request;
    bool close_after = false;  ///< server-side keep-alive limit reached
  };

  void reactor_loop();
  void worker_loop();
  void accept_ready();
  void read_ready(int fd, Connection& conn);
  void process_resumed();
  /// Parser produced a request: queue it or shed with 503.
  void dispatch_or_shed(int fd, Connection& conn);
  /// Best-effort write (shed/parse-error responses) then close.
  void reply_and_close(int fd, const Response& response);
  void close_connection(int fd);
  void wake();

  Handler handler_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> connections_reused_{0};
  std::atomic<std::uint64_t> parser_resumes_{0};
  std::thread reactor_thread_;
  std::vector<std::thread> workers_;
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Dispatch> queue_;  ///< parsed requests awaiting a worker

  /// Connections handed back by workers: (fd, still reusable).
  std::mutex resume_mutex_;
  std::vector<std::pair<int, bool>> resumed_;

  /// Reactor-thread state (no lock: only reactor_loop touches it).
  std::unordered_map<int, Connection> connections_;
};

/// Read one complete HTTP message from a connected socket (uses
/// message_size() framing).  Returns empty string on EOF before any
/// data.  Throws HttpTimeout once `deadline` expires; the default
/// deadline never does.
std::string read_http_message(int fd,
                              const Deadline& deadline = Deadline::never());

/// Write all bytes; throws HttpError on failure, HttpTimeout on
/// deadline expiry.
void write_all(int fd, const std::string& data,
               const Deadline& deadline = Deadline::never());

/// Ignore SIGPIPE process-wide, once.  write_all already passes
/// MSG_NOSIGNAL, but a peer that resets between poll() and a write on
/// any other path (TLS libraries, stdio to a dead pipe) would still
/// kill the process with the default disposition — and a replication
/// follower whose primary died mid-response is exactly that peer.
/// Called from every socket entry point (server construction, client
/// connect); safe to call from multiple threads.
void ignore_sigpipe();

}  // namespace powerplay::web
