// server.hpp — the PowerPlay HTTP daemon.
//
// "since PowerPlay is local to one server, it can be accessed by any
// machine on the web.  There is no need to port, recompile and install
// the tool."  This is a small threaded HTTP/1.0 server over POSIX
// sockets: one listener thread accepts connections and handles each on a
// worker thread (one request per connection, as HTTP/1.0 browsers did).
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "web/http.hpp"

namespace powerplay::web {

using Handler = std::function<Response(const Request&)>;

class HttpServer {
 public:
  /// Bind and listen on 127.0.0.1:`port`; port 0 picks a free port
  /// (query with port()).  Throws HttpError on bind failure.
  HttpServer(std::uint16_t port, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Start the accept loop (idempotent).
  void start();

  /// Stop accepting, close the listener, join all threads.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load();
  }

 private:
  void accept_loop();
  void handle_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex workers_mutex_;
};

/// Read one complete HTTP message from a connected socket (uses
/// message_size() framing).  Returns empty string on EOF before any data.
std::string read_http_message(int fd);

/// Write all bytes; throws HttpError on failure.
void write_all(int fd, const std::string& data);

}  // namespace powerplay::web
