#include "web/cache.hpp"

#include "engine/fingerprint.hpp"

namespace powerplay::web {

ResponseCache::ResponseCache(ResponseCacheOptions options)
    : options_(options) {}

std::optional<ResponseCache::Entry> ResponseCache::find(
    const std::string& key) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  order_.splice(order_.begin(), order_, it->second.lru);  // touch
  return it->second.entry;
}

void ResponseCache::refresh(const std::string& key, std::uint64_t revision) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) it->second.entry.revision = revision;
}

void ResponseCache::insert(const std::string& key, Entry entry) {
  const std::size_t size = entry.response.body.size();
  std::lock_guard lock(mutex_);
  if (options_.max_entries == 0 || size > options_.max_bytes) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.entry.response.body.size();
    order_.erase(it->second.lru);
    entries_.erase(it);
  }
  order_.push_front(key);
  entries_.emplace(key, Slot{std::move(entry), order_.begin()});
  bytes_ += size;
  insertions_ += 1;
  evict_locked();
}

void ResponseCache::evict_locked() {
  while (!order_.empty() && (entries_.size() > options_.max_entries ||
                             bytes_ > options_.max_bytes)) {
    const std::string& victim = order_.back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.entry.response.body.size();
    entries_.erase(it);
    order_.pop_back();
    evictions_ += 1;
  }
}

std::string ResponseCache::make_etag(const Response& response) {
  engine::Fnv1a h;
  h.size(static_cast<std::size_t>(response.status));
  h.text(response.content_type);
  h.text(response.body);
  return '"' + engine::fingerprint_hex(h.digest()) + '"';
}

void ResponseCache::count_hit() {
  std::lock_guard lock(mutex_);
  hits_ += 1;
}
void ResponseCache::count_miss() {
  std::lock_guard lock(mutex_);
  misses_ += 1;
}
void ResponseCache::count_revalidation() {
  std::lock_guard lock(mutex_);
  revalidations_ += 1;
}
void ResponseCache::count_not_modified() {
  std::lock_guard lock(mutex_);
  not_modified_ += 1;
}

ResponseCacheStats ResponseCache::stats() const {
  std::lock_guard lock(mutex_);
  ResponseCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.revalidations = revalidations_;
  s.not_modified = not_modified_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

bool if_none_match(const Request& request, const std::string& etag) {
  auto it = request.headers.find("if-none-match");
  if (it == request.headers.end() || etag.empty()) return false;
  const std::string& header = it->second;
  if (header == "*") return true;
  // Comma-separated list of quoted tags; exact (strong) comparison.
  std::size_t pos = 0;
  while (pos < header.size()) {
    std::size_t comma = header.find(',', pos);
    if (comma == std::string::npos) comma = header.size();
    std::size_t b = pos;
    std::size_t e = comma;
    while (b < e && header[b] == ' ') ++b;
    while (e > b && header[e - 1] == ' ') --e;
    if (header.compare(b, e - b, etag) == 0) return true;
    pos = comma + 1;
  }
  return false;
}

}  // namespace powerplay::web
