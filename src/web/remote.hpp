// remote.hpp — model access across the network (Figures 6 and 7).
//
// Bottom of Figure 7 — the PowerPlay scheme: "using secure scripts at
// Universal Resource Locators to handle information transfer on demand".
// RemoteLibrary is that client: it fetches shareable models and designs
// from another site's /api/* endpoints and imports them into the local
// registry, so "if a library is characterized and put on the web in
// Massachusetts, it can be used for estimates in California".
//
// Top of Figure 7 — the baseline it replaced: Silva's SMTP scheme, where
// requests are relayed through store-and-forward mail hubs on each
// machine.  HubChain simulates that path event-by-event (each hub
// receives, queues, dequeues and forwards the whole message, paying a
// per-hop handling latency plus the expected half poll interval), so the
// protocol bench can contrast message counts and latency.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/registry.hpp"
#include "model/user_model.hpp"
#include "units/units.hpp"
#include "web/client.hpp"
#include "web/http.hpp"

namespace powerplay::web {

/// Raised when the circuit breaker is open: the remote site has failed
/// repeatedly and we fail fast instead of burning a round trip.
class CircuitOpenError : public HttpError {
 public:
  using HttpError::HttpError;
};

/// When and how often to retry a failed fetch.  Retries fire only for
/// transport errors (connection refused/dropped, deadlines, truncated
/// bodies) and 5xx responses; 4xx is the remote telling us the request
/// itself is wrong, so retrying cannot help.  Backoff grows
/// exponentially with a deterministic jitter derived from jitter_seed,
/// so tests replay exact schedules while real fleets still desynchronize.
struct RetryPolicy {
  int max_attempts = 4;  ///< total tries, including the first
  std::chrono::milliseconds base_backoff{10};
  std::chrono::milliseconds max_backoff{2000};
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;

  /// Single-shot policy: the pre-resilience behavior.
  static RetryPolicy none() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }

  /// Delay before retry number `retry` (0-based): min(base * 2^retry,
  /// max) plus up to 50% deterministic jitter, capped at max_backoff.
  [[nodiscard]] std::chrono::milliseconds backoff(int retry) const;
};

/// Circuit breaker thresholds (top-level so it can be a default
/// argument; nested-class member initializers cannot).
struct BreakerOptions {
  int failure_threshold = 5;
  std::chrono::milliseconds cooldown{1000};
};

/// Per-host circuit breaker: after `failure_threshold` consecutive
/// failures the circuit opens and calls fail fast (CircuitOpenError)
/// until `cooldown` has passed; then one half-open probe is let
/// through, and its outcome closes or re-opens the circuit.  The clock
/// is injectable so tests drive state transitions virtually.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };
  using Clock = std::function<std::chrono::steady_clock::time_point()>;
  using Options = BreakerOptions;

  explicit CircuitBreaker(Options options = {}, Clock clock = nullptr);

  /// May this call proceed?  Transitions open -> half-open after the
  /// cooldown (the caller getting `true` owns the probe).
  [[nodiscard]] bool allow();
  void record_success();
  void record_failure();

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] int consecutive_failures() const { return failures_; }

 private:
  Options options_;
  Clock clock_;
  State state_ = State::kClosed;
  int failures_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
};

/// Client for another PowerPlay site's model-access endpoints, hardened
/// for the paper's cross-site scenario: every fetch runs under the
/// retry policy and circuit breaker, so a flaky wide-area path degrades
/// into extra round trips instead of a failed import.
class RemoteLibrary {
 public:
  /// Plain TCP to a loopback port with default policy and breaker.
  explicit RemoteLibrary(std::uint16_t port)
      : RemoteLibrary(std::make_shared<TcpTransport>(port)) {}

  /// Full control: any Transport (e.g. a FaultTransport for chaos
  /// testing), retry policy, breaker options and an optional virtual
  /// clock shared with the breaker.
  explicit RemoteLibrary(std::shared_ptr<Transport> transport,
                         RetryPolicy policy = {},
                         CircuitBreaker::Options breaker = {},
                         CircuitBreaker::Clock clock = nullptr);

  [[nodiscard]] std::vector<std::string> list_models() const;
  [[nodiscard]] model::UserModelDefinition fetch_model(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> list_designs() const;
  [[nodiscard]] std::string fetch_design_text(const std::string& name) const;

  /// Fetch + register into a local registry; returns the model name.
  std::string import_model(const std::string& name,
                           model::ModelRegistry& into) const;

  /// Fetch + register every shareable model the site lists; returns
  /// the imported names.  One flaky fetch no longer aborts the whole
  /// mirror operation — each model gets the full retry budget.
  std::vector<std::string> import_all(model::ModelRegistry& into) const;

  /// One arbitrary exchange under the breaker and retry policy — with a
  /// crucial asymmetry: only idempotent (GET) requests are auto-retried.
  /// A POST whose response was lost may still have been applied at the
  /// remote, so retrying it risks duplicate side effects; non-GET
  /// requests get exactly one attempt and any failure surfaces to the
  /// caller, who knows whether the operation is safe to repeat.
  Response perform(const Request& request) const;

  /// HTTP round trips performed so far by this client (retries count).
  [[nodiscard]] int round_trips() const { return round_trips_; }
  /// Retries performed beyond first attempts.
  [[nodiscard]] int retries() const { return retries_; }
  [[nodiscard]] const CircuitBreaker& breaker() const { return breaker_; }

  /// Replace the between-retries sleep (default: real sleep_for).
  /// Tests install a recorder so no wall clock is ever spent.
  using Sleeper = std::function<void(std::chrono::milliseconds)>;
  void set_sleeper(Sleeper sleeper) { sleeper_ = std::move(sleeper); }

 private:
  [[nodiscard]] Response fetch_with_retry(const std::string& target) const;
  [[nodiscard]] std::string fetch_text(const std::string& target) const;

  std::shared_ptr<Transport> transport_;
  RetryPolicy policy_;
  mutable CircuitBreaker breaker_;
  Sleeper sleeper_;
  mutable int round_trips_ = 0;
  mutable int retries_ = 0;
};

/// One simulated SMTP-style relay transfer.
struct HubTransferResult {
  int messages = 0;        ///< store-and-forward transmissions
  units::Time latency{0};  ///< modeled end-to-end latency
  std::string payload;     ///< delivered payload (round-tripped)
};

/// Store-and-forward hub chain between requester and provider.
class HubChain {
 public:
  /// `hubs` intermediate relays; each handling costs `per_hop_latency`
  /// plus an expected `poll_interval`/2 queue wait (mail hubs poll).
  HubChain(int hubs, units::Time per_hop_latency, units::Time poll_interval);

  /// Simulate request + response for a payload; both directions traverse
  /// every hub.
  [[nodiscard]] HubTransferResult transfer(const std::string& payload) const;

  [[nodiscard]] int hubs() const { return hubs_; }

 private:
  int hubs_;
  units::Time per_hop_latency_;
  units::Time poll_interval_;
};

/// Wall-clock measured HTTP fetch, for the protocol comparison bench.
struct HttpFetchResult {
  units::Time latency{0};
  std::size_t bytes = 0;
  int messages = 0;  ///< request + response = 2
};
HttpFetchResult timed_fetch(std::uint16_t port, const std::string& target);

}  // namespace powerplay::web
