// remote.hpp — model access across the network (Figures 6 and 7).
//
// Bottom of Figure 7 — the PowerPlay scheme: "using secure scripts at
// Universal Resource Locators to handle information transfer on demand".
// RemoteLibrary is that client: it fetches shareable models and designs
// from another site's /api/* endpoints and imports them into the local
// registry, so "if a library is characterized and put on the web in
// Massachusetts, it can be used for estimates in California".
//
// Top of Figure 7 — the baseline it replaced: Silva's SMTP scheme, where
// requests are relayed through store-and-forward mail hubs on each
// machine.  HubChain simulates that path event-by-event (each hub
// receives, queues, dequeues and forwards the whole message, paying a
// per-hop handling latency plus the expected half poll interval), so the
// protocol bench can contrast message counts and latency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/registry.hpp"
#include "model/user_model.hpp"
#include "units/units.hpp"
#include "web/http.hpp"

namespace powerplay::web {

/// Client for another PowerPlay site's model-access endpoints.
class RemoteLibrary {
 public:
  explicit RemoteLibrary(std::uint16_t port) : port_(port) {}

  [[nodiscard]] std::vector<std::string> list_models() const;
  [[nodiscard]] model::UserModelDefinition fetch_model(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> list_designs() const;
  [[nodiscard]] std::string fetch_design_text(const std::string& name) const;

  /// Fetch + register into a local registry; returns the model name.
  std::string import_model(const std::string& name,
                           model::ModelRegistry& into) const;

  /// HTTP round trips performed so far by this client.
  [[nodiscard]] int round_trips() const { return round_trips_; }

 private:
  [[nodiscard]] std::string fetch_text(const std::string& target) const;

  std::uint16_t port_;
  mutable int round_trips_ = 0;
};

/// One simulated SMTP-style relay transfer.
struct HubTransferResult {
  int messages = 0;        ///< store-and-forward transmissions
  units::Time latency{0};  ///< modeled end-to-end latency
  std::string payload;     ///< delivered payload (round-tripped)
};

/// Store-and-forward hub chain between requester and provider.
class HubChain {
 public:
  /// `hubs` intermediate relays; each handling costs `per_hop_latency`
  /// plus an expected `poll_interval`/2 queue wait (mail hubs poll).
  HubChain(int hubs, units::Time per_hop_latency, units::Time poll_interval);

  /// Simulate request + response for a payload; both directions traverse
  /// every hub.
  [[nodiscard]] HubTransferResult transfer(const std::string& payload) const;

  [[nodiscard]] int hubs() const { return hubs_; }

 private:
  int hubs_;
  units::Time per_hop_latency_;
  units::Time poll_interval_;
};

/// Wall-clock measured HTTP fetch, for the protocol comparison bench.
struct HttpFetchResult {
  units::Time latency{0};
  std::size_t bytes = 0;
  int messages = 0;  ///< request + response = 2
};
HttpFetchResult timed_fetch(std::uint16_t port, const std::string& target);

}  // namespace powerplay::web
