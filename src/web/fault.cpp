#include "web/fault.hpp"

namespace powerplay::web {

FaultTransport::FaultTransport(std::shared_ptr<Transport> inner,
                               FaultSpec spec)
    : inner_(std::move(inner)), spec_(spec), rng_(spec.seed) {}

double FaultTransport::draw() {
  // 53-bit mantissa division instead of uniform_real_distribution: the
  // latter's output is not specified bit-for-bit across standard
  // libraries, and determinism is the whole point here.
  return static_cast<double>(rng_() >> 11) * 0x1.0p-53;
}

Response FaultTransport::roundtrip(const Request& request) {
  return roundtrip_impl(request, nullptr);
}

Response FaultTransport::roundtrip(const Request& request,
                                   const Deadline& deadline) {
  return roundtrip_impl(request, &deadline);
}

Response FaultTransport::roundtrip_impl(const Request& request,
                                        const Deadline* deadline) {
  ++counters_.calls;

  if (replay_) {
    // The stale delivery: hand back the previous response without
    // touching the network at all.
    ++counters_.duplicates;
    Response stale = std::move(*replay_);
    replay_.reset();
    return stale;
  }

  if (draw() < spec_.drop_rate) {
    ++counters_.drops;
    throw HttpError("fault injection: connection dropped");
  }

  if (draw() < spec_.delay_rate) {
    ++counters_.delays;
    virtual_delay_ += spec_.delay;
    if (delay_hook_) delay_hook_(spec_.delay);
    if (spec_.delay >= spec_.deadline) {
      ++counters_.timeouts;
      throw HttpTimeout("fault injection: response delayed past deadline");
    }
  }

  Response resp = deadline != nullptr ? inner_->roundtrip(request, *deadline)
                                      : inner_->roundtrip(request);

  if (draw() < spec_.error_rate) {
    ++counters_.errors;
    Response r;
    r.status = 500;
    r.content_type = "text/plain";
    r.body = "fault injection: internal error\n";
    return r;
  }
  if (draw() < spec_.unavailable_rate) {
    ++counters_.unavailable;
    Response r;
    r.status = 503;
    r.content_type = "text/plain";
    r.headers["retry-after"] = "0";
    r.body = "fault injection: service unavailable\n";
    return r;
  }
  if (draw() < spec_.truncate_rate) {
    ++counters_.truncations;
    // On the wire this is a body shorter than Content-Length promises;
    // parse_response turns that into exactly this transport error.
    throw HttpError("fault injection: truncated response body");
  }

  // Gated on the rate so a spec without duplicates consumes exactly the
  // same PRNG draws as before this fault mode existed.
  if (spec_.duplicate_rate > 0 && draw() < spec_.duplicate_rate) {
    replay_ = resp;
  }

  ++counters_.passthrough;
  return resp;
}

}  // namespace powerplay::web
