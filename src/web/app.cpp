#include "web/app.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "engine/fingerprint.hpp"
#include "explore/inverse.hpp"
#include "explore/mc.hpp"
#include "explore/pareto.hpp"
#include "explore/surrogate.hpp"
#include "flow/standard_flows.hpp"
#include "library/textio.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/report.hpp"
#include "sheet/sweep.hpp"
#include "web/html.hpp"

namespace powerplay::web {

using library::UserProfile;
using model::Category;
using units::format_area;
using units::format_si;

namespace {

std::string need(const Params& q, const std::string& key) {
  const std::string v = get_or(q, key);
  if (v.empty()) throw HttpError("missing parameter '" + key + "'");
  return v;
}

std::uint64_t parse_u64_param(const std::string& text,
                              const std::string& what) {
  if (text.empty()) throw HttpError("missing numeric value for " + what);
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9' || v > (~0ull - 9) / 10) {
      throw HttpError("bad numeric value for " + what + ": '" + text + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

double parse_double(const std::string& text, const std::string& what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw HttpError("bad numeric value for " + what + ": '" + text + "'");
  }
}

/// Render one PlayResult as the Figure 2/5 HTML spreadsheet, with row
/// names hyperlinked to documentation and macros drilled down inline.
void append_spreadsheet(const sheet::PlayResult& result,
                        const std::string& user, std::string& out,
                        int depth = 0) {
  HtmlTable t;
  t.header({"Row", "Model", "Parameters", "Energy/op", "Power"});
  for (const sheet::RowResult& row : result.rows) {
    std::string params;
    for (const auto& [name, value] : row.shown_params) {
      if (!params.empty()) params += ", ";
      params += name + "=" + library::number_text(value);
    }
    std::string model_cell = row.model_name;
    if (row.sub_result == nullptr) {
      model_cell = HtmlTable::raw_cell(
          link("/doc", {{"name", row.model_name}, {"user", user}},
               row.model_name));
    }
    t.row({row.name, model_cell, params,
           row.estimate.energy_per_op.si() > 0
               ? format_si(row.estimate.energy_per_op.si(), "J")
               : "-",
           format_si(row.estimate.total_power().si(), "W")});
  }
  t.row({"TOTAL", "", "",
         result.total.energy_per_op.si() > 0
             ? format_si(result.total.energy_per_op.si(), "J")
             : "-",
         format_si(result.total.total_power().si(), "W")});
  out += t.str();
  for (const sheet::RowResult& row : result.rows) {
    if (row.sub_result != nullptr && depth < 8) {
      out += "<h3>" + html_escape(row.name) + " (macro drill-down)</h3>\n";
      append_spreadsheet(*row.sub_result, user, out, depth + 1);
    }
  }
}

/// GETs whose rendered bytes depend only on library state + the query
/// string — i.e. safe to cache keyed by (path, canonical query,
/// revision).  Job and health endpoints change without a store commit,
/// so they stay uncached.
bool cacheable_route(const std::string& path) {
  static const char* const kRoutes[] = {
      "/",           "/menu",        "/library",     "/model",
      "/design",     "/design/csv",  "/doc",         "/agent",
      "/help",       "/newmodel",    "/api/models",  "/api/model",
      "/api/designs", "/api/design"};
  for (const char* route : kRoutes) {
    if (path == route) return true;
  }
  return false;
}

/// The single design a cacheable page's bytes depend on, if any — these
/// entries get the fingerprint-revalidation fast path when an unrelated
/// commit bumps the library revision.
std::string design_dependency(const std::string& path, const Params& q) {
  if (path == "/design" || path == "/design/csv" || path == "/api/design") {
    return get_or(q, "name");
  }
  return {};
}

}  // namespace

// "User identification is necessary to ensure privacy": load (or
// create) the profile and, when the user set a password, require the
// matching `pw` field.
library::UserProfile PowerPlayApp::authorized_user(const Params& q) {
  const std::string user = need(q, "user");
  library::validate_store_name(user);
  library::UserProfile profile;
  if (role_.load() == ReplRole::kFollower) {
    // A follower never commits: an unknown user gets a transient default
    // profile (same shape ensure_user would persist) so read-only pages
    // render; anything that would save it redirects to the primary.
    if (auto existing = store_.load_user(user)) {
      profile = *existing;
    } else {
      profile.username = user;
      profile.defaults = {{"vdd", 1.5}, {"f", 1.0e6}};
    }
  } else {
    profile = store_.ensure_user(user);
  }
  if (profile.has_password() &&
      !profile.check_password(get_or(q, "pw"))) {
    throw AccessDenied("wrong or missing password for user '" + user + "'");
  }
  return profile;
}

PowerPlayApp::PowerPlayApp(library::LibraryStore store,
                           engine::EngineOptions engine_options,
                           engine::JobOptions job_options,
                           AppOptions app_options)
    : store_(std::move(store)),
      engine_(engine_options),
      jobs_(job_options) {
  if (app_options.response_cache) {
    cache_ = std::make_unique<ResponseCache>(app_options.cache);
  }
  models::add_berkeley_models(registry_);
  store_.load_all_models(registry_);
  // The Design Agent and its tool-backed library entry.  agent_ lives in
  // this object, so the ToolFlowModel's pointer stays valid for the
  // app's lifetime.
  agent_ = flow::make_standard_agent(registry_);
  registry_.add_or_replace(flow::make_sram_toolflow_model(agent_));
}

void PowerPlayApp::shutdown() {
  // Stop the federation sync thread first: its mirror sink takes the
  // exclusive library lock, and nothing may race the compaction below.
  if (federation_ != nullptr) federation_->stop_sync();
  // Order matters: jobs work on private design clones, and the one kind
  // that writes (a surrogate fit committing its model) takes the library
  // lock only transiently — so drain first, and no job can hold or wait
  // on the lock when we compact the journal under it.
  jobs_.drain();
  std::unique_lock lib(library_mutex_);
  store_.flush();
}

std::shared_ptr<std::mutex> PowerPlayApp::session_lock(
    const std::string& user) {
  std::lock_guard lock(sessions_mutex_);
  auto& slot = session_locks_[user];
  if (slot == nullptr) slot = std::make_shared<std::mutex>();
  return slot;
}

Response PowerPlayApp::handle(const Request& request) {
  const Target target = request.parsed_target();
  const Params q = request.all_params();
  try {
    // Replication endpoints bypass both shards: the store has its own
    // internal synchronization, and the /repl/journal long-poll may
    // park for seconds — holding the shared library lock (or a session
    // lock) that long would stall every exclusive writer behind an
    // idle follower.
    if (target.path.rfind("/repl/", 0) == 0) {
      if (target.path == "/repl/snapshot" && request.method == "GET") {
        return repl_snapshot();
      }
      if (target.path == "/repl/journal" && request.method == "GET") {
        return repl_journal(q);
      }
      if (target.path == "/repl/promote" && request.method == "POST") {
        return do_repl_promote();
      }
      return Response::not_found(target.path);
    }

    // Federation endpoints bypass the shards for the same reason: a
    // fan-out parks on network I/O up to the caller's deadline, and the
    // FederatedLibrary has its own lock.  (The mirror sink takes the
    // exclusive library lock — never while a /fed/ handler holds it.)
    if (target.path.rfind("/fed/", 0) == 0) {
      if (federation_ == nullptr) {
        return Response::bad_request("federation not enabled on this site");
      }
      if (target.path == "/fed/models" && request.method == "GET") {
        return fed_models(q);
      }
      if (target.path == "/fed/model" && request.method == "GET") {
        return fed_model(q);
      }
      if (target.path == "/fed/hosts" && request.method == "GET") {
        return fed_hosts_page();
      }
      if (target.path == "/fed/hosts" && request.method == "POST") {
        return do_fed_hosts(q);
      }
      return Response::not_found(target.path);
    }

    const bool mutates =
        target.path == "/design/add" || target.path == "/design/play" ||
        target.path == "/design/setrow" ||
        (target.path == "/newmodel" && request.method == "POST");

    // A follower serves reads (through the response cache, invalidated
    // by applied records via the store revision) but owns no write
    // authority: mutations go to the primary, method preserved, via
    // 307 Temporary Redirect.  Explore jobs run anywhere (they only
    // read a design snapshot) except surrogate fits, which commit the
    // fitted model to the library.
    if (role_.load() == ReplRole::kFollower &&
        (mutates || target.path == "/setpw" ||
         (target.path == "/design/explore" &&
          get_or(q, "mode") == "fit"))) {
      return redirect_to_primary(request);
    }

    // Shard 1: each user's own requests are serialized (profile and
    // design edits are read-modify-write over their files), but two
    // users never wait on each other here.
    std::shared_ptr<std::mutex> session;
    std::unique_lock<std::mutex> session_guard;
    const std::string user = get_or(q, "user");
    if (!user.empty()) {
      session = session_lock(user);
      session_guard = std::unique_lock(*session);
    }

    // Shard 2: the shared library.  Only the handful of mutating routes
    // take it exclusively; everything else reads concurrently.
    if (mutates) {
      std::unique_lock lib(library_mutex_);
      return dispatch(target.path, request.method, q);
    }
    std::shared_lock lib(library_mutex_);
    if (cache_ != nullptr && request.method == "GET" &&
        cacheable_route(target.path)) {
      return serve_cached(request, q);
    }
    return dispatch(target.path, request.method, q);
  } catch (const AccessDenied& e) {
    Response r;
    r.status = 403;
    r.content_type = "text/plain";
    r.body = std::string("forbidden: ") + e.what() + "\n";
    return r;
  } catch (const HttpError& e) {
    return Response::bad_request(e.what());
  } catch (const expr::ExprError& e) {
    // User-facing input problems (unknown model, bad parameter value,
    // unparsable formula) rather than server faults.
    return Response::bad_request(e.what());
  } catch (const std::exception& e) {
    return Response::server_error(e.what());
  }
}

Response PowerPlayApp::dispatch(const std::string& path,
                                const std::string& method, const Params& q) {
  if (path == "/healthz") return page_healthz();
  if (path == "/") return page_root();
  if (path == "/menu") return page_menu(q);
  if (path == "/library") return page_library(q);
  if (path == "/model") return page_model(q);
  if (path == "/design/add") return do_design_add(q);
  if (path == "/design") return page_design(q);
  if (path == "/design/play") return do_design_play(q);
  if (path == "/design/setrow") return do_design_setrow(q);
  if (path == "/design/sweep") return do_design_sweep(q);
  if (path == "/design/explore") return do_design_explore(q);
  if (path == "/design/csv") return design_csv(q);
  if (path == "/job/cancel") return do_job_cancel(q);
  if (path == "/job") return page_job(q);
  if (path == "/jobs") return page_jobs(q);
  if (path == "/newmodel") {
    return method == "POST" ? do_new_model(q) : page_new_model(q);
  }
  if (path == "/doc") return page_doc(q);
  if (path == "/agent") return page_agent(q);
  if (path == "/setpw") return do_set_password(q);
  if (path == "/help") return page_help(q);
  if (path == "/api/models") return api_models();
  if (path == "/api/model") return api_model(q);
  if (path == "/api/designs") return api_designs();
  if (path == "/api/design") return api_design(q);
  return Response::not_found(path);
}

// The cached-GET fast path.  Runs under the shared library lock, so no
// mutating route interleaves; ensure_user() commits from sibling readers
// can still advance the store revision concurrently, which is why the
// revision is read *before* rendering — a commit that lands mid-render
// invalidates the entry instead of being masked by it.
Response PowerPlayApp::serve_cached(const Request& request, const Params& q) {
  const Target target = request.parsed_target();
  const std::string key = target.path + '?' + to_query(q);
  const std::uint64_t revision = store_.revision();
  const std::uint64_t model_rev = model_revision_.load();

  if (auto entry = cache_->find(key);
      entry.has_value() && entry->model_revision == model_rev) {
    bool current = entry->revision == revision;
    if (!current && !entry->design.empty()) {
      // Some commit happened, but perhaps not to this page's design:
      // compare content fingerprints before paying for a re-render.
      try {
        if (store_.has_design(entry->design)) {
          const auto design = store_.load_design(entry->design, registry_);
          if (engine::fingerprint(*design) == entry->design_fp) {
            cache_->refresh(key, revision);
            cache_->count_revalidation();
            current = true;
          }
        }
      } catch (const std::exception&) {
        // Unresolvable design (e.g. broken macro reference): fall
        // through and let the render path produce the error page.
      }
    }
    if (current) {
      cache_->count_hit();
      if (if_none_match(request, entry->etag)) {
        cache_->count_not_modified();
        return Response::not_modified(entry->etag);
      }
      return entry->response;
    }
  }

  cache_->count_miss();
  Response response = dispatch(target.path, request.method, q);
  if (response.status != 200) return response;

  const std::string etag = ResponseCache::make_etag(response);
  response.headers["etag"] = etag;

  ResponseCache::Entry entry;
  entry.etag = etag;
  entry.revision = revision;
  entry.model_revision = model_rev;
  entry.design = design_dependency(target.path, q);
  if (!entry.design.empty()) {
    try {
      if (store_.has_design(entry.design)) {
        entry.design_fp = engine::fingerprint(
            *store_.load_design(entry.design, registry_));
      } else {
        entry.design.clear();  // fall back to plain revision keying
      }
    } catch (const std::exception&) {
      entry.design.clear();
    }
  }
  entry.response = response;
  cache_->insert(key, std::move(entry));

  if (if_none_match(request, etag)) {
    cache_->count_not_modified();
    return Response::not_modified(etag);
  }
  return response;
}

// ---------------------------------------------------------------------------
// Pages
// ---------------------------------------------------------------------------

// Liveness/ops endpoint: plain text so load balancers and shell one-
// liners can read it; includes the server's resilience counters when a
// stats source has been wired.
Response PowerPlayApp::page_healthz() {
  std::ostringstream os;
  os << "ok\n";
  os << "models: " << registry_.size() << "\n";
  os << "designs: " << store_.list_designs().size() << "\n";
  StatsSource source;
  {
    std::lock_guard lock(stats_mutex_);
    source = stats_source_;
  }
  if (source) {
    const ServerStats s = source();
    os << "requests_served: " << s.requests_served << "\n";
    os << "requests_shed: " << s.requests_shed << "\n";
    os << "timeouts: " << s.timeouts << "\n";
    os << "connections_reused: " << s.connections_reused << "\n";
    os << "parser_resumes: " << s.parser_resumes << "\n";
  }
  if (cache_ != nullptr) {
    const ResponseCacheStats rc = cache_->stats();
    os << "responses_cached: " << rc.insertions << "\n";
    os << "response_cache_hits: " << rc.hits << "\n";
    os << "response_cache_misses: " << rc.misses << "\n";
    os << "response_cache_revalidations: " << rc.revalidations << "\n";
    os << "etag_304s: " << rc.not_modified << "\n";
    os << "response_cache_evictions: " << rc.evictions << "\n";
    os << "response_cache_entries: " << rc.entries << "\n";
    os << "response_cache_bytes: " << rc.bytes << "\n";
  }
  const engine::CacheStats cache = engine_.cache().stats();
  os << "cache_hits: " << cache.hits << "\n";
  os << "cache_misses: " << cache.misses << "\n";
  os << "cache_evictions: " << cache.evictions << "\n";
  os << "cache_size: " << cache.size << "/" << cache.capacity << "\n";
  const engine::ExecutorStats exec = engine_.executor().stats();
  os << "engine_threads: " << exec.thread_count << "\n";
  os << "engine_tasks_executed: " << exec.executed << "\n";
  os << "engine_queue_depth: " << exec.queue_depth << "\n";
  const engine::JobStats jobs = jobs_.stats();
  os << "jobs_queued: " << jobs.queued << "\n";
  os << "jobs_running: " << jobs.running << "\n";
  os << "jobs_done: " << jobs.done << "\n";
  os << "jobs_failed: " << jobs.failed << "\n";
  os << "jobs_cancelled: " << jobs.cancelled << "\n";
  os << "jobs_cancelled_total: " << jobs.cancelled_total << "\n";
  os << "jobs_deadline_expired_total: " << jobs.deadline_expired_total
     << "\n";
  // Lane-batched columnar evaluation (engine::BatchCounters): points
  // through the batch substrate, the fixed lane width, and how much of
  // the flow fell back to scalar (fallback points + lane replays).
  const engine::BatchCounters batch = engine_.batch_counters();
  os << "batch_points_total: " << batch.points << "\n";
  os << "batch_lane_width: " << sheet::BatchPlanInstance::kLaneWidth << "\n";
  os << "batch_scalar_fallbacks_total: "
     << batch.scalar_fallback_points + batch.lane_replays << "\n";
  os << "columnar_bytes_streamed_total: "
     << columnar_bytes_streamed_total_.load() << "\n";
  os << "explore_jobs_total: " << explore_jobs_total_.load() << "\n";
  os << "mc_points_total: " << mc_points_total_.load() << "\n";
  os << "surrogate_fits_total: " << surrogate_fits_total_.load() << "\n";
  os << "surrogate_hits_total: " << surrogate_hits_total_.load() << "\n";
  const library::DurabilityStats store = store_.durability();
  os << "journal_appends: " << store.journal_appends << "\n";
  os << "journal_replayed: " << store.journal_replayed << "\n";
  os << "journal_rotations: " << store.journal_rotations << "\n";
  os << "snapshot_writes: " << store.snapshot_writes << "\n";
  os << "quarantined_files: " << store.quarantined_files << "\n";
  // Replication position, on both roles: a primary reports its stream
  // head (what followers chase), a follower reports how far behind it is.
  const bool follower = role_.load() == ReplRole::kFollower;
  os << "repl_role: " << (follower ? "follower" : "primary") << "\n";
  os << "repl_epoch: " << store_.epoch() << "\n";
  ReplStatsSource repl_source;
  {
    std::lock_guard lock(repl_mutex_);
    repl_source = repl_stats_source_;
  }
  if (repl_source) {
    const ReplicationStats rs = repl_source();
    os << "repl_synced: " << (rs.synced ? 1 : 0) << "\n";
    os << "repl_cursor: " << rs.cursor_epoch << ":" << rs.cursor_seq << "\n";
    os << "repl_records_applied: " << rs.records_applied << "\n";
    os << "repl_duplicates_skipped: " << rs.duplicates_skipped << "\n";
    os << "repl_gaps_detected: " << rs.gaps_detected << "\n";
    os << "repl_resyncs_total: " << rs.resyncs_total << "\n";
    os << "repl_transport_errors: " << rs.transport_errors << "\n";
    os << "repl_polls: " << rs.polls << "\n";
    os << "repl_lag_records: " << rs.lag_records << "\n";
    os << "repl_lag_bytes: " << rs.lag_bytes << "\n";
    os << "repl_lag_ms: " << rs.lag_ms << "\n";
  } else {
    os << "repl_last_seq: " << store_.last_seq() << "\n";
  }
  if (federation_ != nullptr) {
    // Lock order: library shared (held here) -> federation mutex.  The
    // inverse never happens: the sink runs outside the federation lock.
    const FederationStats fed = federation_->stats();
    os << "fed_hosts: " << fed.hosts << "\n";
    os << "fed_hosts_available: " << fed.hosts_available << "\n";
    os << "fed_searches: " << fed.searches << "\n";
    os << "fed_fetches: " << fed.fetches << "\n";
    os << "fed_hedges: " << fed.hedges << "\n";
    os << "fed_hedge_wins: " << fed.hedge_wins << "\n";
    os << "fed_partial_results: " << fed.partial_results << "\n";
    os << "fed_degraded_seen: " << fed.degraded_seen << "\n";
    os << "fed_skipped_open: " << fed.skipped_open << "\n";
    os << "fed_sync_runs: " << fed.sync_runs << "\n";
    os << "fed_sync_models: " << fed.sync_models << "\n";
    os << "fed_sync_failures: " << fed.sync_failures << "\n";
    os << "fed_mirror_serves: " << fed.mirror_serves << "\n";
  }
  return Response::ok_text(os.str());
}

// ---------------------------------------------------------------------------
// Federation routes (docs/federation.md)
// ---------------------------------------------------------------------------

FederatedLibrary& PowerPlayApp::enable_federation(FederationOptions options) {
  if (federation_ != nullptr) return *federation_;
  federation_ = std::make_unique<FederatedLibrary>(std::move(options));
  // The mirror sink: journal every new/changed remote definition into
  // this site's store (so synced models survive crashes and partitions)
  // and register it for local evaluation.  A follower's store belongs to
  // its replication stream, so only the registry is updated there — the
  // primary's own sync journals the model and replication delivers it.
  federation_->set_mirror_sink([this](const model::UserModelDefinition& def) {
    std::unique_lock lib(library_mutex_);
    if (role_.load() == ReplRole::kPrimary) {
      store_.save_model(def);
    }
    registry_.add_or_replace(std::make_shared<model::UserModel>(def));
    model_revision_.fetch_add(1);
  });
  return *federation_;
}

Deadline PowerPlayApp::request_deadline() const {
  const auto budget = request_budget_ms_.load();
  return budget > 0 ? Deadline::after(std::chrono::milliseconds(budget))
                    : Deadline::never();
}

// GET /fed/models[?q=substr] — fan-out search, merged and ranked, with
// the per-host verdict lines that make partial results explicit.
Response PowerPlayApp::fed_models(const Params& q) {
  const FedSearchResult result =
      federation_->search(get_or(q, "q"), request_deadline());
  std::ostringstream os;
  os << "# federated models: " << result.models.size()
     << (result.partial ? " (partial)" : "")
     << (result.stale ? " (stale)" : "") << "\n";
  for (const FedModelEntry& m : result.models) {
    os << m.name << " replicas=" << m.replicas
       << (m.stale ? " stale" : "") << "\n";
  }
  os << "# hosts\n";
  for (const FedHostOutcome& h : result.hosts) {
    os << h.host << " " << to_string(h.status) << " items=" << h.items;
    if (h.stale) os << " stale-mirror";
    if (!h.error.empty()) os << " error=\"" << h.error << "\"";
    os << "\n";
  }
  Response r = Response::ok_text(os.str());
  r.headers["x-fed-partial"] = result.partial ? "1" : "0";
  r.headers["x-fed-stale"] = result.stale ? "1" : "0";
  return r;
}

// GET /fed/model?name=N — hedged, health-routed fetch; the body is the
// definition in library serialization format, provenance in headers.
Response PowerPlayApp::fed_model(const Params& q) {
  const std::string name = get_or(q, "name");
  if (name.empty()) return Response::bad_request("missing name");
  FedFetchResult result;
  try {
    result = federation_->fetch_model(name, request_deadline());
  } catch (const HttpError& e) {
    Response r;
    r.status = 502;
    r.content_type = "text/plain";
    r.body = std::string(e.what()) + "\n";
    return r;
  }
  Response r = Response::ok_text(library::to_text(result.def));
  r.headers["x-fed-origin"] = result.origin;
  r.headers["x-fed-hedged"] = result.hedged ? "1" : "0";
  r.headers["x-fed-hedge-won"] = result.hedge_won ? "1" : "0";
  r.headers["x-fed-from-mirror"] = result.from_mirror ? "1" : "0";
  r.headers["x-fed-staleness-ms"] = std::to_string(result.staleness_ms);
  return r;
}

// GET /fed/hosts — health table for ops.
Response PowerPlayApp::fed_hosts_page() const {
  std::ostringstream os;
  os << "# federated hosts\n";
  for (const FedHostStats& h : federation_->hosts()) {
    os << h.key << " breaker=";
    switch (h.breaker) {
      case CircuitBreaker::State::kClosed:
        os << "closed";
        break;
      case CircuitBreaker::State::kOpen:
        os << "open";
        break;
      case CircuitBreaker::State::kHalfOpen:
        os << "half-open";
        break;
    }
    os << " health=" << h.health << " ewma_ms=" << h.ewma_latency_ms
       << " p95_ms=" << h.p95_latency_ms << " err=" << h.error_rate
       << " inflight=" << h.in_flight << " requests=" << h.requests
       << " failures=" << h.failures << " hedges=" << h.hedges
       << " hedge_wins=" << h.hedge_wins << " skipped=" << h.skipped_open
       << " mirrored=" << h.mirrored_models
       << " synced=" << (h.synced ? 1 : 0)
       << " staleness_ms=" << h.staleness_ms << "\n";
  }
  return Response::ok_text(os.str());
}

// POST /fed/hosts?add=host:port | remove=host:port — admin membership.
Response PowerPlayApp::do_fed_hosts(const Params& q) {
  const std::string add = get_or(q, "add");
  const std::string remove = get_or(q, "remove");
  if (!add.empty()) {
    const std::uint16_t port = parse_peer_spec(add);
    federation_->add_host(port);
    return Response::ok_text("added 127.0.0.1:" + std::to_string(port) +
                             "\n");
  }
  if (!remove.empty()) {
    const std::uint16_t port = parse_peer_spec(remove);
    const std::string key = "127.0.0.1:" + std::to_string(port);
    if (!federation_->remove_host(key)) {
      return Response::not_found(key);
    }
    return Response::ok_text("removed " + key + "\n");
  }
  return Response::bad_request("need add= or remove=");
}

// ---------------------------------------------------------------------------
// Replication (the primary half; web/repl.cpp is the follower half)
// ---------------------------------------------------------------------------

void PowerPlayApp::set_role(ReplRole role, std::string primary_url) {
  {
    std::lock_guard lock(repl_mutex_);
    primary_url_ = std::move(primary_url);
  }
  role_.store(role);
}

void PowerPlayApp::set_repl_stats_source(ReplStatsSource source) {
  std::lock_guard lock(repl_mutex_);
  repl_stats_source_ = std::move(source);
}

void PowerPlayApp::set_promote_hook(PromoteHook hook) {
  std::lock_guard lock(repl_mutex_);
  promote_hook_ = std::move(hook);
}

Response PowerPlayApp::redirect_to_primary(const Request& request) {
  std::string base;
  {
    std::lock_guard lock(repl_mutex_);
    base = primary_url_;
  }
  if (base.empty()) {
    Response r;
    r.status = 503;
    r.content_type = "text/plain";
    r.body = "read-only follower: no primary configured for redirect\n";
    return r;
  }
  // 307 keeps the method (a POSTed form stays a POST at the primary),
  // unlike the 302 most browsers rewrite to GET.
  Response r;
  r.status = 307;
  r.content_type = "text/plain";
  r.headers["location"] = base + request.target;
  r.body = "follower is read-only; retry at the primary\n";
  return r;
}

Response PowerPlayApp::repl_snapshot() {
  const library::ReplSnapshot snapshot = store_.export_replication_snapshot();
  Response r;
  r.status = 200;
  r.content_type = "text/plain";
  r.headers["x-repl-epoch"] = std::to_string(snapshot.epoch);
  r.headers["x-repl-last-seq"] = std::to_string(snapshot.seq);
  r.body = library::encode_snapshot(snapshot);
  return r;
}

Response PowerPlayApp::repl_journal(const Params& q) {
  const std::uint64_t epoch = parse_u64_param(need(q, "epoch"), "epoch");
  const std::uint64_t after = parse_u64_param(need(q, "after"), "after");
  // Clamp the park time well below the server's 15s socket io_timeout so
  // an empty long-poll always answers before the connection reaps.
  const std::uint64_t wait_ms =
      std::min<std::uint64_t>(parse_u64_param(get_or(q, "wait_ms", "0"),
                                              "wait_ms"),
                              10000);
  std::uint64_t max_bytes =
      parse_u64_param(get_or(q, "max_bytes", "1048576"), "max_bytes");
  max_bytes = std::min<std::uint64_t>(max_bytes, 4u << 20);

  library::LibraryStore::ReplFeed feed =
      store_.read_replication_feed(epoch, after, max_bytes);
  if (feed.epoch_ok && !feed.gap && feed.records.empty() && wait_ms > 0) {
    store_.wait_for_commit(epoch, after, std::chrono::milliseconds(wait_ms));
    feed = store_.read_replication_feed(epoch, after, max_bytes);
  }

  if (!feed.epoch_ok) {
    // The stream the follower was reading no longer exists (rotation,
    // recovery, or promotion).  Tell it which epoch is live so the
    // mismatch is diagnosable, and let it re-bootstrap.
    Response r;
    r.status = 409;
    r.content_type = "text/plain";
    r.headers["x-repl-epoch"] = std::to_string(feed.epoch);
    r.body = "epoch mismatch: stream is at epoch " +
             std::to_string(feed.epoch) + "\n";
    return r;
  }
  if (feed.gap) {
    Response r;
    r.status = 410;
    r.content_type = "text/plain";
    r.headers["x-repl-epoch"] = std::to_string(feed.epoch);
    r.body = "gone: records after " + std::to_string(after) +
             " were compacted away\n";
    return r;
  }

  Response r;
  r.status = 200;
  r.content_type = "application/octet-stream";
  r.headers["x-repl-epoch"] = std::to_string(feed.epoch);
  r.headers["x-repl-last-seq"] = std::to_string(feed.last_seq);
  r.headers["x-repl-pending-bytes"] = std::to_string(feed.pending_bytes);
  r.body = library::Journal::encode_stream(feed.epoch, after + 1,
                                           feed.records);
  return r;
}

Response PowerPlayApp::do_repl_promote() {
  PromoteHook hook;
  {
    std::lock_guard lock(repl_mutex_);
    hook = promote_hook_;
  }
  std::uint64_t epoch = 0;
  if (hook) {
    epoch = hook();
  } else if (role_.load() == ReplRole::kFollower) {
    epoch = store_.promote();
  } else {
    // Already the primary: promotion is idempotent, report the epoch.
    epoch = store_.epoch();
  }
  set_role(ReplRole::kPrimary);
  return Response::ok_text("role: primary\nepoch: " + std::to_string(epoch) +
                           "\n");
}

Response PowerPlayApp::page_root() const {
  HtmlPage page("PowerPlay");
  page.paragraph(
      "Early power exploration.  WWW browsers do not supply user names, "
      "so please identify yourself:");
  HtmlForm form("/menu", "GET");
  form.text_field("Username", "user", "");
  form.submit("Enter");
  page.raw(form.str());
  return Response::ok_html(page.str());
}

Response PowerPlayApp::page_menu(const Params& q) {
  const UserProfile profile = authorized_user(q);
  const std::string& user = profile.username;

  HtmlPage page("PowerPlay Main Menu");
  page.paragraph("User: " + user);
  std::string defaults = "Defaults: ";
  for (const auto& [name, value] : profile.defaults) {
    defaults += name + "=" + library::number_text(value) + "  ";
  }
  page.paragraph(defaults);
  page.raw("<ul>");
  page.raw("<li>" + link("/library", {{"user", user}}, "Model library") +
           "</li>");
  page.raw("<li>" + link("/newmodel", {{"user", user}}, "Define a new model") +
           "</li>");
  page.raw("<li>" + link("/help", {{"user", user}}, "Tutorial and help") +
           "</li>");
  page.raw("</ul>");
  page.heading("Your designs", 3);
  page.raw("<ul>");
  for (const std::string& d : profile.designs) {
    page.raw("<li>" +
             link("/design", {{"user", user}, {"name", d}}, d) + "</li>");
  }
  page.raw("</ul>");
  page.paragraph(
      "Open any stored design by name (designs are shared for re-use):");
  HtmlForm open("/design", "GET");
  open.hidden("user", user);
  open.text_field("Design name", "name", "");
  open.submit("Open / create");
  page.raw(open.str());
  return Response::ok_html(page.str());
}

Response PowerPlayApp::page_library(const Params& q) const {
  const std::string user = need(q, "user");
  HtmlPage page("PowerPlay Model Library");
  for (Category c :
       {Category::kComputation, Category::kStorage, Category::kController,
        Category::kInterconnect, Category::kProcessor, Category::kAnalog,
        Category::kConverter, Category::kSystem, Category::kMacro}) {
    const auto models = registry_.by_category(c);
    if (models.empty()) continue;
    page.heading(model::to_string(c), 3);
    page.raw("<ul>");
    for (const model::Model* m : models) {
      page.raw("<li>" +
               link("/model", {{"user", user}, {"name", m->name()}},
                    m->name()) +
               " (" + link("/doc", {{"user", user}, {"name", m->name()}},
                           "doc") +
               ")</li>");
    }
    page.raw("</ul>");
  }
  page.raw(link("/menu", {{"user", user}}, "Back to menu"));
  return Response::ok_html(page.str());
}

Response PowerPlayApp::page_model(const Params& q) const {
  const std::string user = need(q, "user");
  const std::string name = need(q, "name");
  const model::Model& m = registry_.at(name);
  if (explore::is_surrogate_doc(m.documentation())) {
    surrogate_hits_total_.fetch_add(1);
  }

  HtmlPage page("Model: " + name);
  page.paragraph(m.documentation());

  // Input form pre-filled with defaults or the submitted values.
  HtmlForm form("/model", "GET");
  form.hidden("user", user);
  form.hidden("name", name);
  bool have_values = false;
  model::MapParamReader reader;
  for (const model::ParamSpec& spec : m.params()) {
    const std::string field = "p_" + spec.name;
    std::string value = get_or(q, field);
    if (!value.empty()) {
      have_values = true;
      reader.set(spec.name, parse_double(value, spec.name));
    } else {
      value = library::number_text(spec.default_value);
      reader.set(spec.name, spec.default_value);
    }
    form.text_field(spec.name + " [" + spec.unit + "] — " + spec.description,
                    field, value);
  }
  form.submit("Compute");
  page.raw(form.str());

  if (have_values) {
    const model::Estimate e = m.evaluate(reader);
    page.heading("Result", 3);
    HtmlTable t;
    t.header({"Csw/op", "Energy/op", "Dynamic", "Static", "Total", "Area",
              "Delay"});
    t.row({format_si(e.switched_capacitance.si(), "F"),
           format_si(e.energy_per_op.si(), "J"),
           format_si(e.dynamic_power.si(), "W"),
           format_si(e.static_power.si(), "W"),
           format_si(e.total_power().si(), "W"),
           format_area(e.area.si()), format_si(e.delay.si(), "s")});
    page.raw(t.str());

    // Save into a design spreadsheet.
    page.heading("Add to design", 3);
    HtmlForm add("/design/add", "POST");
    add.hidden("user", user);
    add.hidden("model", name);
    for (const model::ParamSpec& spec : m.params()) {
      add.hidden("p_" + spec.name,
                 get_or(q, "p_" + spec.name,
                        library::number_text(spec.default_value)));
    }
    add.text_field("Design name", "design", "");
    add.text_field("Row name", "row", name);
    add.submit("Add to design");
    page.raw(add.str());
  }
  page.raw(link("/library", {{"user", user}}, "Back to library"));
  return Response::ok_html(page.str());
}

Response PowerPlayApp::do_design_add(const Params& q) {
  const std::string user = authorized_user(q).username;
  const std::string model_name = need(q, "model");
  const std::string design_name = need(q, "design");
  const std::string row_name = need(q, "row");
  library::validate_store_name(design_name);

  const model::Model& m = registry_.at(model_name);
  sheet::Design design =
      store_.has_design(design_name)
          ? sheet::Design(*store_.load_design(design_name, registry_))
          : sheet::Design(design_name);
  if (!store_.has_design(design_name)) {
    // New sheets start from the user's defaults as globals.
    const UserProfile profile = store_.ensure_user(user);
    for (const auto& [nm, value] : profile.defaults) {
      design.globals().set(nm, value);
    }
  }

  sheet::Row& row = design.add_row(row_name, registry_.find_shared(model_name));
  for (const model::ParamSpec& spec : m.params()) {
    const std::string field = "p_" + spec.name;
    const std::string value = get_or(q, field);
    // Only record explicit overrides that differ from the defaults so
    // globals (vdd, f) keep flowing through inheritance.
    if (!value.empty() &&
        parse_double(value, spec.name) != spec.default_value) {
      row.params.set(spec.name, parse_double(value, spec.name));
    }
  }
  store_.save_design(design);

  UserProfile profile = store_.ensure_user(user);
  if (std::find(profile.designs.begin(), profile.designs.end(),
                design_name) == profile.designs.end()) {
    profile.designs.push_back(design_name);
    store_.save_user(profile);
  }
  return render_design(user, design_name, "added row '" + row_name + "'");
}

Response PowerPlayApp::page_design(const Params& q) const {
  const std::string user = need(q, "user");
  const std::string name = need(q, "name");
  return render_design(user, name);
}

Response PowerPlayApp::render_design(const std::string& user,
                                     const std::string& design_name,
                                     const std::string& message) const {
  library::validate_store_name(design_name);
  if (!store_.has_design(design_name)) {
    HtmlPage page("Design: " + design_name);
    page.paragraph("No rows yet — add instances from the model library.");
    page.raw(link("/library", {{"user", user}}, "Model library"));
    return Response::ok_html(page.str());
  }
  const auto design = store_.load_design(design_name, registry_);
  const sheet::PlayResult result = design->play();

  HtmlPage page(design_name + " summary");
  if (!message.empty()) page.paragraph("[" + message + "]");
  if (!design->description().empty()) {
    page.paragraph(design->description());
  }

  // Editable globals + Play button (the paper's "user can change any
  // parameter from the top page ... When the Play button is pressed
  // power is calculated for the entire design").
  HtmlForm play("/design/play", "POST");
  play.hidden("user", user);
  play.hidden("name", design_name);
  for (const std::string& nm : design->globals().local_names()) {
    auto found = design->globals().lookup(nm);
    if (const double* literal = std::get_if<double>(found->binding)) {
      play.text_field(nm, "g_" + nm, library::number_text(*literal));
    } else {
      const auto& f = std::get<expr::ExprPtr>(*found->binding);
      play.text_field(nm + " (formula)", "g_" + nm, expr::to_source(*f));
    }
  }
  play.submit("PLAY");
  page.raw(play.str());

  std::string sheet_html;
  append_spreadsheet(result, user, sheet_html);
  page.raw(sheet_html);
  page.paragraph("Computed in " + std::to_string(result.iterations) +
                 " sweep(s).");
  page.raw(link("/menu", {{"user", user}}, "Back to menu"));
  return Response::ok_html(page.str());
}

Response PowerPlayApp::do_design_play(const Params& q) {
  const std::string user = authorized_user(q).username;
  const std::string name = need(q, "name");
  library::validate_store_name(name);
  if (!store_.has_design(name)) {
    return Response::not_found("design '" + name + "'");
  }
  sheet::Design design(*store_.load_design(name, registry_));
  for (const auto& [key, value] : q) {
    if (key.rfind("g_", 0) != 0 || value.empty()) continue;
    const std::string param = key.substr(2);
    // Accept either a number or a formula.
    try {
      design.globals().set(param, parse_double(value, param));
    } catch (const HttpError&) {
      design.globals().set_formula(param, value);
    }
  }
  store_.save_design(design);
  return render_design(user, name, "recomputed");
}

Response PowerPlayApp::do_design_setrow(const Params& q) {
  const std::string user = authorized_user(q).username;
  const std::string name = need(q, "name");
  const std::string row_name = need(q, "row");
  const std::string param = need(q, "param");
  const std::string value = need(q, "value");
  library::validate_store_name(name);
  sheet::Design design(*store_.load_design(name, registry_));
  sheet::Row* row = design.find_row(row_name);
  if (row == nullptr) {
    return Response::not_found("row '" + row_name + "'");
  }
  try {
    row->params.set(param, parse_double(value, param));
  } catch (const HttpError&) {
    row->params.set_formula(param, value);
  }
  store_.save_design(design);
  return render_design(user, name,
                       "set " + row_name + "." + param + " = " + value);
}

// ---------------------------------------------------------------------------
// Async sweep jobs (the parallel evaluation engine's web face)
// ---------------------------------------------------------------------------

namespace {

/// One sweep axis from the form: param + linspace(from, to, points).
struct SweepAxis {
  std::string param;
  std::vector<double> values;
};

SweepAxis parse_axis(const Params& q, const std::string& prefix) {
  SweepAxis axis;
  axis.param = need(q, prefix + "_param");
  const double from =
      parse_double(need(q, prefix + "_from"), prefix + "_from");
  const double to = parse_double(need(q, prefix + "_to"), prefix + "_to");
  const double points_value =
      parse_double(get_or(q, prefix + "_points", "8"), prefix + "_points");
  const int points = static_cast<int>(points_value);
  if (points < 1 || points > 256 || points != points_value) {
    throw HttpError(prefix + "_points must be an integer in [1, 256]");
  }
  axis.values = sheet::linspace(from, to, points);
  return axis;
}

}  // namespace

Response PowerPlayApp::do_design_sweep(const Params& q) {
  const std::string user = authorized_user(q).username;
  const std::string name = need(q, "name");
  library::validate_store_name(name);
  if (!store_.has_design(name)) {
    return Response::not_found("design '" + name + "'");
  }
  const SweepAxis x = parse_axis(q, "x");
  const std::string row = get_or(q, "row");
  const bool grid = !get_or(q, "y_param").empty();
  if (grid && !row.empty()) {
    throw HttpError("grid sweeps take global parameters only; drop 'row' "
                    "or 'y_param'");
  }

  // Snapshot the design now, under the app's locks; the job then runs
  // entirely on this private clone with no store or registry access.
  sheet::Design snapshot(*store_.load_design(name, registry_));

  // Validate the sweep spec up front so a typo answers 400 here rather
  // than a failed job later.
  std::ostringstream describe;
  engine::JobManager::Work work;
  if (grid) {
    const SweepAxis y = parse_axis(q, "y");
    if (x.param == y.param) {
      throw HttpError("sweep axes must name two different parameters");
    }
    // All unknown names in one reply: a request with two typos gets
    // both called out, not one per round trip.
    sheet::require_globals(snapshot, {x.param, y.param}, "sweep");
    describe << "sweep " << name << ": " << x.param << " x " << y.param
             << " (" << x.values.size() << "x" << y.values.size()
             << " grid)";
    work = [this, snapshot = std::move(snapshot), x,
            y](const engine::JobManager::Progress& progress) {
      // Lane-batched columnar sweep: workers stream block metrics into
      // shared column arrays (no per-point PlayResults), progress and
      // cancellation/deadline checks fire once per lane block, and the
      // renderers serialize straight off the columns.
      const sheet::ColumnarGrid g = engine_.sweep_grid_columnar(
          snapshot, x.param, x.values, y.param, y.values, progress);
      engine::JobResult result{sheet::grid_table(g), sheet::grid_csv(g),
                               sheet::grid_json(g)};
      columnar_bytes_streamed_total_.fetch_add(
          result.csv.size() + result.json.size());
      return result;
    };
  } else if (!row.empty()) {
    const sheet::Row* r = snapshot.find_row(row);
    if (r == nullptr) return Response::not_found("row '" + row + "'");
    describe << "sweep " << name << ": " << row << "." << x.param << " ("
             << x.values.size() << " points)";
    work = [this, snapshot = std::move(snapshot), row,
            x](const engine::JobManager::Progress& progress) {
      const auto points = engine_.sweep_row_param(snapshot, row, x.param,
                                                  x.values, progress);
      return engine::JobResult{sheet::sweep_table(x.param, points),
                               sheet::sweep_csv(x.param, points)};
    };
  } else {
    sheet::require_globals(snapshot, {x.param}, "sweep");
    describe << "sweep " << name << ": " << x.param << " ("
             << x.values.size() << " points)";
    work = [this, snapshot = std::move(snapshot),
            x](const engine::JobManager::Progress& progress) {
      const auto points =
          engine_.sweep_global(snapshot, x.param, x.values, progress);
      return engine::JobResult{sheet::sweep_table(x.param, points),
                               sheet::sweep_csv(x.param, points)};
    };
  }

  const std::uint64_t id = jobs_.submit(user, describe.str(),
                                        std::move(work));
  std::ostringstream os;
  os << "id: " << id << "\n";
  os << "status: queued\n";
  os << "poll: /job?id=" << id << "\n";
  os << "csv: /job?id=" << id << "&format=csv\n";
  return Response::ok_text(os.str());
}

// ---------------------------------------------------------------------------
// Design-space exploration jobs (src/explore behind POST /design/explore)
// ---------------------------------------------------------------------------

namespace {

/// "vdd=1:2:8;f=1e6:4e6:4" — semicolon-separated grid axes, each a
/// linspace(from, to, points).
std::vector<explore::ParetoAxis> parse_explore_axes(const std::string& text) {
  std::vector<explore::ParetoAxis> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    const std::size_t c1 = item.find(':', eq + 1);
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : item.find(':', c1 + 1);
    if (eq == std::string::npos || eq == 0 || c2 == std::string::npos) {
      throw HttpError("bad axis '" + item +
                      "' — expected name=from:to:points");
    }
    explore::ParetoAxis axis;
    axis.param = item.substr(0, eq);
    const double from = parse_double(item.substr(eq + 1, c1 - eq - 1),
                                     axis.param + " from");
    const double to =
        parse_double(item.substr(c1 + 1, c2 - c1 - 1), axis.param + " to");
    const double points_value =
        parse_double(item.substr(c2 + 1), axis.param + " points");
    const int points = static_cast<int>(points_value);
    if (points < 1 || points > 256 || points != points_value) {
      throw HttpError("axis '" + axis.param +
                      "' points must be an integer in [1, 256]");
    }
    axis.values = sheet::linspace(from, to, points);
    out.push_back(std::move(axis));
  }
  if (out.empty()) throw HttpError("no grid axes given");
  return out;
}

std::size_t parse_sample_count(const Params& q, std::size_t fallback) {
  const std::uint64_t v = parse_u64_param(
      get_or(q, "samples", std::to_string(fallback)), "samples");
  if (v < 1 || v > explore::ParetoSpec::kMaxPoints) {
    throw HttpError("samples must be in [1, " +
                    std::to_string(explore::ParetoSpec::kMaxPoints) + "]");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

Response PowerPlayApp::do_design_explore(const Params& q) {
  const std::string user = authorized_user(q).username;
  const std::string name = need(q, "name");
  library::validate_store_name(name);
  if (!store_.has_design(name)) {
    return Response::not_found("design '" + name + "'");
  }
  const std::string mode = need(q, "mode");
  const std::uint64_t seed =
      parse_u64_param(get_or(q, "seed", "1"), "seed");

  // Snapshot the design under the app's locks; the job runs on this
  // private clone.  Every spec is validated *here* (unknown parameters
  // all named in one reply) so a typo answers 400, not a failed job.
  sheet::Design snapshot(*store_.load_design(name, registry_));

  std::ostringstream describe;
  engine::JobManager::Work work;
  if (mode == "mc") {
    explore::McSpec spec;
    spec.params = explore::parse_dist_params(need(q, "params"));
    spec.samples = parse_sample_count(q, 1000);
    spec.seed = seed;
    spec.budget_w = parse_double(get_or(q, "budget", "0"), "budget");
    std::vector<std::string> names;
    for (const explore::DistParam& p : spec.params) names.push_back(p.name);
    sheet::require_globals(snapshot, names, "explore mc");
    describe << "explore mc " << name << ": " << spec.samples
             << " samples over";
    for (const std::string& n : names) describe << ' ' << n;
    work = [this, snapshot = std::move(snapshot), spec = std::move(spec)](
               const engine::JobManager::Progress& progress) {
      const explore::McResult r =
          explore::run_monte_carlo(engine_, snapshot, spec, progress);
      mc_points_total_.fetch_add(r.samples);
      return engine::JobResult{explore::mc_table(r), explore::mc_csv(r),
                               explore::mc_json(r)};
    };
  } else if (mode == "pareto") {
    explore::ParetoSpec spec;
    const std::string axes = get_or(q, "axes");
    if (!axes.empty()) {
      spec.axes = parse_explore_axes(axes);
    } else {
      spec.dists = explore::parse_dist_params(need(q, "params"));
      spec.samples = parse_sample_count(q, 1024);
      spec.seed = seed;
    }
    std::vector<std::string> names;
    for (const explore::ParetoAxis& a : spec.axes) names.push_back(a.param);
    for (const explore::DistParam& p : spec.dists) names.push_back(p.name);
    sheet::require_globals(snapshot, names, "explore pareto");
    std::istringstream objs(need(q, "objectives"));
    std::string objective;
    while (std::getline(objs, objective, ',')) {
      if (objective.empty()) continue;
      spec.objectives.push_back(explore::parse_objective(objective, names));
    }
    if (spec.objectives.empty()) {
      throw HttpError("no objectives given");
    }
    describe << "explore pareto " << name << ":";
    for (const explore::Objective& o : spec.objectives) {
      describe << ' ' << (o.maximize ? "max:" : "min:") << o.name;
    }
    work = [this, snapshot = std::move(snapshot), spec = std::move(spec)](
               const engine::JobManager::Progress& progress) {
      const explore::ParetoResult r =
          explore::run_pareto(engine_, snapshot, spec, progress);
      return engine::JobResult{explore::pareto_table(r),
                               explore::pareto_csv(r),
                               explore::pareto_json(r)};
    };
  } else if (mode == "inverse") {
    explore::InverseSpec spec;
    spec.param = need(q, "param");
    spec.lo = parse_double(need(q, "lo"), "lo");
    spec.hi = parse_double(need(q, "hi"), "hi");
    spec.metric = get_or(q, "metric", "power");
    spec.limit = parse_double(need(q, "limit"), "limit");
    const std::string bound = get_or(q, "bound", "le");
    if (bound != "le" && bound != "ge") {
      throw HttpError("bound must be 'le' (metric <= limit) or 'ge'");
    }
    spec.upper_bound = bound == "le";
    const std::string goal = get_or(q, "goal", "max");
    if (goal != "max" && goal != "min") {
      throw HttpError("goal must be 'max' or 'min'");
    }
    spec.maximize = goal == "max";
    if (!(spec.lo < spec.hi)) {
      throw HttpError("inverse bracket requires lo < hi");
    }
    if (!explore::is_metric(spec.metric)) {
      throw HttpError("unknown metric '" + spec.metric +
                      "' — use power, area, energy or delay");
    }
    sheet::require_globals(snapshot, {spec.param}, "explore inverse");
    describe << "explore inverse " << name << ": "
             << (spec.maximize ? "largest " : "smallest ") << spec.param
             << " with " << spec.metric
             << (spec.upper_bound ? " <= " : " >= ") << spec.limit;
    work = [this, snapshot = std::move(snapshot), spec = std::move(spec)](
               const engine::JobManager::Progress& progress) {
      const explore::InverseResult r =
          explore::solve_inverse(engine_, snapshot, spec, progress);
      return engine::JobResult{explore::inverse_table(spec, r),
                               explore::inverse_csv(spec, r)};
    };
  } else if (mode == "fit") {
    explore::FitSpec spec;
    spec.model_name = need(q, "model");
    library::validate_store_name(spec.model_name);
    spec.params = explore::parse_dist_params(need(q, "params"));
    spec.samples = parse_sample_count(q, 256);
    spec.seed = seed;
    spec.basis = get_or(q, "basis", "poly2");
    if (spec.basis != "poly1" && spec.basis != "poly2" &&
        spec.basis != "log") {
      throw HttpError("basis must be poly1, poly2 or log");
    }
    spec.holdout_fraction =
        parse_double(get_or(q, "holdout", "0.25"), "holdout");
    if (!(spec.holdout_fraction > 0 && spec.holdout_fraction <= 0.5)) {
      throw HttpError("holdout must be in (0, 0.5]");
    }
    std::vector<std::string> names;
    for (const explore::DistParam& p : spec.params) names.push_back(p.name);
    sheet::require_globals(snapshot, names, "explore fit");
    describe << "explore fit " << name << " -> model " << spec.model_name
             << " (" << spec.basis << ", " << spec.samples << " samples)";
    work = [this, snapshot = std::move(snapshot), spec = std::move(spec)](
               const engine::JobManager::Progress& progress) {
      explore::FitResult fit =
          explore::fit_surrogate(engine_, snapshot, spec, progress);
      // Validate by construction, then commit to the shared library
      // exactly like POST /newmodel: journaled save (so the model
      // survives reopen and replicates to followers), registry swap,
      // revision bump so cached pages re-render.
      auto surrogate = std::make_shared<model::UserModel>(fit.definition);
      {
        std::unique_lock lib(library_mutex_);
        store_.save_model(fit.definition, false);
        registry_.add_or_replace(std::move(surrogate));
        model_revision_.fetch_add(1);
      }
      surrogate_fits_total_.fetch_add(1);
      return engine::JobResult{explore::fit_table(fit),
                               explore::fit_csv(fit)};
    };
  } else {
    throw HttpError("unknown explore mode '" + mode +
                    "' — use mc, pareto, inverse or fit");
  }

  explore_jobs_total_.fetch_add(1);
  const std::uint64_t id =
      jobs_.submit(user, describe.str(), std::move(work));
  std::ostringstream os;
  os << "id: " << id << "\n";
  os << "status: queued\n";
  os << "poll: /job?id=" << id << "\n";
  os << "csv: /job?id=" << id << "&format=csv\n";
  os << "json: /job?id=" << id << "&format=json\n";
  return Response::ok_text(os.str());
}

namespace {

std::uint64_t parse_job_id(const std::string& id_text) {
  try {
    std::size_t pos = 0;
    const std::uint64_t id = std::stoull(id_text, &pos);
    if (pos != id_text.size()) throw std::invalid_argument(id_text);
    return id;
  } catch (const std::exception&) {
    throw HttpError("bad job id '" + id_text + "'");
  }
}

/// points_done / points_total as a decimal fraction; 0 before start.
double job_fraction(const engine::JobSnapshot& snap) {
  if (snap.total == 0) return 0.0;
  return static_cast<double>(snap.done) / static_cast<double>(snap.total);
}

std::string fraction_text(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << fraction;
  return os.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One job as a JSON object, `result` included (from JobResult::json)
/// when the job is done and produced one.
std::string job_json(const engine::JobSnapshot& snap) {
  std::ostringstream os;
  os << "{\"id\":" << snap.id << ",\"user\":\"" << json_escape(snap.user)
     << "\",\"description\":\"" << json_escape(snap.description)
     << "\",\"status\":\"" << engine::to_string(snap.status)
     << "\",\"done\":" << snap.done << ",\"total\":" << snap.total
     << ",\"progress\":" << fraction_text(job_fraction(snap));
  if (snap.status == engine::JobStatus::kFailed ||
      snap.status == engine::JobStatus::kCancelled) {
    os << ",\"error\":\"" << json_escape(snap.error) << "\"";
  }
  if (snap.status == engine::JobStatus::kDone &&
      !snap.result.json.empty()) {
    os << ",\"result\":" << snap.result.json;
  }
  os << "}";
  return os.str();
}

}  // namespace

Response PowerPlayApp::page_job(const Params& q) const {
  const std::string id_text = need(q, "id");
  const std::uint64_t id = parse_job_id(id_text);
  const auto snap = jobs_.get(id);
  if (!snap.has_value()) {
    return Response::not_found("job " + id_text);
  }
  if (get_or(q, "format") == "csv") {
    if (snap->status != engine::JobStatus::kDone) {
      return Response::bad_request("job " + id_text + " is " +
                                   engine::to_string(snap->status) +
                                   "; CSV is available once done");
    }
    Response r;
    r.content_type = "text/csv";
    r.body = snap->result.csv;
    return r;
  }
  if (get_or(q, "format") == "json") {
    Response r;
    r.content_type = "application/json";
    r.body = job_json(*snap) + "\n";
    return r;
  }
  std::ostringstream os;
  os << "id: " << snap->id << "\n";
  os << "user: " << snap->user << "\n";
  os << "description: " << snap->description << "\n";
  os << "status: " << engine::to_string(snap->status) << "\n";
  os << "progress: " << snap->done << "/" << snap->total << "\n";
  os << "progress_fraction: " << fraction_text(job_fraction(*snap)) << "\n";
  if (snap->status == engine::JobStatus::kFailed ||
      snap->status == engine::JobStatus::kCancelled) {
    os << "error: " << snap->error << "\n";
  }
  if (snap->status == engine::JobStatus::kDone) {
    os << "\n" << snap->result.table;
  }
  return Response::ok_text(os.str());
}

Response PowerPlayApp::do_job_cancel(const Params& q) {
  const std::string user = authorized_user(q).username;
  const std::string id_text = need(q, "id");
  const std::uint64_t id = parse_job_id(id_text);
  const auto snap = jobs_.get(id);
  if (!snap.has_value()) {
    return Response::not_found("job " + id_text);
  }
  if (snap->user != user) {
    throw AccessDenied("job " + id_text + " belongs to another user");
  }
  std::ostringstream os;
  os << "id: " << id << "\n";
  switch (jobs_.cancel(id)) {
    case engine::CancelOutcome::kCancelled:
      os << "status: cancelled\n";
      break;
    case engine::CancelOutcome::kRequested:
      // The job stops at its next sweep point; poll /job for the
      // terminal status.
      os << "status: cancelling\n";
      os << "poll: /job?id=" << id << "\n";
      break;
    case engine::CancelOutcome::kAlreadyFinished:
      os << "status: " << engine::to_string(snap->status) << "\n";
      os << "note: job had already finished\n";
      break;
    case engine::CancelOutcome::kNoSuchJob:
      return Response::not_found("job " + id_text);
  }
  return Response::ok_text(os.str());
}

Response PowerPlayApp::page_jobs(const Params& q) const {
  const std::string user = need(q, "user");
  if (get_or(q, "format") == "json") {
    std::string body = "[";
    bool first = true;
    for (const engine::JobSnapshot& snap : jobs_.list(user)) {
      if (!first) body += ",";
      first = false;
      body += job_json(snap);
    }
    body += "]\n";
    Response r;
    r.content_type = "application/json";
    r.body = std::move(body);
    return r;
  }
  std::ostringstream os;
  for (const engine::JobSnapshot& snap : jobs_.list(user)) {
    os << snap.id << " " << engine::to_string(snap.status) << " "
       << snap.done << "/" << snap.total << " "
       << fraction_text(job_fraction(snap)) << " " << snap.description
       << "\n";
  }
  return Response::ok_text(os.str());
}

Response PowerPlayApp::page_new_model(const Params& q) const {
  const std::string user = need(q, "user");
  HtmlPage page("Define a new model");
  page.paragraph(
      "Equations may use your declared parameters plus the implicit "
      "globals vdd [V] and f [Hz].  Declare parameters as "
      "name=default pairs separated by spaces, e.g. 'bitwidth=16 "
      "alpha=0.5'.  Leave equation fields blank if unused.");
  HtmlForm form("/newmodel", "POST");
  form.hidden("user", user);
  form.text_field("Model name", "name", "");
  form.text_field("Category", "category", "computation");
  form.text_field("Documentation", "doc", "");
  form.text_field("Parameters (name=default ...)", "params", "");
  form.text_field("C full-swing [F]", "c_fullswing", "");
  form.text_field("C partial-swing [F]", "c_partialswing", "");
  form.text_field("V swing [V]", "v_swing", "");
  form.text_field("Static current [A]", "static_current", "");
  form.text_field("Direct power [W]", "power_direct", "");
  form.text_field("Area [m^2]", "area", "");
  form.text_field("Delay [s]", "delay", "");
  form.text_field("Proprietary (1 = do not share)", "proprietary", "0");
  form.submit("Create model");
  page.raw(form.str());
  return Response::ok_html(page.str());
}

Response PowerPlayApp::do_new_model(const Params& q) {
  const std::string user = authorized_user(q).username;
  model::UserModelDefinition def;
  def.name = need(q, "name");
  library::validate_store_name(def.name);
  def.category = library::category_from_string(
      get_or(q, "category", "computation"));
  def.documentation = get_or(q, "doc");

  // "name=default" pairs.
  std::istringstream is(get_or(q, "params"));
  std::string pair;
  while (is >> pair) {
    const std::size_t eq = pair.find('=');
    model::ParamSpec spec;
    if (eq == std::string::npos) {
      spec.name = pair;
      spec.default_value = 0;
    } else {
      spec.name = pair.substr(0, eq);
      spec.default_value =
          parse_double(pair.substr(eq + 1), "default of " + spec.name);
    }
    def.params.push_back(std::move(spec));
  }
  def.c_fullswing = get_or(q, "c_fullswing");
  def.c_partialswing = get_or(q, "c_partialswing");
  def.v_swing = get_or(q, "v_swing");
  def.static_current = get_or(q, "static_current");
  def.power_direct = get_or(q, "power_direct");
  def.area = get_or(q, "area");
  def.delay = get_or(q, "delay");

  // Validate by construction; surfaces equation errors to the form user.
  auto user_model = std::make_shared<model::UserModel>(def);
  const bool proprietary = get_or(q, "proprietary", "0") == "1";
  store_.save_model(def, proprietary);
  registry_.add_or_replace(std::move(user_model));
  // A redefinition changes Play results without changing any design's
  // fingerprint; bump the registry generation so cached pages rendered
  // against the old definition can't revalidate.
  model_revision_.fetch_add(1);

  HtmlPage page("Model created");
  page.paragraph("Model '" + def.name + "' is now in the shared library" +
                 std::string(proprietary ? " (proprietary: not exported)."
                                         : "."));
  page.raw(link("/model", {{"user", user}, {"name", def.name}},
                "Open its input form"));
  return Response::ok_html(page.str());
}

Response PowerPlayApp::page_doc(const Params& q) const {
  const std::string user = need(q, "user");
  const std::string name = need(q, "name");
  const model::Model& m = registry_.at(name);
  if (explore::is_surrogate_doc(m.documentation())) {
    surrogate_hits_total_.fetch_add(1);
  }
  HtmlPage page("Documentation: " + name);
  page.paragraph("Category: " + model::to_string(m.category()));
  page.paragraph(m.documentation());
  page.heading("Parameters", 3);
  HtmlTable t;
  t.header({"Name", "Description", "Default", "Unit"});
  for (const model::ParamSpec& s : m.params()) {
    t.row({s.name, s.description, library::number_text(s.default_value),
           s.unit});
  }
  page.raw(t.str());
  page.raw(link("/model", {{"user", user}, {"name", name}},
                "Open input form"));
  return Response::ok_html(page.str());
}

Response PowerPlayApp::page_agent(const Params& q) const {
  const std::string user = need(q, "user");
  const std::string request = get_or(q, "request", "power");
  HtmlPage page("Design Agent");
  page.paragraph(
      "The Design Agent translates a hyperlink request for data into a "
      "sequence of tool invocations determined by the chosen design "
      "context.");
  page.heading("Flows for request '" + request + "'", 3);
  HtmlTable t;
  t.header({"Context", "Tool sequence"});
  for (const std::string& ctx : flow::kStandardContexts) {
    std::string seq;
    for (const std::string& tool : agent_.resolve(request, ctx)) {
      if (!seq.empty()) seq += " -> ";
      seq += tool;
    }
    t.row({ctx, seq});
  }
  page.raw(t.str());
  page.heading("Registered tools", 3);
  page.raw("<ul>");
  for (const std::string& name : agent_.tool_names()) {
    page.raw("<li>" + html_escape(name) + "</li>");
  }
  page.raw("</ul>");
  page.raw(link("/model", {{"user", user}, {"name", "sram_toolflow"}},
                "Try the tool-backed SRAM entry"));
  return Response::ok_html(page.str());
}

Response PowerPlayApp::design_csv(const Params& q) const {
  const std::string name = need(q, "name");
  library::validate_store_name(name);
  if (!store_.has_design(name)) {
    return Response::not_found("design '" + name + "'");
  }
  const auto design = store_.load_design(name, registry_);
  Response r;
  r.content_type = "text/csv";
  r.body = sheet::to_csv(design->play());
  return r;
}

Response PowerPlayApp::page_help(const Params& q) const {
  const std::string user = get_or(q, "user", "guest");
  HtmlPage page("PowerPlay Help & Tutorial");
  page.heading("Quick tutorial", 3);
  page.raw("<ol>");
  page.raw("<li>Identify yourself on the front page; your defaults and "
           "designs are kept on this server.</li>");
  page.raw("<li>Browse the " +
           link("/library", {{"user", user}}, "model library") +
           " and open any model's input form; set parameters and press "
           "Compute — feedback is immediate, so cycle through options "
           "freely.</li>");
  page.raw("<li>When satisfied, add the instance to a design spreadsheet "
           "with a row name.</li>");
  page.raw("<li>On the design page, edit globals (supply voltage, clock) "
           "and press PLAY to recompute every row; totals and per-module "
           "power update together.</li>");
  page.raw("<li>Row parameters accept formulas over the globals "
           "(<code>pixel_rate/16</code>) and over other rows "
           "(<code>rowpower(&quot;Read Bank&quot;)</code>, "
           "<code>totalpower()</code>) — that is how a DC-DC converter "
           "row sizes itself from its loads.</li>");
  page.raw("<li>Define your own models from the " +
           link("/newmodel", {{"user", user}}, "new-model form") +
           "; they join the shared library immediately (mark them "
           "proprietary to keep them off the network API).</li>");
  page.raw("</ol>");
  page.heading("Formula reference", 3);
  page.paragraph(
      "Operators: + - * / % ^, comparisons, && || !, ?:.  Functions: "
      "abs, sqrt, exp, ln, log2, log10, ceil, floor, round, pow, min, "
      "max, if.  Intermodel: rowpower/rowarea/rowenergy/rowdelay"
      "(\"Row\"), totalpower(), totalarea().");
  page.heading("More", 3);
  page.raw("<ul><li>" + link("/agent", {{"user", user}}, "Design Agent") +
           " — tool flows per design context</li><li>" +
           link("/api/models", {}, "Network model-access API") +
           " — share this library with other sites</li></ul>");
  return Response::ok_html(page.str());
}

Response PowerPlayApp::do_set_password(const Params& q) {
  // Changing a password requires the current one (authorized_user).
  UserProfile profile = authorized_user(q);
  profile.set_password(get_or(q, "newpw"));
  store_.save_user(profile);
  HtmlPage page("Password updated");
  page.paragraph(profile.has_password()
                     ? "Access to user '" + profile.username +
                           "' now requires the password."
                     : "Password removed; access is open again.");
  page.raw(link("/menu", {{"user", profile.username},
                          {"pw", get_or(q, "newpw")}},
                "Back to menu"));
  return Response::ok_html(page.str());
}

// ---------------------------------------------------------------------------
// Remote model-access protocol
// ---------------------------------------------------------------------------

Response PowerPlayApp::api_models() const {
  std::string out;
  for (const std::string& name : store_.list_models()) {
    if (!store_.is_proprietary(name)) out += name + "\n";
  }
  return Response::ok_text(out);
}

Response PowerPlayApp::api_model(const Params& q) const {
  const std::string name = need(q, "name");
  library::validate_store_name(name);
  auto def = store_.load_model(name);
  if (!def) return Response::not_found("model '" + name + "'");
  if (store_.is_proprietary(name)) {
    Response r;
    r.status = 403;
    r.content_type = "text/plain";
    r.body = "model '" + name + "' is proprietary\n";
    return r;
  }
  return Response::ok_text(library::to_text(*def));
}

Response PowerPlayApp::api_designs() const {
  std::string out;
  for (const std::string& name : store_.list_designs()) out += name + "\n";
  return Response::ok_text(out);
}

Response PowerPlayApp::api_design(const Params& q) const {
  const std::string name = need(q, "name");
  library::validate_store_name(name);
  if (!store_.has_design(name)) {
    return Response::not_found("design '" + name + "'");
  }
  const auto design = store_.load_design(name, registry_);
  return Response::ok_text(library::to_text(*design));
}

}  // namespace powerplay::web
