// http.hpp — minimal HTTP/1.0 message types and codecs.
//
// Figure 7 (bottom): "This method is modified for WWW using the HyperText
// Transfer Protocol ... using secure scripts at Universal Resource
// Locators to handle information transfer on demand."  The server and
// client in this directory speak this subset: request line + headers +
// optional Content-Length body, one request per connection.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "web/url.hpp"

namespace powerplay::web {

class HttpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Header names are case-insensitive; stored lower-cased.
using Headers = std::map<std::string, std::string>;

struct Request {
  std::string method = "GET";   ///< GET or POST
  std::string target = "/";     ///< raw path?query
  Headers headers;
  std::string body;

  /// Parsed path + query; form bodies merge into `form()`.
  [[nodiscard]] Target parsed_target() const { return parse_target(target); }

  /// Query parameters plus (for POST with a urlencoded body) form fields;
  /// form fields win on collision.
  [[nodiscard]] Params all_params() const;
};

struct Response {
  int status = 200;
  std::string content_type = "text/html";
  Headers headers;
  std::string body;

  static Response ok_html(std::string html);
  static Response ok_text(std::string text);
  static Response not_found(const std::string& what);
  static Response bad_request(const std::string& why);
  static Response server_error(const std::string& why);
  static Response redirect(const std::string& location);
};

std::string status_text(int status);

/// Serialize a request/response to wire form.
std::string to_wire(const Request& request);
std::string to_wire(const Response& response);

/// Parse a complete request/response from wire text.
/// Throws HttpError on malformed input or truncated bodies.
Request parse_request(const std::string& wire);
Response parse_response(const std::string& wire);

/// How many bytes of `partial` constitute a complete message, or nullopt
/// if more data is needed.  Used by the socket readers.
std::optional<std::size_t> message_size(const std::string& partial);

}  // namespace powerplay::web
