// http.hpp — minimal HTTP/1.0 message types and codecs.
//
// Figure 7 (bottom): "This method is modified for WWW using the HyperText
// Transfer Protocol ... using secure scripts at Universal Resource
// Locators to handle information transfer on demand."  The server and
// client in this directory speak this subset: request line + headers +
// optional Content-Length body, one request per connection.
#pragma once

#include <chrono>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "web/url.hpp"

namespace powerplay::web {

class HttpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An I/O deadline expired (connect, read or write).  Subclass of
/// HttpError so existing catch sites keep working; callers that care
/// (retry policies, the server's timeout counter) can catch it
/// specifically.
class HttpTimeout : public HttpError {
 public:
  using HttpError::HttpError;
};

/// Hard cap on one HTTP message (headers + body), enforced both while
/// reading from a socket and when parsing a Content-Length header, so a
/// hostile peer can neither stream unbounded data nor make us reserve
/// an absurd allocation up front.
inline constexpr std::size_t kMaxMessageBytes = 16u << 20;  // 16 MiB

/// Absolute point in time after which socket I/O gives up with
/// HttpTimeout.  Deadline::never() never expires (the pre-resilience
/// behavior); Deadline::after(budget) expires `budget` from now.  One
/// Deadline spans a whole request/response exchange, so a peer cannot
/// reset the clock by trickling one byte per poll interval.
class Deadline {
 public:
  static Deadline never() { return Deadline(); }
  static Deadline after(std::chrono::milliseconds budget) {
    Deadline d;
    d.bounded_ = true;
    d.at_ = std::chrono::steady_clock::now() + budget;
    return d;
  }

  [[nodiscard]] bool bounded() const { return bounded_; }
  [[nodiscard]] bool expired() const {
    return bounded_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Timeout argument for poll(): -1 when unbounded, else remaining
  /// milliseconds clamped to >= 0.
  [[nodiscard]] int poll_timeout_ms() const {
    if (!bounded_) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - std::chrono::steady_clock::now());
    if (left.count() <= 0) return 0;
    if (left.count() > 60'000) return 60'000;
    return static_cast<int>(left.count());
  }

 private:
  std::chrono::steady_clock::time_point at_{};
  bool bounded_ = false;
};

/// Client-side socket budgets; a default-constructed value gives
/// generous production limits, tests dial them down to milliseconds.
struct SocketOptions {
  std::chrono::milliseconds connect_timeout{5000};
  std::chrono::milliseconds io_timeout{30000};  ///< whole exchange
};

/// Header names are case-insensitive; stored lower-cased.
using Headers = std::map<std::string, std::string>;

struct Request {
  std::string method = "GET";   ///< GET or POST
  std::string target = "/";     ///< raw path?query
  Headers headers;
  std::string body;

  /// Parsed path + query; form bodies merge into `form()`.
  [[nodiscard]] Target parsed_target() const { return parse_target(target); }

  /// Query parameters plus (for POST with a urlencoded body) form fields;
  /// form fields win on collision.
  [[nodiscard]] Params all_params() const;
};

struct Response {
  int status = 200;
  std::string content_type = "text/html";
  Headers headers;
  std::string body;

  static Response ok_html(std::string html);
  static Response ok_text(std::string text);
  static Response not_found(const std::string& what);
  static Response bad_request(const std::string& why);
  static Response server_error(const std::string& why);
  static Response redirect(const std::string& location);
};

std::string status_text(int status);

/// Serialize a request/response to wire form.
std::string to_wire(const Request& request);
std::string to_wire(const Response& response);

/// Parse a complete request/response from wire text.
/// Throws HttpError on malformed input or truncated bodies.
Request parse_request(const std::string& wire);
Response parse_response(const std::string& wire);

/// How many bytes of `partial` constitute a complete message, or nullopt
/// if more data is needed.  Used by the socket readers.
std::optional<std::size_t> message_size(const std::string& partial);

}  // namespace powerplay::web
