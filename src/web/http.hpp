// http.hpp — HTTP/1.1 message types, codecs, and the incremental
// request parser.
//
// Figure 7 (bottom): "This method is modified for WWW using the HyperText
// Transfer Protocol ... using secure scripts at Universal Resource
// Locators to handle information transfer on demand."  The server and
// client in this directory speak this subset: request line + headers +
// optional Content-Length body.  Since the keep-alive rework the server
// speaks HTTP/1.1 with connection reuse: a RequestParser consumes
// partial reads and yields pipelined requests one at a time, so one
// connection can carry many exchanges.
#pragma once

#include <chrono>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "web/url.hpp"

namespace powerplay::web {

class HttpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An I/O deadline expired (connect, read or write).  Subclass of
/// HttpError so existing catch sites keep working; callers that care
/// (retry policies, the server's timeout counter) can catch it
/// specifically.
class HttpTimeout : public HttpError {
 public:
  using HttpError::HttpError;
};

/// Hard cap on one HTTP message (headers + body), enforced both while
/// reading from a socket and when parsing a Content-Length header, so a
/// hostile peer can neither stream unbounded data nor make us reserve
/// an absurd allocation up front.
inline constexpr std::size_t kMaxMessageBytes = 16u << 20;  // 16 MiB

/// Cap on the request line + headers alone.  A peer that streams this
/// much without ever sending the blank-line terminator is aborted long
/// before the 16 MiB message cap.
inline constexpr std::size_t kMaxHeaderBytes = 64u << 10;  // 64 KiB

/// Absolute point in time after which socket I/O gives up with
/// HttpTimeout.  Deadline::never() never expires (the pre-resilience
/// behavior); Deadline::after(budget) expires `budget` from now.  One
/// Deadline spans a whole request/response exchange, so a peer cannot
/// reset the clock by trickling one byte per poll interval.
class Deadline {
 public:
  static Deadline never() { return Deadline(); }
  static Deadline after(std::chrono::milliseconds budget) {
    Deadline d;
    d.bounded_ = true;
    d.at_ = std::chrono::steady_clock::now() + budget;
    return d;
  }

  /// The earlier of two deadlines — how a caller's budget propagates
  /// into nested I/O: an outbound connect/read under an inbound request
  /// runs under earlier(caller, own_timeout), so a federated call can
  /// never outlive the request that triggered it.
  static Deadline earlier(const Deadline& a, const Deadline& b) {
    if (!a.bounded_) return b;
    if (!b.bounded_) return a;
    return a.at_ <= b.at_ ? a : b;
  }

  [[nodiscard]] bool bounded() const { return bounded_; }
  [[nodiscard]] bool expired() const {
    return bounded_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Milliseconds left before expiry; max() when unbounded, never
  /// negative.  For budgeting decisions, not for poll() (use
  /// poll_timeout_ms, which clamps to poll's int range).
  [[nodiscard]] std::chrono::milliseconds remaining() const {
    if (!bounded_) return std::chrono::milliseconds::max();
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? left : std::chrono::milliseconds{0};
  }
  /// Timeout argument for poll(): -1 when unbounded, else remaining
  /// milliseconds clamped to >= 0.
  [[nodiscard]] int poll_timeout_ms() const {
    if (!bounded_) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - std::chrono::steady_clock::now());
    if (left.count() <= 0) return 0;
    if (left.count() > 60'000) return 60'000;
    return static_cast<int>(left.count());
  }

 private:
  std::chrono::steady_clock::time_point at_{};
  bool bounded_ = false;
};

/// Client-side socket budgets; a default-constructed value gives
/// generous production limits, tests dial them down to milliseconds.
struct SocketOptions {
  std::chrono::milliseconds connect_timeout{5000};
  std::chrono::milliseconds io_timeout{30000};  ///< whole exchange
};

/// Header names are case-insensitive; stored lower-cased.
using Headers = std::map<std::string, std::string>;

struct Request {
  std::string method = "GET";        ///< GET or POST
  std::string target = "/";          ///< raw path?query
  std::string version = "HTTP/1.1";  ///< protocol version from the wire
  Headers headers;
  std::string body;

  /// Parsed path + query; form bodies merge into `form()`.
  [[nodiscard]] Target parsed_target() const { return parse_target(target); }

  /// Query parameters plus (for POST with a urlencoded body) form fields;
  /// form fields win on collision.
  [[nodiscard]] Params all_params() const;

  /// HTTP/1.1 defaults to persistent connections; HTTP/1.0 must opt in
  /// with `Connection: keep-alive`; `Connection: close` always wins.
  [[nodiscard]] bool keep_alive() const;
};

struct Response {
  int status = 200;
  std::string content_type = "text/html";
  Headers headers;
  std::string body;

  static Response ok_html(std::string html);
  static Response ok_text(std::string text);
  static Response not_found(const std::string& what);
  static Response bad_request(const std::string& why);
  static Response server_error(const std::string& why);
  static Response redirect(const std::string& location);
  /// 304 with the matching strong ETag and an empty body.
  static Response not_modified(const std::string& etag);
};

std::string status_text(int status);

/// Current time as an IMF-fixdate ("Sun, 06 Nov 1994 08:49:37 GMT") for
/// the Date header.  Formatted once per second and cached, so the hot
/// serving path does not strftime per response.
std::string http_date_now();

/// Serialize a request/response to wire form.  Responses are emitted in
/// one contiguous buffer — status line, `Date`, `Content-Type` (with
/// charset for text/* types), `Content-Length`, custom headers, body —
/// so a single send() suffices.
std::string to_wire(const Request& request);
std::string to_wire(const Response& response);

/// Parse a complete request/response from wire text.
/// Throws HttpError on malformed input or truncated bodies.
Request parse_request(const std::string& wire);
Response parse_response(const std::string& wire);

/// How many bytes of `partial` constitute a complete message, or nullopt
/// if more data is needed.  Used by the socket readers.
std::optional<std::size_t> message_size(const std::string& partial);

/// Resumable request parser: feed it socket reads as they arrive; it
/// yields complete requests one at a time and keeps any pipelined
/// surplus buffered for the next take().  Header fields are parsed once,
/// at the moment the blank line arrives — the body phase just counts
/// bytes — so torn reads never re-scan what is already understood.
///
///   RequestParser p;
///   while (p.feed(buf, n) == RequestParser::State::kReady) {
///     Request r = p.take();   // take() re-frames any buffered surplus
///     ...
///   }
///   if (p.state() == RequestParser::State::kError) ... p.error() ...
class RequestParser {
 public:
  enum class State {
    kNeedMore,  ///< bytes so far form a prefix of a valid request
    kReady,     ///< one complete request is available via take()
    kError,     ///< the stream is unrecoverably malformed (see error())
  };

  /// Append bytes from the peer.  Cheap when a request is already ready
  /// (bytes are buffered for later framing).  Once kError, the state is
  /// terminal: a malformed stream has no trustworthy resync point.
  State feed(const char* data, std::size_t n);

  [[nodiscard]] State state() const { return state_; }
  /// Human-readable reason once state() == kError.
  [[nodiscard]] const std::string& error() const { return error_; }
  /// True when bytes are buffered but no complete request is ready —
  /// the "mid-request" signal the server's timeout accounting uses.
  [[nodiscard]] bool partial() const {
    return state_ == State::kNeedMore && !buffer_.empty();
  }
  /// Bytes currently buffered (ready request + surplus).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  /// Pop the completed request.  Precondition: state() == kReady.
  /// Afterwards the parser has re-framed any pipelined surplus, so
  /// state() may immediately be kReady again.
  Request take();

 private:
  enum class Phase { kHead, kBody };

  State advance();  ///< try to make progress on buffer_

  std::string buffer_;
  std::size_t scan_ = 0;  ///< resume point for the header-terminator scan
  Phase phase_ = Phase::kHead;
  std::size_t body_need_ = 0;   ///< bytes of body still missing
  std::size_t head_bytes_ = 0;  ///< size of the parsed head incl. blank line
  Request pending_;             ///< request under construction
  State state_ = State::kNeedMore;
  std::string error_;
};

}  // namespace powerplay::web
