#include "web/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

namespace powerplay::web {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw HttpError(what + ": " + std::strerror(errno));
}

}  // namespace

std::string read_http_message(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // Framing first: stop as soon as we hold one complete message.
    try {
      if (auto size = message_size(buffer)) return buffer.substr(0, *size);
    } catch (const HttpError&) {
      // Malformed headers; let the caller's parse produce the error.
      return buffer;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("recv");
    }
    if (n == 0) return buffer;  // peer closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > (16u << 20)) {
      throw HttpError("message exceeds 16 MiB limit");
    }
  }
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail_errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (running_.exchange(false)) {
    // Closing the listener unblocks accept().
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (accept_thread_.joinable()) accept_thread_.join();
    listen_fd_ = -1;
  } else if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    std::lock_guard lock(workers_mutex_);
    workers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void HttpServer::handle_connection(int fd) {
  try {
    const std::string wire = read_http_message(fd);
    if (!wire.empty()) {
      Response response;
      try {
        const Request request = parse_request(wire);
        response = handler_(request);
      } catch (const std::exception& e) {
        response = Response::server_error(e.what());
      }
      // Count before writing: a client that has the full response in hand
      // must observe the counter already bumped.
      requests_served_.fetch_add(1);
      write_all(fd, to_wire(response));
    }
  } catch (const std::exception&) {
    // Connection-level failure: drop the connection.
  }
  ::close(fd);
}

}  // namespace powerplay::web
