#include "web/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>

namespace powerplay::web {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw HttpError(what + ": " + std::strerror(errno));
}

/// Block until `fd` is ready for `events` or the deadline expires.
/// Works for both blocking and non-blocking sockets: after a positive
/// poll() the following recv/send cannot block indefinitely.
void wait_io(int fd, short events, const Deadline& deadline,
             const char* what) {
  for (;;) {
    if (deadline.expired()) {
      throw HttpTimeout(std::string(what) + ": deadline exceeded");
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, deadline.poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      fail_errno("poll");
    }
    // rc == 0 is a timeout slice; loop so an unbounded deadline with
    // the 60 s poll clamp just waits again.  Readiness (including
    // POLLERR/POLLHUP) returns: the recv/send surfaces the error.
    if (rc > 0) return;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

std::string read_http_message(int fd, const Deadline& deadline) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // Framing first: stop as soon as we hold one complete message.
    try {
      if (auto size = message_size(buffer)) return buffer.substr(0, *size);
    } catch (const HttpError&) {
      // Malformed headers; let the caller's parse produce the error.
      return buffer;
    }
    wait_io(fd, POLLIN, deadline, "recv");
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      fail_errno("recv");
    }
    if (n == 0) return buffer;  // peer closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxMessageBytes) {
      throw HttpError("message exceeds 16 MiB limit");
    }
  }
}

void ignore_sigpipe() {
  // SIG_IGN (not a handler) is inherited across fork/exec and is the
  // one disposition signal-safe to set from any thread.
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

void write_all(int fd, const std::string& data, const Deadline& deadline) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    wait_io(fd, POLLOUT, deadline, "send");
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

HttpServer::HttpServer(std::uint16_t port, Handler handler,
                       ServerOptions options)
    : handler_(std::move(handler)), options_(options) {
  ignore_sigpipe();
  if (options_.worker_count == 0) options_.worker_count = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_keepalive_requests == 0) options_.max_keepalive_requests = 1;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail_errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail_errno("listen");
  }
  set_nonblocking(listen_fd_);  // accept runs inside the reactor's poll loop
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  if (::pipe(wake_pipe_) < 0) {
    running_.store(false);
    fail_errno("pipe");
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
  reactor_thread_ = std::thread([this] { reactor_loop(); });
  workers_.reserve(options_.worker_count);
  for (std::size_t i = 0; i < options_.worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void HttpServer::wake() {
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void HttpServer::stop() {
  if (running_.exchange(false)) {
    // The reactor notices running_ on its next wakeup, closes every
    // idle connection and exits; in-flight fds stay open for their
    // workers to finish writing.
    wake();
    if (reactor_thread_.joinable()) reactor_thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
    // Workers drain whatever is already queued, then exit.
    queue_cv_.notify_all();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    workers_.clear();
    // Connections workers handed back after the reactor died, plus any
    // dispatches nobody served: never leak an fd.
    {
      std::lock_guard lock(resume_mutex_);
      for (auto& [fd, reusable] : resumed_) ::close(fd);
      resumed_.clear();
    }
    {
      std::lock_guard lock(queue_mutex_);
      for (Dispatch& d : queue_) ::close(d.fd);
      queue_.clear();
    }
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  } else if (listen_fd_ >= 0 && !reactor_thread_.joinable()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::size_t HttpServer::queue_depth() const {
  std::lock_guard lock(queue_mutex_);
  return queue_.size();
}

// ---------------------------------------------------------------------------
// Reactor: accept + poll + parse, all on one thread
// ---------------------------------------------------------------------------

void HttpServer::reactor_loop() {
  std::vector<pollfd> pfds;
  std::vector<int> ready;
  while (running_.load()) {
    process_resumed();

    pfds.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    int timeout_ms = -1;
    for (const auto& [fd, conn] : connections_) {
      if (conn.in_flight) continue;
      pfds.push_back({fd, POLLIN, 0});
      const int left = conn.deadline.poll_timeout_ms();
      if (left >= 0 && (timeout_ms < 0 || left < timeout_ms)) {
        timeout_ms = left;
      }
    }

    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) break;

    if (rc > 0) {
      if (pfds[0].revents != 0) {
        char drain[256];
        while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {
        }
      }
      if (pfds[1].revents != 0) accept_ready();
      // Collect fds first: read_ready mutates connections_ (closing
      // erases entries), which would invalidate a map walk.
      ready.clear();
      for (std::size_t i = 2; i < pfds.size(); ++i) {
        if (pfds[i].revents != 0) ready.push_back(pfds[i].fd);
      }
      for (int fd : ready) {
        auto it = connections_.find(fd);
        if (it != connections_.end() && !it->second.in_flight) {
          read_ready(fd, it->second);
        }
      }
    }

    // Deadline sweep.  Dying mid-request (or before the first request)
    // is a counted timeout; expiring idle between requests is routine
    // keep-alive hygiene.
    ready.clear();
    for (const auto& [fd, conn] : connections_) {
      if (!conn.in_flight && conn.deadline.expired()) ready.push_back(fd);
    }
    for (int fd : ready) {
      const Connection& conn = connections_.at(fd);
      if (conn.served == 0 || conn.parser.partial()) {
        timeouts_.fetch_add(1);
      }
      close_connection(fd);
    }
  }
  // Shutting down: close everything not currently owned by a worker.
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    if (!conn.in_flight) idle.push_back(fd);
  }
  for (int fd : idle) close_connection(fd);
  connections_.clear();
}

void HttpServer::accept_ready() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) return;  // EAGAIN (drained) or listener closing
    set_nonblocking(fd);
    Connection conn;
    conn.deadline = Deadline::after(options_.io_timeout);
    connections_.emplace(fd, std::move(conn));
  }
}

void HttpServer::read_ready(int fd, Connection& conn) {
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(fd);  // reset or similar: nothing to answer
      return;
    }
    if (n == 0) {
      conn.peer_closed = true;
      break;
    }
    const auto state = conn.parser.feed(chunk, static_cast<std::size_t>(n));
    if (state == RequestParser::State::kError) {
      // The bytes never formed a valid request: answer 400 and drop the
      // connection (there is no trustworthy resync point).
      requests_served_.fetch_add(1);
      reply_and_close(fd, Response::bad_request(conn.parser.error()));
      return;
    }
    // Stop reading once a request is ready: backpressure for pipelining
    // (the surplus stays in the kernel buffer until we resume polling).
    if (state == RequestParser::State::kReady) break;
  }

  if (conn.parser.state() == RequestParser::State::kReady) {
    dispatch_or_shed(fd, conn);
    return;
  }
  if (conn.peer_closed) {
    if (conn.parser.partial()) {
      // EOF mid-request: the old read-whole-message path answered 400
      // for a truncated body; keep that contract.
      requests_served_.fetch_add(1);
      reply_and_close(fd, Response::bad_request("truncated request"));
    } else {
      close_connection(fd);  // clean close (or connect-then-close probe)
    }
    return;
  }
  if (conn.parser.partial()) parser_resumes_.fetch_add(1);
}

void HttpServer::dispatch_or_shed(int fd, Connection& conn) {
  Request request = conn.parser.take();
  Dispatch d;
  d.fd = fd;
  d.close_after = conn.served + 1 >= options_.max_keepalive_requests;
  d.request = std::move(request);
  bool queued = false;
  {
    std::lock_guard lock(queue_mutex_);
    if (queue_.size() < options_.queue_capacity) {
      queue_.push_back(std::move(d));
      queued = true;
    }
  }
  if (!queued) {
    requests_shed_.fetch_add(1);
    Response r;
    r.status = 503;
    r.content_type = "text/plain";
    r.headers["retry-after"] = std::to_string(options_.retry_after_seconds);
    r.headers["connection"] = "close";
    r.body = "server overloaded; retry later\n";
    reply_and_close(fd, r);
    return;
  }
  if (conn.served == 1) connections_reused_.fetch_add(1);
  conn.in_flight = true;
  queue_cv_.notify_one();
}

void HttpServer::reply_and_close(int fd, const Response& response) {
  try {
    // Short, independent deadline: shedding and parse errors must never
    // stall the reactor behind a slow client.
    write_all(fd, to_wire(response), Deadline::after(std::chrono::seconds(1)));
  } catch (const std::exception&) {
    // Best effort; the close below is the real answer.
  }
  close_connection(fd);
}

void HttpServer::close_connection(int fd) {
  ::close(fd);
  connections_.erase(fd);
}

void HttpServer::process_resumed() {
  std::vector<std::pair<int, bool>> batch;
  {
    std::lock_guard lock(resume_mutex_);
    batch.swap(resumed_);
  }
  for (const auto& [fd, reusable] : batch) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;  // defensive; should not happen
    Connection& conn = it->second;
    conn.in_flight = false;
    conn.served += 1;
    if (!reusable) {
      close_connection(fd);
      continue;
    }
    if (conn.parser.state() == RequestParser::State::kReady) {
      // Pipelined: the next request is already buffered — serve it now,
      // even after a half-close.
      dispatch_or_shed(fd, conn);
      continue;
    }
    if (conn.peer_closed) {
      close_connection(fd);
      continue;
    }
    conn.deadline = Deadline::after(options_.keepalive_idle_timeout);
  }
}

// ---------------------------------------------------------------------------
// Workers: handler logic + response write only
// ---------------------------------------------------------------------------

void HttpServer::worker_loop() {
  for (;;) {
    Dispatch d;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || !running_.load(); });
      if (queue_.empty()) return;  // stopping and fully drained
      d = std::move(queue_.front());
      queue_.pop_front();
    }
    // One deadline for handling + writing this response.
    const Deadline deadline = Deadline::after(options_.io_timeout);
    Response response;
    try {
      response = handler_(d.request);
    } catch (const std::exception& e) {
      response = Response::server_error(e.what());
    }
    const bool reuse = d.request.keep_alive() && !d.close_after;
    response.headers["connection"] = reuse ? "keep-alive" : "close";
    // Count before writing: a client that has the full response in hand
    // must observe the counter already bumped.
    requests_served_.fetch_add(1);
    bool written = true;
    try {
      write_all(d.fd, to_wire(response), deadline);
    } catch (const HttpTimeout&) {
      timeouts_.fetch_add(1);
      written = false;
    } catch (const std::exception&) {
      written = false;
    }
    {
      std::lock_guard lock(resume_mutex_);
      resumed_.emplace_back(d.fd, written && reuse);
    }
    wake();
  }
}

}  // namespace powerplay::web
