#include "web/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

namespace powerplay::web {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw HttpError(what + ": " + std::strerror(errno));
}

/// Block until `fd` is ready for `events` or the deadline expires.
/// Works for both blocking and non-blocking sockets: after a positive
/// poll() the following recv/send cannot block indefinitely.
void wait_io(int fd, short events, const Deadline& deadline,
             const char* what) {
  for (;;) {
    if (deadline.expired()) {
      throw HttpTimeout(std::string(what) + ": deadline exceeded");
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, deadline.poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      fail_errno("poll");
    }
    // rc == 0 is a timeout slice; loop so an unbounded deadline with
    // the 60 s poll clamp just waits again.  Readiness (including
    // POLLERR/POLLHUP) returns: the recv/send surfaces the error.
    if (rc > 0) return;
  }
}

}  // namespace

std::string read_http_message(int fd, const Deadline& deadline) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // Framing first: stop as soon as we hold one complete message.
    try {
      if (auto size = message_size(buffer)) return buffer.substr(0, *size);
    } catch (const HttpError&) {
      // Malformed headers; let the caller's parse produce the error.
      return buffer;
    }
    wait_io(fd, POLLIN, deadline, "recv");
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      fail_errno("recv");
    }
    if (n == 0) return buffer;  // peer closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxMessageBytes) {
      throw HttpError("message exceeds 16 MiB limit");
    }
  }
}

void write_all(int fd, const std::string& data, const Deadline& deadline) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    wait_io(fd, POLLOUT, deadline, "send");
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

HttpServer::HttpServer(std::uint16_t port, Handler handler,
                       ServerOptions options)
    : handler_(std::move(handler)), options_(options) {
  if (options_.worker_count == 0) options_.worker_count = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail_errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(options_.worker_count);
  for (std::size_t i = 0; i < options_.worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void HttpServer::stop() {
  if (running_.exchange(false)) {
    // Closing the listener unblocks accept(); join the acceptor first
    // so no new connections can be queued after this point.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (accept_thread_.joinable()) accept_thread_.join();
    listen_fd_ = -1;
  } else if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Workers drain whatever is already queued, then exit.
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Belt and braces: nothing should remain, but never leak an fd.
  std::lock_guard lock(queue_mutex_);
  for (int fd : queue_) ::close(fd);
  queue_.clear();
}

std::size_t HttpServer::queue_depth() const {
  std::lock_guard lock(queue_mutex_);
  return queue_.size();
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    bool accepted = false;
    {
      std::lock_guard lock(queue_mutex_);
      if (queue_.size() < options_.queue_capacity) {
        queue_.push_back(fd);
        accepted = true;
      }
    }
    if (accepted) {
      queue_cv_.notify_one();
    } else {
      shed_connection(fd);
    }
  }
}

void HttpServer::shed_connection(int fd) {
  requests_shed_.fetch_add(1);
  Response r;
  r.status = 503;
  r.content_type = "text/plain";
  r.headers["retry-after"] = std::to_string(options_.retry_after_seconds);
  r.body = "server overloaded; retry later\n";
  try {
    // Short, independent deadline: shedding must never stall the
    // accept loop behind a slow client.
    write_all(fd, to_wire(r), Deadline::after(std::chrono::seconds(1)));
  } catch (const std::exception&) {
    // Best effort; the close below is the real load shed.
  }
  ::close(fd);
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || !running_.load(); });
      if (queue_.empty()) return;  // stopping and fully drained
      fd = queue_.front();
      queue_.pop_front();
    }
    handle_connection(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // One deadline for the whole exchange: read + handle + write.
  const Deadline deadline = Deadline::after(options_.io_timeout);
  try {
    const std::string wire = read_http_message(fd, deadline);
    if (!wire.empty()) {
      Response response;
      try {
        const Request request = parse_request(wire);
        try {
          response = handler_(request);
        } catch (const std::exception& e) {
          response = Response::server_error(e.what());
        }
      } catch (const HttpError& e) {
        // The bytes never formed a valid request: client error, not
        // server fault (oversized Content-Length lands here too).
        response = Response::bad_request(e.what());
      }
      // Count before writing: a client that has the full response in hand
      // must observe the counter already bumped.
      requests_served_.fetch_add(1);
      write_all(fd, to_wire(response), deadline);
    }
  } catch (const HttpTimeout&) {
    timeouts_.fetch_add(1);
  } catch (const std::exception&) {
    // Connection-level failure: drop the connection.
  }
  ::close(fd);
}

}  // namespace powerplay::web
