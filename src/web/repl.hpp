// repl.hpp — the follower half of journal-shipping replication.
//
// A ReplicationFollower owns one background thread that keeps a local
// LibraryStore converged with a primary site over the /repl/* protocol
// (app.cpp serves the primary half):
//
//   bootstrap:  GET /repl/snapshot            -> install wholesale
//   catch-up:   GET /repl/journal?epoch=E&after=S&wait_ms=W&max_bytes=B
//               -> apply each shipped record (idempotent, gap-detecting)
//
// The journal feed long-polls: when the follower is caught up the
// primary parks the request until the next commit, so steady-state
// replication lag is one network round trip, not one poll interval.
// Any epoch change on the primary (rotation, crash recovery, a
// promotion elsewhere) answers 409, and the follower re-bootstraps from
// a fresh snapshot — full state transfer is always correct, whatever
// divergence preceded it.
//
// Transport failures reuse the resilience kit RemoteLibrary introduced:
// exponential backoff with deterministic jitter between reconnect
// attempts, and a circuit breaker so a dead primary costs a bounded
// poll rate instead of a tight error loop.  The Transport seam means
// chaos tests wrap the wire in a seeded FaultTransport — drops,
// truncated feed bodies and duplicate batch deliveries all exercise the
// same rejection paths real networks would.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "library/store.hpp"
#include "web/client.hpp"
#include "web/remote.hpp"

namespace powerplay::web {

/// Progress + lag counters, surfaced on the follower's /healthz.
struct ReplicationStats {
  bool synced = false;  ///< holds a valid cursor into the primary's stream
  std::uint64_t cursor_epoch = 0;
  std::uint64_t cursor_seq = 0;
  std::uint64_t records_applied = 0;
  std::uint64_t duplicates_skipped = 0;  ///< replayed frames rejected
  std::uint64_t gaps_detected = 0;       ///< out-of-order/compacted tails
  std::uint64_t resyncs_total = 0;       ///< snapshot bootstraps (incl. 1st)
  std::uint64_t transport_errors = 0;
  std::uint64_t polls = 0;  ///< feed round trips completed
  /// How far behind the primary's last acknowledged write we are.
  std::uint64_t lag_records = 0;
  std::uint64_t lag_bytes = 0;
  std::uint64_t lag_ms = 0;  ///< 0 when caught up; else time since we were
};

/// Follower tuning (top-level so it can be a default argument;
/// nested-class member initializers cannot — see BreakerOptions).
struct ReplicationOptions {
  /// Long-poll park time requested from the primary per feed call.
  std::chrono::milliseconds poll_wait{1000};
  /// Batch size cap requested per feed call.
  std::size_t max_batch_bytes = 1u << 20;
  /// Reconnect backoff schedule (max_attempts is ignored: a follower
  /// never gives up, it just keeps paying max_backoff).
  RetryPolicy retry{};
  BreakerOptions breaker{};
};

class ReplicationFollower {
 public:
  using Options = ReplicationOptions;

  /// `store` must outlive the follower and, while running, must not be
  /// written locally (the app enforces this by redirecting writes).
  ReplicationFollower(library::LibraryStore& store,
                      std::shared_ptr<Transport> transport,
                      Options options = {});
  ~ReplicationFollower();

  ReplicationFollower(const ReplicationFollower&) = delete;
  ReplicationFollower& operator=(const ReplicationFollower&) = delete;

  void start();
  /// Stop the apply thread (idempotent).  Interrupts any backoff sleep;
  /// an in-flight feed round trip finishes first.
  void stop();

  /// Failover: stop following and give the store a fresh epoch above
  /// everything either side has seen.  Returns the new epoch.  The
  /// caller flips the app's role to primary.
  std::uint64_t promote();

  [[nodiscard]] ReplicationStats stats() const;
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Test/ops helper: block until the local cursor reaches `seq` (true)
  /// or `timeout` lapses (false).
  bool wait_for_seq(std::uint64_t seq, std::chrono::milliseconds timeout);

 private:
  void run();
  void bootstrap();   ///< snapshot install; throws on failure
  void poll_once();   ///< one feed round trip; throws on failure
  [[nodiscard]] Response roundtrip(const Request& request);
  /// Sleep that stop() can interrupt; false when stopping.
  bool sleep_interruptible(std::chrono::milliseconds duration);

  library::LibraryStore& store_;
  std::shared_ptr<Transport> transport_;
  Options options_;
  CircuitBreaker breaker_;
  std::thread thread_;
  std::atomic<bool> running_{false};

  mutable std::mutex mutex_;  ///< guards stats_ and the sleep cv
  std::condition_variable cv_;
  ReplicationStats stats_;
  bool caught_up_ = false;
  std::chrono::steady_clock::time_point caught_up_at_{};
};

}  // namespace powerplay::web
