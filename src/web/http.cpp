#include "web/http.hpp"

#include <algorithm>
#include <cctype>
#include <ctime>
#include <mutex>

namespace powerplay::web {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parse "Header: value" lines between `begin` and the blank line.
Headers parse_headers(const std::string& wire, std::size_t begin,
                      std::size_t end) {
  Headers out;
  std::size_t pos = begin;
  while (pos < end) {
    std::size_t eol = wire.find("\r\n", pos);
    if (eol == std::string::npos || eol > end) eol = end;
    const std::string line = wire.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      throw HttpError("malformed header line: '" + line + "'");
    }
    out[lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
    pos = eol + 2;
  }
  return out;
}

std::size_t content_length(const Headers& headers) {
  auto it = headers.find("content-length");
  if (it == headers.end()) return 0;
  std::size_t value = 0;
  try {
    std::size_t pos = 0;
    value = static_cast<std::size_t>(std::stoull(it->second, &pos));
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
  } catch (const std::exception&) {
    throw HttpError("bad content-length: '" + it->second + "'");
  }
  // Reject absurd lengths here, before anyone tries to reserve or read
  // that many bytes.  Note stoull happily wraps "-1" to 2^64-1.
  if (value > kMaxMessageBytes) {
    throw HttpError("content-length " + it->second + " exceeds " +
                    std::to_string(kMaxMessageBytes) + " byte limit");
  }
  return value;
}

/// Split "METHOD target version" without istringstream allocations.
void parse_request_line(const std::string& line, Request& req) {
  req.method.clear();
  req.target.clear();
  req.version.clear();
  std::size_t pos = 0;
  auto next_token = [&](std::string& out) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    out = line.substr(start, pos - start);
  };
  next_token(req.method);
  next_token(req.target);
  next_token(req.version);
  if (req.method.empty() || req.target.empty()) {
    throw HttpError("malformed request line");
  }
}

/// Media types that get "; charset=utf-8" appended on the wire.
bool is_text_type(const std::string& content_type) {
  return content_type.rfind("text/", 0) == 0 &&
         content_type.find(';') == std::string::npos;
}

}  // namespace

Params Request::all_params() const {
  Params params = parsed_target().query;
  auto it = headers.find("content-type");
  const bool urlencoded =
      it != headers.end() &&
      it->second.find("application/x-www-form-urlencoded") !=
          std::string::npos;
  if (method == "POST" && (urlencoded || it == headers.end())) {
    for (auto& [k, v] : parse_query(body)) params[k] = v;
  }
  return params;
}

bool Request::keep_alive() const {
  auto it = headers.find("connection");
  if (it != headers.end()) {
    const std::string value = lower(it->second);
    if (value.find("close") != std::string::npos) return false;
    if (value.find("keep-alive") != std::string::npos) return true;
  }
  return version == "HTTP/1.1";
}

Response Response::ok_html(std::string html) {
  Response r;
  r.body = std::move(html);
  return r;
}

Response Response::ok_text(std::string text) {
  Response r;
  r.content_type = "text/plain";
  r.body = std::move(text);
  return r;
}

Response Response::not_found(const std::string& what) {
  Response r;
  r.status = 404;
  r.content_type = "text/plain";
  r.body = "not found: " + what + "\n";
  return r;
}

Response Response::bad_request(const std::string& why) {
  Response r;
  r.status = 400;
  r.content_type = "text/plain";
  r.body = "bad request: " + why + "\n";
  return r;
}

Response Response::server_error(const std::string& why) {
  Response r;
  r.status = 500;
  r.content_type = "text/plain";
  r.body = "error: " + why + "\n";
  return r;
}

Response Response::redirect(const std::string& location) {
  Response r;
  r.status = 302;
  r.content_type = "text/plain";
  r.headers["location"] = location;
  r.body = "see " + location + "\n";
  return r;
}

Response Response::not_modified(const std::string& etag) {
  Response r;
  r.status = 304;
  r.content_type = "text/plain";
  r.headers["etag"] = etag;
  return r;
}

std::string status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string http_date_now() {
  static std::mutex mutex;
  static std::time_t last = -1;
  static std::string cached;
  const std::time_t now = std::time(nullptr);
  std::lock_guard lock(mutex);
  if (now != last) {
    std::tm parts{};
    ::gmtime_r(&now, &parts);
    char buf[64];
    const std::size_t n =
        std::strftime(buf, sizeof buf, "%a, %d %b %Y %H:%M:%S GMT", &parts);
    cached.assign(buf, n);
    last = now;
  }
  return cached;
}

std::string to_wire(const Request& request) {
  const std::string& version =
      request.version.empty() ? std::string("HTTP/1.1") : request.version;
  std::string wire;
  wire.reserve(64 + request.target.size() + request.body.size());
  wire += request.method;
  wire += ' ';
  wire += request.target;
  wire += ' ';
  wire += version;
  wire += "\r\n";
  for (const auto& [k, v] : request.headers) {
    wire += k;
    wire += ": ";
    wire += v;
    wire += "\r\n";
  }
  if (!request.body.empty() && !request.headers.contains("content-length")) {
    wire += "content-length: " + std::to_string(request.body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += request.body;
  return wire;
}

std::string to_wire(const Response& response) {
  // One contiguous buffer: the server sends the whole response with a
  // single write_all, never a syscall per header.
  std::string wire;
  wire.reserve(192 + response.body.size());
  wire += "HTTP/1.1 ";
  wire += std::to_string(response.status);
  wire += ' ';
  wire += status_text(response.status);
  wire += "\r\n";
  wire += "content-type: ";
  wire += response.content_type;
  if (is_text_type(response.content_type)) wire += "; charset=utf-8";
  wire += "\r\n";
  wire += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  if (!response.headers.contains("date")) {
    wire += "date: ";
    wire += http_date_now();
    wire += "\r\n";
  }
  for (const auto& [k, v] : response.headers) {
    wire += k;
    wire += ": ";
    wire += v;
    wire += "\r\n";
  }
  wire += "\r\n";
  wire += response.body;
  return wire;
}

Request parse_request(const std::string& wire) {
  RequestParser parser;
  parser.feed(wire.data(), wire.size());
  switch (parser.state()) {
    case RequestParser::State::kReady:
      return parser.take();
    case RequestParser::State::kError:
      throw HttpError(parser.error());
    case RequestParser::State::kNeedMore:
      break;
  }
  throw HttpError(parser.partial() || wire.empty()
                      ? "truncated request (no header terminator)"
                      : "truncated request");
}

Response parse_response(const std::string& wire) {
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    throw HttpError("truncated response (no header terminator)");
  }
  const std::size_t line_end = wire.find("\r\n");
  const std::string line = wire.substr(0, line_end);
  Response resp;
  const std::size_t space = line.find(' ');
  if (space != std::string::npos) {
    try {
      std::size_t pos = 0;
      resp.status = std::stoi(line.substr(space + 1), &pos);
    } catch (const std::exception&) {
      resp.status = 0;
    }
  } else {
    resp.status = 0;
  }
  if (resp.status == 0) throw HttpError("malformed status line");
  resp.headers = parse_headers(wire, line_end + 2, head_end);
  auto ct = resp.headers.find("content-type");
  if (ct != resp.headers.end()) {
    // Strip parameters ("; charset=utf-8"): content_type holds the bare
    // media type, which is what routing and tests compare against.
    const std::size_t semi = ct->second.find(';');
    resp.content_type = trim(ct->second.substr(0, semi));
  }
  const std::size_t want = content_length(resp.headers);
  const std::size_t have = wire.size() - (head_end + 4);
  if (have < want) throw HttpError("truncated response body");
  resp.body = wire.substr(head_end + 4, want);
  return resp;
}

std::optional<std::size_t> message_size(const std::string& partial) {
  const std::size_t head_end = partial.find("\r\n\r\n");
  if (head_end == std::string::npos) return std::nullopt;
  const std::size_t line_end = partial.find("\r\n");
  Headers headers = parse_headers(partial, line_end + 2, head_end);
  const std::size_t total = head_end + 4 + content_length(headers);
  if (partial.size() < total) return std::nullopt;
  return total;
}

// ---------------------------------------------------------------------------
// RequestParser
// ---------------------------------------------------------------------------

RequestParser::State RequestParser::feed(const char* data, std::size_t n) {
  if (state_ == State::kError) return state_;
  buffer_.append(data, n);
  if (state_ == State::kReady) return state_;  // surplus buffered for later
  return advance();
}

RequestParser::State RequestParser::advance() {
  for (;;) {
    if (phase_ == Phase::kHead) {
      // Scan for the blank line from where the last feed left off, so a
      // one-byte-at-a-time peer costs O(1) per byte, not O(n^2).
      const std::size_t from = scan_ > 3 ? scan_ - 3 : 0;
      const std::size_t head_end = buffer_.find("\r\n\r\n", from);
      if (head_end == std::string::npos) {
        scan_ = buffer_.size();
        if (buffer_.size() > kMaxHeaderBytes) {
          state_ = State::kError;
          error_ = "request head exceeds " + std::to_string(kMaxHeaderBytes) +
                   " byte limit";
        }
        // An oversized request *line* specifically: no CRLF at all yet.
        return state_;
      }
      const std::size_t line_end = buffer_.find("\r\n");
      try {
        if (head_end > kMaxHeaderBytes) {
          throw HttpError("request head exceeds " +
                          std::to_string(kMaxHeaderBytes) + " byte limit");
        }
        parse_request_line(buffer_.substr(0, line_end), pending_);
        pending_.headers = parse_headers(buffer_, line_end + 2, head_end);
        body_need_ = content_length(pending_.headers);
      } catch (const HttpError& e) {
        state_ = State::kError;
        error_ = e.what();
        return state_;
      }
      head_bytes_ = head_end + 4;
      phase_ = Phase::kBody;
      continue;
    }
    // Body phase: just wait for head_bytes_ + body_need_ buffered bytes.
    if (buffer_.size() < head_bytes_ + body_need_) return state_;
    pending_.body = buffer_.substr(head_bytes_, body_need_);
    state_ = State::kReady;
    return state_;
  }
}

Request RequestParser::take() {
  Request out = std::move(pending_);
  buffer_.erase(0, head_bytes_ + body_need_);
  pending_ = Request{};
  phase_ = Phase::kHead;
  body_need_ = 0;
  head_bytes_ = 0;
  scan_ = 0;
  state_ = State::kNeedMore;
  if (!buffer_.empty()) advance();  // re-frame pipelined surplus
  return out;
}

}  // namespace powerplay::web
