#include "web/http.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace powerplay::web {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parse "Header: value" lines between `begin` and the blank line.
Headers parse_headers(const std::string& wire, std::size_t begin,
                      std::size_t end) {
  Headers out;
  std::size_t pos = begin;
  while (pos < end) {
    std::size_t eol = wire.find("\r\n", pos);
    if (eol == std::string::npos || eol > end) eol = end;
    const std::string line = wire.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      throw HttpError("malformed header line: '" + line + "'");
    }
    out[lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
    pos = eol + 2;
  }
  return out;
}

std::size_t content_length(const Headers& headers) {
  auto it = headers.find("content-length");
  if (it == headers.end()) return 0;
  std::size_t value = 0;
  try {
    std::size_t pos = 0;
    value = static_cast<std::size_t>(std::stoull(it->second, &pos));
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
  } catch (const std::exception&) {
    throw HttpError("bad content-length: '" + it->second + "'");
  }
  // Reject absurd lengths here, before anyone tries to reserve or read
  // that many bytes.  Note stoull happily wraps "-1" to 2^64-1.
  if (value > kMaxMessageBytes) {
    throw HttpError("content-length " + it->second + " exceeds " +
                    std::to_string(kMaxMessageBytes) + " byte limit");
  }
  return value;
}

}  // namespace

Params Request::all_params() const {
  Params params = parsed_target().query;
  auto it = headers.find("content-type");
  const bool urlencoded =
      it != headers.end() &&
      it->second.find("application/x-www-form-urlencoded") !=
          std::string::npos;
  if (method == "POST" && (urlencoded || it == headers.end())) {
    for (auto& [k, v] : parse_query(body)) params[k] = v;
  }
  return params;
}

Response Response::ok_html(std::string html) {
  Response r;
  r.body = std::move(html);
  return r;
}

Response Response::ok_text(std::string text) {
  Response r;
  r.content_type = "text/plain";
  r.body = std::move(text);
  return r;
}

Response Response::not_found(const std::string& what) {
  Response r;
  r.status = 404;
  r.content_type = "text/plain";
  r.body = "not found: " + what + "\n";
  return r;
}

Response Response::bad_request(const std::string& why) {
  Response r;
  r.status = 400;
  r.content_type = "text/plain";
  r.body = "bad request: " + why + "\n";
  return r;
}

Response Response::server_error(const std::string& why) {
  Response r;
  r.status = 500;
  r.content_type = "text/plain";
  r.body = "error: " + why + "\n";
  return r;
}

Response Response::redirect(const std::string& location) {
  Response r;
  r.status = 302;
  r.content_type = "text/plain";
  r.headers["location"] = location;
  r.body = "see " + location + "\n";
  return r;
}

std::string status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string to_wire(const Request& request) {
  std::ostringstream os;
  os << request.method << ' ' << request.target << " HTTP/1.0\r\n";
  for (const auto& [k, v] : request.headers) os << k << ": " << v << "\r\n";
  if (!request.body.empty() && !request.headers.contains("content-length")) {
    os << "content-length: " << request.body.size() << "\r\n";
  }
  os << "\r\n" << request.body;
  return os.str();
}

std::string to_wire(const Response& response) {
  std::ostringstream os;
  os << "HTTP/1.0 " << response.status << ' ' << status_text(response.status)
     << "\r\n";
  os << "content-type: " << response.content_type << "\r\n";
  os << "content-length: " << response.body.size() << "\r\n";
  for (const auto& [k, v] : response.headers) os << k << ": " << v << "\r\n";
  os << "\r\n" << response.body;
  return os.str();
}

Request parse_request(const std::string& wire) {
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    throw HttpError("truncated request (no header terminator)");
  }
  const std::size_t line_end = wire.find("\r\n");
  std::istringstream line(wire.substr(0, line_end));
  Request req;
  req.method.clear();  // drop the struct defaults so a bare request line
  req.target.clear();  // is detected as malformed below
  std::string version;
  line >> req.method >> req.target >> version;
  if (req.method.empty() || req.target.empty()) {
    throw HttpError("malformed request line");
  }
  req.headers = parse_headers(wire, line_end + 2, head_end);
  const std::size_t want = content_length(req.headers);
  const std::size_t have = wire.size() - (head_end + 4);
  if (have < want) throw HttpError("truncated request body");
  req.body = wire.substr(head_end + 4, want);
  return req;
}

Response parse_response(const std::string& wire) {
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    throw HttpError("truncated response (no header terminator)");
  }
  const std::size_t line_end = wire.find("\r\n");
  std::istringstream line(wire.substr(0, line_end));
  std::string version;
  Response resp;
  line >> version >> resp.status;
  if (resp.status == 0) throw HttpError("malformed status line");
  resp.headers = parse_headers(wire, line_end + 2, head_end);
  auto ct = resp.headers.find("content-type");
  if (ct != resp.headers.end()) resp.content_type = ct->second;
  const std::size_t want = content_length(resp.headers);
  const std::size_t have = wire.size() - (head_end + 4);
  if (have < want) throw HttpError("truncated response body");
  resp.body = wire.substr(head_end + 4, want);
  return resp;
}

std::optional<std::size_t> message_size(const std::string& partial) {
  const std::size_t head_end = partial.find("\r\n\r\n");
  if (head_end == std::string::npos) return std::nullopt;
  const std::size_t line_end = partial.find("\r\n");
  Headers headers = parse_headers(partial, line_end + 2, head_end);
  const std::size_t total = head_end + 4 + content_length(headers);
  if (partial.size() < total) return std::nullopt;
  return total;
}

}  // namespace powerplay::web
