#include "web/repl.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "library/journal.hpp"
#include "library/replica.hpp"

namespace powerplay::web {

namespace {

/// Parse a decimal header value; `fallback` when absent or malformed
/// (lag accounting degrades gracefully, it never fails a poll).
std::uint64_t header_u64(const Response& response, const std::string& name,
                         std::uint64_t fallback) {
  const auto it = response.headers.find(name);
  if (it == response.headers.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return v;
}

}  // namespace

ReplicationFollower::ReplicationFollower(library::LibraryStore& store,
                                         std::shared_ptr<Transport> transport,
                                         Options options)
    : store_(store),
      transport_(std::move(transport)),
      options_(options),
      breaker_(options.breaker) {}

ReplicationFollower::~ReplicationFollower() { stop(); }

void ReplicationFollower::start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard lock(mutex_);
    caught_up_ = false;
    caught_up_at_ = std::chrono::steady_clock::now();
  }
  thread_ = std::thread([this] { run(); });
}

void ReplicationFollower::stop() {
  running_.store(false);
  {
    std::lock_guard lock(mutex_);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::uint64_t ReplicationFollower::promote() {
  stop();
  return store_.promote();
}

ReplicationStats ReplicationFollower::stats() const {
  std::lock_guard lock(mutex_);
  ReplicationStats out = stats_;
  if (caught_up_) {
    out.lag_ms = 0;
  } else {
    const auto behind = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - caught_up_at_);
    out.lag_ms = static_cast<std::uint64_t>(
        std::max<std::chrono::milliseconds::rep>(behind.count(), 0));
  }
  return out;
}

bool ReplicationFollower::wait_for_seq(std::uint64_t seq,
                                       std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const library::ReplCursor cursor = store_.replication_cursor();
    if (cursor.valid && cursor.seq >= seq) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

bool ReplicationFollower::sleep_interruptible(
    std::chrono::milliseconds duration) {
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, duration, [this] { return !running_.load(); });
  return running_.load();
}

Response ReplicationFollower::roundtrip(const Request& request) {
  return transport_->roundtrip(request);
}

void ReplicationFollower::run() {
  int failures = 0;
  while (running_.load()) {
    if (!breaker_.allow()) {
      // Circuit open: the primary has failed repeatedly.  Wait out the
      // cooldown instead of burning round trips.
      if (!sleep_interruptible(options_.breaker.cooldown)) break;
      continue;
    }
    try {
      if (store_.replication_cursor().valid) {
        poll_once();
      } else {
        bootstrap();
      }
      breaker_.record_success();
      failures = 0;
    } catch (const std::exception&) {
      breaker_.record_failure();
      {
        std::lock_guard lock(mutex_);
        ++stats_.transport_errors;
        caught_up_ = false;  // we can no longer vouch for freshness
      }
      if (!running_.load()) break;
      const int retry = std::min(failures, 10);
      ++failures;
      if (!sleep_interruptible(options_.retry.backoff(retry))) break;
    }
  }
}

void ReplicationFollower::bootstrap() {
  Request req;
  req.method = "GET";
  req.target = "/repl/snapshot";
  const Response resp = roundtrip(req);
  if (resp.status != 200) {
    throw HttpError("replication snapshot: HTTP " +
                    std::to_string(resp.status));
  }
  library::ReplSnapshot snapshot;
  if (!library::parse_snapshot(resp.body, &snapshot)) {
    // Truncated or bit-flipped in flight; the checksum footer caught it.
    throw HttpError("replication snapshot: corrupt body");
  }
  store_.install_replication_snapshot(snapshot);
  std::lock_guard lock(mutex_);
  ++stats_.resyncs_total;
  stats_.synced = true;
  stats_.cursor_epoch = snapshot.epoch;
  stats_.cursor_seq = snapshot.seq;
}

void ReplicationFollower::poll_once() {
  const library::ReplCursor cursor = store_.replication_cursor();
  Request req;
  req.method = "GET";
  req.target = "/repl/journal?epoch=" + std::to_string(cursor.epoch) +
               "&after=" + std::to_string(cursor.seq) +
               "&wait_ms=" + std::to_string(options_.poll_wait.count()) +
               "&max_bytes=" + std::to_string(options_.max_batch_bytes);
  const Response resp = roundtrip(req);

  if (resp.status == 409 || resp.status == 410) {
    // 409: the stream we were reading no longer exists (rotation,
    // recovery or promotion over there).  410: our position was
    // compacted away.  Either way the cursor is worthless — durably
    // forget it and re-bootstrap on the next pass.
    store_.invalidate_replication_cursor();
    std::lock_guard lock(mutex_);
    if (resp.status == 410) ++stats_.gaps_detected;
    stats_.synced = false;
    caught_up_ = false;
    return;
  }
  if (resp.status != 200) {
    throw HttpError("replication feed: HTTP " + std::to_string(resp.status));
  }

  const library::Journal::ReadResult feed =
      library::Journal::parse(resp.body);
  if (!feed.header_ok) {
    throw HttpError("replication feed: malformed stream");
  }
  // A torn tail just means the delivery was cut short: apply the intact
  // prefix, the next poll re-fetches the rest.
  std::uint64_t applied = 0;
  std::uint64_t duplicates = 0;
  bool resync = false;
  for (const library::JournalRecord& record : feed.records) {
    const auto outcome = store_.apply_replicated(record);
    if (outcome == library::LibraryStore::ReplApply::kApplied) {
      ++applied;
    } else if (outcome == library::LibraryStore::ReplApply::kDuplicate) {
      ++duplicates;
    } else {
      // A gap or foreign epoch inside an authenticated batch: refuse
      // the rest and fall back to the always-correct full re-sync.
      resync = true;
      break;
    }
  }
  if (applied > 0) store_.flush_replication_cursor();
  if (resync) store_.invalidate_replication_cursor();

  const library::ReplCursor now_cursor = store_.replication_cursor();
  const std::uint64_t primary_last =
      header_u64(resp, "x-repl-last-seq", now_cursor.seq);
  const std::uint64_t pending =
      header_u64(resp, "x-repl-pending-bytes", 0);

  std::lock_guard lock(mutex_);
  ++stats_.polls;
  stats_.records_applied += applied;
  stats_.duplicates_skipped += duplicates;
  if (resync) ++stats_.gaps_detected;
  stats_.synced = now_cursor.valid;
  stats_.cursor_epoch = now_cursor.epoch;
  stats_.cursor_seq = now_cursor.seq;
  stats_.lag_records = now_cursor.valid && primary_last > now_cursor.seq
                           ? primary_last - now_cursor.seq
                           : 0;
  stats_.lag_bytes = pending;
  caught_up_ = now_cursor.valid && stats_.lag_records == 0;
  if (caught_up_) caught_up_at_ = std::chrono::steady_clock::now();
}

}  // namespace powerplay::web
