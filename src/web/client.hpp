// client.hpp — minimal HTTP client (the "any browser" role in tests and
// the fetch half of the remote model-access protocol).
#pragma once

#include <cstdint>
#include <string>

#include "web/http.hpp"

namespace powerplay::web {

/// One-shot request to 127.0.0.1:`port` (HTTP/1.0: connection per
/// request).  Throws HttpError on connect/IO/parse failure.
Response http_request(std::uint16_t port, const Request& request);

/// GET convenience.
Response http_get(std::uint16_t port, const std::string& target);

/// POST convenience with a urlencoded form body.
Response http_post_form(std::uint16_t port, const std::string& path,
                        const Params& form);

}  // namespace powerplay::web
