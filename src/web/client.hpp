// client.hpp — minimal HTTP client (the "any browser" role in tests and
// the fetch half of the remote model-access protocol).
//
// All entry points take SocketOptions: a connect timeout (non-blocking
// connect + poll) and one I/O deadline spanning the whole exchange, so
// a hung or trickling peer costs a bounded amount of wall clock.  The
// Transport interface is the seam the resilience layer plugs into:
// RemoteLibrary retries through any Transport, and the fault-injection
// harness (fault.hpp) wraps one to simulate flaky networks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "web/http.hpp"

namespace powerplay::web {

/// One-shot request to 127.0.0.1:`port` (connection per request; the
/// request advertises `Connection: close`).  Throws HttpError on
/// connect/IO/parse failure and HttpTimeout when a SocketOptions
/// deadline expires.
Response http_request(std::uint16_t port, const Request& request,
                      const SocketOptions& options = {});

/// Deadline-propagating variant: the exchange runs under the *earlier*
/// of `caller` and the SocketOptions budgets, so an outbound call made
/// while serving an inbound request can never outlive that request's
/// own I/O timeout.  An already-expired caller deadline throws
/// HttpTimeout before any socket is opened.
Response http_request(std::uint16_t port, const Request& request,
                      const SocketOptions& options, const Deadline& caller);

/// GET convenience.
Response http_get(std::uint16_t port, const std::string& target,
                  const SocketOptions& options = {});

/// POST convenience with a urlencoded form body.
Response http_post_form(std::uint16_t port, const std::string& path,
                        const Params& form,
                        const SocketOptions& options = {});

/// A persistent HTTP/1.1 connection to 127.0.0.1:`port`: many
/// request/response exchanges over one socket (the keep-alive fast
/// path).  Each roundtrip gets a fresh io_timeout deadline.  After the
/// server closes the connection (keep-alive limit, idle timeout, or
/// `Connection: close` in a response) the next roundtrip throws
/// HttpError; callers that want transparency reconnect and retry.
class HttpConnection {
 public:
  explicit HttpConnection(std::uint16_t port, SocketOptions options = {});
  ~HttpConnection();

  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;
  HttpConnection(HttpConnection&& other) noexcept;
  HttpConnection& operator=(HttpConnection&& other) noexcept;

  /// Send one request (without half-closing) and read its response.
  /// Lazily connects on first use and after close().
  Response roundtrip(const Request& request);
  Response get(const std::string& target);

  /// True while the socket is open (a failed roundtrip closes it).
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

 private:
  std::uint16_t port_;
  SocketOptions options_;
  int fd_ = -1;
};

/// One request/response exchange with a peer, however realized.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Throws HttpError (HttpTimeout for deadlines) on transport failure.
  virtual Response roundtrip(const Request& request) = 0;
  /// Deadline-propagating variant.  The default ignores the deadline
  /// (correct for in-process transports, which cannot block on a
  /// socket); TcpTransport clamps its I/O budgets to it and
  /// FaultTransport forwards it to the wrapped transport.
  virtual Response roundtrip(const Request& request,
                             const Deadline& deadline) {
    (void)deadline;
    return roundtrip(request);
  }
};

/// The real thing: TCP to a loopback port.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(std::uint16_t port, SocketOptions options = {})
      : port_(port), options_(options) {}
  Response roundtrip(const Request& request) override {
    return http_request(port_, request, options_);
  }
  Response roundtrip(const Request& request,
                     const Deadline& deadline) override {
    return http_request(port_, request, options_, deadline);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  std::uint16_t port_;
  SocketOptions options_;
};

/// In-process transport backed by a handler function — hermetic tests
/// and benches without sockets.
class FunctionTransport : public Transport {
 public:
  explicit FunctionTransport(std::function<Response(const Request&)> fn)
      : fn_(std::move(fn)) {}
  using Transport::roundtrip;
  Response roundtrip(const Request& request) override {
    return fn_(request);
  }

 private:
  std::function<Response(const Request&)> fn_;
};

}  // namespace powerplay::web
