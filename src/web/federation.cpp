#include "web/federation.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "library/serialize.hpp"
#include "web/server.hpp"
#include "web/url.hpp"

namespace powerplay::web {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

/// Case-sensitive substring filter ("" matches everything).
bool matches(const std::string& name, const std::string& query) {
  return query.empty() || name.find(query) != std::string::npos;
}

// ---------------------------------------------------------------------------
// The poll-driven connection state machine (one per socket-backed host
// in a fan-out).  Same shape as the server reactor's connections, but
// client-side: connect -> write request -> read one framed response.
// ---------------------------------------------------------------------------

struct SockConn {
  int fd = -1;
  enum class Phase { kConnect, kWrite, kRead } phase = Phase::kConnect;
  std::string out;
  std::size_t off = 0;
  std::string in;
  std::chrono::steady_clock::time_point start;

  ~SockConn() {
    if (fd >= 0) ::close(fd);
  }

  [[nodiscard]] short events() const {
    return phase == Phase::kRead ? POLLIN : POLLOUT;
  }
};

/// Begin a non-blocking connect to 127.0.0.1:`port`.  Returns nullptr
/// (with `error` set) when even the socket call fails.
std::unique_ptr<SockConn> start_attempt(std::uint16_t port, std::string wire,
                                        std::string* error) {
  ignore_sigpipe();
  auto conn = std::make_unique<SockConn>();
  conn->out = std::move(wire);
  conn->start = std::chrono::steady_clock::now();
  conn->fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (conn->fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  const int flags = ::fcntl(conn->fd, F_GETFL, 0);
  ::fcntl(conn->fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(conn->fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
      0) {
    conn->phase = SockConn::Phase::kWrite;  // loopback: often immediate
  } else if (errno != EINPROGRESS) {
    *error = std::string("connect: ") + std::strerror(errno);
    return nullptr;
  }
  return conn;
}

/// Result of advancing one connection after poll() readiness: done
/// (with ok + response or error) or still in flight.
struct DriveOutcome {
  bool done = false;
  bool ok = false;
  Response response;
  std::string error;
};

DriveOutcome drive_conn(SockConn& conn) {
  DriveOutcome out;
  if (conn.phase == SockConn::Phase::kConnect) {
    int soerr = 0;
    socklen_t len = sizeof soerr;
    if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 ||
        soerr != 0) {
      out.done = true;
      out.error = std::string("connect: ") +
                  std::strerror(soerr != 0 ? soerr : errno);
      return out;
    }
    conn.phase = SockConn::Phase::kWrite;
  }
  if (conn.phase == SockConn::Phase::kWrite) {
    while (conn.off < conn.out.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.off,
                 conn.out.size() - conn.off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return out;
      out.done = true;
      out.error = std::string("send: ") + std::strerror(errno);
      return out;
    }
    ::shutdown(conn.fd, SHUT_WR);  // one-shot exchange, like http_request
    conn.phase = SockConn::Phase::kRead;
  }
  if (conn.phase == SockConn::Phase::kRead) {
    char buf[16384];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (conn.in.size() > kMaxMessageBytes) {
          out.done = true;
          out.error = "response exceeds message cap";
          return out;
        }
        if (message_size(conn.in).has_value()) break;  // framed: complete
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return out;
      if (n == 0) {
        // EOF.  A complete frame is fine (Connection: close servers);
        // anything shorter is the mid-body disconnect failure mode.
        if (message_size(conn.in).has_value()) break;
        out.done = true;
        out.error = conn.in.empty() ? "connection closed before response"
                                    : "connection closed mid-body";
        return out;
      }
      out.done = true;
      out.error = std::string("recv: ") + std::strerror(errno);
      return out;
    }
    out.done = true;
    try {
      out.response = parse_response(conn.in);
      out.ok = true;
    } catch (const HttpError& e) {
      out.error = e.what();
    }
  }
  return out;
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// Host state
// ---------------------------------------------------------------------------

struct FederatedLibrary::Host {
  std::string key;
  std::uint16_t port = 0;                ///< 0: transport-backed (tests)
  std::shared_ptr<Transport> transport;  ///< null: socket-backed
  CircuitBreaker breaker;

  bool have_latency = false;
  double ewma_latency_ms = 0;
  double ewma_error = 0;
  std::vector<double> window;  ///< recent latencies (ring, for p95)
  std::size_t window_next = 0;
  std::size_t in_flight = 0;

  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t skipped_open = 0;

  /// name -> serialized definition text, as of the last sync (change
  /// detection + the stale-while-revalidate serving copy).
  std::map<std::string, std::string> mirrored;
  std::chrono::steady_clock::time_point last_sync{};
  bool synced = false;

  Host(std::string k, const BreakerOptions& breaker_options,
       CircuitBreaker::Clock clock)
      : key(std::move(k)), breaker(breaker_options, std::move(clock)) {}
};

std::string to_string(HostStatus status) {
  switch (status) {
    case HostStatus::kServed:
      return "served";
    case HostStatus::kDegraded:
      return "degraded";
    case HostStatus::kSkippedOpen:
      return "skipped-open-breaker";
  }
  return "unknown";
}

std::uint16_t parse_peer_spec(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    throw HttpError("peer spec wants HOST:PORT, got '" + spec + "'");
  }
  const std::string host = spec.substr(0, colon);
  if (host != "127.0.0.1" && host != "localhost") {
    throw HttpError("federation supports loopback peers only, got '" + host +
                    "'");
  }
  const std::string digits = spec.substr(colon + 1);
  if (digits.empty()) throw HttpError("peer spec missing port: '" + spec + "'");
  unsigned long port = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      throw HttpError("bad peer port in '" + spec + "'");
    }
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) throw HttpError("peer port out of range in '" + spec + "'");
  }
  if (port == 0) throw HttpError("peer port must be nonzero in '" + spec + "'");
  return static_cast<std::uint16_t>(port);
}

// ---------------------------------------------------------------------------
// FederatedLibrary
// ---------------------------------------------------------------------------

FederatedLibrary::FederatedLibrary(FederationOptions options)
    : options_(std::move(options)) {}

FederatedLibrary::~FederatedLibrary() { stop_sync(); }

void FederatedLibrary::set_mirror_sink(MirrorSink sink) {
  std::lock_guard lock(mutex_);
  sink_ = std::move(sink);
}

std::chrono::steady_clock::time_point FederatedLibrary::now() const {
  return options_.clock ? options_.clock() : std::chrono::steady_clock::now();
}

Deadline FederatedLibrary::effective(const Deadline& deadline) const {
  return deadline.bounded() ? deadline
                            : Deadline::after(options_.default_deadline);
}

void FederatedLibrary::add_host(std::uint16_t port) {
  auto host = std::make_shared<Host>("127.0.0.1:" + std::to_string(port),
                                     options_.breaker, options_.clock);
  host->port = port;
  std::lock_guard lock(mutex_);
  for (const auto& existing : hosts_) {
    if (existing->key == host->key) return;  // idempotent add
  }
  hosts_.push_back(std::move(host));
}

void FederatedLibrary::add_host(const std::string& key,
                                std::shared_ptr<Transport> transport) {
  auto host = std::make_shared<Host>(key, options_.breaker, options_.clock);
  host->transport = std::move(transport);
  std::lock_guard lock(mutex_);
  for (const auto& existing : hosts_) {
    if (existing->key == host->key) return;
  }
  hosts_.push_back(std::move(host));
}

bool FederatedLibrary::remove_host(const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto it = std::find_if(
      hosts_.begin(), hosts_.end(),
      [&](const std::shared_ptr<Host>& h) { return h->key == key; });
  if (it == hosts_.end()) return false;
  hosts_.erase(it);
  return true;
}

std::size_t FederatedLibrary::host_count() const {
  std::lock_guard lock(mutex_);
  return hosts_.size();
}

double FederatedLibrary::p95_latency(const Host& host) {
  if (host.window.empty()) return 50.0;  // optimistic prior
  std::vector<double> sorted = host.window;
  std::sort(sorted.begin(), sorted.end());
  const auto idx =
      static_cast<std::size_t>(0.95 * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

double FederatedLibrary::health_score(const Host& host) {
  const double err = std::min(std::max(host.ewma_error, 0.0), 1.0);
  const double lat = host.have_latency ? host.ewma_latency_ms : 0.0;
  return (1.0 - err) / (1.0 + lat / 100.0);
}

std::vector<FedHostStats> FederatedLibrary::hosts() const {
  std::lock_guard lock(mutex_);
  std::vector<FedHostStats> out;
  out.reserve(hosts_.size());
  const auto at = now();
  for (const auto& host : hosts_) {
    FedHostStats s;
    s.key = host->key;
    s.breaker = host->breaker.state();
    s.ewma_latency_ms = host->ewma_latency_ms;
    s.p95_latency_ms = p95_latency(*host);
    s.error_rate = host->ewma_error;
    s.health = health_score(*host);
    s.in_flight = host->in_flight;
    s.requests = host->requests;
    s.failures = host->failures;
    s.hedges = host->hedges;
    s.hedge_wins = host->hedge_wins;
    s.skipped_open = host->skipped_open;
    s.mirrored_models = host->mirrored.size();
    s.synced = host->synced;
    if (host->synced) {
      s.staleness_ms = static_cast<std::uint64_t>(std::max<std::int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              at - host->last_sync)
              .count(),
          0));
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::shared_ptr<FederatedLibrary::Host>>
FederatedLibrary::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<std::shared_ptr<Host>> out = hosts_;
  // Health-ordered, ties broken by key so routing is deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const std::shared_ptr<Host>& a,
                      const std::shared_ptr<Host>& b) {
                     const double ha = health_score(*a);
                     const double hb = health_score(*b);
                     if (ha != hb) return ha > hb;
                     return a->key < b->key;
                   });
  return out;
}

bool FederatedLibrary::reserve(const std::shared_ptr<Host>& host) {
  std::lock_guard lock(mutex_);
  if (host->in_flight >= options_.max_in_flight) return false;
  ++host->in_flight;
  return true;
}

void FederatedLibrary::release(const std::shared_ptr<Host>& host) {
  std::lock_guard lock(mutex_);
  if (host->in_flight > 0) --host->in_flight;
}

void FederatedLibrary::record(const std::shared_ptr<Host>& host,
                              const TaskResult& result) {
  // A transport-level success carrying a 5xx is still a host failure for
  // health purposes; 2xx-4xx are answers.
  const bool ok = result.ok && result.response.status < 500;
  std::lock_guard lock(mutex_);
  ++host->requests;
  const double a = options_.ewma_alpha;
  host->ewma_error = (1 - a) * host->ewma_error + a * (ok ? 0.0 : 1.0);
  host->ewma_latency_ms = host->have_latency
                              ? (1 - a) * host->ewma_latency_ms +
                                    a * result.latency_ms
                              : result.latency_ms;
  host->have_latency = true;
  constexpr std::size_t kWindow = 64;
  if (host->window.size() < kWindow) {
    host->window.push_back(result.latency_ms);
  } else {
    host->window[host->window_next] = result.latency_ms;
    host->window_next = (host->window_next + 1) % kWindow;
  }
  if (ok) {
    host->breaker.record_success();
  } else {
    ++host->failures;
    host->breaker.record_failure();
  }
}

// ---------------------------------------------------------------------------
// Roundtrips: synchronous single, concurrent fan-out, hedged fetch
// ---------------------------------------------------------------------------

FederatedLibrary::TaskResult FederatedLibrary::single_roundtrip(
    const std::shared_ptr<Host>& host, const Request& request,
    const Deadline& deadline) {
  TaskResult result;
  const auto start = std::chrono::steady_clock::now();
  try {
    if (host->transport != nullptr) {
      result.response = host->transport->roundtrip(request, deadline);
    } else {
      result.response = http_request(host->port, request, {}, deadline);
    }
    result.ok = true;
  } catch (const HttpTimeout& e) {
    result.error = e.what();
    result.timed_out = true;
  } catch (const HttpError& e) {
    result.error = e.what();
  }
  result.latency_ms = elapsed_ms(start);
  return result;
}

std::vector<FederatedLibrary::TaskResult> FederatedLibrary::fanout(
    const std::vector<std::shared_ptr<Host>>& targets, const Request& request,
    const Deadline& deadline) {
  std::vector<TaskResult> results(targets.size());
  std::vector<std::unique_ptr<SockConn>> conns(targets.size());
  std::vector<bool> pending(targets.size(), false);

  Request oneshot = request;
  oneshot.headers["connection"] = "close";
  const std::string wire = to_wire(oneshot);

  // Launch.  Socket hosts enter the shared poll loop; injected
  // transports run inline, in order — deterministic for chaos replay.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (targets[i]->transport != nullptr) {
      results[i] = single_roundtrip(targets[i], request, deadline);
      continue;
    }
    std::string error;
    conns[i] = start_attempt(targets[i]->port, wire, &error);
    if (conns[i] == nullptr) {
      results[i].error = error;
    } else {
      pending[i] = true;
    }
  }

  // The fan-out poll loop: every in-flight connection is one pollfd;
  // the inbound deadline bounds every iteration.
  std::vector<pollfd> fds;
  std::vector<std::size_t> fd_index;
  for (;;) {
    fds.clear();
    fd_index.clear();
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (!pending[i]) continue;
      pollfd p{};
      p.fd = conns[i]->fd;
      p.events = conns[i]->events();
      fds.push_back(p);
      fd_index.push_back(i);
    }
    if (fds.empty()) break;
    if (deadline.expired()) break;
    const int rc = ::poll(fds.data(), fds.size(), deadline.poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;  // deadline check at loop top decides
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      const std::size_t i = fd_index[k];
      const DriveOutcome out = drive_conn(*conns[i]);
      if (!out.done) continue;
      pending[i] = false;
      results[i].ok = out.ok;
      results[i].response = out.response;
      results[i].error = out.error;
      results[i].latency_ms = elapsed_ms(conns[i]->start);
      conns[i].reset();
    }
  }
  // Whatever is still pending missed the caller's deadline.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!pending[i]) continue;
    results[i].timed_out = true;
    results[i].error = "deadline exceeded";
    results[i].latency_ms = elapsed_ms(conns[i]->start);
    conns[i].reset();  // closes the socket: the hedge loser is cancelled
  }
  return results;
}

FederatedLibrary::TaskResult FederatedLibrary::hedged_fetch(
    const std::vector<std::shared_ptr<Host>>& order, const Request& request,
    const Deadline& deadline, std::size_t& winner, bool& fired_hedge,
    bool& hedge_won) {
  winner = 0;
  fired_hedge = false;
  hedge_won = false;

  const auto hedge_delay = [&](const std::shared_ptr<Host>& host) {
    double p95;
    {
      std::lock_guard lock(mutex_);
      p95 = p95_latency(*host);
    }
    const auto by_p95 = std::chrono::milliseconds(static_cast<std::int64_t>(
        p95 * options_.hedge_p95_factor));
    return std::max(options_.hedge_min_delay, by_p95);
  };

  // Transport-backed primary: synchronous, so hedging is sequential
  // failover — the primary's failure (including a virtual-time timeout)
  // triggers the duplicate to the next-healthiest host.
  if (order[0]->transport != nullptr) {
    TaskResult primary = single_roundtrip(order[0], request, deadline);
    record(order[0], primary);
    if (primary.ok && primary.response.status < 500) return primary;
    if (order.size() < 2 || deadline.expired()) return primary;
    if (!reserve(order[1])) return primary;
    fired_hedge = true;
    {
      std::lock_guard lock(mutex_);
      ++order[1]->hedges;
    }
    TaskResult hedge = single_roundtrip(order[1], request, deadline);
    record(order[1], hedge);
    release(order[1]);
    if (hedge.ok && hedge.response.status < 500) {
      hedge_won = true;
      {
        std::lock_guard lock(mutex_);
        ++order[1]->hedge_wins;
      }
      winner = 1;
      return hedge;
    }
    return primary;
  }

  // Socket-backed primary: temporal hedging in one poll loop.  The
  // hedge fires while the primary is still in flight; first complete
  // response wins and the loser's socket is closed.
  Request oneshot = request;
  oneshot.headers["connection"] = "close";
  const std::string wire = to_wire(oneshot);

  struct Lane {
    std::size_t index;  ///< into `order`
    std::unique_ptr<SockConn> conn;
    TaskResult result;
    bool pending = false;
  };
  std::vector<Lane> lanes;
  {
    Lane lane;
    lane.index = 0;
    std::string error;
    lane.conn = start_attempt(order[0]->port, wire, &error);
    if (lane.conn == nullptr) {
      lane.result.error = error;
    } else {
      lane.pending = true;
    }
    lanes.push_back(std::move(lane));
  }
  const auto hedge_at =
      std::chrono::steady_clock::now() + hedge_delay(order[0]);

  const auto finish_lane = [&](Lane& lane) {
    record(order[lane.index], lane.result);
    if (lane.index != 0) release(order[lane.index]);
  };

  for (;;) {
    const bool any_pending =
        std::any_of(lanes.begin(), lanes.end(),
                    [](const Lane& l) { return l.pending; });
    if (!any_pending || deadline.expired()) break;

    // Wake at the earlier of the deadline and the hedge trigger.
    int timeout = deadline.poll_timeout_ms();
    const bool may_hedge = !fired_hedge && order.size() > 1 &&
                           order[1]->transport == nullptr;
    if (may_hedge) {
      const auto until_hedge =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              hedge_at - std::chrono::steady_clock::now())
              .count();
      const int hedge_ms = static_cast<int>(
          std::max<std::int64_t>(until_hedge, 0));
      timeout = timeout < 0 ? hedge_ms : std::min(timeout, hedge_ms);
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> lane_of;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (!lanes[i].pending) continue;
      pollfd p{};
      p.fd = lanes[i].conn->fd;
      p.events = lanes[i].conn->events();
      fds.push_back(p);
      lane_of.push_back(i);
    }
    const int rc = ::poll(fds.data(), fds.size(), timeout);
    if (rc < 0 && errno != EINTR) break;

    for (std::size_t k = 0; rc > 0 && k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      Lane& lane = lanes[lane_of[k]];
      const DriveOutcome out = drive_conn(*lane.conn);
      if (!out.done) continue;
      lane.pending = false;
      lane.result.ok = out.ok;
      lane.result.response = out.response;
      lane.result.error = out.error;
      lane.result.latency_ms = elapsed_ms(lane.conn->start);
      lane.conn.reset();
      if (lane.result.ok && lane.result.response.status < 500) {
        // First good response wins; cancel the other lane.
        finish_lane(lane);
        for (Lane& other : lanes) {
          if (&other == &lane || !other.pending) continue;
          other.pending = false;
          other.result.error = "cancelled: hedge race lost";
          other.conn.reset();
          if (other.index != 0) release(order[other.index]);
          // The loser is not recorded as a failure: it was cancelled.
        }
        winner = lane.index;
        hedge_won = lane.index != 0;
        if (hedge_won) {
          std::lock_guard lock(mutex_);
          ++order[lane.index]->hedge_wins;
        }
        return lane.result;
      }
      finish_lane(lane);  // a failed lane: the race continues
    }

    if (may_hedge && std::chrono::steady_clock::now() >= hedge_at &&
        lanes.size() == 1 && lanes[0].pending) {
      if (reserve(order[1])) {
        fired_hedge = true;
        {
          std::lock_guard lock(mutex_);
          ++order[1]->hedges;
        }
        Lane lane;
        lane.index = 1;
        std::string error;
        lane.conn = start_attempt(order[1]->port, wire, &error);
        if (lane.conn == nullptr) {
          lane.result.error = error;
          record(order[1], lane.result);
          release(order[1]);
        } else {
          lane.pending = true;
          lanes.push_back(std::move(lane));
        }
      }
    }
  }

  // Nobody won: time out whatever is still pending, return the
  // primary's result (or the hedge's, if the primary failed earlier).
  TaskResult final_result;
  bool have = false;
  for (Lane& lane : lanes) {
    if (lane.pending) {
      lane.pending = false;
      lane.result.timed_out = true;
      lane.result.error = "deadline exceeded";
      lane.result.latency_ms = elapsed_ms(lane.conn->start);
      lane.conn.reset();
      finish_lane(lane);
    }
    if (!have || lane.index == 0) {
      final_result = lane.result;
      winner = lane.index;
      have = true;
    }
  }
  return final_result;
}

// ---------------------------------------------------------------------------
// search
// ---------------------------------------------------------------------------

FedSearchResult FederatedLibrary::search(const std::string& query,
                                         const Deadline& caller_deadline) {
  const Deadline deadline = effective(caller_deadline);
  Request req;
  req.method = "GET";
  req.target = "/api/models";

  // Admission, under the lock: breaker verdicts and in-flight bounds.
  std::vector<std::shared_ptr<Host>> all;
  std::vector<FedHostOutcome> outcomes;
  std::vector<std::shared_ptr<Host>> attempt;
  std::vector<std::size_t> attempt_outcome;  // outcome index per attempt
  {
    std::lock_guard lock(mutex_);
    all = hosts_;
    for (const auto& host : all) {
      FedHostOutcome o;
      o.host = host->key;
      if (!host->breaker.allow()) {
        o.status = HostStatus::kSkippedOpen;
        o.error = "circuit open";
        ++host->skipped_open;
      } else if (host->in_flight >= options_.max_in_flight) {
        o.status = HostStatus::kDegraded;
        o.error = "in-flight bound reached";
      } else {
        ++host->in_flight;
        attempt.push_back(host);
        attempt_outcome.push_back(outcomes.size());
        o.status = HostStatus::kServed;  // provisional
      }
      outcomes.push_back(std::move(o));
    }
  }

  const std::vector<TaskResult> results = fanout(attempt, req, deadline);

  // Merge: name -> (replica count, fresh?).  Fresh listings win; the
  // mirror only fills in for hosts that could not answer.
  std::map<std::string, std::pair<int, bool>> merged;
  for (std::size_t i = 0; i < attempt.size(); ++i) {
    release(attempt[i]);
    record(attempt[i], results[i]);
    FedHostOutcome& o = outcomes[attempt_outcome[i]];
    o.latency_ms = results[i].latency_ms;
    if (results[i].ok && results[i].response.status == 200) {
      o.status = HostStatus::kServed;
      for (const std::string& name : split_lines(results[i].response.body)) {
        if (!matches(name, query)) continue;
        auto& slot = merged[name];
        ++slot.first;
        slot.second = true;
        ++o.items;
      }
    } else {
      o.status = HostStatus::kDegraded;
      o.error = results[i].ok
                    ? "status " + std::to_string(results[i].response.status)
                    : results[i].error;
    }
  }

  // Stale-while-revalidate: unreachable hosts still contribute their
  // mirrored names, marked stale, so a partition degrades rather than
  // empties the federation.
  bool any_stale = false;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < all.size(); ++i) {
      FedHostOutcome& o = outcomes[i];
      if (o.status == HostStatus::kServed) continue;
      const auto& host = all[i];
      if (!host->synced) continue;
      for (const auto& [name, text] : host->mirrored) {
        if (!matches(name, query)) continue;
        ++merged[name].first;
        ++o.items;
        o.stale = true;
        any_stale = true;
      }
    }
  }

  FedSearchResult result;
  for (const auto& [name, slot] : merged) {
    FedModelEntry entry;
    entry.name = name;
    entry.replicas = slot.first;
    entry.stale = !slot.second;
    result.models.push_back(std::move(entry));
  }
  // Rank: most replicated first, then name — deterministic regardless
  // of which host answered first (byte-stable across fault schedules).
  std::sort(result.models.begin(), result.models.end(),
            [](const FedModelEntry& a, const FedModelEntry& b) {
              if (a.replicas != b.replicas) return a.replicas > b.replicas;
              return a.name < b.name;
            });
  std::sort(outcomes.begin(), outcomes.end(),
            [](const FedHostOutcome& a, const FedHostOutcome& b) {
              return a.host < b.host;
            });
  result.hosts = std::move(outcomes);
  result.partial = std::any_of(
      result.hosts.begin(), result.hosts.end(), [](const FedHostOutcome& o) {
        return o.status != HostStatus::kServed;
      });
  result.stale = any_stale;

  {
    std::lock_guard lock(mutex_);
    ++stats_.searches;
    if (result.partial) ++stats_.partial_results;
    for (const FedHostOutcome& o : result.hosts) {
      if (o.status == HostStatus::kDegraded) ++stats_.degraded_seen;
      if (o.status == HostStatus::kSkippedOpen) ++stats_.skipped_open;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// fetch
// ---------------------------------------------------------------------------

FedFetchResult FederatedLibrary::fetch_model(const std::string& name,
                                             const Deadline& caller_deadline) {
  const Deadline deadline = effective(caller_deadline);
  Request req;
  req.method = "GET";
  req.target = "/api/model?name=" + url_encode(name);

  const std::vector<std::shared_ptr<Host>> ordered = snapshot();

  // Admit candidates lazily down the health ranking: the breaker verdict
  // and the in-flight reservation happen only when a host is actually
  // about to be used.
  std::vector<std::shared_ptr<Host>> candidates;
  std::uint64_t skipped = 0;
  {
    std::lock_guard lock(mutex_);
    for (const auto& host : ordered) {
      if (!host->breaker.allow()) {
        ++host->skipped_open;
        ++skipped;
        continue;
      }
      candidates.push_back(host);
    }
  }

  std::string last_error = "no federated hosts";
  bool fired_hedge = false;
  bool hedge_won = false;
  TaskResult won;
  std::shared_ptr<Host> origin;

  if (!candidates.empty() && reserve(candidates[0])) {
    std::size_t winner = 0;
    won = hedged_fetch(candidates, req, deadline, winner, fired_hedge,
                       hedge_won);
    release(candidates[0]);
    if (won.ok && won.response.status == 200) {
      origin = candidates[winner];
    } else {
      last_error = won.ok
                       ? "status " + std::to_string(won.response.status)
                       : won.error;
      // Fail over past the hedged pair, health order, until the
      // caller's deadline runs out.
      for (std::size_t i = fired_hedge ? 2 : 1;
           i < candidates.size() && !deadline.expired(); ++i) {
        if (!reserve(candidates[i])) continue;
        TaskResult attempt = single_roundtrip(candidates[i], req, deadline);
        record(candidates[i], attempt);
        release(candidates[i]);
        if (attempt.ok && attempt.response.status == 200) {
          won = attempt;
          origin = candidates[i];
          break;
        }
        last_error = attempt.ok
                         ? "status " +
                               std::to_string(attempt.response.status)
                         : attempt.error;
      }
    }
  }

  FedFetchResult out;
  {
    std::lock_guard lock(mutex_);
    ++stats_.fetches;
    if (fired_hedge) ++stats_.hedges;
    if (hedge_won) ++stats_.hedge_wins;
    stats_.skipped_open += skipped;
  }

  if (origin != nullptr) {
    out.def = library::parse_user_model(won.response.body);
    out.origin = origin->key;
    out.hedged = fired_hedge;
    out.hedge_won = hedge_won;
    // A successful fetch doubles as a single-model revalidation.
    bool changed = false;
    {
      std::lock_guard lock(mutex_);
      auto& slot = origin->mirrored[name];
      changed = slot != won.response.body;
      slot = won.response.body;
    }
    MirrorSink sink;
    {
      std::lock_guard lock(mutex_);
      sink = sink_;
    }
    if (changed && sink) sink(out.def);
    return out;
  }

  // Every live host failed: stale-while-revalidate from the freshest
  // mirror copy, staleness stamped for the caller.
  {
    std::lock_guard lock(mutex_);
    std::shared_ptr<Host> best;
    for (const auto& host : hosts_) {
      if (!host->synced) continue;
      if (host->mirrored.find(name) == host->mirrored.end()) continue;
      if (best == nullptr || host->last_sync > best->last_sync) best = host;
    }
    if (best != nullptr) {
      out.def = library::parse_user_model(best->mirrored.at(name));
      out.origin = best->key;
      out.from_mirror = true;
      out.hedged = fired_hedge;
      out.staleness_ms = static_cast<std::uint64_t>(std::max<std::int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now() - best->last_sync)
              .count(),
          0));
      ++stats_.mirror_serves;
      return out;
    }
  }
  throw HttpError("federated fetch of '" + name + "' failed: " + last_error);
}

// ---------------------------------------------------------------------------
// background sync (stale-while-revalidate's revalidate half)
// ---------------------------------------------------------------------------

std::vector<model::UserModelDefinition> FederatedLibrary::sync_host(
    const std::shared_ptr<Host>& host) {
  const Deadline deadline = Deadline::after(options_.default_deadline);
  if (!reserve(host)) throw HttpError("in-flight bound reached");

  Request list_req;
  list_req.method = "GET";
  list_req.target = "/api/models";
  TaskResult listed = single_roundtrip(host, list_req, deadline);
  record(host, listed);
  if (!listed.ok || listed.response.status != 200) {
    release(host);
    throw HttpError(listed.ok ? "list: status " +
                                    std::to_string(listed.response.status)
                              : listed.error);
  }

  std::map<std::string, std::string> fresh;
  std::vector<model::UserModelDefinition> changed;
  try {
    for (const std::string& name : split_lines(listed.response.body)) {
      Request get;
      get.method = "GET";
      get.target = "/api/model?name=" + url_encode(name);
      TaskResult fetched = single_roundtrip(host, get, deadline);
      record(host, fetched);
      if (!fetched.ok) throw HttpError(fetched.error);
      if (fetched.response.status != 200) continue;  // e.g. proprietary
      fresh[name] = fetched.response.body;
    }
  } catch (...) {
    release(host);
    throw;
  }
  release(host);

  {
    std::lock_guard lock(mutex_);
    for (const auto& [name, text] : fresh) {
      const auto it = host->mirrored.find(name);
      if (it == host->mirrored.end() || it->second != text) {
        changed.push_back(library::parse_user_model(text));
      }
    }
    host->mirrored = std::move(fresh);
    host->last_sync = now();
    host->synced = true;
    stats_.sync_models += changed.size();
  }
  cv_.notify_all();
  return changed;
}

int FederatedLibrary::sync_now() {
  std::vector<std::shared_ptr<Host>> all;
  MirrorSink sink;
  {
    std::lock_guard lock(mutex_);
    all = hosts_;
    sink = sink_;
    ++stats_.sync_runs;
  }
  int synced = 0;
  for (const auto& host : all) {
    {
      // An open breaker in cooldown skips the host (the next allow()
      // after cooldown makes this sync pass the half-open probe).
      std::lock_guard lock(mutex_);
      if (!host->breaker.allow()) continue;
    }
    try {
      const std::vector<model::UserModelDefinition> changed = sync_host(host);
      ++synced;
      if (sink) {
        for (const model::UserModelDefinition& def : changed) sink(def);
      }
    } catch (const std::exception&) {
      std::lock_guard lock(mutex_);
      ++stats_.sync_failures;
    }
  }
  return synced;
}

void FederatedLibrary::sync_loop() {
  while (sync_running_.load()) {
    sync_now();
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, options_.sync_interval,
                 [this] { return !sync_running_.load(); });
  }
}

void FederatedLibrary::start_sync() {
  if (sync_running_.exchange(true)) return;
  sync_thread_ = std::thread([this] { sync_loop(); });
}

void FederatedLibrary::stop_sync() {
  sync_running_.store(false);
  {
    std::lock_guard lock(mutex_);
  }
  cv_.notify_all();
  if (sync_thread_.joinable()) sync_thread_.join();
}

bool FederatedLibrary::wait_synced(const std::string& key,
                                   std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  return cv_.wait_for(lock, timeout, [&] {
    for (const auto& host : hosts_) {
      if (host->key == key) return host->synced;
    }
    return false;
  });
}

FederationStats FederatedLibrary::stats() const {
  std::lock_guard lock(mutex_);
  FederationStats out = stats_;
  out.hosts = hosts_.size();
  out.hosts_available = 0;
  for (const auto& host : hosts_) {
    if (host->breaker.state() != CircuitBreaker::State::kOpen) {
      ++out.hosts_available;
    }
  }
  return out;
}

}  // namespace powerplay::web
