// app.hpp — the PowerPlay web application: routes and pages.
//
// Implements the interaction flow of the paper's "PowerPlay
// Implementation" section with C++ handlers in place of Perl scripts:
//
//   GET  /                    — identification (username) form
//   GET  /menu                — the user's main menu (defaults loaded
//                               from the store, designs listed)
//   GET  /library             — shared model library, by category
//   GET  /model               — a model's input form (Figure 4); with
//                               parameter values present it also shows
//                               the computed result excerpt
//   POST /design/add          — append the configured instance to a
//                               design spreadsheet (creating it if new)
//   GET  /design              — the design spreadsheet (Figure 2/5) with
//                               editable globals and a Play button
//   POST /design/play         — apply global edits, recompute, re-render
//   POST /design/setrow       — edit one row parameter and recompute
//   GET  /newmodel            — the user-defined-model form
//   POST /newmodel            — validate + save the new model
//   GET  /doc                 — a model's documentation page
//
// Async evaluation (the parallel engine behind the what-if loop):
//
//   POST /design/sweep        — enqueue a sweep job, answer with its id
//   POST /design/explore      — design-space exploration job: mode=
//                               mc | pareto | inverse | fit (docs/explore.md)
//   GET  /job?id=N            — poll status/progress; result when done
//                               (format=csv | json)
//   GET  /jobs?user=U         — a user's jobs, newest first (format=json)
//   POST /job/cancel?id=N     — cooperative cancel (owner only)
//
// Remote model-access protocol (Figures 6/7), plain-text bodies in the
// library serialization format:
//
//   GET /api/models           — list of shareable model names
//   GET /api/model?name=N     — one model definition (403 if proprietary)
//   GET /api/designs          — list of stored design names
//   GET /api/design?name=N    — one design
//   GET /design/csv?user=U&name=N — Play result as CSV (spreadsheet
//                               interchange for external tooling)
//
// The Design Agent page shows how a hyperlink request for data maps to
// tool invocations in each design context:
//
//   GET /agent?user=U&request=power
//
// Concurrency: there is no global app mutex.  Each user's requests are
// serialized by a per-user session lock; the shared library (store +
// registry) sits behind a read/write lock taken shared by read-only
// routes and exclusive by the few mutating ones, so concurrent users
// no longer serialize behind each other (docs/engine.md).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "flow/design_agent.hpp"
#include "library/store.hpp"
#include "model/registry.hpp"
#include "web/cache.hpp"
#include "web/federation.hpp"
#include "web/http.hpp"
#include "web/repl.hpp"
#include "web/server.hpp"

namespace powerplay::web {

/// App-level serving knobs (separate from the engine/job sizing).
struct AppOptions {
  /// Cache rendered GET responses (ETag + 304 handling); disable for
  /// benchmarking the cold path.
  bool response_cache = true;
  ResponseCacheOptions cache;
};

class PowerPlayApp {
 public:
  /// `store` is this site's library; the registry starts from the
  /// built-in characterized library plus every stored user model.
  /// `engine_options` sizes the evaluation thread pool and Play cache;
  /// `job_options` sizes the job runner pool and sets the per-job
  /// wall-clock deadline; `app_options` sizes the response cache.
  explicit PowerPlayApp(library::LibraryStore store,
                        engine::EngineOptions engine_options = {},
                        engine::JobOptions job_options = {},
                        AppOptions app_options = {});

  /// Graceful shutdown: drain the job runners (cancelling queued and
  /// running jobs), then flush/compact the store's journal.  Call after
  /// the HttpServer has stopped accepting requests.
  void shutdown();

  /// Dispatch one request.  Thread-safe: requests for distinct users
  /// run concurrently; only library mutations take the exclusive lock.
  Response handle(const Request& request);

  [[nodiscard]] model::ModelRegistry& registry() { return registry_; }
  [[nodiscard]] library::LibraryStore& store() { return store_; }
  [[nodiscard]] engine::EvalEngine& engine() { return engine_; }
  [[nodiscard]] engine::JobManager& jobs() { return jobs_; }

  /// Let /healthz report the serving HttpServer's counters (wired by
  /// whoever owns both the app and the server; optional).
  using StatsSource = std::function<ServerStats()>;
  void set_stats_source(StatsSource source) {
    std::lock_guard lock(stats_mutex_);
    stats_source_ = std::move(source);
  }

  // --- replication -----------------------------------------------------
  //
  // Every app serves the primary half of the protocol (/repl/snapshot
  // and the /repl/journal long-poll feed) — a follower can itself be
  // followed, and a freshly promoted node is already serving.  The role
  // only changes what happens to *writes*: a follower answers every
  // mutating route with 307 to the primary, so browsers and API clients
  // transparently retarget while reads scale out locally.

  enum class ReplRole { kPrimary, kFollower };

  /// Follower mode needs the primary's base URL (e.g.
  /// "http://127.0.0.1:8080") for the 307 Location headers.
  void set_role(ReplRole role, std::string primary_url = {});
  [[nodiscard]] ReplRole role() const { return role_.load(); }

  /// Follower lag/progress counters for /healthz (wired by whoever owns
  /// both the app and the ReplicationFollower; optional).
  using ReplStatsSource = std::function<ReplicationStats()>;
  void set_repl_stats_source(ReplStatsSource source);

  /// POST /repl/promote delegates here when set; the hook must stop the
  /// follower, promote the store and flip the role, returning the new
  /// epoch (examples/powerplay_server.cpp wires exactly that).  Without
  /// a hook, a follower app promotes its own store directly.
  using PromoteHook = std::function<std::uint64_t()>;
  void set_promote_hook(PromoteHook hook);

  // --- federation ------------------------------------------------------
  //
  // The federated model network (docs/federation.md): /fed/* routes fan
  // out to peer sites with health scoring, hedging, and partial-failure
  // degradation.  The mirror sink journals synced remote definitions
  // into this site's store, so they survive crashes and partitions.

  /// Turn federation on (idempotent; returns the existing instance on
  /// repeat calls).  Wires the mirror sink into the library.
  FederatedLibrary& enable_federation(FederationOptions options = {});
  /// Null until enable_federation() has been called.
  [[nodiscard]] FederatedLibrary* federation() { return federation_.get(); }

  /// Per-request wall-clock budget propagated as the Deadline of every
  /// outbound federated call (typically the server's io_timeout, wired
  /// by whoever owns both).  Zero = use the federation default.
  void set_request_budget(std::chrono::milliseconds budget) {
    request_budget_ms_.store(budget.count());
  }

 private:
  Response page_healthz();
  Response repl_snapshot();
  Response repl_journal(const Params& q);
  Response do_repl_promote();
  Response redirect_to_primary(const Request& request);
  Response page_root() const;
  Response page_menu(const Params& q);
  Response page_library(const Params& q) const;
  Response page_model(const Params& q) const;
  Response do_design_add(const Params& q);
  Response page_design(const Params& q) const;
  Response do_design_play(const Params& q);
  Response do_design_setrow(const Params& q);
  Response do_design_sweep(const Params& q);
  Response do_design_explore(const Params& q);
  Response page_job(const Params& q) const;
  Response page_jobs(const Params& q) const;
  Response do_job_cancel(const Params& q);
  Response page_new_model(const Params& q) const;
  Response do_new_model(const Params& q);
  Response page_doc(const Params& q) const;
  Response page_agent(const Params& q) const;
  Response do_set_password(const Params& q);
  Response page_help(const Params& q) const;
  Response design_csv(const Params& q) const;

  Response api_models() const;
  Response api_model(const Params& q) const;
  Response api_designs() const;
  Response api_design(const Params& q) const;

  [[nodiscard]] Deadline request_deadline() const;
  Response fed_models(const Params& q);
  Response fed_model(const Params& q);
  Response fed_hosts_page() const;
  Response do_fed_hosts(const Params& q);

  /// Authentication failure (403, vs HttpError's 400).
  class AccessDenied : public std::runtime_error {
   public:
    using std::runtime_error::runtime_error;
  };

  /// Load-or-create the profile for q["user"], enforcing its password.
  library::UserProfile authorized_user(const Params& q);

  /// Render a design's spreadsheet page (shared by several handlers).
  Response render_design(const std::string& user,
                         const std::string& design_name,
                         const std::string& message = {}) const;

  Response dispatch(const std::string& path, const std::string& method,
                    const Params& q);

  /// The cached-GET fast path: revision-checked lookup, fingerprint
  /// revalidation, If-None-Match handling, and fill-on-miss.  Only
  /// called for cacheable routes (see cacheable_route in app.cpp).
  Response serve_cached(const Request& request, const Params& q);

  /// The named user's session mutex (created on first sight).
  std::shared_ptr<std::mutex> session_lock(const std::string& user);

  /// Store + registry lock: shared for reads, exclusive for the few
  /// mutating routes (/design/add, /design/play, /design/setrow,
  /// POST /newmodel).
  mutable std::shared_mutex library_mutex_;
  std::mutex sessions_mutex_;
  std::map<std::string, std::shared_ptr<std::mutex>> session_locks_;
  mutable std::mutex stats_mutex_;
  StatsSource stats_source_;
  /// Role is read on every request; the strings/hooks behind it are
  /// cold and sit behind repl_mutex_.
  std::atomic<ReplRole> role_{ReplRole::kPrimary};
  mutable std::mutex repl_mutex_;
  std::string primary_url_;
  ReplStatsSource repl_stats_source_;
  PromoteHook promote_hook_;

  /// Created by enable_federation(); its sync thread is stopped first
  /// thing in shutdown() so no mirror sink fires during compaction.
  std::unique_ptr<FederatedLibrary> federation_;
  std::atomic<std::int64_t> request_budget_ms_{0};

  library::LibraryStore store_;
  model::ModelRegistry registry_;
  flow::DesignAgent agent_;
  engine::EvalEngine engine_;
  engine::JobManager jobs_;

  /// Rendered-GET cache (null when AppOptions::response_cache is off).
  std::unique_ptr<ResponseCache> cache_;
  /// Registry generation: bumped when a model definition is (re)saved.
  /// A redefinition changes Play results without changing any design's
  /// fingerprint, so cached design pages must key on this too.
  std::atomic<std::uint64_t> model_revision_{1};

  // Exploration counters for /healthz.  surrogate_hits_total_ is bumped
  // from const page handlers, hence mutable.
  std::atomic<std::uint64_t> explore_jobs_total_{0};
  std::atomic<std::uint64_t> mc_points_total_{0};
  std::atomic<std::uint64_t> surrogate_fits_total_{0};
  mutable std::atomic<std::uint64_t> surrogate_hits_total_{0};
  /// Bytes of columnar sweep payload (csv + json) rendered by batched
  /// grid jobs, for /healthz.
  std::atomic<std::uint64_t> columnar_bytes_streamed_total_{0};
};

}  // namespace powerplay::web
