#include "web/url.hpp"

#include <cctype>

namespace powerplay::web {

namespace {

bool unreserved(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
         c == '_' || c == '.' || c == '~';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string url_encode(const std::string& text) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (unreserved(c)) {
      out.push_back(c);
    } else if (c == ' ') {
      out.push_back('+');
    } else {
      const auto byte = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(hex[byte >> 4]);
      out.push_back(hex[byte & 0xF]);
    }
  }
  return out;
}

std::string url_decode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size() &&
               hex_value(text[i + 1]) >= 0 && hex_value(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hex_value(text[i + 1]) * 16 +
                                      hex_value(text[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Params parse_query(const std::string& query) {
  Params out;
  std::size_t start = 0;
  while (start <= query.size()) {
    std::size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        out[url_decode(pair)] = "";
      } else {
        out[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
      }
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return out;
}

Target parse_target(const std::string& target) {
  Target out;
  const std::size_t q = target.find('?');
  if (q == std::string::npos) {
    out.path = url_decode(target);
  } else {
    out.path = url_decode(target.substr(0, q));
    out.query = parse_query(target.substr(q + 1));
  }
  return out;
}

std::string to_query(const Params& params) {
  std::string out;
  for (const auto& [key, value] : params) {
    if (!out.empty()) out.push_back('&');
    out += url_encode(key) + "=" + url_encode(value);
  }
  return out;
}

std::string get_or(const Params& params, const std::string& key,
                   const std::string& fallback) {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

}  // namespace powerplay::web
