// html.hpp — HTML generation helpers for the PowerPlay pages.
//
// "A WWW page is written in HyperText Markup Language (HTML).  HTML
// pages enable hyperlinks to other pages and calls to programs located
// on the WWW."  These helpers generate the mid-90s-plain pages the Perl
// scripts printed: headings, tables (Figure 2/5 spreadsheets), forms
// (Figure 4 model input), and hyperlinks.
#pragma once

#include <string>
#include <vector>

#include "web/url.hpp"

namespace powerplay::web {

/// Escape &, <, >, and " for element/attribute context.
std::string html_escape(const std::string& text);

/// Hyperlink with an encoded query.
std::string link(const std::string& path, const Params& query,
                 const std::string& text);

class HtmlPage {
 public:
  explicit HtmlPage(std::string title);

  HtmlPage& heading(const std::string& text, int level = 2);
  HtmlPage& paragraph(const std::string& text);
  /// Raw pre-escaped fragment (tables/forms built below).
  HtmlPage& raw(const std::string& fragment);
  HtmlPage& rule();

  /// Final document.
  [[nodiscard]] std::string str() const;

 private:
  std::string title_;
  std::string body_;
};

/// Table builder (rows of already-escaped cells are a footgun, so cells
/// are escaped here; pass raw_cell() output for markup like links).
class HtmlTable {
 public:
  HtmlTable& header(const std::vector<std::string>& cells);
  HtmlTable& row(const std::vector<std::string>& cells);
  /// Mark a cell's content as pre-rendered markup.
  static std::string raw_cell(const std::string& markup);
  [[nodiscard]] std::string str() const;

 private:
  static std::string render_cell(const std::string& cell, const char* tag);
  std::string rows_;
};

/// Form builder: GET or POST with text inputs and a submit button.
class HtmlForm {
 public:
  HtmlForm(std::string action, std::string method = "POST");
  HtmlForm& hidden(const std::string& name, const std::string& value);
  HtmlForm& text_field(const std::string& label, const std::string& name,
                       const std::string& value);
  HtmlForm& submit(const std::string& label);
  [[nodiscard]] std::string str() const;

 private:
  std::string action_;
  std::string method_;
  std::string fields_;
};

}  // namespace powerplay::web
