#include "web/remote.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>

#include "library/serialize.hpp"
#include "web/client.hpp"

namespace powerplay::web {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

/// SplitMix64: a tiny, stable hash so jitter is identical across
/// standard libraries and runs.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Parse a Retry-After header (delta-seconds form only); nullopt when
/// absent or unparsable.
std::optional<std::chrono::milliseconds> retry_after(const Response& resp) {
  const auto it = resp.headers.find("retry-after");
  if (it == resp.headers.end()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const unsigned long long secs = std::stoull(it->second, &pos);
    if (pos != it->second.size()) return std::nullopt;
    return std::chrono::milliseconds(
        std::min<unsigned long long>(secs, 3600) * 1000);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// RetryPolicy / CircuitBreaker
// ---------------------------------------------------------------------------

std::chrono::milliseconds RetryPolicy::backoff(int retry) const {
  if (retry < 0) retry = 0;
  // Exponential growth, saturating well before overflow.
  auto delay = base_backoff;
  for (int i = 0; i < retry && delay < max_backoff; ++i) delay *= 2;
  delay = std::min(delay, max_backoff);
  // Up to +50% deterministic jitter from (seed, retry).
  const std::uint64_t h = splitmix64(jitter_seed ^ static_cast<std::uint64_t>(
                                                       retry + 1));
  const auto half = delay.count() / 2;
  const auto jitter =
      half > 0 ? static_cast<std::chrono::milliseconds::rep>(h % (half + 1))
               : 0;
  return std::min(delay + std::chrono::milliseconds(jitter), max_backoff);
}

CircuitBreaker::CircuitBreaker(Options options, Clock clock)
    : options_(options), clock_(std::move(clock)) {
  if (!clock_) {
    clock_ = [] { return std::chrono::steady_clock::now(); };
  }
}

bool CircuitBreaker::allow() {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_() - opened_at_ >= options_.cooldown) {
        state_ = State::kHalfOpen;  // the caller owns the probe
        return true;
      }
      return false;
    case State::kHalfOpen:
      return false;  // one probe at a time
  }
  return false;
}

void CircuitBreaker::record_success() {
  state_ = State::kClosed;
  failures_ = 0;
}

void CircuitBreaker::record_failure() {
  ++failures_;
  if (state_ == State::kHalfOpen || failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = clock_();
  }
}

// ---------------------------------------------------------------------------
// RemoteLibrary
// ---------------------------------------------------------------------------

RemoteLibrary::RemoteLibrary(std::shared_ptr<Transport> transport,
                             RetryPolicy policy,
                             CircuitBreaker::Options breaker,
                             CircuitBreaker::Clock clock)
    : transport_(std::move(transport)),
      policy_(policy),
      breaker_(breaker, std::move(clock)),
      sleeper_([](std::chrono::milliseconds d) {
        std::this_thread::sleep_for(d);
      }) {}

Response RemoteLibrary::fetch_with_retry(const std::string& target) const {
  Request req;
  req.method = "GET";
  req.target = target;
  return perform(req);
}

Response RemoteLibrary::perform(const Request& req) const {
  std::string last_error = "no attempt made";
  // Retry safety: only idempotent requests may be replayed.  A lost
  // response to a non-GET leaves the remote's state unknown — one
  // attempt, and the failure surfaces.
  const bool idempotent = req.method == "GET";
  const int attempts = idempotent ? std::max(policy_.max_attempts, 1) : 1;
  std::optional<std::chrono::milliseconds> server_hint;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      // A 503 Retry-After hint from the server overrides our schedule.
      sleeper_(server_hint.value_or(policy_.backoff(attempt - 1)));
      server_hint.reset();
    }
    if (!breaker_.allow()) {
      throw CircuitOpenError("circuit open for remote site; failing fast (" +
                             std::to_string(breaker_.consecutive_failures()) +
                             " consecutive failures)");
    }
    try {
      ++round_trips_;
      Response resp = transport_->roundtrip(req);
      if (resp.status >= 500) {
        breaker_.record_failure();
        if (resp.status == 503) server_hint = retry_after(resp);
        last_error = "status " + std::to_string(resp.status);
        continue;  // retryable: the server, not the request, failed
      }
      breaker_.record_success();
      return resp;  // 2xx–4xx are final answers
    } catch (const HttpError& e) {
      breaker_.record_failure();
      last_error = e.what();
    }
  }
  throw HttpError("remote " + req.method + " '" + req.target +
                  "' failed after " + std::to_string(attempts) +
                  " attempt(s): " + last_error);
}

std::string RemoteLibrary::fetch_text(const std::string& target) const {
  const Response resp = fetch_with_retry(target);
  if (resp.status != 200) {
    throw HttpError("remote fetch of '" + target + "' failed: " +
                    std::to_string(resp.status) + " " + resp.body);
  }
  return resp.body;
}

std::vector<std::string> RemoteLibrary::list_models() const {
  return split_lines(fetch_text("/api/models"));
}

model::UserModelDefinition RemoteLibrary::fetch_model(
    const std::string& name) const {
  return library::parse_user_model(
      fetch_text("/api/model?name=" + url_encode(name)));
}

std::vector<std::string> RemoteLibrary::list_designs() const {
  return split_lines(fetch_text("/api/designs"));
}

std::string RemoteLibrary::fetch_design_text(const std::string& name) const {
  return fetch_text("/api/design?name=" + url_encode(name));
}

std::string RemoteLibrary::import_model(const std::string& name,
                                        model::ModelRegistry& into) const {
  auto def = fetch_model(name);
  into.add_or_replace(std::make_shared<model::UserModel>(def));
  return def.name;
}

std::vector<std::string> RemoteLibrary::import_all(
    model::ModelRegistry& into) const {
  std::vector<std::string> imported;
  for (const std::string& name : list_models()) {
    imported.push_back(import_model(name, into));
  }
  return imported;
}

// ---------------------------------------------------------------------------
// HubChain
// ---------------------------------------------------------------------------

HubChain::HubChain(int hubs, units::Time per_hop_latency,
                   units::Time poll_interval)
    : hubs_(hubs),
      per_hop_latency_(per_hop_latency),
      poll_interval_(poll_interval) {}

HubTransferResult HubChain::transfer(const std::string& payload) const {
  HubTransferResult result;
  // Event-by-event store-and-forward: the message visits every hub in
  // both directions.  Each leg is one transmission; each *hub* handling
  // adds the hop latency plus the expected half poll interval (the
  // requester and provider endpoints handle immediately).
  struct Node {
    bool is_hub;
    std::deque<std::string> inbox;
  };
  std::vector<Node> path;
  path.push_back({false, {}});                       // requester
  for (int i = 0; i < hubs_; ++i) path.push_back({true, {}});
  path.push_back({false, {}});                       // provider

  auto relay = [&](bool forward) {
    const int n = static_cast<int>(path.size());
    const int from = forward ? 0 : n - 1;
    const int to = forward ? n - 1 : 0;
    const int step = forward ? 1 : -1;
    path[from].inbox.push_back(payload);
    for (int i = from; i != to; i += step) {
      std::string msg = path[i].inbox.front();
      path[i].inbox.pop_front();
      if (path[i].is_hub) {
        result.latency += per_hop_latency_ + poll_interval_ / 2.0;
      }
      path[i + step].inbox.push_back(std::move(msg));
      ++result.messages;
    }
    if (path[to].is_hub) {
      result.latency += per_hop_latency_ + poll_interval_ / 2.0;
    }
    std::string delivered = path[to].inbox.front();
    path[to].inbox.pop_front();
    return delivered;
  };

  relay(/*forward=*/true);           // request reaches the provider
  result.payload = relay(false);     // response retraces the path
  return result;
}

// ---------------------------------------------------------------------------
// timed_fetch
// ---------------------------------------------------------------------------

HttpFetchResult timed_fetch(std::uint16_t port, const std::string& target) {
  const auto begin = std::chrono::steady_clock::now();
  const Response resp = http_get(port, target);
  const auto end = std::chrono::steady_clock::now();
  if (resp.status != 200) {
    throw HttpError("timed_fetch: status " + std::to_string(resp.status));
  }
  HttpFetchResult out;
  out.latency = units::Time{
      std::chrono::duration<double>(end - begin).count()};
  out.bytes = resp.body.size();
  out.messages = 2;
  return out;
}

}  // namespace powerplay::web
