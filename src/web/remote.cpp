#include "web/remote.hpp"

#include <chrono>
#include <deque>

#include "library/serialize.hpp"
#include "web/client.hpp"

namespace powerplay::web {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

std::string RemoteLibrary::fetch_text(const std::string& target) const {
  ++round_trips_;
  const Response resp = http_get(port_, target);
  if (resp.status != 200) {
    throw HttpError("remote fetch of '" + target + "' failed: " +
                    std::to_string(resp.status) + " " + resp.body);
  }
  return resp.body;
}

std::vector<std::string> RemoteLibrary::list_models() const {
  return split_lines(fetch_text("/api/models"));
}

model::UserModelDefinition RemoteLibrary::fetch_model(
    const std::string& name) const {
  return library::parse_user_model(
      fetch_text("/api/model?name=" + url_encode(name)));
}

std::vector<std::string> RemoteLibrary::list_designs() const {
  return split_lines(fetch_text("/api/designs"));
}

std::string RemoteLibrary::fetch_design_text(const std::string& name) const {
  return fetch_text("/api/design?name=" + url_encode(name));
}

std::string RemoteLibrary::import_model(const std::string& name,
                                        model::ModelRegistry& into) const {
  auto def = fetch_model(name);
  into.add_or_replace(std::make_shared<model::UserModel>(def));
  return def.name;
}

// ---------------------------------------------------------------------------
// HubChain
// ---------------------------------------------------------------------------

HubChain::HubChain(int hubs, units::Time per_hop_latency,
                   units::Time poll_interval)
    : hubs_(hubs),
      per_hop_latency_(per_hop_latency),
      poll_interval_(poll_interval) {}

HubTransferResult HubChain::transfer(const std::string& payload) const {
  HubTransferResult result;
  // Event-by-event store-and-forward: the message visits every hub in
  // both directions.  Each leg is one transmission; each *hub* handling
  // adds the hop latency plus the expected half poll interval (the
  // requester and provider endpoints handle immediately).
  struct Node {
    bool is_hub;
    std::deque<std::string> inbox;
  };
  std::vector<Node> path;
  path.push_back({false, {}});                       // requester
  for (int i = 0; i < hubs_; ++i) path.push_back({true, {}});
  path.push_back({false, {}});                       // provider

  auto relay = [&](bool forward) {
    const int n = static_cast<int>(path.size());
    const int from = forward ? 0 : n - 1;
    const int to = forward ? n - 1 : 0;
    const int step = forward ? 1 : -1;
    path[from].inbox.push_back(payload);
    for (int i = from; i != to; i += step) {
      std::string msg = path[i].inbox.front();
      path[i].inbox.pop_front();
      if (path[i].is_hub) {
        result.latency += per_hop_latency_ + poll_interval_ / 2.0;
      }
      path[i + step].inbox.push_back(std::move(msg));
      ++result.messages;
    }
    if (path[to].is_hub) {
      result.latency += per_hop_latency_ + poll_interval_ / 2.0;
    }
    std::string delivered = path[to].inbox.front();
    path[to].inbox.pop_front();
    return delivered;
  };

  relay(/*forward=*/true);           // request reaches the provider
  result.payload = relay(false);     // response retraces the path
  return result;
}

// ---------------------------------------------------------------------------
// timed_fetch
// ---------------------------------------------------------------------------

HttpFetchResult timed_fetch(std::uint16_t port, const std::string& target) {
  const auto begin = std::chrono::steady_clock::now();
  const Response resp = http_get(port, target);
  const auto end = std::chrono::steady_clock::now();
  if (resp.status != 200) {
    throw HttpError("timed_fetch: status " + std::to_string(resp.status));
  }
  HttpFetchResult out;
  out.latency = units::Time{
      std::chrono::duration<double>(end - begin).count()};
  out.bytes = resp.body.size();
  out.messages = 2;
  return out;
}

}  // namespace powerplay::web
