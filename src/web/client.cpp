#include "web/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "web/server.hpp"

namespace powerplay::web {

Response http_request(std::uint16_t port, const Request& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw HttpError(std::string("socket: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    throw HttpError(std::string("connect: ") + std::strerror(err));
  }
  std::string wire;
  try {
    write_all(fd, to_wire(request));
    ::shutdown(fd, SHUT_WR);
    wire = read_http_message(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (wire.empty()) throw HttpError("empty response");
  return parse_response(wire);
}

Response http_get(std::uint16_t port, const std::string& target) {
  Request req;
  req.method = "GET";
  req.target = target;
  return http_request(port, req);
}

Response http_post_form(std::uint16_t port, const std::string& path,
                        const Params& form) {
  Request req;
  req.method = "POST";
  req.target = path;
  req.headers["content-type"] = "application/x-www-form-urlencoded";
  req.body = to_query(form);
  return http_request(port, req);
}

}  // namespace powerplay::web
