#include "web/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "web/server.hpp"

namespace powerplay::web {

namespace {

/// Non-blocking connect with a poll-based deadline.  Returns a socket
/// left in non-blocking mode (the poll-guarded read/write helpers in
/// server.cpp handle EAGAIN), owned by the caller.
int connect_with_deadline(std::uint16_t port, const Deadline& deadline) {
  ignore_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw HttpError(std::string("socket: ") + std::strerror(errno));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    return fd;  // loopback can complete immediately
  }
  if (errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    throw HttpError(std::string("connect: ") + std::strerror(err));
  }

  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    const int rc = ::poll(&p, 1, deadline.poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw HttpError(std::string("poll: ") + std::strerror(err));
    }
    if (rc == 0) {
      ::close(fd);
      throw HttpTimeout("connect: deadline exceeded");
    }
    break;
  }
  int soerr = 0;
  socklen_t len = sizeof soerr;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 ||
      soerr != 0) {
    const int err = soerr != 0 ? soerr : errno;
    ::close(fd);
    throw HttpError(std::string("connect: ") + std::strerror(err));
  }
  return fd;
}

int connect_with_timeout(std::uint16_t port,
                         std::chrono::milliseconds timeout) {
  return connect_with_deadline(port, Deadline::after(timeout));
}

}  // namespace

Response http_request(std::uint16_t port, const Request& request,
                      const SocketOptions& options) {
  return http_request(port, request, options, Deadline::never());
}

Response http_request(std::uint16_t port, const Request& request,
                      const SocketOptions& options, const Deadline& caller) {
  if (caller.expired()) {
    throw HttpTimeout("caller deadline already expired before connect");
  }
  // Every budget is the earlier of our own knob and the caller's
  // remaining time: the caller's I/O timeout is a hard ceiling.
  const Deadline connect_deadline =
      Deadline::earlier(caller, Deadline::after(options.connect_timeout));
  const int fd = connect_with_deadline(port, connect_deadline);
  const Deadline deadline =
      Deadline::earlier(caller, Deadline::after(options.io_timeout));
  std::string wire;
  try {
    // One-shot: tell the server not to hold the connection open.
    if (request.headers.contains("connection")) {
      write_all(fd, to_wire(request), deadline);
    } else {
      Request oneshot = request;
      oneshot.headers["connection"] = "close";
      write_all(fd, to_wire(oneshot), deadline);
    }
    ::shutdown(fd, SHUT_WR);
    wire = read_http_message(fd, deadline);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (wire.empty()) throw HttpError("empty response");
  return parse_response(wire);
}

HttpConnection::HttpConnection(std::uint16_t port, SocketOptions options)
    : port_(port), options_(options) {}

HttpConnection::~HttpConnection() { close(); }

HttpConnection::HttpConnection(HttpConnection&& other) noexcept
    : port_(other.port_), options_(other.options_), fd_(other.fd_) {
  other.fd_ = -1;
}

HttpConnection& HttpConnection::operator=(HttpConnection&& other) noexcept {
  if (this != &other) {
    close();
    port_ = other.port_;
    options_ = other.options_;
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void HttpConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Response HttpConnection::roundtrip(const Request& request) {
  if (fd_ < 0) fd_ = connect_with_timeout(port_, options_.connect_timeout);
  const Deadline deadline = Deadline::after(options_.io_timeout);
  std::string wire;
  try {
    write_all(fd_, to_wire(request), deadline);
    wire = read_http_message(fd_, deadline);
  } catch (...) {
    close();
    throw;
  }
  if (wire.empty()) {
    // The server closed between requests (keep-alive limit or idle
    // timeout).  Surface it; the caller decides whether to reconnect.
    close();
    throw HttpError("connection closed by server");
  }
  const Response response = parse_response(wire);
  auto conn = response.headers.find("connection");
  if (conn != response.headers.end() && conn->second == "close") close();
  return response;
}

Response HttpConnection::get(const std::string& target) {
  Request req;
  req.method = "GET";
  req.target = target;
  return roundtrip(req);
}

Response http_get(std::uint16_t port, const std::string& target,
                  const SocketOptions& options) {
  Request req;
  req.method = "GET";
  req.target = target;
  return http_request(port, req, options);
}

Response http_post_form(std::uint16_t port, const std::string& path,
                        const Params& form, const SocketOptions& options) {
  Request req;
  req.method = "POST";
  req.target = path;
  req.headers["content-type"] = "application/x-www-form-urlencoded";
  req.body = to_query(form);
  return http_request(port, req, options);
}

}  // namespace powerplay::web
