// url.hpp — URL and form codecs (percent-encoding, query strings).
//
// PowerPlay's entire UI state travels in URLs and
// application/x-www-form-urlencoded bodies, exactly as the Perl-CGI
// original: usernames, model names, and parameter overrides are all
// query parameters.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace powerplay::web {

/// Percent-encode for a query component (RFC 3986 unreserved kept as-is;
/// space becomes '+', the form-encoding convention).
std::string url_encode(const std::string& text);

/// Inverse of url_encode; tolerates raw unreserved characters.
/// Malformed %-sequences are passed through literally.
std::string url_decode(const std::string& text);

/// Ordered key-value pairs of a query string or form body.
/// Later duplicates overwrite earlier ones.
using Params = std::map<std::string, std::string>;

/// Parse "a=1&b=two%20words" (no leading '?').
Params parse_query(const std::string& query);

/// Split a request target "/path?query" into path and parsed query.
struct Target {
  std::string path;
  Params query;
};
Target parse_target(const std::string& target);

/// Serialize params back to "a=1&b=..." with encoding.
std::string to_query(const Params& params);

/// Fetch a parameter or a default.
std::string get_or(const Params& params, const std::string& key,
                   const std::string& fallback = {});

}  // namespace powerplay::web
