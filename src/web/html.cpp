#include "web/html.hpp"

namespace powerplay::web {

namespace {

constexpr const char* kRawMarker = "\x01raw\x01";

}  // namespace

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string link(const std::string& path, const Params& query,
                 const std::string& text) {
  std::string href = path;
  if (!query.empty()) href += "?" + to_query(query);
  return "<a href=\"" + html_escape(href) + "\">" + html_escape(text) +
         "</a>";
}

HtmlPage::HtmlPage(std::string title) : title_(std::move(title)) {}

HtmlPage& HtmlPage::heading(const std::string& text, int level) {
  const std::string tag = "h" + std::to_string(level);
  body_ += "<" + tag + ">" + html_escape(text) + "</" + tag + ">\n";
  return *this;
}

HtmlPage& HtmlPage::paragraph(const std::string& text) {
  body_ += "<p>" + html_escape(text) + "</p>\n";
  return *this;
}

HtmlPage& HtmlPage::raw(const std::string& fragment) {
  body_ += fragment;
  return *this;
}

HtmlPage& HtmlPage::rule() {
  body_ += "<hr>\n";
  return *this;
}

std::string HtmlPage::str() const {
  return "<html><head><title>" + html_escape(title_) +
         "</title></head>\n<body>\n<h1>" + html_escape(title_) + "</h1>\n" +
         body_ + "</body></html>\n";
}

std::string HtmlTable::raw_cell(const std::string& markup) {
  return kRawMarker + markup;
}

std::string HtmlTable::render_cell(const std::string& cell, const char* tag) {
  const std::string marker = kRawMarker;
  std::string content;
  if (cell.rfind(marker, 0) == 0) {
    content = cell.substr(marker.size());
  } else {
    content = html_escape(cell);
  }
  return std::string("<") + tag + ">" + content + "</" + tag + ">";
}

HtmlTable& HtmlTable::header(const std::vector<std::string>& cells) {
  rows_ += "<tr>";
  for (const std::string& c : cells) rows_ += render_cell(c, "th");
  rows_ += "</tr>\n";
  return *this;
}

HtmlTable& HtmlTable::row(const std::vector<std::string>& cells) {
  rows_ += "<tr>";
  for (const std::string& c : cells) rows_ += render_cell(c, "td");
  rows_ += "</tr>\n";
  return *this;
}

std::string HtmlTable::str() const {
  return "<table border=\"1\">\n" + rows_ + "</table>\n";
}

HtmlForm::HtmlForm(std::string action, std::string method)
    : action_(std::move(action)), method_(std::move(method)) {}

HtmlForm& HtmlForm::hidden(const std::string& name, const std::string& value) {
  fields_ += "<input type=\"hidden\" name=\"" + html_escape(name) +
             "\" value=\"" + html_escape(value) + "\">\n";
  return *this;
}

HtmlForm& HtmlForm::text_field(const std::string& label,
                               const std::string& name,
                               const std::string& value) {
  fields_ += html_escape(label) + ": <input type=\"text\" name=\"" +
             html_escape(name) + "\" value=\"" + html_escape(value) +
             "\"><br>\n";
  return *this;
}

HtmlForm& HtmlForm::submit(const std::string& label) {
  fields_ += "<input type=\"submit\" value=\"" + html_escape(label) + "\">\n";
  return *this;
}

std::string HtmlForm::str() const {
  return "<form action=\"" + html_escape(action_) + "\" method=\"" +
         html_escape(method_) + "\">\n" + fields_ + "</form>\n";
}

}  // namespace powerplay::web
