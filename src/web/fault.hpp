// fault.hpp — deterministic fault injection for the web stack.
//
// FaultTransport wraps any Transport (usually the real TcpTransport to
// a loopback site, or a FunctionTransport in hermetic tests) and
// injects the failure modes a wide-area deployment actually sees:
// dropped connections, responses delayed past the client's deadline,
// truncated bodies, and 5xx/503 server errors.  Everything is driven
// by one seeded PRNG, so a given (seed, call sequence) replays the
// exact same fault schedule — chaos tests are reproducible, never
// wall-clock flaky.  Injected delays advance a *virtual* clock hook
// instead of sleeping: a "delay past the deadline" is modeled as the
// HttpTimeout the real deadline would have raised, with zero real time
// spent.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <random>

#include "web/client.hpp"

namespace powerplay::web {

/// Fault rates in [0, 1], drawn independently per roundtrip in the
/// order: drop, delay, (real roundtrip), error, unavailable, truncate.
struct FaultSpec {
  double drop_rate = 0.0;         ///< connection drops before the peer
  double delay_rate = 0.0;        ///< response delayed by `delay`
  double error_rate = 0.0;        ///< response replaced with a 500
  double unavailable_rate = 0.0;  ///< replaced with 503 + Retry-After: 0
  double truncate_rate = 0.0;     ///< body cut short in flight
  /// The network delivers this response *again* on the next roundtrip
  /// (a retried/reordered delivery) instead of performing it.  Replayed
  /// replication batches are how duplicate frames reach a follower.
  double duplicate_rate = 0.0;
  std::chrono::milliseconds delay{200};  ///< injected virtual latency
  /// What the simulated client would tolerate; a delay fault of
  /// `delay >= deadline` becomes an HttpTimeout.  The default never
  /// times out, so delays are merely recorded.
  std::chrono::milliseconds deadline{std::chrono::milliseconds::max()};
  std::uint64_t seed = 1;
};

/// What the chaos layer did so far (drops + timeouts + errors +
/// unavailable + truncations faults; passthrough = untouched calls).
struct FaultCounters {
  int calls = 0;
  int drops = 0;
  int delays = 0;   ///< delay faults injected (timed out or not)
  int timeouts = 0; ///< delay faults that exceeded the deadline
  int errors = 0;
  int unavailable = 0;
  int truncations = 0;
  int duplicates = 0;  ///< stale responses re-delivered
  int passthrough = 0;
};

class FaultTransport : public Transport {
 public:
  FaultTransport(std::shared_ptr<Transport> inner, FaultSpec spec);

  Response roundtrip(const Request& request) override;
  /// Deadline-propagating form: the same fault schedule (the PRNG draws
  /// do not depend on which overload ran), with the deadline forwarded
  /// to the wrapped transport's real I/O.
  Response roundtrip(const Request& request,
                     const Deadline& deadline) override;

  [[nodiscard]] const FaultCounters& counters() const { return counters_; }
  /// Virtual time spent in injected delays (never real wall clock).
  [[nodiscard]] std::chrono::milliseconds virtual_delay() const {
    return virtual_delay_;
  }
  /// Observe every injected delay (e.g. to advance a shared virtual
  /// clock that also drives a CircuitBreaker).
  void set_delay_hook(std::function<void(std::chrono::milliseconds)> hook) {
    delay_hook_ = std::move(hook);
  }

 private:
  [[nodiscard]] double draw();
  Response roundtrip_impl(const Request& request, const Deadline* deadline);

  std::shared_ptr<Transport> inner_;
  FaultSpec spec_;
  std::mt19937_64 rng_;
  FaultCounters counters_;
  /// A response queued for duplicate re-delivery on the next call.
  std::optional<Response> replay_;
  std::chrono::milliseconds virtual_delay_{0};
  std::function<void(std::chrono::milliseconds)> delay_hook_;
};

}  // namespace powerplay::web
