#include "studies/vq.hpp"

namespace powerplay::studies {

namespace {

/// Ping-pong input buffers are identical in both architectures: each
/// bank holds one frame of 8-bit codewords (256*128/16 = 2048 words).
/// The displayed buffer is read twice per arriving frame (60 Hz refresh
/// vs 30 Hz arrival), so reads run at f/16 and writes at f/32.
void add_pingpong_banks(sheet::Design& d, const model::ModelRegistry& lib) {
  auto& read = d.add_row("Read Bank", lib.find_shared("sram"));
  read.params.set("words", 2048.0);
  read.params.set("bits", 8.0);
  read.params.set_formula("f", "pixel_rate/16");
  read.note = "ping-pong buffer, display side (read twice per frame)";

  auto& write = d.add_row("Write Bank", lib.find_shared("sram"));
  write.params.set("words", 2048.0);
  write.params.set("bits", 8.0);
  write.params.set_formula("f", "pixel_rate/32");
  write.note = "ping-pong buffer, network side";
}

}  // namespace

sheet::Design make_luminance_impl1(const model::ModelRegistry& lib) {
  sheet::Design d("Luminance_1",
                  "VQ luminance decompression, Figure 1 architecture: "
                  "per-pixel LUT access at the full pixel rate.");
  d.globals().set(model::kParamVdd, kSupplyVolts);
  d.globals().set("pixel_rate", kPixelRateHz);

  add_pingpong_banks(d, lib);

  auto& lut = d.add_row("Look Up Table", lib.find_shared("sram"));
  lut.params.set("words", 4096.0);  // 256 codes * 16 pixel words
  lut.params.set("bits", 6.0);
  lut.params.set_formula("f", "pixel_rate");
  lut.note = "codebook: one 6-bit access per displayed pixel";

  auto& reg = d.add_row("Output Register", lib.find_shared("register"));
  reg.params.set("bits", 6.0);
  reg.params.set_formula("f", "pixel_rate");
  reg.note = "pipeline register to the display interface";
  return d;
}

sheet::Design make_luminance_impl2(const model::ModelRegistry& lib) {
  sheet::Design d("Luminance_2",
                  "VQ luminance decompression, Figure 3 architecture: "
                  "locality-of-reference exploited by fetching four pixel "
                  "words per LUT access; only the word mux and output "
                  "register switch at the full pixel rate.");
  d.globals().set(model::kParamVdd, kSupplyVolts);
  d.globals().set("pixel_rate", kPixelRateHz);

  add_pingpong_banks(d, lib);

  auto& lut = d.add_row("Look Up Table", lib.find_shared("sram"));
  lut.params.set("words", 1024.0);  // 256 codes * 4 groups
  lut.params.set("bits", 24.0);     // four 6-bit pixels per access
  lut.params.set_formula("f", "pixel_rate/4");
  lut.note = "grouped codebook: one 24-bit access per four pixels";

  auto& hold = d.add_row("Hold Register", lib.find_shared("register"));
  hold.params.set("bits", 24.0);
  hold.params.set_formula("f", "pixel_rate/4");
  hold.note = "captures the four-pixel group";

  auto& mux = d.add_row("Word Mux", lib.find_shared("multiplexer"));
  mux.params.set("bits", 6.0);
  mux.params.set("inputs", 4.0);
  mux.params.set_formula("f", "pixel_rate");
  mux.note = "selects the current pixel from the held group";

  auto& reg = d.add_row("Output Register", lib.find_shared("register"));
  reg.params.set("bits", 6.0);
  reg.params.set_formula("f", "pixel_rate");
  reg.note = "pipeline register to the display interface";
  return d;
}

}  // namespace powerplay::studies
