// infopad.hpp — the paper's system-level example: the InfoPad portable
// multimedia terminal (Figure 5).
//
// Figure 5's spreadsheet has one row per subsystem (Custom Hardware,
// Radio Subsystem, Display LCDs, uProcessor Subsystem, Support
// Electronics, Voltage Converters, Other IO Devices).  Each row may use a
// different abstraction — "the power dissipation data for the LCDs came
// from actual measurements, the data for the custom hardware is modeled
// for one configuration and measured for another" — and the Voltage
// Converters row is *computed from the other rows* (EQ 19 intermodel
// interaction).  The Custom Hardware row is a macro whose drill-down
// contains the luminance decompression chip of Figures 1-3, reproducing
// the paper's hyperlink chain ("the luminance chip discussed earlier is
// a subcircuit of the custom hardware subsection").
//
// The mW values of the printed figure are illegible in the available
// scan; the constants below are reconstructions from the InfoPad
// literature (Sheng et al. 1992, Chandrakasan et al. 1994) and are
// documented as such in EXPERIMENTS.md.  The reproduced artifact is the
// *structure*: mixed-abstraction rows, hierarchy, and the converter row
// computed from its loads.
#pragma once

#include "model/registry.hpp"
#include "sheet/design.hpp"

namespace powerplay::studies {

/// Reconstructed data-sheet constants [W].
inline constexpr double kRadioWatts = 0.390;
inline constexpr double kDisplayWatts = 0.446;
inline constexpr double kSupportWatts = 0.750;
inline constexpr double kOtherIoWatts = 0.800;
inline constexpr double kConverterEfficiency = 0.80;  // legible in Figure 5

/// Custom chipset sub-design: luminance + chrominance decompression
/// macros, a video controller, and a frame-buffer SRAM.
sheet::Design make_custom_chipset(const model::ModelRegistry& lib);

/// Processor subsystem sub-design: embedded core (EQ 11 model) + DRAM.
sheet::Design make_processor_subsystem(const model::ModelRegistry& lib);

/// The full InfoPad terminal spreadsheet.  The Voltage Converters row's
/// p_load is the expression
///   totalpower() - rowpower("Voltage Converters")
/// resolved by the Play engine's fixed-point iteration.
sheet::Design make_infopad(const model::ModelRegistry& lib);

}  // namespace powerplay::studies
