// vq.hpp — the paper's design example: vector-quantization video
// decompression (Figures 1-3).
//
// The luminance sub-component of the InfoPad real-time video
// decompression chip decodes an 8-bit code into 16 six-bit pixel
// luminance values through a LUT, with ping-pong input buffering:
//
//  * 256 x 128 screen @ 60 frames/s refresh, 30 frames/s arrival
//    => pixel rate f = 2 MHz; read-buffer rate f/16; write rate f/32.
//  * Implementation 1 (Figure 1): LUT of 4096 x 6 accessed at f.
//  * Implementation 2 (Figure 3): LUT addressed in groups of four words
//    (1024 x 24 at f/4) plus a 4:1 word mux and hold register at f —
//    trading bigger accesses for far fewer of them.
//
// The paper reports implementation 2 at ~150 uW, ~1/5 of implementation
// 1; the fabricated chip (second architecture) measured 100 uW.
#pragma once

#include "model/registry.hpp"
#include "sheet/design.hpp"

namespace powerplay::studies {

/// Pixel rate of the target system: 256*128 pixels * 60 frames/s ~ 2 MHz.
inline constexpr double kPixelRateHz = 2.0e6;

/// Supply voltage used for the Figure 2 spreadsheet.
inline constexpr double kSupplyVolts = 1.5;

/// Paper-reported anchors (see EXPERIMENTS.md).
inline constexpr double kPaperImpl2Watts = 150e-6;   ///< "~150 uW"
inline constexpr double kPaperRatio = 5.0;           ///< "1/5 that of the original"
inline constexpr double kPaperMeasuredWatts = 100e-6;///< fabricated chip

/// Figure 1 architecture: direct per-pixel LUT.
/// Rows: Read Bank, Write Bank, Look Up Table, Output Register.
sheet::Design make_luminance_impl1(const model::ModelRegistry& lib);

/// Figure 3 architecture: four-word grouped LUT + word mux.
/// Rows: Read Bank, Write Bank, Look Up Table, Word Mux, Hold Register,
/// Output Register.
sheet::Design make_luminance_impl2(const model::ModelRegistry& lib);

}  // namespace powerplay::studies
