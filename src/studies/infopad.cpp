#include "studies/infopad.hpp"

#include "studies/vq.hpp"

namespace powerplay::studies {

sheet::Design make_custom_chipset(const model::ModelRegistry& lib) {
  sheet::Design d("Custom_Chipset",
                  "InfoPad custom low-power chipset: video decompression "
                  "(luminance + chrominance), video controller, frame "
                  "buffer.");
  d.globals().set(model::kParamVdd, kSupplyVolts);
  d.globals().set("pixel_rate", kPixelRateHz);
  // Chrominance runs at a quarter of the luminance pixel rate (4:1
  // chroma subsampling in the InfoPad video chain).  Defined as a global
  // formula so the override below stays acyclic.
  d.globals().set_formula("chroma_rate", "pixel_rate/4");

  // The fabricated chip used the Figure 3 (grouped-LUT) architecture.
  auto luminance = std::make_shared<const sheet::Design>(
      make_luminance_impl2(lib));
  d.add_macro("Luminance Chip", luminance).note =
      "Figure 3 architecture (the fabricated choice)";

  auto& chroma = d.add_macro("Chrominance Chip", luminance);
  chroma.params.set_formula("pixel_rate", "chroma_rate");
  chroma.note = "same datapath at 4:1 subsampled rate";

  auto& ctrl = d.add_row("Video Controller",
                         lib.find_shared("random_logic_controller"));
  ctrl.params.set("n_inputs", 10.0);
  ctrl.params.set("n_outputs", 14.0);
  ctrl.params.set("n_minterms", 96.0);
  ctrl.params.set_formula("f", "pixel_rate/16");
  ctrl.note = "line/frame sequencing state machine";

  auto& fb = d.add_row("Frame Buffer", lib.find_shared("sram"));
  fb.params.set("words", 8192.0);
  fb.params.set("bits", 6.0);
  fb.params.set_formula("f", "pixel_rate/8");
  fb.note = "reconstruction buffer, burst access";
  return d;
}

sheet::Design make_processor_subsystem(const model::ModelRegistry& lib) {
  sheet::Design d("uProcessor_Subsystem",
                  "Embedded control processor (data-book EQ 11 model) "
                  "plus its DRAM.");
  d.globals().set(model::kParamVdd, 3.3);

  auto& cpu = d.add_row("Embedded CPU", lib.find_shared("processor_average"));
  cpu.params.set("alpha", 0.7);  // idles between pen/network events
  cpu.note = "data-book P_AVG gated by a 70% activity factor (EQ 11)";

  auto& mem = d.add_row("Main Memory", lib.find_shared("dram"));
  mem.params.set("words", 262144.0);
  mem.params.set("bits", 32.0);
  mem.params.set("f", 2.0e6);
  mem.note = "1 MB DRAM, ~2M accesses/s";
  return d;
}

sheet::Design make_infopad(const model::ModelRegistry& lib) {
  sheet::Design d("InfoPad_System",
                  "Portable multimedia terminal power breakdown "
                  "(Figure 5): mixed-abstraction rows with the voltage "
                  "converters computed from the other subsystems.");
  d.globals().set(model::kParamVdd, 6.0);  // battery rail (bookkeeping)

  auto chipset =
      std::make_shared<const sheet::Design>(make_custom_chipset(lib));
  d.add_macro("Custom Hardware", chipset).note =
      "hyperlinks to the chipset spreadsheet (Figure 2 drill-down)";

  auto& radio = d.add_row("Radio Subsystem",
                          lib.find_shared("datasheet_component"));
  radio.params.set("p_typical", kRadioWatts);
  radio.note = "commercial radio modem, data-sheet figure";

  auto& lcd =
      d.add_row("Display LCDs", lib.find_shared("datasheet_component"));
  lcd.params.set("p_typical", kDisplayWatts);
  lcd.note = "measured on the actual panels";

  auto cpu = std::make_shared<const sheet::Design>(
      make_processor_subsystem(lib));
  d.add_macro("uProcessor Subsystem", cpu);

  auto& support = d.add_row("Support Electronics",
                            lib.find_shared("datasheet_component"));
  support.params.set("p_typical", kSupportWatts);
  support.note = "glue logic, codecs, pen digitizer electronics";

  auto& other =
      d.add_row("Other IO Devices", lib.find_shared("datasheet_component"));
  other.params.set("p_typical", kOtherIoWatts);
  other.note = "pen, speech I/O, speaker";

  auto& conv =
      d.add_row("Voltage Converters", lib.find_shared("dcdc_converter"));
  conv.params.set("efficiency", kConverterEfficiency);
  conv.params.set_formula(
      "p_load", "totalpower() - rowpower(\"Voltage Converters\")");
  conv.note = "EQ 19: dissipation computed from the delivered load "
              "(intermodel interaction)";
  return d;
}

}  // namespace powerplay::studies
