#include "library/durable.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "library/textio.hpp"

namespace powerplay::library {

namespace fs = std::filesystem;

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

[[noreturn]] void fail_errno(const std::string& what) {
  throw FormatError(what + ": " + std::strerror(errno));
}

}  // namespace

std::uint32_t crc32(const char* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::string& data) {
  return crc32(data.data(), data.size());
}

void put_u32le(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

std::uint32_t get_u32le(const std::string& bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = v << 8 | static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t get_u64le(const std::string& bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

void fsync_fd(int fd, const fs::path& what) {
  if (::fsync(fd) != 0) fail_errno("fsync " + what.string());
}

void fsync_dir(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) fail_errno("open dir " + dir.string());
  if (::fsync(fd) != 0) {
    // Some filesystems reject directory fsync; the rename is still
    // ordered after the temp file's own fsync, so tolerate it.
    if (errno != EINVAL && errno != ENOTSUP && errno != EBADF) {
      const int err = errno;
      ::close(fd);
      errno = err;
      fail_errno("fsync dir " + dir.string());
    }
  }
  ::close(fd);
}

void atomic_write_file(const fs::path& path, const std::string& contents) {
  // Unique per process *and* per call: concurrent writers of distinct
  // store entries share the directory.
  static std::atomic<std::uint64_t> sequence{0};
  const fs::path dir = path.parent_path();
  const fs::path tmp =
      dir / (path.filename().string() + ".tmp" +
             std::to_string(static_cast<long>(::getpid())) + "." +
             std::to_string(sequence.fetch_add(1)));

  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail_errno("cannot create temp file " + tmp.string());
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = err;
      fail_errno("write " + tmp.string());
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = err;
    fail_errno("fsync " + tmp.string());
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail_errno("close " + tmp.string());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    errno = err;
    fail_errno("rename " + tmp.string() + " -> " + path.string());
  }
  fsync_dir(dir);
}

std::string with_checksum_footer(std::string contents) {
  char footer[48];
  std::snprintf(footer, sizeof footer, "#ppck %08x %zu\n", crc32(contents),
                contents.size());
  contents += footer;
  return contents;
}

SnapshotState verify_snapshot(const std::string& raw, std::string* contents) {
  if (contents != nullptr) *contents = raw;
  if (raw.empty()) return SnapshotState::kMissingFooter;

  // The footer is the last line.  Find where that line starts; a torn
  // trailing line (no final '\n') still counts as the last line.
  std::size_t scan_end = raw.size();
  if (raw.back() == '\n') --scan_end;
  const std::size_t nl = scan_end == 0 ? std::string::npos
                                       : raw.rfind('\n', scan_end - 1);
  const std::size_t line = nl == std::string::npos ? 0 : nl + 1;

  constexpr char kTag[] = "#ppck ";
  if (raw.compare(line, sizeof kTag - 1, kTag) != 0) {
    return SnapshotState::kMissingFooter;
  }
  // Parse the exact canonical form snprintf("%08x %zu\n") emits — 8
  // lowercase hex digits, one space, decimal without leading zeros —
  // so that any bit flip inside the footer itself is also corruption.
  std::size_t i = line + sizeof kTag - 1;
  std::uint32_t crc = 0;
  for (int k = 0; k < 8; ++k, ++i) {
    if (i >= raw.size()) return SnapshotState::kCorrupt;
    const char c = raw[i];
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return SnapshotState::kCorrupt;
    }
    crc = crc << 4 | static_cast<std::uint32_t>(digit);
  }
  if (i >= raw.size() || raw[i] != ' ') return SnapshotState::kCorrupt;
  ++i;
  const std::size_t length_start = i;
  std::uint64_t length = 0;
  while (i < raw.size() && raw[i] >= '0' && raw[i] <= '9') {
    if (length > raw.size()) return SnapshotState::kCorrupt;  // overflow-safe
    length = length * 10 + static_cast<std::uint64_t>(raw[i] - '0');
    ++i;
  }
  if (i == length_start) return SnapshotState::kCorrupt;
  if (raw[length_start] == '0' && i != length_start + 1) {
    return SnapshotState::kCorrupt;  // non-canonical leading zero
  }
  if (i + 1 != raw.size() || raw[i] != '\n') return SnapshotState::kCorrupt;

  const std::string payload = raw.substr(0, line);
  if (payload.size() != length || crc32(payload) != crc) {
    return SnapshotState::kCorrupt;
  }
  if (contents != nullptr) *contents = payload;
  return SnapshotState::kOk;
}

}  // namespace powerplay::library
