// store.hpp — one site's persistent PowerPlay library.
//
// "The username is passed to a Perl script which retrieves the individual
// user's defaults from the PowerPlay server's local file system.  These
// user defaults include the relevant hardware libraries and any
// previously generated designs."  A LibraryStore is that local file
// system: shared user-defined models, saved designs (re-usable as macros
// unless marked proprietary), and per-user profiles.
//
// Layout under the root directory:
//   models/<name>.ppmodel     — serialized UserModelDefinition
//   designs/<name>.ppdesign   — serialized Design
//   users/<name>.ppuser       — serialized UserProfile
//   journal.ppwal             — write-ahead journal (journal.hpp)
//   quarantine/               — corrupt files moved aside, never deleted
//
// Durability (docs/persistence.md): every mutation is appended to the
// journal and fsync'd *first* (the ack point), then materialized with
// an atomic temp+fsync+rename+dirsync write carrying a checksum footer.
// Opening a store runs recovery: corrupt snapshots are quarantined,
// every intact journal record is replayed, and the journal is
// compacted.  A crash at any write boundary therefore loses nothing
// that was acknowledged, and a torn file is never visible at a final
// path nor silently served.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "library/journal.hpp"
#include "library/replica.hpp"
#include "library/serialize.hpp"
#include "model/registry.hpp"
#include "sheet/design.hpp"

namespace powerplay::library {

/// Per-user state: defaults applied to new design sheets plus the names
/// of the user's saved designs.
struct UserProfile {
  std::string username;
  std::map<std::string, double> defaults;   ///< e.g. {"vdd": 1.5}
  std::vector<std::string> designs;         ///< saved design names
  /// FNV-1a hash of the access password ("PowerPlay can provide
  /// password-restricted access"); empty = open access.
  std::string password_hash;

  [[nodiscard]] bool has_password() const { return !password_hash.empty(); }
  [[nodiscard]] bool check_password(const std::string& password) const;
  void set_password(const std::string& password);
};

/// FNV-1a 64-bit, hex-encoded — era-appropriate integrity, not modern
/// crypto; run a private instance behind the firewall for real secrecy,
/// as the paper itself advises.
std::string password_digest(const std::string& password);

std::string to_text(const UserProfile& profile);
UserProfile parse_user_profile(const std::string& text);

/// Durability knobs.  Defaults suit tests and small sites.
struct StoreOptions {
  /// Rotate (compact) the journal once its record tail exceeds this;
  /// every record is already applied to a fsync'd snapshot by then.
  std::uint64_t journal_rotate_bytes = 1u << 20;
};

/// Counters for /healthz and the recovery tests.
struct DurabilityStats {
  std::uint64_t journal_appends = 0;   ///< records committed (ack'd)
  std::uint64_t journal_replayed = 0;  ///< records re-applied at open
  std::uint64_t journal_rotations = 0;
  std::uint64_t snapshot_writes = 0;   ///< atomic materialized writes
  std::uint64_t quarantined_files = 0; ///< corrupt files moved aside
};

class LibraryStore {
 public:
  /// Opens (creating directories as needed) the store at `root` and
  /// runs crash recovery: verify snapshot checksums (quarantining
  /// corrupt files), replay the journal, compact it.
  explicit LibraryStore(std::filesystem::path root, StoreOptions options = {});

  /// Move-only: the journal holds an open, fsync'd file descriptor.
  LibraryStore(LibraryStore&&) = default;
  LibraryStore& operator=(LibraryStore&&) = default;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

  // --- shared models ---------------------------------------------------
  void save_model(const model::UserModelDefinition& def,
                  bool proprietary = false);
  [[nodiscard]] std::optional<model::UserModelDefinition> load_model(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> list_models() const;
  /// True if the model was saved with the proprietary flag — such entries
  /// are withheld from the remote model-access protocol.
  [[nodiscard]] bool is_proprietary(const std::string& name) const;

  /// Load every stored model into `registry` (on top of the built-ins).
  void load_all_models(model::ModelRegistry& registry) const;

  /// Journaled deletion; false if no such entry existed.  Like saves,
  /// the removal is acknowledged in the journal before the snapshot
  /// file goes away, so replay reproduces it after a crash.
  bool remove_model(const std::string& name);
  bool remove_design(const std::string& name);
  bool remove_user(const std::string& username);

  // --- designs -----------------------------------------------------------
  void save_design(const sheet::Design& design);
  /// Load by name, resolving macro references recursively from this
  /// store.  Throws FormatError on missing designs or reference cycles.
  [[nodiscard]] std::shared_ptr<const sheet::Design> load_design(
      const std::string& name, const model::ModelRegistry& lib) const;
  [[nodiscard]] std::vector<std::string> list_designs() const;
  [[nodiscard]] bool has_design(const std::string& name) const;

  // --- users ---------------------------------------------------------------
  void save_user(const UserProfile& profile);
  [[nodiscard]] std::optional<UserProfile> load_user(
      const std::string& username) const;
  /// Load if present, otherwise create a fresh profile (the first-visit
  /// identification flow).
  UserProfile ensure_user(const std::string& username);
  [[nodiscard]] std::vector<std::string> list_users() const;

  // --- durability ------------------------------------------------------
  [[nodiscard]] DurabilityStats durability() const;
  /// Monotonic mutation counter: bumped once per committed mutation
  /// (model/design/user save or removal).  Response caches key rendered
  /// pages by this value — any commit observably advances it, so a
  /// stale page can never be served as current.  Starts at 1 after
  /// recovery; replayed records do not bump it again (they were counted
  /// as the original commits).
  [[nodiscard]] std::uint64_t revision() const {
    return counters_->revision.load();
  }
  /// Graceful shutdown: compact (rotate) the journal so the next open
  /// replays nothing.  Safe to call at any quiesced point.
  void flush();

  // --- replication -----------------------------------------------------
  //
  // The store is the replication engine's ground truth on both sides of
  // the wire.  A primary serves its commit stream via
  // read_replication_feed() / export_replication_snapshot(); a follower
  // applies it via install_replication_snapshot() + apply_replicated(),
  // tracking progress in a durable cursor (`repl.cursor`, flushed once
  // per batch — idempotent re-apply covers the crash window between an
  // apply and its cursor flush).  See journal.hpp for the (epoch, seq)
  // cursor semantics.

  /// Current journal position: the stream this store would serve.
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::uint64_t last_seq() const;

  /// One batch of the commit stream for a follower at `after_seq` of
  /// `epoch`.  Strict epoch equality: any mismatch (rotation, recovery,
  /// promotion — ours or a predecessor's) makes the tail unservable and
  /// the follower must re-bootstrap.
  struct ReplFeed {
    bool epoch_ok = false;  ///< false: follower must re-bootstrap
    bool gap = false;       ///< requested records already compacted away
    std::uint64_t epoch = 0;
    std::uint64_t last_seq = 0;        ///< newest seq this store holds
    std::uint64_t pending_bytes = 0;   ///< frame bytes beyond this batch
    std::vector<JournalRecord> records;
  };
  [[nodiscard]] ReplFeed read_replication_feed(std::uint64_t epoch,
                                               std::uint64_t after_seq,
                                               std::size_t max_bytes) const;

  /// Long-poll support: block until this store's position moves past
  /// (epoch, after_seq) — a commit, rotation or promotion — or the
  /// timeout lapses.  Returns true when the position moved.
  bool wait_for_commit(std::uint64_t epoch, std::uint64_t after_seq,
                       std::chrono::milliseconds timeout) const;

  /// Full contents frozen at the current cursor (commits are held off
  /// while the snapshot is assembled).
  [[nodiscard]] ReplSnapshot export_replication_snapshot();

  enum class ReplApply {
    kApplied,        ///< materialized; cursor advanced (flush pending)
    kDuplicate,      ///< seq <= cursor: already applied, skipped
    kGap,            ///< seq skips ahead: refused, re-sync required
    kEpochMismatch,  ///< wrong/unknown stream: re-bootstrap required
  };
  /// Idempotent, gap-detecting replay of one shipped record.  Only
  /// kApplied mutates anything.
  ReplApply apply_replicated(const JournalRecord& record);

  /// The durable follower cursor (invalid when this store is not
  /// following anything / has never bootstrapped).
  [[nodiscard]] ReplCursor replication_cursor() const;
  /// Persist the in-memory cursor (atomic write).  Called once per
  /// applied batch, not per record.
  void flush_replication_cursor();
  /// Durably forget the cursor (before a re-bootstrap, so a crash
  /// mid-install cannot resume from a half-installed state).
  void invalidate_replication_cursor();

  /// Replace the entire store contents with `snapshot` and set the
  /// cursor to its position.  The local journal rotates (its records
  /// described a state that no longer exists).
  void install_replication_snapshot(const ReplSnapshot& snapshot);

  /// Failover: start a fresh epoch strictly above both the local journal
  /// epoch and any followed stream's, continue seq numbering past the
  /// cursor, and durably drop the cursor (this store no longer follows).
  /// Returns the new epoch.
  std::uint64_t promote();

 private:
  struct Counters {
    std::atomic<std::uint64_t> revision{1};
    std::atomic<std::uint64_t> journal_appends{0};
    std::atomic<std::uint64_t> journal_replayed{0};
    std::atomic<std::uint64_t> journal_rotations{0};
    std::atomic<std::uint64_t> snapshot_writes{0};
    std::atomic<std::uint64_t> quarantined_files{0};
  };

  [[nodiscard]] std::filesystem::path model_path(const std::string& n) const;
  [[nodiscard]] std::filesystem::path design_path(const std::string& n) const;
  [[nodiscard]] std::filesystem::path user_path(const std::string& n) const;
  [[nodiscard]] std::filesystem::path path_for(const std::string& kind,
                                               const std::string& name) const;

  /// The write path: journal append + fsync (ack), then materialize,
  /// then rotate the journal if it outgrew the threshold.
  void commit(const JournalRecord& record);
  /// Materialize one record: atomic snapshot write (with checksum
  /// footer) or durable removal.
  void apply(const JournalRecord& record);
  /// Startup crash recovery (see class comment).
  void recover();
  /// Move a corrupt file into quarantine/ (never delete); with
  /// `copy` the original stays in place (used for the journal, whose
  /// descriptor is open).
  void quarantine(const std::filesystem::path& path, bool copy = false) const;
  /// Read + checksum-verify a snapshot; corrupt files are quarantined
  /// and reported as nullopt.
  [[nodiscard]] std::optional<std::string> read_verified(
      const std::filesystem::path& path) const;

  std::shared_ptr<const sheet::Design> load_design_rec(
      const std::string& name, const model::ModelRegistry& lib,
      std::vector<std::string>& in_flight) const;

  /// Wakes long-poll waiters whenever the journal position moves.
  /// Heap-held (like the counters) so the store stays movable.
  struct CommitSignal {
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
  };
  void notify_position_moved() const;
  [[nodiscard]] std::filesystem::path cursor_path() const;
  void load_replication_cursor_locked();

  std::filesystem::path root_;
  StoreOptions options_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<Counters> counters_;
  std::unique_ptr<CommitSignal> signal_;
  /// Serializes commit()/flush(): rotation must never run between
  /// another thread's journal append and its apply() — the tail it
  /// truncates would hold that record's only durable copy.  Heap-held
  /// so the store stays movable.  Also guards repl_cursor_.
  std::unique_ptr<std::mutex> commit_mutex_;
  ReplCursor repl_cursor_;
  bool repl_cursor_dirty_ = false;
};

/// Read-only integrity check of a store directory: verify every
/// snapshot's checksum footer and the journal's framing.  Unlike
/// opening a LibraryStore, fsck never moves, rewrites or rotates
/// anything — safe to run against a live or post-crash store.
struct FsckReport {
  std::size_t files_checked = 0;
  std::size_t corrupt = 0;          ///< bad/missing footer or checksum
  std::uint64_t journal_records = 0;
  bool journal_present = false;
  bool journal_header_ok = true;
  bool journal_torn = false;        ///< trailing bytes form no record
  /// Replication framing: 2 for the current format, 1 for a legacy file
  /// awaiting its upgrade rotation.
  int journal_version = 0;
  std::uint64_t journal_epoch = 0;
  std::uint64_t journal_base_seq = 0;
  /// The durable cursor (epoch, last_seq) the journal attests to.
  std::uint64_t journal_last_seq = 0;
  /// Every record stamped with the header epoch and contiguous
  /// sequence numbers from base_seq — the invariant shipped replay
  /// relies on.
  bool journal_sequence_ok = true;
  /// The follower cursor file (`repl.cursor`), when present.
  bool cursor_present = false;
  bool cursor_ok = true;            ///< parses and checksum-verifies
  std::uint64_t cursor_epoch = 0;
  std::uint64_t cursor_seq = 0;
  std::vector<std::string> problems;  ///< one human-readable line each

  [[nodiscard]] bool clean() const {
    return corrupt == 0 && journal_header_ok && !journal_torn &&
           journal_sequence_ok && cursor_ok;
  }
};

FsckReport fsck_store(const std::filesystem::path& root);

/// Validate a name destined for a filename: nonempty, no path
/// separators, no leading dot.  Throws FormatError otherwise.
void validate_store_name(const std::string& name);

}  // namespace powerplay::library
