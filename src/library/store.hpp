// store.hpp — one site's persistent PowerPlay library.
//
// "The username is passed to a Perl script which retrieves the individual
// user's defaults from the PowerPlay server's local file system.  These
// user defaults include the relevant hardware libraries and any
// previously generated designs."  A LibraryStore is that local file
// system: shared user-defined models, saved designs (re-usable as macros
// unless marked proprietary), and per-user profiles.
//
// Layout under the root directory:
//   models/<name>.ppmodel     — serialized UserModelDefinition
//   designs/<name>.ppdesign   — serialized Design
//   users/<name>.ppuser       — serialized UserProfile
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "library/serialize.hpp"
#include "model/registry.hpp"
#include "sheet/design.hpp"

namespace powerplay::library {

/// Per-user state: defaults applied to new design sheets plus the names
/// of the user's saved designs.
struct UserProfile {
  std::string username;
  std::map<std::string, double> defaults;   ///< e.g. {"vdd": 1.5}
  std::vector<std::string> designs;         ///< saved design names
  /// FNV-1a hash of the access password ("PowerPlay can provide
  /// password-restricted access"); empty = open access.
  std::string password_hash;

  [[nodiscard]] bool has_password() const { return !password_hash.empty(); }
  [[nodiscard]] bool check_password(const std::string& password) const;
  void set_password(const std::string& password);
};

/// FNV-1a 64-bit, hex-encoded — era-appropriate integrity, not modern
/// crypto; run a private instance behind the firewall for real secrecy,
/// as the paper itself advises.
std::string password_digest(const std::string& password);

std::string to_text(const UserProfile& profile);
UserProfile parse_user_profile(const std::string& text);

class LibraryStore {
 public:
  /// Opens (creating directories as needed) the store at `root`.
  explicit LibraryStore(std::filesystem::path root);

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

  // --- shared models ---------------------------------------------------
  void save_model(const model::UserModelDefinition& def,
                  bool proprietary = false);
  [[nodiscard]] std::optional<model::UserModelDefinition> load_model(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> list_models() const;
  /// True if the model was saved with the proprietary flag — such entries
  /// are withheld from the remote model-access protocol.
  [[nodiscard]] bool is_proprietary(const std::string& name) const;

  /// Load every stored model into `registry` (on top of the built-ins).
  void load_all_models(model::ModelRegistry& registry) const;

  // --- designs -----------------------------------------------------------
  void save_design(const sheet::Design& design);
  /// Load by name, resolving macro references recursively from this
  /// store.  Throws FormatError on missing designs or reference cycles.
  [[nodiscard]] std::shared_ptr<const sheet::Design> load_design(
      const std::string& name, const model::ModelRegistry& lib) const;
  [[nodiscard]] std::vector<std::string> list_designs() const;
  [[nodiscard]] bool has_design(const std::string& name) const;

  // --- users ---------------------------------------------------------------
  void save_user(const UserProfile& profile);
  [[nodiscard]] std::optional<UserProfile> load_user(
      const std::string& username) const;
  /// Load if present, otherwise create a fresh profile (the first-visit
  /// identification flow).
  UserProfile ensure_user(const std::string& username);
  [[nodiscard]] std::vector<std::string> list_users() const;

 private:
  [[nodiscard]] std::filesystem::path model_path(const std::string& n) const;
  [[nodiscard]] std::filesystem::path design_path(const std::string& n) const;
  [[nodiscard]] std::filesystem::path user_path(const std::string& n) const;

  std::shared_ptr<const sheet::Design> load_design_rec(
      const std::string& name, const model::ModelRegistry& lib,
      std::vector<std::string>& in_flight) const;

  std::filesystem::path root_;
};

/// Validate a name destined for a filename: nonempty, no path
/// separators, no leading dot.  Throws FormatError otherwise.
void validate_store_name(const std::string& name);

}  // namespace powerplay::library
