#include "library/serialize.hpp"

#include <cmath>
#include <limits>

#include "expr/parser.hpp"
#include "library/textio.hpp"

namespace powerplay::library {

namespace {

void write_equation_field(std::string& out, const char* key,
                          const std::string& value) {
  if (!value.empty()) {
    out += "  ";
    out += key;
    out += ' ';
    out += quoted(value);
    out += '\n';
  }
}

/// Parse the bindings shared by row bodies and user profiles:
///   set "name" <number> | formula "name" "<expr>" | note "<text>"
/// Returns false when the cursor is not at one of those keywords.
bool parse_binding(TokCursor& cur, expr::Scope& scope, std::string* note) {
  if (cur.accept_ident("set")) {
    const std::string name = cur.take_string();
    scope.set(name, cur.take_number());
    return true;
  }
  if (cur.accept_ident("formula")) {
    const std::string name = cur.take_string();
    scope.set_formula(name, cur.take_string());
    return true;
  }
  if (note != nullptr && cur.accept_ident("note")) {
    *note = cur.take_string();
    return true;
  }
  return false;
}

}  // namespace

void write_scope_bindings(const expr::Scope& scope, const std::string& indent,
                          std::string& out) {
  for (const std::string& name : scope.local_names()) {
    auto found = scope.lookup(name);
    if (const double* literal = std::get_if<double>(found->binding)) {
      out += indent + "set " + quoted(name) + " " + number_text(*literal) +
             "\n";
    } else {
      const auto& formula = std::get<expr::ExprPtr>(*found->binding);
      out += indent + "formula " + quoted(name) + " " +
             quoted(expr::to_source(*formula)) + "\n";
    }
  }
}

// ---------------------------------------------------------------------------
// User models
// ---------------------------------------------------------------------------

std::string to_text(const model::UserModelDefinition& def) {
  std::string out = "model " + quoted(def.name) + " {\n";
  out += "  category " + quoted(model::to_string(def.category)) + "\n";
  if (!def.documentation.empty()) {
    out += "  doc " + quoted(def.documentation) + "\n";
  }
  for (const model::ParamSpec& s : def.params) {
    out += "  param " + quoted(s.name) + " {";
    if (!s.description.empty()) out += " desc " + quoted(s.description);
    out += " default " + number_text(s.default_value);
    if (!s.unit.empty()) out += " unit " + quoted(s.unit);
    if (std::isfinite(s.min)) out += " min " + number_text(s.min);
    if (std::isfinite(s.max)) out += " max " + number_text(s.max);
    if (s.integer) out += " integer 1";
    out += " }\n";
  }
  write_equation_field(out, "c_fullswing", def.c_fullswing);
  write_equation_field(out, "c_partialswing", def.c_partialswing);
  write_equation_field(out, "v_swing", def.v_swing);
  write_equation_field(out, "static_current", def.static_current);
  write_equation_field(out, "power_direct", def.power_direct);
  write_equation_field(out, "area", def.area);
  write_equation_field(out, "delay", def.delay);
  out += "}\n";
  return out;
}

model::UserModelDefinition parse_user_model(const std::string& text) {
  TokCursor cur(tokenize_document(text));
  model::UserModelDefinition def;
  cur.expect_ident("model");
  def.name = cur.take_string();
  cur.expect(TokKind::kLBrace);
  while (cur.peek().kind != TokKind::kRBrace) {
    if (cur.accept_ident("category")) {
      def.category = category_from_string(cur.take_string());
    } else if (cur.accept_ident("doc")) {
      def.documentation = cur.take_string();
    } else if (cur.accept_ident("param")) {
      model::ParamSpec s;
      s.name = cur.take_string();
      cur.expect(TokKind::kLBrace);
      while (cur.peek().kind != TokKind::kRBrace) {
        if (cur.accept_ident("desc")) {
          s.description = cur.take_string();
        } else if (cur.accept_ident("default")) {
          s.default_value = cur.take_number();
        } else if (cur.accept_ident("unit")) {
          s.unit = cur.take_string();
        } else if (cur.accept_ident("min")) {
          s.min = cur.take_number();
        } else if (cur.accept_ident("max")) {
          s.max = cur.take_number();
        } else if (cur.accept_ident("integer")) {
          s.integer = cur.take_number() != 0.0;
        } else {
          cur.fail("unknown param attribute");
        }
      }
      cur.expect(TokKind::kRBrace);
      def.params.push_back(std::move(s));
    } else if (cur.accept_ident("c_fullswing")) {
      def.c_fullswing = cur.take_string();
    } else if (cur.accept_ident("c_partialswing")) {
      def.c_partialswing = cur.take_string();
    } else if (cur.accept_ident("v_swing")) {
      def.v_swing = cur.take_string();
    } else if (cur.accept_ident("static_current")) {
      def.static_current = cur.take_string();
    } else if (cur.accept_ident("power_direct")) {
      def.power_direct = cur.take_string();
    } else if (cur.accept_ident("area")) {
      def.area = cur.take_string();
    } else if (cur.accept_ident("delay")) {
      def.delay = cur.take_string();
    } else {
      cur.fail("unknown model attribute");
    }
  }
  cur.expect(TokKind::kRBrace);
  return def;
}

// ---------------------------------------------------------------------------
// Designs
// ---------------------------------------------------------------------------

std::string to_text(const sheet::Design& design) {
  std::string out = "design " + quoted(design.name()) + " {\n";
  if (!design.description().empty()) {
    out += "  description " + quoted(design.description()) + "\n";
  }
  write_scope_bindings(design.globals(), "  ", out);
  for (const sheet::Row& row : design.rows()) {
    out += "  row " + quoted(row.name) + " {\n";
    if (row.is_macro()) {
      out += "    macro " + quoted(row.macro->name()) + "\n";
    } else {
      out += "    model " + quoted(row.model->name()) + "\n";
    }
    write_scope_bindings(row.params, "    ", out);
    if (!row.note.empty()) out += "    note " + quoted(row.note) + "\n";
    if (!row.enabled) out += "    disabled 1\n";
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

sheet::Design parse_design(const std::string& text,
                           const model::ModelRegistry& lib,
                           const DesignResolver& resolve) {
  TokCursor cur(tokenize_document(text));
  cur.expect_ident("design");
  const std::string name = cur.take_string();
  sheet::Design design(name);
  cur.expect(TokKind::kLBrace);
  while (cur.peek().kind != TokKind::kRBrace) {
    if (cur.accept_ident("description")) {
      design.set_description(cur.take_string());
    } else if (parse_binding(cur, design.globals(), nullptr)) {
      // global binding handled
    } else if (cur.accept_ident("row")) {
      const std::string row_name = cur.take_string();
      cur.expect(TokKind::kLBrace);
      // The first attribute must identify the row's model or macro.
      sheet::Row* row = nullptr;
      if (cur.accept_ident("model")) {
        const std::string model_name = cur.take_string();
        model::ModelPtr m = lib.find_shared(model_name);
        if (m == nullptr) {
          throw FormatError("design '" + name + "', row '" + row_name +
                            "': unknown model '" + model_name + "'");
        }
        row = &design.add_row(row_name, std::move(m));
      } else if (cur.accept_ident("macro")) {
        const std::string macro_name = cur.take_string();
        std::shared_ptr<const sheet::Design> sub =
            resolve ? resolve(macro_name) : nullptr;
        if (sub == nullptr) {
          throw FormatError("design '" + name + "', row '" + row_name +
                            "': cannot resolve macro design '" + macro_name +
                            "'");
        }
        row = &design.add_macro(row_name, std::move(sub));
      } else {
        cur.fail("row must start with 'model' or 'macro'");
      }
      while (cur.peek().kind != TokKind::kRBrace) {
        if (cur.accept_ident("disabled")) {
          row->enabled = cur.take_number() == 0.0;
        } else if (!parse_binding(cur, row->params, &row->note)) {
          cur.fail("unknown row attribute");
        }
      }
      cur.expect(TokKind::kRBrace);
    } else {
      cur.fail("unknown design attribute");
    }
  }
  cur.expect(TokKind::kRBrace);
  return design;
}

model::Category category_from_string(const std::string& name) {
  using model::Category;
  for (Category c :
       {Category::kComputation, Category::kStorage, Category::kController,
        Category::kInterconnect, Category::kProcessor, Category::kAnalog,
        Category::kConverter, Category::kSystem, Category::kMacro}) {
    if (model::to_string(c) == name) return c;
  }
  throw FormatError("unknown model category '" + name + "'");
}

}  // namespace powerplay::library
