#include "library/textio.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace powerplay::library {

std::vector<Tok> tokenize_document(const std::string& text) {
  std::vector<Tok> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  int line = 1;

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '{') {
      out.push_back(Tok{TokKind::kLBrace, "{", 0, line});
      ++i;
      continue;
    }
    if (c == '}') {
      out.push_back(Tok{TokKind::kRBrace, "}", 0, line});
      ++i;
      continue;
    }
    if (c == '"') {
      std::string value;
      std::size_t j = i + 1;
      while (j < n && text[j] != '"') {
        if (text[j] == '\\') {
          ++j;
          if (j >= n) {
            throw FormatError("line " + std::to_string(line) +
                              ": unterminated escape");
          }
        }
        if (text[j] == '\n') ++line;
        value.push_back(text[j]);
        ++j;
      }
      if (j >= n) {
        throw FormatError("line " + std::to_string(line) +
                          ": unterminated string");
      }
      out.push_back(Tok{TokKind::kString, std::move(value), 0, line});
      i = j + 1;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+' || c == '.') {
      char* end = nullptr;
      const double v = std::strtod(text.c_str() + i, &end);
      if (end == text.c_str() + i) {
        throw FormatError("line " + std::to_string(line) +
                          ": malformed number");
      }
      out.push_back(Tok{TokKind::kNumber,
                        text.substr(i, end - (text.c_str() + i)), v, line});
      i = end - text.c_str();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      out.push_back(Tok{TokKind::kIdent, text.substr(i, j - i), 0, line});
      i = j;
      continue;
    }
    throw FormatError("line " + std::to_string(line) +
                      ": unexpected character '" + std::string(1, c) + "'");
  }
  out.push_back(Tok{TokKind::kEnd, "", 0, line});
  return out;
}

void TokCursor::expect_ident(const std::string& name) {
  if (peek().kind != TokKind::kIdent || peek().text != name) {
    fail("expected keyword '" + name + "'");
  }
  ++pos_;
}

std::string TokCursor::take_ident() {
  if (peek().kind != TokKind::kIdent) fail("expected identifier");
  return toks_[pos_++].text;
}

bool TokCursor::accept_ident(const std::string& name) {
  if (peek().kind == TokKind::kIdent && peek().text == name) {
    ++pos_;
    return true;
  }
  return false;
}

std::string TokCursor::take_string() {
  if (peek().kind != TokKind::kString) fail("expected string");
  return toks_[pos_++].text;
}

double TokCursor::take_number() {
  if (peek().kind != TokKind::kNumber) fail("expected number");
  return toks_[pos_++].number;
}

void TokCursor::expect(TokKind kind) {
  if (peek().kind != kind) {
    const char* name = kind == TokKind::kLBrace   ? "'{'"
                       : kind == TokKind::kRBrace ? "'}'"
                                                  : "token";
    fail(std::string("expected ") + name);
  }
  ++pos_;
}

void TokCursor::fail(const std::string& message) const {
  throw FormatError("line " + std::to_string(peek().line) + ": " + message +
                    " (found '" + peek().text + "')");
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string number_text(double v) {
  char buf[48];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace powerplay::library
