// textio.hpp — tokenizer and writer for PowerPlay's library file format.
//
// The on-disk format is a small block-structured text language:
//
//   model "vq_lut" {
//     category "storage"
//     doc "grouped-access codebook"
//     param "words" { desc "entries" default 1024 min 1 max 65536 integer 1 }
//     c_fullswing "5e-12 + words*20e-15"
//   }
//
// Tokens are identifiers, double-quoted strings (with \" and \\ escapes),
// numbers (incl. scientific notation and a leading '-'), and braces.
// This mirrors how the Perl-scripted PowerPlay kept per-user defaults and
// shared models as plain files on the server's local file system.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace powerplay::library {

class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class TokKind { kIdent, kString, kNumber, kLBrace, kRBrace, kEnd };

struct Tok {
  TokKind kind;
  std::string text;   ///< ident name or string contents
  double number = 0;  ///< valid when kind == kNumber
  int line = 1;       ///< 1-based source line, for error messages
};

/// Tokenize a whole document.  '#' starts a comment to end of line.
/// Throws FormatError on malformed input.
std::vector<Tok> tokenize_document(const std::string& text);

/// Cursor over a token stream with typed accessors that throw
/// FormatError with line info on mismatch.
class TokCursor {
 public:
  explicit TokCursor(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  [[nodiscard]] const Tok& peek() const { return toks_[pos_]; }
  [[nodiscard]] bool at_end() const { return peek().kind == TokKind::kEnd; }

  /// Consume an identifier with exactly this spelling.
  void expect_ident(const std::string& name);
  /// Consume any identifier and return its spelling.
  std::string take_ident();
  /// True (and consume) if the next token is the identifier `name`.
  bool accept_ident(const std::string& name);
  std::string take_string();
  double take_number();
  void expect(TokKind kind);

  [[noreturn]] void fail(const std::string& message) const;

 private:
  std::vector<Tok> toks_;
  std::size_t pos_ = 0;
};

/// Quote a string for the writer ("..." with \" and \\ escapes).
std::string quoted(const std::string& s);

/// Format a double so it round-trips (shortest %.Ng that parses back).
std::string number_text(double v);

}  // namespace powerplay::library
