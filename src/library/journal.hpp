// journal.hpp — the store's append-only write-ahead journal.
//
// Every mutation of the library store (save/delete of a model, design
// or user profile) is appended here and fsync'd *before* it is applied
// to the materialized per-entry files.  The append is the commit point:
// once it returns, the mutation survives a crash at any later write
// boundary, because startup replay re-applies every intact record.
//
// Since the replication work every record also carries a durable
// position: a store **epoch** (bumped whenever the journal restarts —
// rotation, promotion, quarantine replacement) and a **sequence
// number** that increases monotonically across the store's whole life,
// never resetting at rotation.  `(epoch, seq)` is therefore a stable
// cursor into the commit stream: a follower that has applied everything
// up to `(e, s)` can ask for "records of epoch e after s", and an epoch
// change tells it the tail it was reading no longer exists (the primary
// rotated, recovered, or a different node was promoted) so it must
// re-bootstrap from a snapshot.
//
// On-disk layout (`journal.ppwal` in the store root):
//
//   "ppwal v2\n"                              9-byte magic
//   u64 LE  epoch                             ┐ 20-byte header:
//   u64 LE  base_seq (first seq in this file) │ positions survive
//   u32 LE  CRC-32 of the 16 bytes above      ┘ rotation
//   repeated records:
//     u32 LE  payload length
//     u32 LE  CRC-32 of (epoch ‖ seq ‖ payload)
//     u64 LE  epoch
//     u64 LE  seq
//     payload bytes:
//       put <kind> "<name>"\n<file contents>   — or —
//       del <kind> "<name>"\n
//
// The v1 format (no positions, magic "ppwal v1\n") is still *parsed* so
// an upgraded store replays its old journal; recovery then rotates,
// which rewrites the file as v2.  Appending to a v1 file is refused.
//
// A crash mid-append leaves a torn tail: a record whose frame runs past
// end-of-file or whose CRC mismatches.  Replay stops at the first such
// record (everything before it was acknowledged; nothing after it was),
// and the next rotation truncates the tail away.  Rotation itself is an
// atomic rename of a fresh header-only file, so the journal is never in
// a half-rotated state either.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

namespace powerplay::library {

struct JournalRecord {
  enum class Op { kPut, kDelete };
  Op op = Op::kPut;
  std::string kind;      ///< "model" | "design" | "user"
  std::string name;      ///< store entry name (validated by the store)
  std::string contents;  ///< full file body for kPut; empty for kDelete
  /// Stream position, stamped by append() and filled in by parse().
  /// Zero on records that have not been through either.
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

class Journal {
 public:
  static constexpr char kMagic[] = "ppwal v2\n";  // 9 bytes + NUL
  static constexpr char kMagicV1[] = "ppwal v1\n";
  static constexpr std::size_t kMagicSize = sizeof kMagic - 1;
  /// Magic + epoch + base_seq + header CRC.
  static constexpr std::size_t kHeaderSize = kMagicSize + 8 + 8 + 4;
  /// Bytes of framing around one record's payload (len+crc+epoch+seq).
  static constexpr std::size_t kFrameOverhead = 4 + 4 + 8 + 8;
  /// Upper bound on one record's payload; anything larger in a frame
  /// header is treated as corruption, not an allocation request.
  static constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

  /// Opens (creating, durably, if absent) the journal at `path`.  A
  /// fresh journal starts at epoch 1, seq 1.  An existing file whose
  /// header is neither v2 nor v1 is left untouched and reported via
  /// header_valid(); the store quarantines it and calls rotate() to
  /// start fresh.
  explicit Journal(std::filesystem::path path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] bool header_valid() const { return header_valid_; }
  /// 2 for the current format, 1 for a legacy file awaiting its upgrade
  /// rotation (appends are refused until then).
  [[nodiscard]] int version() const { return version_; }
  /// Bytes of record data past the header (0 = nothing to replay).
  [[nodiscard]] std::uint64_t tail_bytes() const;

  /// Current stream position.  last_seq() is the seq of the newest
  /// durable record ever stamped (base_seq - 1 when this file is empty).
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::uint64_t last_seq() const;
  [[nodiscard]] std::uint64_t base_seq() const;

  /// Frame, append and fsync one record, stamping it with this
  /// journal's current epoch and the next sequence number.  Thread-safe.
  /// Returns the stamped seq only once the record is durable — this is
  /// the mutation's ack point.
  std::uint64_t append(const JournalRecord& record);

  struct ReadResult {
    std::vector<JournalRecord> records;  ///< every intact record, in order
    bool header_ok = true;  ///< false: not a journal (or torn header)
    bool torn = false;      ///< trailing bytes did not form a record
    std::uint64_t valid_bytes = 0;  ///< offset just past the last record
    int version = 0;                ///< 2, or 1 for a legacy file
    std::uint64_t epoch = 0;        ///< header epoch (0 for v1)
    std::uint64_t base_seq = 1;     ///< header base seq (1 for v1)
  };

  /// Parse the current file from disk.  Never throws on corruption —
  /// that is the condition it exists to report.
  [[nodiscard]] ReadResult read_all() const;

  /// Atomically replace the file with a fresh, empty (header-only)
  /// journal one epoch later; sequence numbering continues where it
  /// was.  Thread-safe; durable before return.
  void rotate();
  /// Rotation to an explicit epoch (promotion wants a fresh epoch
  /// strictly above anything either replica has seen).  `epoch` must
  /// exceed the current epoch.  `min_next_seq` additionally fast-
  /// forwards sequence numbering (a promoted follower continues the
  /// stream past the highest seq it applied, keeping seq monotonic
  /// across the failover).
  void rotate_to_epoch(std::uint64_t epoch, std::uint64_t min_next_seq = 0);

  /// Parse a journal byte blob (fsck, tests, and the replication feed
  /// decoder — a feed response body is this exact format).
  [[nodiscard]] static ReadResult parse(const std::string& bytes);

  /// Serialize records (which must carry their stamped epoch/seq) into
  /// journal file format: magic + header(epoch, base_seq) + frames.
  /// The replication feed's wire encoding.
  [[nodiscard]] static std::string encode_stream(
      std::uint64_t epoch, std::uint64_t base_seq,
      const std::vector<JournalRecord>& records);

  /// Bytes one record occupies on disk / on the feed wire.
  [[nodiscard]] static std::size_t frame_bytes(const JournalRecord& record);

  /// Fault injection for the recovery tests: the next append fails (as
  /// ENOSPC would) after writing `after_bytes` bytes of its frame,
  /// leaving a torn tail for the unwind path to clean up.  One-shot.
  void fail_next_write_for_testing(std::uint64_t after_bytes);

 private:
  static constexpr std::uint64_t kUnlimitedWrites = ~0ull;

  void open_for_append_locked();
  void rotate_locked(std::uint64_t new_epoch);
  /// Truncate away the torn bytes of a failed append (or fail-stop by
  /// closing the descriptor) so later appends stay reachable by replay.
  void unwind_failed_append_locked();

  std::filesystem::path path_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  bool header_valid_ = true;
  int version_ = 2;
  std::uint64_t size_ = 0;      ///< current file size in bytes
  std::uint64_t epoch_ = 1;     ///< epoch stamped on new records
  std::uint64_t next_seq_ = 1;  ///< seq stamped on the next record
  std::uint64_t base_seq_ = 1;  ///< first seq belonging to this file
  std::uint64_t write_budget_for_testing_ = kUnlimitedWrites;
};

}  // namespace powerplay::library
