// journal.hpp — the store's append-only write-ahead journal.
//
// Every mutation of the library store (save/delete of a model, design
// or user profile) is appended here and fsync'd *before* it is applied
// to the materialized per-entry files.  The append is the commit point:
// once it returns, the mutation survives a crash at any later write
// boundary, because startup replay re-applies every intact record.
//
// On-disk layout (`journal.ppwal` in the store root):
//
//   "ppwal v1\n"                              9-byte magic header
//   repeated records:
//     u32 LE  payload length
//     u32 LE  CRC-32 of the payload
//     payload bytes:
//       put <kind> "<name>"\n<file contents>   — or —
//       del <kind> "<name>"\n
//
// A crash mid-append leaves a torn tail: a record whose frame runs past
// end-of-file or whose CRC mismatches.  Replay stops at the first such
// record (everything before it was acknowledged; nothing after it was),
// and the next rotation truncates the tail away.  Rotation itself is an
// atomic rename of a fresh header-only file, so the journal is never in
// a half-rotated state either.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

namespace powerplay::library {

struct JournalRecord {
  enum class Op { kPut, kDelete };
  Op op = Op::kPut;
  std::string kind;      ///< "model" | "design" | "user"
  std::string name;      ///< store entry name (validated by the store)
  std::string contents;  ///< full file body for kPut; empty for kDelete
};

class Journal {
 public:
  static constexpr char kMagic[] = "ppwal v1\n";  // 9 bytes + NUL
  static constexpr std::size_t kMagicSize = sizeof kMagic - 1;
  /// Upper bound on one record's payload; anything larger in a frame
  /// header is treated as corruption, not an allocation request.
  static constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

  /// Opens (creating, durably, if absent) the journal at `path`.  An
  /// existing file whose header is not the magic is left untouched and
  /// reported via header_valid(); the store quarantines it and calls
  /// rotate() to start fresh.
  explicit Journal(std::filesystem::path path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] bool header_valid() const { return header_valid_; }
  /// Bytes of record data past the header (0 = nothing to replay).
  [[nodiscard]] std::uint64_t tail_bytes() const;

  /// Frame, append and fsync one record.  Thread-safe.  Returns only
  /// once the record is durable — this is the mutation's ack point.
  void append(const JournalRecord& record);

  struct ReadResult {
    std::vector<JournalRecord> records;  ///< every intact record, in order
    bool header_ok = true;  ///< false: not a journal (or torn header)
    bool torn = false;      ///< trailing bytes did not form a record
    std::uint64_t valid_bytes = 0;  ///< offset just past the last record
  };

  /// Parse the current file from disk.  Never throws on corruption —
  /// that is the condition it exists to report.
  [[nodiscard]] ReadResult read_all() const;

  /// Atomically replace the file with a fresh, empty (header-only)
  /// journal.  Thread-safe; durable before return.
  void rotate();

  /// Parse a journal byte blob (fsck and tests).
  [[nodiscard]] static ReadResult parse(const std::string& bytes);

  /// Fault injection for the recovery tests: the next append fails (as
  /// ENOSPC would) after writing `after_bytes` bytes of its frame,
  /// leaving a torn tail for the unwind path to clean up.  One-shot.
  void fail_next_write_for_testing(std::uint64_t after_bytes);

 private:
  static constexpr std::uint64_t kUnlimitedWrites = ~0ull;

  void open_for_append_locked();
  /// Truncate away the torn bytes of a failed append (or fail-stop by
  /// closing the descriptor) so later appends stay reachable by replay.
  void unwind_failed_append_locked();

  std::filesystem::path path_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  bool header_valid_ = true;
  std::uint64_t size_ = 0;  ///< current file size in bytes
  std::uint64_t write_budget_for_testing_ = kUnlimitedWrites;
};

}  // namespace powerplay::library
