// durable.hpp — crash-safe file I/O primitives for the library store.
//
// Every acknowledged store mutation must survive a crash or torn write
// (the paper's whole pitch is per-user state kept on one server; losing
// a user's only copy of a design to a mid-write crash is not an
// option).  This module supplies the two building blocks:
//
//   * atomic_write_file — temp file in the same directory, fsync,
//     rename over the final path, fsync the directory.  A final path
//     therefore only ever holds a complete file.
//   * checksum footers — every snapshot ends with a `#ppck <crc> <len>`
//     trailer line; verify_snapshot() detects truncation and bit rot so
//     the loader can quarantine and recover instead of serving garbage.
//
// The footer rides in a '#' comment line, so the text-format tokenizer
// would skip it anyway; verify_snapshot() strips it before parsing.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

namespace powerplay::library {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the framing
/// checksum for journal records and snapshot footers.
[[nodiscard]] std::uint32_t crc32(const char* data, std::size_t size,
                                  std::uint32_t seed = 0);
[[nodiscard]] std::uint32_t crc32(const std::string& data);

/// Little-endian integer framing shared by the journal and the
/// replication codecs (one definition so both sides of the wire agree).
void put_u32le(std::string& out, std::uint32_t v);
void put_u64le(std::string& out, std::uint64_t v);
[[nodiscard]] std::uint32_t get_u32le(const std::string& bytes,
                                      std::size_t at);
[[nodiscard]] std::uint64_t get_u64le(const std::string& bytes,
                                      std::size_t at);

/// fsync an open descriptor / a directory (so a rename inside it is
/// durable).  Throws FormatError on failure; filesystems that do not
/// support directory fsync (EINVAL/ENOTSUP) are tolerated.
void fsync_fd(int fd, const std::filesystem::path& what);
void fsync_dir(const std::filesystem::path& dir);

/// Durably publish `contents` at `path`: write to a unique temp file in
/// the same directory, fsync it, rename over `path`, fsync the
/// directory.  Readers see either the old file or the new one, never a
/// mix.  Throws FormatError on any failure (the temp file is removed).
void atomic_write_file(const std::filesystem::path& path,
                       const std::string& contents);

/// Append the integrity footer: `#ppck <8-hex crc32> <byte count>\n`
/// covering everything before it.  `contents` should end with '\n'
/// (all library serializers do).
[[nodiscard]] std::string with_checksum_footer(std::string contents);

enum class SnapshotState {
  kOk,             ///< footer present and matching
  kMissingFooter,  ///< no `#ppck` trailer at all (never written by us)
  kCorrupt,        ///< footer malformed or checksum/length mismatch
};

/// Classify a raw snapshot file and, when a footer line is found, strip
/// it: on kOk `*contents` is the payload without the footer; on the
/// other states `*contents` is `raw` unchanged.
SnapshotState verify_snapshot(const std::string& raw, std::string* contents);

}  // namespace powerplay::library
