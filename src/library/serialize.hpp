// serialize.hpp — text round-tripping of user models and designs.
//
// "Libraries of primitives ... as well as macro cells ... may be shared
// and reused.  If a library is characterized and put on the web in
// Massachusetts, it can be used for estimates in California."  The
// serialized forms here are that wire/storage representation: the same
// text is written to the store's local files and shipped over the
// HTTP model-access protocol (src/web/remote.hpp).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "model/registry.hpp"
#include "model/user_model.hpp"
#include "sheet/design.hpp"

namespace powerplay::library {

// --- User-defined models ---------------------------------------------------

std::string to_text(const model::UserModelDefinition& def);

/// Parse one `model "..." { ... }` document.  Throws FormatError on
/// malformed syntax; UserModel construction afterwards validates the
/// equations themselves.
model::UserModelDefinition parse_user_model(const std::string& text);

// --- Designs -----------------------------------------------------------------

/// Resolve a macro reference by design name during parsing (typically a
/// LibraryStore lookup; the remote protocol plugs in an HTTP fetch).
using DesignResolver =
    std::function<std::shared_ptr<const sheet::Design>(const std::string&)>;

std::string to_text(const sheet::Design& design);

/// Parse one `design "..." { ... }` document.  Primitive rows resolve
/// their model names against `lib`; macro rows resolve via `resolve`.
sheet::Design parse_design(const std::string& text,
                           const model::ModelRegistry& lib,
                           const DesignResolver& resolve);

// --- Category names ----------------------------------------------------------

model::Category category_from_string(const std::string& name);

// --- Scope helpers (shared with the user-profile store) ----------------------

/// Emit `set "name" <number>` / `formula "name" "<expr>"` lines.
void write_scope_bindings(const expr::Scope& scope, const std::string& indent,
                          std::string& out);

}  // namespace powerplay::library
