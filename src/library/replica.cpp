#include "library/replica.hpp"

#include <cstdint>

#include "library/durable.hpp"
#include "library/textio.hpp"

namespace powerplay::library {

namespace {

constexpr char kCursorMagic[] = "pprepl cursor v1";
constexpr char kSnapshotMagic[] = "pprepl snapshot v1";

/// Strict decimal u64 (no sign, no leading '+', overflow-checked).
/// Epochs and sequence numbers must round-trip exactly, which rules out
/// the tokenizer's double-valued numbers for them.
bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (~0ull - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

/// Take the line starting at `pos` (without its '\n'); advances `pos`
/// past the newline.  False at end of input or on a final unterminated
/// line (every line of these codecs ends in '\n').
bool take_line(const std::string& text, std::size_t* pos,
               std::string* line) {
  if (*pos >= text.size()) return false;
  const std::size_t nl = text.find('\n', *pos);
  if (nl == std::string::npos) return false;
  *line = text.substr(*pos, nl - *pos);
  *pos = nl + 1;
  return true;
}

/// Parse `"<key> <u64>"`.
bool parse_kv_u64(const std::string& line, const std::string& key,
                  std::uint64_t* out) {
  if (line.size() <= key.size() + 1 ||
      line.compare(0, key.size(), key) != 0 || line[key.size()] != ' ') {
    return false;
  }
  return parse_u64(line.substr(key.size() + 1), out);
}

}  // namespace

std::string encode_cursor(const ReplCursor& cursor) {
  std::string out = kCursorMagic;
  out += "\nepoch " + std::to_string(cursor.epoch);
  out += "\nseq " + std::to_string(cursor.seq);
  out += "\n";
  return with_checksum_footer(std::move(out));
}

ReplCursor parse_cursor(const std::string& raw) {
  ReplCursor cursor;
  std::string body;
  if (verify_snapshot(raw, &body) != SnapshotState::kOk) return cursor;
  std::size_t pos = 0;
  std::string line;
  if (!take_line(body, &pos, &line) || line != kCursorMagic) return cursor;
  if (!take_line(body, &pos, &line) ||
      !parse_kv_u64(line, "epoch", &cursor.epoch)) {
    return cursor;
  }
  if (!take_line(body, &pos, &line) ||
      !parse_kv_u64(line, "seq", &cursor.seq)) {
    return cursor;
  }
  cursor.valid = pos == body.size();
  return cursor;
}

std::string encode_snapshot(const ReplSnapshot& snapshot) {
  std::string out = kSnapshotMagic;
  out += "\nepoch " + std::to_string(snapshot.epoch);
  out += "\nseq " + std::to_string(snapshot.seq);
  out += "\n";
  for (const JournalRecord& entry : snapshot.entries) {
    out += "entry " + entry.kind + " " + quoted(entry.name) + " " +
           std::to_string(entry.contents.size()) + "\n";
    out += entry.contents;
    out += "\n";
  }
  out += "end\n";
  return with_checksum_footer(std::move(out));
}

bool parse_snapshot(const std::string& raw, ReplSnapshot* out) {
  *out = ReplSnapshot{};
  std::string body;
  if (verify_snapshot(raw, &body) != SnapshotState::kOk) return false;
  std::size_t pos = 0;
  std::string line;
  if (!take_line(body, &pos, &line) || line != kSnapshotMagic) return false;
  if (!take_line(body, &pos, &line) ||
      !parse_kv_u64(line, "epoch", &out->epoch)) {
    return false;
  }
  if (!take_line(body, &pos, &line) ||
      !parse_kv_u64(line, "seq", &out->seq)) {
    return false;
  }
  for (;;) {
    if (!take_line(body, &pos, &line)) return false;
    if (line == "end") return pos == body.size();
    // `entry <kind> "<name>" <nbytes>` — the name needs the tokenizer's
    // escape handling; nbytes (≤ 64 MiB) is exact in a double.
    JournalRecord entry;
    std::size_t nbytes = 0;
    try {
      TokCursor cur(tokenize_document(line));
      cur.expect_ident("entry");
      entry.kind = cur.take_ident();
      entry.name = cur.take_string();
      const double n = cur.take_number();
      if (!cur.at_end() || n < 0 || n > Journal::kMaxPayloadBytes ||
          n != static_cast<double>(static_cast<std::size_t>(n))) {
        return false;
      }
      nbytes = static_cast<std::size_t>(n);
    } catch (const FormatError&) {
      return false;
    }
    // The body is raw bytes, followed by a '\n' separator of our own.
    if (body.size() - pos < nbytes + 1) return false;
    entry.contents = body.substr(pos, nbytes);
    pos += nbytes;
    if (body[pos] != '\n') return false;
    ++pos;
    entry.op = JournalRecord::Op::kPut;
    out->entries.push_back(std::move(entry));
  }
}

}  // namespace powerplay::library
