#include "library/store.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "library/textio.hpp"

namespace powerplay::library {

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw FormatError("cannot read file: " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const fs::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw FormatError("cannot write file: " + path.string());
  }
  out << contents;
  if (!out.good()) {
    throw FormatError("write failed: " + path.string());
  }
}

std::vector<std::string> list_stems(const fs::path& dir,
                                    const std::string& extension) {
  std::vector<std::string> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == extension) {
      out.push_back(entry.path().stem().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

void validate_store_name(const std::string& name) {
  if (name.empty()) throw FormatError("empty name");
  if (name.front() == '.') {
    throw FormatError("name must not start with '.': '" + name + "'");
  }
  for (char c : name) {
    if (c == '/' || c == '\\' || c == '\0') {
      throw FormatError("name contains a path separator: '" + name + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// UserProfile
// ---------------------------------------------------------------------------

std::string password_digest(const std::string& password) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : password) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

bool UserProfile::check_password(const std::string& password) const {
  if (!has_password()) return true;
  return password_digest(password) == password_hash;
}

void UserProfile::set_password(const std::string& password) {
  password_hash = password.empty() ? "" : password_digest(password);
}

std::string to_text(const UserProfile& profile) {
  std::string out = "user " + quoted(profile.username) + " {\n";
  for (const auto& [name, value] : profile.defaults) {
    out += "  default " + quoted(name) + " " + number_text(value) + "\n";
  }
  for (const std::string& d : profile.designs) {
    out += "  design " + quoted(d) + "\n";
  }
  if (profile.has_password()) {
    out += "  password " + quoted(profile.password_hash) + "\n";
  }
  out += "}\n";
  return out;
}

UserProfile parse_user_profile(const std::string& text) {
  TokCursor cur(tokenize_document(text));
  UserProfile profile;
  cur.expect_ident("user");
  profile.username = cur.take_string();
  cur.expect(TokKind::kLBrace);
  while (cur.peek().kind != TokKind::kRBrace) {
    if (cur.accept_ident("default")) {
      const std::string name = cur.take_string();
      profile.defaults[name] = cur.take_number();
    } else if (cur.accept_ident("design")) {
      profile.designs.push_back(cur.take_string());
    } else if (cur.accept_ident("password")) {
      profile.password_hash = cur.take_string();
    } else {
      cur.fail("unknown user attribute");
    }
  }
  cur.expect(TokKind::kRBrace);
  return profile;
}

// ---------------------------------------------------------------------------
// LibraryStore
// ---------------------------------------------------------------------------

LibraryStore::LibraryStore(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_ / "models");
  fs::create_directories(root_ / "designs");
  fs::create_directories(root_ / "users");
}

fs::path LibraryStore::model_path(const std::string& n) const {
  return root_ / "models" / (n + ".ppmodel");
}
fs::path LibraryStore::design_path(const std::string& n) const {
  return root_ / "designs" / (n + ".ppdesign");
}
fs::path LibraryStore::user_path(const std::string& n) const {
  return root_ / "users" / (n + ".ppuser");
}

void LibraryStore::save_model(const model::UserModelDefinition& def,
                              bool proprietary) {
  validate_store_name(def.name);
  std::string text;
  if (proprietary) text += "# proprietary\n";
  text += to_text(def);
  write_file(model_path(def.name), text);
}

std::optional<model::UserModelDefinition> LibraryStore::load_model(
    const std::string& name) const {
  validate_store_name(name);
  const fs::path path = model_path(name);
  if (!fs::exists(path)) return std::nullopt;
  return parse_user_model(read_file(path));
}

std::vector<std::string> LibraryStore::list_models() const {
  return list_stems(root_ / "models", ".ppmodel");
}

bool LibraryStore::is_proprietary(const std::string& name) const {
  validate_store_name(name);
  const fs::path path = model_path(name);
  if (!fs::exists(path)) return false;
  const std::string text = read_file(path);
  return text.rfind("# proprietary\n", 0) == 0;
}

void LibraryStore::load_all_models(model::ModelRegistry& registry) const {
  for (const std::string& name : list_models()) {
    auto def = load_model(name);
    registry.add_or_replace(std::make_shared<model::UserModel>(*def));
  }
}

void LibraryStore::save_design(const sheet::Design& design) {
  validate_store_name(design.name());
  // Save macros the design references first so a later load resolves;
  // shared sub-designs are written once per save (idempotent contents).
  for (const sheet::Row& row : design.rows()) {
    if (row.is_macro()) save_design(*row.macro);
  }
  write_file(design_path(design.name()), to_text(design));
}

bool LibraryStore::has_design(const std::string& name) const {
  validate_store_name(name);
  return fs::exists(design_path(name));
}

std::shared_ptr<const sheet::Design> LibraryStore::load_design(
    const std::string& name, const model::ModelRegistry& lib) const {
  std::vector<std::string> in_flight;
  return load_design_rec(name, lib, in_flight);
}

std::shared_ptr<const sheet::Design> LibraryStore::load_design_rec(
    const std::string& name, const model::ModelRegistry& lib,
    std::vector<std::string>& in_flight) const {
  validate_store_name(name);
  if (std::find(in_flight.begin(), in_flight.end(), name) !=
      in_flight.end()) {
    std::string cycle;
    for (const std::string& n : in_flight) cycle += n + " -> ";
    throw FormatError("design reference cycle: " + cycle + name);
  }
  const fs::path path = design_path(name);
  if (!fs::exists(path)) {
    throw FormatError("no stored design named '" + name + "'");
  }
  in_flight.push_back(name);
  sheet::Design d = parse_design(
      read_file(path), lib,
      [&](const std::string& ref) {
        return load_design_rec(ref, lib, in_flight);
      });
  in_flight.pop_back();
  return std::make_shared<const sheet::Design>(std::move(d));
}

std::vector<std::string> LibraryStore::list_designs() const {
  return list_stems(root_ / "designs", ".ppdesign");
}

void LibraryStore::save_user(const UserProfile& profile) {
  validate_store_name(profile.username);
  write_file(user_path(profile.username), to_text(profile));
}

std::optional<UserProfile> LibraryStore::load_user(
    const std::string& username) const {
  validate_store_name(username);
  const fs::path path = user_path(username);
  if (!fs::exists(path)) return std::nullopt;
  return parse_user_profile(read_file(path));
}

UserProfile LibraryStore::ensure_user(const std::string& username) {
  if (auto existing = load_user(username)) return *existing;
  UserProfile fresh;
  fresh.username = username;
  fresh.defaults = {{"vdd", 1.5}, {"f", 1.0e6}};
  save_user(fresh);
  return fresh;
}

std::vector<std::string> LibraryStore::list_users() const {
  return list_stems(root_ / "users", ".ppuser");
}

}  // namespace powerplay::library
