#include "library/store.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "library/durable.hpp"
#include "library/textio.hpp"

namespace powerplay::library {

namespace fs = std::filesystem;

namespace {

constexpr char kJournalFile[] = "journal.ppwal";
constexpr char kCursorFile[] = "repl.cursor";

/// kind -> (directory, extension); the journal speaks these kinds.
struct KindLayout {
  const char* kind;
  const char* dir;
  const char* extension;
};
constexpr KindLayout kKinds[] = {
    {"model", "models", ".ppmodel"},
    {"design", "designs", ".ppdesign"},
    {"user", "users", ".ppuser"},
};

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw FormatError("cannot read file: " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> list_stems(const fs::path& dir,
                                    const std::string& extension) {
  std::vector<std::string> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == extension) {
      out.push_back(entry.path().stem().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool all_digits(const std::string& s, std::size_t begin, std::size_t end) {
  if (begin >= end) return false;
  for (std::size_t i = begin; i < end; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

/// In-flight temp files from atomic_write_file are named
/// "<name>.<ext>.tmp<pid>.<seq>"; such a file is garbage by
/// construction (a completed write renamed it away).  Match that exact
/// shape — a known store extension, then ".tmp", digits, '.', digits at
/// end of name — because store names may themselves contain ".tmp"
/// (e.g. an entry "rev.tmp" materializes as "rev.tmp.ppdesign") and
/// must never be swept as garbage.
bool is_temp_file(const fs::path& path) {
  const std::string name = path.filename().string();
  const std::size_t tmp = name.rfind(".tmp");
  if (tmp == std::string::npos) return false;
  const std::size_t dot = name.find('.', tmp + 4);
  if (dot == std::string::npos) return false;
  if (!all_digits(name, tmp + 4, dot) ||
      !all_digits(name, dot + 1, name.size())) {
    return false;
  }
  const auto base_ends_with = [&](const std::string& ext) {
    return tmp >= ext.size() &&
           name.compare(tmp - ext.size(), ext.size(), ext) == 0;
  };
  for (const KindLayout& layout : kKinds) {
    if (base_ends_with(layout.extension)) return true;
  }
  return base_ends_with(".ppwal");
}

}  // namespace

void validate_store_name(const std::string& name) {
  if (name.empty()) throw FormatError("empty name");
  if (name.front() == '.') {
    throw FormatError("name must not start with '.': '" + name + "'");
  }
  for (char c : name) {
    if (c == '/' || c == '\\' || c == '\0') {
      throw FormatError("name contains a path separator: '" + name + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// UserProfile
// ---------------------------------------------------------------------------

std::string password_digest(const std::string& password) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : password) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

bool UserProfile::check_password(const std::string& password) const {
  if (!has_password()) return true;
  return password_digest(password) == password_hash;
}

void UserProfile::set_password(const std::string& password) {
  password_hash = password.empty() ? "" : password_digest(password);
}

std::string to_text(const UserProfile& profile) {
  std::string out = "user " + quoted(profile.username) + " {\n";
  for (const auto& [name, value] : profile.defaults) {
    out += "  default " + quoted(name) + " " + number_text(value) + "\n";
  }
  for (const std::string& d : profile.designs) {
    out += "  design " + quoted(d) + "\n";
  }
  if (profile.has_password()) {
    out += "  password " + quoted(profile.password_hash) + "\n";
  }
  out += "}\n";
  return out;
}

UserProfile parse_user_profile(const std::string& text) {
  TokCursor cur(tokenize_document(text));
  UserProfile profile;
  cur.expect_ident("user");
  profile.username = cur.take_string();
  cur.expect(TokKind::kLBrace);
  while (cur.peek().kind != TokKind::kRBrace) {
    if (cur.accept_ident("default")) {
      const std::string name = cur.take_string();
      profile.defaults[name] = cur.take_number();
    } else if (cur.accept_ident("design")) {
      profile.designs.push_back(cur.take_string());
    } else if (cur.accept_ident("password")) {
      profile.password_hash = cur.take_string();
    } else {
      cur.fail("unknown user attribute");
    }
  }
  cur.expect(TokKind::kRBrace);
  return profile;
}

// ---------------------------------------------------------------------------
// LibraryStore
// ---------------------------------------------------------------------------

LibraryStore::LibraryStore(fs::path root, StoreOptions options)
    : root_(std::move(root)),
      options_(options),
      counters_(std::make_unique<Counters>()),
      signal_(std::make_unique<CommitSignal>()),
      commit_mutex_(std::make_unique<std::mutex>()) {
  fs::create_directories(root_ / "models");
  fs::create_directories(root_ / "designs");
  fs::create_directories(root_ / "users");
  fs::create_directories(root_ / "quarantine");
  journal_ = std::make_unique<Journal>(root_ / kJournalFile);
  recover();
  std::lock_guard lock(*commit_mutex_);
  load_replication_cursor_locked();
}

fs::path LibraryStore::model_path(const std::string& n) const {
  return root_ / "models" / (n + ".ppmodel");
}
fs::path LibraryStore::design_path(const std::string& n) const {
  return root_ / "designs" / (n + ".ppdesign");
}
fs::path LibraryStore::user_path(const std::string& n) const {
  return root_ / "users" / (n + ".ppuser");
}

fs::path LibraryStore::path_for(const std::string& kind,
                                const std::string& name) const {
  for (const KindLayout& layout : kKinds) {
    if (kind == layout.kind) {
      return root_ / layout.dir / (name + layout.extension);
    }
  }
  throw FormatError("unknown journal record kind '" + kind + "'");
}

// ---------------------------------------------------------------------------
// Durability: commit path, recovery, quarantine
// ---------------------------------------------------------------------------

void LibraryStore::commit(const JournalRecord& record) {
  // Append→apply→rotate must be atomic with respect to other commits:
  // distinct users' writes reach here concurrently, and a rotate()
  // issued while another thread's record is appended (fsync'd, ack'd)
  // but not yet applied would truncate that record's only durable copy.
  std::lock_guard lock(*commit_mutex_);
  journal_->append(record);  // fsync'd: the mutation is now acknowledged
  counters_->journal_appends.fetch_add(1);
  apply(record);
  counters_->revision.fetch_add(1);  // invalidates revision-keyed caches
  if (journal_->tail_bytes() > options_.journal_rotate_bytes) {
    // Every record up to here was applied to a fsync'd snapshot the
    // moment it was appended, so the tail is redundant: compact it.
    // (The rotation bumps the epoch; followers past the tail re-sync
    // from a snapshot, which is exactly the state they already hold.)
    journal_->rotate();
    counters_->journal_rotations.fetch_add(1);
  }
  notify_position_moved();
}

void LibraryStore::apply(const JournalRecord& record) {
  const fs::path path = path_for(record.kind, record.name);
  if (record.op == JournalRecord::Op::kPut) {
    atomic_write_file(path, with_checksum_footer(record.contents));
    counters_->snapshot_writes.fetch_add(1);
  } else {
    std::error_code ec;
    fs::remove(path, ec);  // absent already = idempotent replay
    fsync_dir(path.parent_path());
  }
}

void LibraryStore::quarantine(const fs::path& path, bool copy) const {
  const fs::path qdir = root_ / "quarantine";
  std::error_code ec;
  fs::create_directories(qdir, ec);
  fs::path dest = qdir / path.filename();
  for (int i = 1; fs::exists(dest); ++i) {
    dest = qdir / (path.filename().string() + "." + std::to_string(i));
  }
  if (copy) {
    fs::copy_file(path, dest, ec);
  } else {
    fs::rename(path, dest, ec);
  }
  if (ec) return;  // never delete: on failure the original stays put
  fsync_dir(qdir);
  if (!copy) fsync_dir(path.parent_path());
  counters_->quarantined_files.fetch_add(1);
}

std::optional<std::string> LibraryStore::read_verified(
    const fs::path& path) const {
  const std::string raw = read_file(path);
  std::string contents;
  if (verify_snapshot(raw, &contents) != SnapshotState::kOk) {
    quarantine(path);
    return std::nullopt;
  }
  return contents;
}

void LibraryStore::recover() {
  // 1. Sweep the materialized trees: drop stale temp files, verify
  //    every snapshot's footer, quarantine what fails.
  for (const KindLayout& layout : kKinds) {
    const fs::path dir = root_ / layout.dir;
    std::vector<fs::path> entries;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) entries.push_back(entry.path());
    }
    for (const fs::path& path : entries) {
      if (is_temp_file(path)) {
        std::error_code ec;
        fs::remove(path, ec);  // an unrenamed write that never committed
        continue;
      }
      if (path.extension() != layout.extension) continue;
      if (verify_snapshot(read_file(path), nullptr) != SnapshotState::kOk) {
        quarantine(path);
      }
    }
  }

  // 2. A journal file that is not a journal (or lost its header) is
  //    preserved in quarantine and replaced by a fresh one.
  if (!journal_->header_valid()) {
    quarantine(journal_->path(), /*copy=*/true);
    journal_->rotate();
    counters_->journal_rotations.fetch_add(1);
  }

  // 3. Replay every intact record: each acknowledged mutation lands in
  //    its snapshot (idempotent re-apply).  A torn tail is exactly the
  //    unacknowledged in-flight write of the crash — dropped.
  const Journal::ReadResult replay = journal_->read_all();
  for (const JournalRecord& record : replay.records) {
    apply(record);
    counters_->journal_replayed.fetch_add(1);
  }

  // 4. Compact: the replayed (and any torn) bytes are now redundant.
  //    Also upgrades a legacy (v1, unstamped) journal to the current
  //    framing — appends refuse v1 files, so the rotation is mandatory.
  //    Either way the rotation bumps the epoch, which is the correct
  //    signal to any follower: this store's history just changed shape.
  if (!replay.records.empty() || replay.torn || journal_->version() == 1) {
    journal_->rotate();
    counters_->journal_rotations.fetch_add(1);
  }
}

DurabilityStats LibraryStore::durability() const {
  DurabilityStats out;
  out.journal_appends = counters_->journal_appends.load();
  out.journal_replayed = counters_->journal_replayed.load();
  out.journal_rotations = counters_->journal_rotations.load();
  out.snapshot_writes = counters_->snapshot_writes.load();
  out.quarantined_files = counters_->quarantined_files.load();
  return out;
}

void LibraryStore::flush() {
  std::lock_guard lock(*commit_mutex_);
  if (journal_->tail_bytes() > 0) {
    journal_->rotate();
    counters_->journal_rotations.fetch_add(1);
    notify_position_moved();
  }
  if (repl_cursor_dirty_) {
    atomic_write_file(cursor_path(), encode_cursor(repl_cursor_));
    repl_cursor_dirty_ = false;
  }
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

void LibraryStore::notify_position_moved() const {
  // Lock-then-notify so a waiter cannot check the predicate, miss this
  // update, and then sleep through the wakeup.
  { std::lock_guard lock(signal_->mutex); }
  signal_->cv.notify_all();
}

fs::path LibraryStore::cursor_path() const { return root_ / kCursorFile; }

void LibraryStore::load_replication_cursor_locked() {
  const fs::path path = cursor_path();
  if (!fs::exists(path)) return;
  const ReplCursor cursor = parse_cursor(read_file(path));
  if (cursor.valid) {
    repl_cursor_ = cursor;
  } else {
    // Corrupt cursor: preserve the evidence and fall back to a full
    // re-bootstrap (always safe, never wrong).
    quarantine(path);
  }
}

std::uint64_t LibraryStore::epoch() const { return journal_->epoch(); }

std::uint64_t LibraryStore::last_seq() const { return journal_->last_seq(); }

LibraryStore::ReplFeed LibraryStore::read_replication_feed(
    std::uint64_t epoch, std::uint64_t after_seq,
    std::size_t max_bytes) const {
  // One read_all() gives a consistent (header, records) view even while
  // commits land concurrently.
  const Journal::ReadResult tail = journal_->read_all();
  ReplFeed feed;
  feed.epoch = tail.epoch;
  feed.last_seq =
      tail.records.empty() ? tail.base_seq - 1 : tail.records.back().seq;
  if (!tail.header_ok || tail.epoch != epoch) return feed;  // re-bootstrap
  feed.epoch_ok = true;
  if (after_seq + 1 < tail.base_seq) {
    feed.gap = true;  // already compacted away (cannot happen with the
    return feed;      // epoch check, but refuse defensively)
  }
  std::size_t batch_bytes = 0;
  for (const JournalRecord& record : tail.records) {
    if (record.seq <= after_seq) continue;
    const std::size_t frame = Journal::frame_bytes(record);
    if (!feed.records.empty() && batch_bytes + frame > max_bytes) {
      feed.pending_bytes += frame;  // ships in the next batch
      continue;
    }
    batch_bytes += frame;
    feed.records.push_back(record);
  }
  return feed;
}

bool LibraryStore::wait_for_commit(std::uint64_t epoch,
                                   std::uint64_t after_seq,
                                   std::chrono::milliseconds timeout) const {
  const auto moved = [&] {
    return journal_->epoch() != epoch || journal_->last_seq() > after_seq;
  };
  std::unique_lock lock(signal_->mutex);
  return signal_->cv.wait_for(lock, timeout, moved);
}

ReplSnapshot LibraryStore::export_replication_snapshot() {
  std::lock_guard lock(*commit_mutex_);  // freeze the position
  ReplSnapshot snapshot;
  snapshot.epoch = journal_->epoch();
  snapshot.seq = journal_->last_seq();
  for (const KindLayout& layout : kKinds) {
    for (const std::string& name :
         list_stems(root_ / layout.dir, layout.extension)) {
      const auto contents =
          read_verified(root_ / layout.dir / (name + layout.extension));
      if (!contents) continue;  // corrupt: quarantined, not shipped
      JournalRecord entry;
      entry.op = JournalRecord::Op::kPut;
      entry.kind = layout.kind;
      entry.name = name;
      entry.contents = *contents;
      snapshot.entries.push_back(std::move(entry));
    }
  }
  return snapshot;
}

LibraryStore::ReplApply LibraryStore::apply_replicated(
    const JournalRecord& record) {
  std::lock_guard lock(*commit_mutex_);
  if (!repl_cursor_.valid || record.epoch != repl_cursor_.epoch) {
    return ReplApply::kEpochMismatch;
  }
  if (record.seq <= repl_cursor_.seq) return ReplApply::kDuplicate;
  if (record.seq != repl_cursor_.seq + 1) return ReplApply::kGap;
  // The shipped record's own durability story: apply() materializes it
  // with an atomic fsync'd write *before* the cursor moves, and the
  // cursor file itself is flushed lazily — after a crash the cursor is
  // merely stale, and the records it re-fetches are skipped or
  // re-applied idempotently.
  apply(record);
  counters_->revision.fetch_add(1);
  repl_cursor_.seq = record.seq;
  repl_cursor_dirty_ = true;
  notify_position_moved();
  return ReplApply::kApplied;
}

ReplCursor LibraryStore::replication_cursor() const {
  std::lock_guard lock(*commit_mutex_);
  return repl_cursor_;
}

void LibraryStore::flush_replication_cursor() {
  std::lock_guard lock(*commit_mutex_);
  if (!repl_cursor_dirty_) return;
  atomic_write_file(cursor_path(), encode_cursor(repl_cursor_));
  repl_cursor_dirty_ = false;
}

void LibraryStore::invalidate_replication_cursor() {
  std::lock_guard lock(*commit_mutex_);
  repl_cursor_ = ReplCursor{};
  repl_cursor_dirty_ = false;
  std::error_code ec;
  if (fs::remove(cursor_path(), ec)) fsync_dir(root_);
}

void LibraryStore::install_replication_snapshot(const ReplSnapshot& snapshot) {
  std::lock_guard lock(*commit_mutex_);
  // Durably forget the old cursor first: a crash anywhere inside the
  // install then finds no cursor and re-bootstraps from scratch, never
  // resuming a half-installed state.
  repl_cursor_ = ReplCursor{};
  repl_cursor_dirty_ = false;
  std::error_code ec;
  if (fs::remove(cursor_path(), ec)) fsync_dir(root_);

  // Replace the materialized trees wholesale (entries absent from the
  // snapshot must not survive).
  for (const KindLayout& layout : kKinds) {
    const fs::path dir = root_ / layout.dir;
    for (const std::string& name : list_stems(dir, layout.extension)) {
      fs::remove(dir / (name + layout.extension), ec);
    }
    fsync_dir(dir);
  }
  for (const JournalRecord& entry : snapshot.entries) {
    apply(entry);
  }

  // The local journal described the discarded state; start fresh.
  journal_->rotate();
  counters_->journal_rotations.fetch_add(1);

  repl_cursor_ = ReplCursor{snapshot.epoch, snapshot.seq, true};
  atomic_write_file(cursor_path(), encode_cursor(repl_cursor_));
  counters_->revision.fetch_add(1);
  notify_position_moved();
}

std::uint64_t LibraryStore::promote() {
  std::lock_guard lock(*commit_mutex_);
  const std::uint64_t fresh =
      std::max(journal_->epoch(), repl_cursor_.epoch) + 1;
  journal_->rotate_to_epoch(fresh, repl_cursor_.seq + 1);
  counters_->journal_rotations.fetch_add(1);
  repl_cursor_ = ReplCursor{};
  repl_cursor_dirty_ = false;
  std::error_code ec;
  if (fs::remove(cursor_path(), ec)) fsync_dir(root_);
  notify_position_moved();
  return fresh;
}

void LibraryStore::save_model(const model::UserModelDefinition& def,
                              bool proprietary) {
  validate_store_name(def.name);
  std::string text;
  if (proprietary) text += "# proprietary\n";
  text += to_text(def);
  commit({JournalRecord::Op::kPut, "model", def.name, std::move(text)});
}

std::optional<model::UserModelDefinition> LibraryStore::load_model(
    const std::string& name) const {
  validate_store_name(name);
  const fs::path path = model_path(name);
  if (!fs::exists(path)) return std::nullopt;
  const auto text = read_verified(path);
  if (!text) return std::nullopt;  // corrupt: quarantined, reported absent
  return parse_user_model(*text);
}

std::vector<std::string> LibraryStore::list_models() const {
  return list_stems(root_ / "models", ".ppmodel");
}

bool LibraryStore::is_proprietary(const std::string& name) const {
  validate_store_name(name);
  const fs::path path = model_path(name);
  if (!fs::exists(path)) return false;
  const std::string text = read_file(path);
  return text.rfind("# proprietary\n", 0) == 0;
}

void LibraryStore::load_all_models(model::ModelRegistry& registry) const {
  for (const std::string& name : list_models()) {
    auto def = load_model(name);
    if (!def) continue;  // quarantined by read_verified
    registry.add_or_replace(std::make_shared<model::UserModel>(*def));
  }
}

bool LibraryStore::remove_model(const std::string& name) {
  validate_store_name(name);
  if (!fs::exists(model_path(name))) return false;
  commit({JournalRecord::Op::kDelete, "model", name, ""});
  return true;
}

bool LibraryStore::remove_design(const std::string& name) {
  validate_store_name(name);
  if (!fs::exists(design_path(name))) return false;
  commit({JournalRecord::Op::kDelete, "design", name, ""});
  return true;
}

bool LibraryStore::remove_user(const std::string& username) {
  validate_store_name(username);
  if (!fs::exists(user_path(username))) return false;
  commit({JournalRecord::Op::kDelete, "user", username, ""});
  return true;
}

void LibraryStore::save_design(const sheet::Design& design) {
  validate_store_name(design.name());
  // Save macros the design references first so a later load resolves;
  // shared sub-designs are written once per save (idempotent contents).
  for (const sheet::Row& row : design.rows()) {
    if (row.is_macro()) save_design(*row.macro);
  }
  commit({JournalRecord::Op::kPut, "design", design.name(), to_text(design)});
}

bool LibraryStore::has_design(const std::string& name) const {
  validate_store_name(name);
  return fs::exists(design_path(name));
}

std::shared_ptr<const sheet::Design> LibraryStore::load_design(
    const std::string& name, const model::ModelRegistry& lib) const {
  std::vector<std::string> in_flight;
  return load_design_rec(name, lib, in_flight);
}

std::shared_ptr<const sheet::Design> LibraryStore::load_design_rec(
    const std::string& name, const model::ModelRegistry& lib,
    std::vector<std::string>& in_flight) const {
  validate_store_name(name);
  if (std::find(in_flight.begin(), in_flight.end(), name) !=
      in_flight.end()) {
    std::string cycle;
    for (const std::string& n : in_flight) cycle += n + " -> ";
    throw FormatError("design reference cycle: " + cycle + name);
  }
  const fs::path path = design_path(name);
  if (!fs::exists(path)) {
    throw FormatError("no stored design named '" + name + "'");
  }
  const auto text = read_verified(path);
  if (!text) {
    throw FormatError("stored design '" + name +
                      "' was corrupt and has been quarantined");
  }
  in_flight.push_back(name);
  sheet::Design d = parse_design(
      *text, lib,
      [&](const std::string& ref) {
        return load_design_rec(ref, lib, in_flight);
      });
  in_flight.pop_back();
  return std::make_shared<const sheet::Design>(std::move(d));
}

std::vector<std::string> LibraryStore::list_designs() const {
  return list_stems(root_ / "designs", ".ppdesign");
}

void LibraryStore::save_user(const UserProfile& profile) {
  validate_store_name(profile.username);
  commit({JournalRecord::Op::kPut, "user", profile.username,
          to_text(profile)});
}

std::optional<UserProfile> LibraryStore::load_user(
    const std::string& username) const {
  validate_store_name(username);
  const fs::path path = user_path(username);
  if (!fs::exists(path)) return std::nullopt;
  const auto text = read_verified(path);
  if (!text) return std::nullopt;
  return parse_user_profile(*text);
}

UserProfile LibraryStore::ensure_user(const std::string& username) {
  if (auto existing = load_user(username)) return *existing;
  UserProfile fresh;
  fresh.username = username;
  fresh.defaults = {{"vdd", 1.5}, {"f", 1.0e6}};
  save_user(fresh);
  return fresh;
}

std::vector<std::string> LibraryStore::list_users() const {
  return list_stems(root_ / "users", ".ppuser");
}

// ---------------------------------------------------------------------------
// fsck
// ---------------------------------------------------------------------------

FsckReport fsck_store(const fs::path& root) {
  FsckReport report;
  for (const KindLayout& layout : kKinds) {
    const fs::path dir = root / layout.dir;
    if (!fs::exists(dir)) continue;
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() &&
          entry.path().extension() == layout.extension &&
          !is_temp_file(entry.path())) {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& path : files) {
      ++report.files_checked;
      std::string raw;
      try {
        raw = read_file(path);
      } catch (const FormatError&) {
        ++report.corrupt;
        report.problems.push_back("unreadable: " + path.string());
        continue;
      }
      switch (verify_snapshot(raw, nullptr)) {
        case SnapshotState::kOk:
          break;
        case SnapshotState::kMissingFooter:
          ++report.corrupt;
          report.problems.push_back("missing checksum footer: " +
                                    path.string());
          break;
        case SnapshotState::kCorrupt:
          ++report.corrupt;
          report.problems.push_back("checksum mismatch: " + path.string());
          break;
      }
    }
  }

  const fs::path journal_path = root / kJournalFile;
  if (fs::exists(journal_path)) {
    report.journal_present = true;
    std::string bytes;
    try {
      bytes = read_file(journal_path);
    } catch (const FormatError&) {
      report.journal_header_ok = false;
      report.problems.push_back("unreadable journal: " +
                                journal_path.string());
      return report;
    }
    const Journal::ReadResult parsed = Journal::parse(bytes);
    report.journal_records = parsed.records.size();
    report.journal_header_ok = parsed.header_ok;
    report.journal_torn = parsed.torn;
    report.journal_version = parsed.version;
    report.journal_epoch = parsed.epoch;
    report.journal_base_seq = parsed.base_seq;
    report.journal_last_seq = parsed.records.empty()
                                  ? parsed.base_seq - 1
                                  : parsed.records.back().seq;
    if (!parsed.header_ok) {
      report.problems.push_back("invalid journal header: " +
                                journal_path.string());
    } else if (parsed.torn) {
      report.problems.push_back(
          "torn journal tail after " + std::to_string(parsed.valid_bytes) +
          " bytes: " + journal_path.string());
    }
    // Epoch/sequence continuity: every record must be stamped with the
    // header epoch and consecutive seqs from base_seq (shipped replay
    // relies on exactly this invariant).
    for (std::size_t i = 0; i < parsed.records.size(); ++i) {
      const JournalRecord& record = parsed.records[i];
      const std::uint64_t want_seq = parsed.base_seq + i;
      if (record.epoch != parsed.epoch || record.seq != want_seq) {
        report.journal_sequence_ok = false;
        report.problems.push_back(
            "journal continuity broken at record " + std::to_string(i) +
            ": stamped (" + std::to_string(record.epoch) + ", " +
            std::to_string(record.seq) + "), expected (" +
            std::to_string(parsed.epoch) + ", " +
            std::to_string(want_seq) + ")");
        break;
      }
    }
  }

  const fs::path cursor_path = root / kCursorFile;
  if (fs::exists(cursor_path)) {
    report.cursor_present = true;
    std::string raw;
    try {
      raw = read_file(cursor_path);
    } catch (const FormatError&) {
      raw.clear();
    }
    const ReplCursor cursor = parse_cursor(raw);
    report.cursor_ok = cursor.valid;
    report.cursor_epoch = cursor.epoch;
    report.cursor_seq = cursor.seq;
    if (!cursor.valid) {
      report.problems.push_back("corrupt replication cursor: " +
                                cursor_path.string());
    }
  }
  return report;
}

}  // namespace powerplay::library
