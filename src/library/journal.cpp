#include "library/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "library/durable.hpp"
#include "library/textio.hpp"

namespace powerplay::library {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw FormatError(what + ": " + std::strerror(errno));
}

std::string read_whole_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Serialize one record's payload (the framed bytes' interior).
std::string payload_text(const JournalRecord& record) {
  std::string out =
      record.op == JournalRecord::Op::kPut ? "put " : "del ";
  out += record.kind + " " + quoted(record.name) + "\n";
  if (record.op == JournalRecord::Op::kPut) out += record.contents;
  return out;
}

/// Parse one payload back; false on any malformation.
bool parse_payload(const std::string& payload, JournalRecord* record) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string::npos) return false;
  try {
    TokCursor cur(tokenize_document(payload.substr(0, nl)));
    const std::string op = cur.take_ident();
    if (op == "put") {
      record->op = JournalRecord::Op::kPut;
    } else if (op == "del") {
      record->op = JournalRecord::Op::kDelete;
    } else {
      return false;
    }
    record->kind = cur.take_ident();
    record->name = cur.take_string();
    if (!cur.at_end()) return false;
  } catch (const FormatError&) {
    return false;
  }
  record->contents =
      record->op == JournalRecord::Op::kPut ? payload.substr(nl + 1) : "";
  return true;
}

/// The 16 position bytes a frame's CRC covers alongside its payload.
std::string stamp_bytes(std::uint64_t epoch, std::uint64_t seq) {
  std::string stamp;
  stamp.reserve(16);
  put_u64le(stamp, epoch);
  put_u64le(stamp, seq);
  return stamp;
}

std::string header_bytes(std::uint64_t epoch, std::uint64_t base_seq) {
  std::string out(Journal::kMagic, Journal::kMagicSize);
  std::string pos = stamp_bytes(epoch, base_seq);
  put_u32le(pos, crc32(pos));
  return out + pos;
}

std::string frame_bytes_for(std::uint64_t epoch, std::uint64_t seq,
                            const std::string& payload) {
  const std::string stamp = stamp_bytes(epoch, seq);
  std::string frame;
  frame.reserve(Journal::kFrameOverhead + payload.size());
  put_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame, crc32(payload.data(), payload.size(),
                         crc32(stamp.data(), stamp.size())));
  frame += stamp;
  frame += payload;
  return frame;
}

}  // namespace

Journal::Journal(fs::path path) : path_(std::move(path)) {
  std::lock_guard lock(mutex_);
  std::error_code ec;
  if (!fs::exists(path_, ec)) {
    // Durably create the header-only file before anything can commit.
    atomic_write_file(path_, header_bytes(epoch_, base_seq_));
    size_ = kHeaderSize;
  } else {
    const std::string raw = read_whole_file(path_);
    size_ = raw.size();
    const ReadResult parsed = parse(raw);
    header_valid_ = parsed.header_ok;
    version_ = parsed.version;
    if (header_valid_) {
      epoch_ = parsed.epoch;
      base_seq_ = parsed.base_seq;
      next_seq_ = parsed.records.empty() ? base_seq_
                                         : parsed.records.back().seq + 1;
    }
  }
  if (header_valid_ && version_ == 2) open_for_append_locked();
}

Journal::~Journal() {
  std::lock_guard lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
}

void Journal::open_for_append_locked() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) fail_errno("cannot open journal " + path_.string());
}

std::uint64_t Journal::tail_bytes() const {
  std::lock_guard lock(mutex_);
  const std::uint64_t header =
      version_ == 1 ? kMagicSize : kHeaderSize;
  return size_ > header ? size_ - header : 0;
}

std::uint64_t Journal::epoch() const {
  std::lock_guard lock(mutex_);
  return epoch_;
}

std::uint64_t Journal::last_seq() const {
  std::lock_guard lock(mutex_);
  return next_seq_ - 1;
}

std::uint64_t Journal::base_seq() const {
  std::lock_guard lock(mutex_);
  return base_seq_;
}

std::uint64_t Journal::append(const JournalRecord& record) {
  const std::string payload = payload_text(record);
  if (payload.size() > kMaxPayloadBytes) {
    throw FormatError("journal record exceeds " +
                      std::to_string(kMaxPayloadBytes) + " bytes");
  }

  std::lock_guard lock(mutex_);
  if (fd_ < 0 || version_ != 2) {
    throw FormatError("journal " + path_.string() +
                      " is not open (invalid or legacy header; rotate first)");
  }
  const std::uint64_t seq = next_seq_;
  const std::string frame = frame_bytes_for(epoch_, seq, payload);
  std::size_t written = 0;
  while (written < frame.size()) {
    const std::size_t want = frame.size() - written;
    if (want > write_budget_for_testing_) {
      // Injected mid-frame failure (as ENOSPC/EIO would strike): leave
      // the bytes the kernel already took, then report the error.
      const std::size_t partial = static_cast<std::size_t>(
          write_budget_for_testing_);
      write_budget_for_testing_ = kUnlimitedWrites;
      if (partial > 0) {
        [[maybe_unused]] const ssize_t torn =
            ::write(fd_, frame.data() + written, partial);
      }
      unwind_failed_append_locked();
      errno = ENOSPC;
      fail_errno("append to journal " + path_.string());
    }
    const ssize_t n = ::write(fd_, frame.data() + written, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      unwind_failed_append_locked();
      errno = err;
      fail_errno("append to journal " + path_.string());
    }
    written += static_cast<std::size_t>(n);
    if (write_budget_for_testing_ != kUnlimitedWrites) {
      write_budget_for_testing_ -= static_cast<std::uint64_t>(n);
    }
  }
  if (::fsync(fd_) != 0) {
    const int err = errno;
    unwind_failed_append_locked();
    errno = err;
    fail_errno("fsync " + path_.string());
  }
  // The ack point: the record is now durable at (epoch_, seq).
  size_ += frame.size();
  next_seq_ = seq + 1;
  return seq;
}

void Journal::unwind_failed_append_locked() {
  // A failed append may leave torn frame bytes past size_.  If they
  // stayed, the O_APPEND descriptor would place later (acknowledged)
  // records after them — and replay, which stops at the first torn
  // frame, could never reach those records after a crash.  Cut the file
  // back to the last durable boundary; if even that fails, close the
  // descriptor so further appends refuse (fail-stop) instead of
  // silently writing unreachable records.
  if (fd_ < 0) return;
  if (::ftruncate(fd_, static_cast<off_t>(size_)) == 0 &&
      ::fsync(fd_) == 0) {
    return;
  }
  ::close(fd_);
  fd_ = -1;
}

void Journal::fail_next_write_for_testing(std::uint64_t after_bytes) {
  std::lock_guard lock(mutex_);
  write_budget_for_testing_ = after_bytes;
}

Journal::ReadResult Journal::read_all() const {
  std::lock_guard lock(mutex_);
  return parse(read_whole_file(path_));
}

void Journal::rotate() {
  std::lock_guard lock(mutex_);
  rotate_locked(epoch_ + 1);
}

void Journal::rotate_to_epoch(std::uint64_t epoch,
                              std::uint64_t min_next_seq) {
  std::lock_guard lock(mutex_);
  if (epoch <= epoch_) {
    throw FormatError("journal rotation must advance the epoch (" +
                      std::to_string(epoch) + " <= " +
                      std::to_string(epoch_) + ")");
  }
  if (min_next_seq > next_seq_) next_seq_ = min_next_seq;
  rotate_locked(epoch);
}

void Journal::rotate_locked(std::uint64_t new_epoch) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  epoch_ = new_epoch;
  base_seq_ = next_seq_;
  atomic_write_file(path_, header_bytes(epoch_, base_seq_));
  size_ = kHeaderSize;
  header_valid_ = true;
  version_ = 2;
  open_for_append_locked();
}

Journal::ReadResult Journal::parse(const std::string& bytes) {
  ReadResult out;
  const bool v2 =
      bytes.size() >= kMagicSize && bytes.compare(0, kMagicSize, kMagic) == 0;
  const bool v1 = !v2 && bytes.size() >= kMagicSize &&
                  bytes.compare(0, kMagicSize, kMagicV1) == 0;
  if (!v2 && !v1) {
    out.header_ok = false;
    return out;
  }
  out.version = v2 ? 2 : 1;

  std::size_t pos = kMagicSize;
  if (v2) {
    if (bytes.size() < kHeaderSize) {
      out.header_ok = false;  // torn mid-header: no position to trust
      return out;
    }
    const std::string stamped = bytes.substr(kMagicSize, 16);
    if (crc32(stamped) != get_u32le(bytes, kMagicSize + 16)) {
      out.header_ok = false;
      return out;
    }
    out.epoch = get_u64le(bytes, kMagicSize);
    out.base_seq = get_u64le(bytes, kMagicSize + 8);
    pos = kHeaderSize;
  } else {
    // Legacy file: no stamped positions.  Synthesize epoch 0 and seq
    // numbers 1..n so replay and fsck still have a coherent cursor; the
    // upgrade rotation assigns real ones.
    out.epoch = 0;
    out.base_seq = 1;
  }
  out.valid_bytes = pos;

  const std::size_t overhead = v2 ? kFrameOverhead : 8;
  std::uint64_t next_seq = out.base_seq;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < overhead) {
      out.torn = true;  // frame header itself is torn
      break;
    }
    const std::uint32_t length = get_u32le(bytes, pos);
    const std::uint32_t crc = get_u32le(bytes, pos + 4);
    if (length > kMaxPayloadBytes ||
        bytes.size() - pos - overhead < length) {
      out.torn = true;  // length field corrupt or payload truncated
      break;
    }
    std::uint64_t epoch = out.epoch;
    std::uint64_t seq = next_seq;
    std::uint32_t expect = 0;
    if (v2) {
      epoch = get_u64le(bytes, pos + 8);
      seq = get_u64le(bytes, pos + 16);
      expect = crc32(bytes.data() + pos + 8 + 16, length,
                     crc32(bytes.data() + pos + 8, 16));
    } else {
      expect = crc32(bytes.data() + pos + 8, length);
    }
    if (expect != crc) {
      out.torn = true;  // payload, stamp or frame bits flipped
      break;
    }
    const std::string payload = bytes.substr(pos + overhead, length);
    JournalRecord record;
    if (!parse_payload(payload, &record)) {
      out.torn = true;  // CRC matched but the grammar did not: corrupt
      break;
    }
    record.epoch = epoch;
    record.seq = seq;
    out.records.push_back(std::move(record));
    next_seq = seq + 1;
    pos += overhead + length;
    out.valid_bytes = pos;
  }
  return out;
}

std::string Journal::encode_stream(std::uint64_t epoch,
                                   std::uint64_t base_seq,
                                   const std::vector<JournalRecord>& records) {
  std::string out = header_bytes(epoch, base_seq);
  for (const JournalRecord& record : records) {
    out += frame_bytes_for(record.epoch, record.seq, payload_text(record));
  }
  return out;
}

std::size_t Journal::frame_bytes(const JournalRecord& record) {
  return kFrameOverhead + payload_text(record).size();
}

}  // namespace powerplay::library
