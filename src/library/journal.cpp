#include "library/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "library/durable.hpp"
#include "library/textio.hpp"

namespace powerplay::library {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw FormatError(what + ": " + std::strerror(errno));
}

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32le(const std::string& bytes, std::size_t at) {
  return static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at])) |
         static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at + 1]))
             << 8 |
         static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at + 2]))
             << 16 |
         static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at + 3]))
             << 24;
}

std::string read_whole_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Serialize one record's payload (the framed bytes' interior).
std::string payload_text(const JournalRecord& record) {
  std::string out =
      record.op == JournalRecord::Op::kPut ? "put " : "del ";
  out += record.kind + " " + quoted(record.name) + "\n";
  if (record.op == JournalRecord::Op::kPut) out += record.contents;
  return out;
}

/// Parse one payload back; false on any malformation.
bool parse_payload(const std::string& payload, JournalRecord* record) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string::npos) return false;
  try {
    TokCursor cur(tokenize_document(payload.substr(0, nl)));
    const std::string op = cur.take_ident();
    if (op == "put") {
      record->op = JournalRecord::Op::kPut;
    } else if (op == "del") {
      record->op = JournalRecord::Op::kDelete;
    } else {
      return false;
    }
    record->kind = cur.take_ident();
    record->name = cur.take_string();
    if (!cur.at_end()) return false;
  } catch (const FormatError&) {
    return false;
  }
  record->contents =
      record->op == JournalRecord::Op::kPut ? payload.substr(nl + 1) : "";
  return true;
}

}  // namespace

Journal::Journal(fs::path path) : path_(std::move(path)) {
  std::lock_guard lock(mutex_);
  std::error_code ec;
  if (!fs::exists(path_, ec)) {
    // Durably create the header-only file before anything can commit.
    atomic_write_file(path_, kMagic);
    size_ = kMagicSize;
  } else {
    const std::string head = read_whole_file(path_);
    size_ = head.size();
    header_valid_ =
        head.size() >= kMagicSize && head.compare(0, kMagicSize, kMagic) == 0;
  }
  if (header_valid_) open_for_append_locked();
}

Journal::~Journal() {
  std::lock_guard lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
}

void Journal::open_for_append_locked() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) fail_errno("cannot open journal " + path_.string());
}

std::uint64_t Journal::tail_bytes() const {
  std::lock_guard lock(mutex_);
  return size_ > kMagicSize ? size_ - kMagicSize : 0;
}

void Journal::append(const JournalRecord& record) {
  const std::string payload = payload_text(record);
  if (payload.size() > kMaxPayloadBytes) {
    throw FormatError("journal record exceeds " +
                      std::to_string(kMaxPayloadBytes) + " bytes");
  }
  std::string frame;
  frame.reserve(payload.size() + 8);
  put_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame, crc32(payload));
  frame += payload;

  std::lock_guard lock(mutex_);
  if (fd_ < 0) {
    throw FormatError("journal " + path_.string() +
                      " is not open (invalid header; rotate first)");
  }
  std::size_t written = 0;
  while (written < frame.size()) {
    const std::size_t want = frame.size() - written;
    if (want > write_budget_for_testing_) {
      // Injected mid-frame failure (as ENOSPC/EIO would strike): leave
      // the bytes the kernel already took, then report the error.
      const std::size_t partial = static_cast<std::size_t>(
          write_budget_for_testing_);
      write_budget_for_testing_ = kUnlimitedWrites;
      if (partial > 0) {
        [[maybe_unused]] const ssize_t torn =
            ::write(fd_, frame.data() + written, partial);
      }
      unwind_failed_append_locked();
      errno = ENOSPC;
      fail_errno("append to journal " + path_.string());
    }
    const ssize_t n = ::write(fd_, frame.data() + written, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      unwind_failed_append_locked();
      errno = err;
      fail_errno("append to journal " + path_.string());
    }
    written += static_cast<std::size_t>(n);
    if (write_budget_for_testing_ != kUnlimitedWrites) {
      write_budget_for_testing_ -= static_cast<std::uint64_t>(n);
    }
  }
  if (::fsync(fd_) != 0) {
    const int err = errno;
    unwind_failed_append_locked();
    errno = err;
    fail_errno("fsync " + path_.string());
  }
  // The ack point: the record is now durable.
  size_ += frame.size();
}

void Journal::unwind_failed_append_locked() {
  // A failed append may leave torn frame bytes past size_.  If they
  // stayed, the O_APPEND descriptor would place later (acknowledged)
  // records after them — and replay, which stops at the first torn
  // frame, could never reach those records after a crash.  Cut the file
  // back to the last durable boundary; if even that fails, close the
  // descriptor so further appends refuse (fail-stop) instead of
  // silently writing unreachable records.
  if (fd_ < 0) return;
  if (::ftruncate(fd_, static_cast<off_t>(size_)) == 0 &&
      ::fsync(fd_) == 0) {
    return;
  }
  ::close(fd_);
  fd_ = -1;
}

void Journal::fail_next_write_for_testing(std::uint64_t after_bytes) {
  std::lock_guard lock(mutex_);
  write_budget_for_testing_ = after_bytes;
}

Journal::ReadResult Journal::read_all() const {
  std::lock_guard lock(mutex_);
  return parse(read_whole_file(path_));
}

void Journal::rotate() {
  std::lock_guard lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  atomic_write_file(path_, kMagic);
  size_ = kMagicSize;
  header_valid_ = true;
  open_for_append_locked();
}

Journal::ReadResult Journal::parse(const std::string& bytes) {
  ReadResult out;
  if (bytes.size() < kMagicSize ||
      bytes.compare(0, kMagicSize, kMagic) != 0) {
    out.header_ok = false;
    return out;
  }
  std::size_t pos = kMagicSize;
  out.valid_bytes = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      out.torn = true;  // frame header itself is torn
      break;
    }
    const std::uint32_t length = get_u32le(bytes, pos);
    const std::uint32_t crc = get_u32le(bytes, pos + 4);
    if (length > kMaxPayloadBytes || bytes.size() - pos - 8 < length) {
      out.torn = true;  // length field corrupt or payload truncated
      break;
    }
    const std::string payload = bytes.substr(pos + 8, length);
    if (crc32(payload) != crc) {
      out.torn = true;  // payload or frame bits flipped
      break;
    }
    JournalRecord record;
    if (!parse_payload(payload, &record)) {
      out.torn = true;  // CRC matched but the grammar did not: corrupt
      break;
    }
    out.records.push_back(std::move(record));
    pos += 8 + length;
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace powerplay::library
