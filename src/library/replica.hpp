// replica.hpp — wire/disk codecs for journal-shipping replication.
//
// Replication ships the store's commit stream (see journal.hpp for the
// `(epoch, seq)` cursor semantics).  Two artifacts need a serialized
// form beyond the journal itself:
//
//   * the **snapshot** a follower bootstraps from — the full store
//     contents frozen at a cursor, shipped as one body by
//     `GET /repl/snapshot` and installable in one shot;
//   * the follower's **durable cursor** (`repl.cursor` in the store
//     root) — the position up to which every record has been applied
//     locally.  It is flushed lazily (once per applied batch, not per
//     record); a crash between apply and flush merely re-fetches
//     records the idempotent replay then skips.
//
// Both are text with the store's `#ppck` checksum footer, so the same
// verify/quarantine machinery covers them.
//
// Snapshot grammar (sizes in bytes; entry bodies are raw, uncounted by
// the line tokenizer):
//
//   pprepl snapshot v1
//   epoch <e>
//   seq <s>
//   entry <kind> "<name>" <nbytes>
//   <nbytes raw bytes>
//   ...
//   end
//
// Cursor grammar:
//
//   pprepl cursor v1
//   epoch <e>
//   seq <s>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "library/journal.hpp"

namespace powerplay::library {

/// A position in the replicated commit stream.  `valid` is false when
/// no position is held (fresh follower, cleared cursor, corrupt file) —
/// the signal to re-bootstrap from a snapshot.
struct ReplCursor {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  bool valid = false;

  friend bool operator==(const ReplCursor&, const ReplCursor&) = default;
};

/// Full store contents frozen at (epoch, seq).  Entries reuse
/// JournalRecord (op is always kPut) so installation shares the
/// store's single apply path.
struct ReplSnapshot {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::vector<JournalRecord> entries;
};

/// Serialize with the `#ppck` footer already appended — the result is
/// the exact file/wire body.
[[nodiscard]] std::string encode_cursor(const ReplCursor& cursor);
[[nodiscard]] std::string encode_snapshot(const ReplSnapshot& snapshot);

/// Footer-verifying parses.  A failed cursor parse returns
/// `valid == false` (the caller re-bootstraps); a failed snapshot parse
/// returns false and leaves `*out` unspecified.
[[nodiscard]] ReplCursor parse_cursor(const std::string& raw);
[[nodiscard]] bool parse_snapshot(const std::string& raw, ReplSnapshot* out);

}  // namespace powerplay::library
