// plan.hpp — compiled evaluation plans for whole designs.
//
// Design::play (design.cpp) is the reference interpreter: per Play it
// rebuilds scopes, walks shared_ptr ASTs through string-keyed maps, and
// re-evaluates every row on every fixed-point iteration.  An EvalPlan
// compiles a Design once into expr bytecode (expr/compile.hpp): every
// global and row parameter becomes an interned slot, every formula a
// slot-bound program, intermodel calls (rowpower/totalpower/...) become
// extension ops resolved to row indices at compile time, and macros are
// flattened into a static node tree whose scope chains mirror the
// interpreter's env-erasure rules.
//
// A dependency graph extracted from the intermodel references gives
// each row a *settle rank*: evaluating rows in sheet order, a row whose
// transitive inputs involve no intermodel cycle reproduces the same
// value from iteration `rank` onward, so later iterations reuse it
// instead of re-evaluating — rows outside any cycle evaluate exactly
// once when the design has no intermodel terms at all, and the
// fixed-point work is confined to the strongly-connected components.
// Because rows are still visited in sheet order and the per-iteration
// totals are assembled from the same doubles, the convergence
// trajectory — and therefore every result bit and the reported
// iteration count — is identical to the interpreter's.
//
// PlanInstance is the mutable per-thread scratch: slot values, memo
// epochs, and per-node visible-estimate frames.  Sweeps re-bind one
// slot per point instead of cloning the design; the plan itself is
// immutable and shared across threads (engine/engine.hpp caches plans
// by structural fingerprint).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/compile.hpp"
#include "sheet/design.hpp"

namespace powerplay::sheet {

/// Evaluation counters for tests and tuning: `row_evaluations` counts
/// actual (non-reused) row evaluations across all nodes and iterations.
struct PlanStats {
  int iterations = 0;
  std::size_t row_evaluations = 0;
};

class PlanInstance;

/// Immutable compiled form of a Design.  Compile once, run many; the
/// plan holds shared ownership of the models and macro designs it
/// references, so it stays valid after the source Design is gone (the
/// engine's plan cache relies on this).  Design-local custom functions
/// are captured by value at compile time and, like the play cache, are
/// assumed pure and identified by name.
class EvalPlan {
 public:
  /// Settle rank of rows inside an intermodel cycle (or reading one):
  /// they re-evaluate on every fixed-point iteration.
  static constexpr std::uint32_t kIterativeRank = 0xffffffffu;

  static std::shared_ptr<const EvalPlan> compile(const Design& design);

  /// One precomputed model-side parameter read: a name the row's model
  /// may ask the ParamReader for, resolved (row locals first, then the
  /// node's scope chain, then the spec default) at compile time so a
  /// Play does one binary search per read instead of a spec scan plus
  /// two slot searches.
  struct Read {
    std::string name;
    const model::ParamSpec* spec = nullptr;  ///< into model->params()
    expr::SlotId slot = 0;
    bool has_slot = false;
  };

  [[nodiscard]] const std::string& design_name() const {
    return design_name_;
  }

  /// Slot of a top-level global / a root row's local parameter, for
  /// sweep re-binding.  nullopt when the name is not bound there.
  [[nodiscard]] std::optional<expr::SlotId> global_slot(
      const std::string& name) const;
  [[nodiscard]] std::optional<expr::SlotId> row_param_slot(
      const std::string& row, const std::string& param) const;

  /// Introspection for tests.
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const expr::Module& module() const { return module_; }
  [[nodiscard]] std::uint32_t row_rank(const std::string& row) const;

  /// True when the design has intermodel call sites (rowpower,
  /// totalpower, ...): those plans need the per-point fixed-point loop
  /// and are excluded from lane-batched execution (sheet/batch.hpp).
  [[nodiscard]] bool has_intermodel() const { return !ext_sites_.empty(); }

 private:
  friend class PlanInstance;
  friend class BatchPlanInstance;
  friend struct PlanBuilder;

  EvalPlan() = default;

  /// Where a slot's literal value comes from in the source design, so
  /// bind_from() can refresh values from a structurally identical
  /// design without recompiling.
  struct SlotSource {
    std::uint32_t node = 0;
    std::int32_t row = -1;  ///< -1: node global, else row index
    std::string name;
    bool valid = false;     ///< only value slots are refreshable
  };

  /// One compiled intermodel call site.
  struct ExtSite {
    enum class Kind : std::uint8_t {
      kRowPower,
      kRowArea,
      kRowEnergy,
      kRowDelay,
      kTotalPower,
      kTotalArea,
      kDisabledZero,  ///< target row disabled: flag + constant zero
    };
    Kind kind;
    std::uint32_t node = 0;        ///< owning node (its visible frame)
    std::uint32_t target_row = 0;  ///< row index for the kRow* kinds
  };

  struct PlanRow {
    std::string name;
    std::string model_name;
    bool enabled = true;
    bool is_macro = false;
    model::ModelPtr model;        ///< shared ownership (primitive rows)
    std::uint32_t sub_node = 0;   ///< macro rows: node id of the sub-plan
    std::uint32_t domain = 0;     ///< row-eval memo epoch domain
    std::uint32_t rank = 1;       ///< settle rank (kIterativeRank = every iter)
    /// Local parameters in local_names() order (sorted), slot-bound.
    std::vector<std::pair<std::string, expr::SlotId>> param_slots;
    /// Union of the model's declared parameters and the locally bound
    /// extras, pre-resolved, sorted by name (primitive rows only).
    std::vector<Read> reads;
  };

  /// One design in the macro tree (node 0 = the root design).
  struct Node {
    std::string design_name;
    std::vector<std::size_t> path;  ///< macro row indices from the root
    /// Non-empty: play throws this at node entry (a surviving global
    /// formula calls an intermodel function — same eager validation,
    /// and the same message, as the interpreter).
    std::string poison;
    std::uint32_t globals_domain = 0;
    std::vector<PlanRow> rows;  ///< sheet order, disabled rows included
    /// Enabled row indices ordered by row name — the iteration order of
    /// the interpreter's visible std::map, which totalpower/totalarea
    /// summation must reproduce exactly (float addition order).
    std::vector<std::uint32_t> name_sorted_enabled;
    /// Names visible through the node's scope chain *outside* row
    /// locals (surviving globals, then env layers), first-binding-wins,
    /// sorted by name for lookup.  Model parameter reads resolve here
    /// after the row's own param_slots.
    std::vector<std::pair<std::string, expr::SlotId>> chain_names;
  };

  expr::Module module_;
  std::vector<Node> nodes_;
  std::vector<ExtSite> ext_sites_;
  std::vector<SlotSource> slot_sources_;  ///< parallel to module_.slots
  std::string design_name_;
};

/// Mutable evaluation scratch over a shared EvalPlan: slot values, memo
/// epochs, and per-node visible frames.  One instance per thread; not
/// copyable (the ExecState extension hook points back at it).
class PlanInstance {
 public:
  explicit PlanInstance(std::shared_ptr<const EvalPlan> plan);

  PlanInstance(const PlanInstance&) = delete;
  PlanInstance& operator=(const PlanInstance&) = delete;

  /// Refresh every value slot from a structurally identical design
  /// (same structural fingerprint; literal values may differ) and drop
  /// sweep overrides.  Lets a cached plan serve edited designs.
  void bind_from(const Design& design);

  /// Override one slot with a literal (sweep point re-binding).
  void bind(expr::SlotId slot, double value);

  /// Press Play.  Bit-identical to Design::play() on the design the
  /// instance is bound to: same doubles, same errors, same iterations.
  [[nodiscard]] PlayResult play();

  /// Counters from the most recent play().
  [[nodiscard]] const PlanStats& stats() const { return stats_; }

  [[nodiscard]] const EvalPlan& plan() const { return *plan_; }

 private:
  /// Per-node scratch mirroring the interpreter's `visible` map and
  /// sticky intermodel_used flag, plus the latest evaluation of each
  /// row for settle-rank reuse.
  struct NodeFrame {
    bool intermodel_used = false;
    std::vector<model::Estimate> estimates;  ///< latest value, per row
    std::vector<std::uint8_t> present;       ///< in the visible map?
    std::vector<RowResult> cached;           ///< latest RowResult, per row
    std::vector<std::uint8_t> has_cached;
  };

  static double ext_thunk(void* ctx, std::uint32_t site, std::uint32_t b);
  double ext(std::uint32_t site);
  PlayResult run_node(std::uint32_t node_id);

  std::shared_ptr<const EvalPlan> plan_;
  expr::ExecState state_;
  std::vector<NodeFrame> frames_;
  PlanStats stats_;
};

}  // namespace powerplay::sheet
